"""Differential pins for the *pipelined* provider sink.

PR 9's tentpole un-serializes the priority-provider sink: with
``concurrency="threads"`` and an active provider, ``run()`` streams the
tail through :meth:`RecMGManager._serve_stream` and splits each block's
caching bits per shard onto the pinned workers
(:meth:`RecMGManager._submit_sink`) instead of taking a per-block
barrier.  The contract is **bit-identity**: per-shard FIFO («serve
block k → apply block k's bits → serve block k+1» on every shard) plus
submit-time bits (provider calls depend only on keys + provider state,
never buffer state) mean the pipelined form must reproduce the barrier
form — and the serial shard loop — decision for decision.

Three axes are swept:

* **backend** — ``"fast"`` (exact) and ``"clock"`` (approximate, the
  serving choice); identity must hold per backend;
* **workers** — 1/2/4 workers over 4 shards (shards time-share workers
  but keep per-shard FIFO);
* **mode** — ``"sync"`` (deterministic natively) and ``"async"`` made
  deterministic by flushing the refresh worker after every observe, so
  the bit table at ``bits_for`` time is a pure function of the observe
  history (identical across engine forms).

The barrier form is reached through the ``_pipeline_sink = False``
escape hatch; a separate test proves the hatch works (no pipeline
metrics recorded) and that the default path really pipelines
(``inflight_depth_max >= 2`` with a provider active — the acceptance
criterion of the un-serialization).
"""

import numpy as np
import pytest

from repro.core.caching_model import CachingModel
from repro.core.config import RecMGConfig
from repro.core.features import FeatureEncoder
from repro.core.labeling import build_labels, caching_targets
from repro.core.manager import RecMGManager
from repro.core.training import train_caching_model
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

NUM_SHARDS = 4
#: Small streaming block (x4 shards = 1024-access segments) so the
#: ~8.4k-access tail spans enough blocks to fill the 8-deep pipeline.
SERVE_BLOCK = 256


@pytest.fixture(scope="module")
def small_config():
    return RecMGConfig(hidden=16, hash_buckets=256, caching_epochs=1,
                       max_train_chunks=200, buffer_impl="clock")


@pytest.fixture(scope="module")
def world(small_config):
    """(serve_tail, encoder, capacity, trained caching model)."""
    trace = generate_trace(SyntheticTraceConfig(
        num_tables=4, rows_per_table=512, num_accesses=12_000, seed=5))
    head, tail = trace.split(0.3)
    encoder = FeatureEncoder(small_config).fit(head)
    capacity = max(1, int(encoder.vocab_size * 0.2))
    labels = build_labels(head, capacity, small_config, encoder)
    chunks = encoder.encode_chunks(head)
    model = CachingModel(small_config, encoder.num_tables)
    train_caching_model(model, chunks, caching_targets(chunks, labels),
                        small_config)
    return tail, encoder, capacity, model


def _flush_after_observe(manager):
    """Make an async provider deterministic: land every refresh before
    the next provider call, so ``bits_for`` reads a table that is a
    pure function of the observe history."""
    provider = manager.priority_provider
    original = provider.observe

    def observe_then_flush(keys):
        original(keys)
        provider.flush()

    provider.observe = observe_then_flush


def _run(world, *, mode, buffer_impl, concurrency, num_workers=None,
         pipeline=True, deterministic_async=False):
    tail, encoder, capacity, model = world
    config = RecMGConfig(hidden=16, hash_buckets=256,
                         buffer_impl=buffer_impl, num_shards=NUM_SHARDS,
                         concurrency=concurrency, num_workers=num_workers)
    manager = RecMGManager(capacity, encoder, config,
                           caching_model=model, priority_mode=mode)
    manager._SERVE_BLOCK = SERVE_BLOCK
    if not pipeline:
        manager._pipeline_sink = False
    if deterministic_async:
        _flush_after_observe(manager)
    stats = manager.run(tail, fast_serve=True, record_decisions=True)
    decisions = manager.last_decisions.copy()
    residents = sorted(manager.buffer.keys())
    inflight_max = manager.serving_metrics.inflight_depth_max
    inflight_samples = manager.serving_metrics.inflight_depth_samples
    manager.close()
    counters = (stats.breakdown.cache_hits, stats.breakdown.prefetch_hits,
                stats.breakdown.on_demand, stats.evictions)
    return counters, decisions, residents, inflight_max, inflight_samples


# ----------------------------------------------------------------------
# Tentpole pin: pipelined == barrier == serial, per backend, any
# worker count, under the sync provider.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("buffer_impl", ["fast", "clock"])
def test_pipelined_sink_equals_barrier_and_serial_sync(world, buffer_impl):
    serial = _run(world, mode="sync", buffer_impl=buffer_impl,
                  concurrency="serial")
    for num_workers in (1, 2, 4):
        barrier = _run(world, mode="sync", buffer_impl=buffer_impl,
                       concurrency="threads", num_workers=num_workers,
                       pipeline=False)
        pipelined = _run(world, mode="sync", buffer_impl=buffer_impl,
                         concurrency="threads", num_workers=num_workers)
        for label, got in (("barrier", barrier), ("pipelined", pipelined)):
            assert got[0] == serial[0], (buffer_impl, num_workers, label)
            np.testing.assert_array_equal(
                got[1], serial[1],
                err_msg=f"{buffer_impl}/{num_workers}/{label}")
            assert got[2] == serial[2], (buffer_impl, num_workers, label)
        # The pipelined run really pipelined: blocks were dispatched
        # ahead of the gather even with the provider sink active.
        assert pipelined[3] >= 2, (buffer_impl, num_workers)


# ----------------------------------------------------------------------
# Same identity under the async provider, made deterministic by
# flushing the refresh worker after every observe.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("num_workers", [1, 2])
def test_pipelined_sink_equals_barrier_async_deterministic(world,
                                                           num_workers):
    barrier = _run(world, mode="async", buffer_impl="clock",
                   concurrency="threads", num_workers=num_workers,
                   pipeline=False, deterministic_async=True)
    pipelined = _run(world, mode="async", buffer_impl="clock",
                     concurrency="threads", num_workers=num_workers,
                     deterministic_async=True)
    assert pipelined[0] == barrier[0]
    np.testing.assert_array_equal(pipelined[1], barrier[1])
    assert pipelined[2] == barrier[2]
    assert pipelined[3] >= 2


# ----------------------------------------------------------------------
# The acceptance pin: priority_mode="async" + concurrency="threads"
# takes the pipelined stream path (the bug this PR fixes was the
# provider forcing every block onto the barrier path).
# ----------------------------------------------------------------------
def test_async_provider_rides_the_pipelined_stream(world):
    counters, decisions, _, inflight_max, inflight_samples = _run(
        world, mode="async", buffer_impl="clock",
        concurrency="threads", num_workers=2)
    tail = world[0]
    assert len(decisions) == len(tail)
    assert counters[0] > 0  # served something from the buffer
    assert inflight_samples > 0  # stream path engaged (records depth)
    assert inflight_max >= 2  # and actually kept blocks in flight


def test_pipeline_sink_hatch_forces_barrier(world):
    """``_pipeline_sink = False`` must fall back to the per-block
    barrier loop (no stream-path metrics) — the escape hatch the
    differential and the bench lean on."""
    *_, inflight_samples = _run(world, mode="sync", buffer_impl="clock",
                                concurrency="threads", num_workers=2,
                                pipeline=False)
    assert inflight_samples == 0
