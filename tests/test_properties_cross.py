"""Cross-module property tests: invariants spanning substrates."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import (
    LRUCache, SetAssociativeCache, run_optgen, simulate, simulate_belady,
)
from repro.nn import Tensor, chamfer_loss
from repro.traces import Trace, lru_hit_rate, reuse_distances

KEY_LISTS = st.lists(st.integers(0, 20), min_size=5, max_size=120)


def trace_of(keys):
    return Trace.from_pairs([(0, k) for k in keys])


class TestCacheHierarchyInvariants:
    @given(KEY_LISTS, st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_opt_dominates_lru_dominates_setassoc_bound(self, keys, capacity):
        """OPT >= full LRU, and every policy's hits <= warm accesses."""
        trace = trace_of(keys)
        opt, _ = simulate_belady(trace, capacity)
        lru = LRUCache(capacity)
        simulate(lru, trace)
        warm = len(keys) - len(set(keys))
        assert opt.hits >= lru.stats.hits
        assert opt.hits <= warm

    @given(KEY_LISTS, st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_optgen_friendly_bits_bounded_by_hits(self, keys, capacity):
        """Each friendly label corresponds to a subsequent OPT hit, so
        friendly count == OPT hit count exactly."""
        trace = trace_of(keys)
        result = run_optgen(trace, capacity)
        assert int(result.cache_friendly.sum()) == result.stats.hits

    @given(KEY_LISTS)
    @settings(max_examples=30, deadline=None)
    def test_infinite_capacity_reaches_cold_miss_bound(self, keys):
        trace = trace_of(keys)
        opt, _ = simulate_belady(trace, capacity=10_000)
        assert opt.misses == len(set(keys))

    @given(KEY_LISTS, st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_set_assoc_never_beats_full_lru_plus_slack(self, keys, capacity):
        """A 2-way set-assoc cache of equal capacity suffers conflict
        misses, so it never exceeds warm-access hits."""
        trace = trace_of(keys)
        cache = SetAssociativeCache(max(2, capacity), ways=2)
        simulate(cache, trace)
        warm = len(keys) - len(set(keys))
        assert cache.stats.hits <= warm


class TestReuseDistanceDuality:
    @given(KEY_LISTS)
    @settings(max_examples=30, deadline=None)
    def test_hit_rate_curve_reaches_warm_fraction(self, keys):
        """With capacity beyond the largest reuse distance, LRU hit rate
        equals the warm-access fraction."""
        trace = trace_of(keys)
        distances = reuse_distances(trace)
        warm_fraction = (distances >= 0).mean()
        assert lru_hit_rate(distances, capacity=10_000) == pytest.approx(
            warm_fraction)


class TestChamferProperties:
    @given(st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_nonnegative_and_zero_on_identity(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(2, 5))
        loss = chamfer_loss(Tensor(points), Tensor(points.copy()))
        assert loss.item() >= -1e-12
        assert loss.item() < 1e-9

    @given(st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_subset_window_never_increases_forward_term(self, seed):
        """Adding points to the window can only shrink each output's
        min-distance — the monotonicity the decoupled-window design
        (Fig. 12) relies on."""
        from repro.nn import chamfer_forward_only

        rng = np.random.default_rng(seed)
        outputs = Tensor(rng.normal(size=(1, 4)))
        window_small = rng.normal(size=(1, 6))
        extra = rng.normal(size=(1, 3))
        window_large = np.concatenate([window_small, extra], axis=1)
        small = chamfer_forward_only(outputs, Tensor(window_small)).item()
        large = chamfer_forward_only(outputs, Tensor(window_large)).item()
        assert large <= small + 1e-12
