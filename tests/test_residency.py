"""ResidencyIndex: the dense-id membership bitmap behind the clock
backend's array-native serving path."""

import numpy as np
import pytest

from repro.cache import ResidencyIndex


class TestScalarProtocol:
    def test_add_discard_contains(self):
        idx = ResidencyIndex(16)
        assert 3 not in idx
        idx.add(3)
        assert 3 in idx
        idx.discard(3)
        assert 3 not in idx

    def test_idempotent_set_semantics(self):
        idx = ResidencyIndex(8)
        idx.add(5)
        idx.add(5)
        assert idx.count() == 1
        idx.discard(5)
        idx.discard(5)
        assert idx.count() == 0

    def test_overflow_keys_spill(self):
        """Ids outside [0, key_space) are tracked correctly, just not
        in the bitmap (the manager's unseen-key ids land here)."""
        idx = ResidencyIndex(4)
        idx.add(100)
        idx.add(-7)
        assert 100 in idx and -7 in idx
        assert idx.count() == 2
        idx.discard(100)
        assert 100 not in idx and -7 in idx

    def test_rejects_empty_key_space(self):
        with pytest.raises(ValueError):
            ResidencyIndex(0)


class TestBatchProtocol:
    def test_contains_batch_matches_scalar(self):
        idx = ResidencyIndex(32)
        rng = np.random.default_rng(7)
        resident = rng.choice(32, size=10, replace=False)
        idx.add_batch(resident)
        probe = np.arange(-4, 40, dtype=np.int64)
        bulk = idx.contains_batch(probe)
        assert bulk.dtype == np.bool_
        assert np.array_equal(
            bulk, np.array([int(k) in idx for k in probe]))

    def test_add_discard_batch_with_overflow(self):
        idx = ResidencyIndex(8)
        keys = np.array([1, 5, 20, -3, 5], dtype=np.int64)  # dup + spill
        idx.add_batch(keys)
        assert idx.count() == 4
        assert np.array_equal(idx.contains_batch(keys),
                              np.ones(5, dtype=bool))
        idx.discard_batch(np.array([5, 20], dtype=np.int64))
        assert 1 in idx and -3 in idx
        assert 5 not in idx and 20 not in idx

    def test_empty_batches_are_noops(self):
        idx = ResidencyIndex(8)
        empty = np.zeros(0, dtype=np.int64)
        idx.add_batch(empty)
        idx.discard_batch(empty)
        assert idx.contains_batch(empty).shape == (0,)
        assert idx.count() == 0

    def test_bitmap_gather_is_exposed(self):
        """Hot call sites may gather ``bitmap[segment]`` directly for
        in-range segments."""
        idx = ResidencyIndex(16)
        idx.add_batch(np.array([2, 3, 9]))
        segment = np.array([9, 2, 4], dtype=np.int64)
        assert np.array_equal(idx.bitmap[segment],
                              np.array([True, True, False]))


class TestBookkeeping:
    def test_resident_keys_iterates_both_ranges(self):
        idx = ResidencyIndex(8)
        idx.add_batch(np.array([6, 1, 99]))
        assert sorted(idx.resident_keys()) == [1, 6, 99]

    def test_clear_resets_everything(self):
        idx = ResidencyIndex(8)
        idx.add_batch(np.array([0, 7, 50]))
        idx.clear()
        assert idx.count() == 0
        assert not idx.bitmap.any()
        assert 50 not in idx
