"""Synthetic generator: determinism, paper-motivated trace properties."""

import numpy as np
import pytest

from repro.traces import (
    DATASET_NAMES, SyntheticTraceConfig, dataset_config, generate_trace,
    load_dataset, long_reuse_fraction, reuse_distances, table1_trace,
    top_fraction_share,
)


class TestGenerator:
    def test_deterministic(self):
        config = SyntheticTraceConfig(num_accesses=2000, seed=5)
        a = generate_trace(config)
        b = generate_trace(config)
        assert np.array_equal(a.keys(), b.keys())

    def test_seed_changes_trace(self):
        a = generate_trace(SyntheticTraceConfig(num_accesses=2000, seed=5))
        b = generate_trace(SyntheticTraceConfig(num_accesses=2000, seed=6))
        assert not np.array_equal(a.keys(), b.keys())

    def test_exact_length(self):
        trace = generate_trace(SyntheticTraceConfig(num_accesses=3123))
        assert len(trace) == 3123

    def test_rows_within_tables(self):
        config = SyntheticTraceConfig(num_accesses=2000, rows_per_table=256)
        trace = generate_trace(config)
        assert trace.row_ids.max() < 256
        assert trace.table_ids.max() < config.num_tables

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(num_tables=0)
        with pytest.raises(ValueError):
            SyntheticTraceConfig(cold_fraction=1.5)
        with pytest.raises(ValueError):
            SyntheticTraceConfig(cluster_block=999, rows_per_table=10)


class TestPaperProperties:
    """The three trace properties the paper's analysis depends on."""

    def test_power_law_popularity(self, tiny_trace):
        # ~20% of vectors should take well over half the accesses.
        assert top_fraction_share(tiny_trace, 0.2) > 0.55

    def test_long_reuse_distances_present(self, tiny_trace):
        distances = reuse_distances(tiny_trace)
        cap = int(tiny_trace.num_unique * 0.2)
        assert long_reuse_fraction(distances, cap) > 0.05

    def test_session_correlation(self, tiny_trace):
        # Consecutive accesses repeat tables/clusters far more often than
        # a shuffled trace would.
        keys = tiny_trace.keys()
        rng = np.random.default_rng(0)
        shuffled = keys.copy()
        rng.shuffle(shuffled)
        # Not a strong statement about equality-adjacency, so compare
        # block reuse: distinct keys per window.
        def window_distinct(arr, w=50):
            return np.mean([len(set(arr[i:i + w].tolist()))
                            for i in range(0, len(arr) - w, w)])
        assert window_distinct(keys) < window_distinct(shuffled)


class TestDatasets:
    def test_all_presets_load(self):
        for name in DATASET_NAMES:
            trace = load_dataset(name, scale=0.05)
            assert len(trace) >= 1000
            assert trace.name == name

    def test_presets_differ(self):
        a = load_dataset("dataset0", scale=0.05)
        b = load_dataset("dataset1", scale=0.05)
        assert not np.array_equal(a.keys(), b.keys())

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            dataset_config("dataset9")

    def test_table1_shapes(self):
        small = table1_trace("DS1", scale=0.1)
        large = table1_trace("DS3", scale=0.1)
        assert large.num_tables > small.num_tables

    def test_table1_unknown(self):
        with pytest.raises(KeyError):
            table1_trace("DS9")
