"""Synthetic generator: determinism, paper-motivated trace properties."""

import numpy as np
import pytest

from repro.traces import (
    DATASET_NAMES, SyntheticTraceConfig, dataset_config,
    generate_hot_shard_trace, generate_multi_tenant_trace,
    generate_skew_sweep, generate_trace, load_dataset,
    long_reuse_fraction, reuse_distances, skew_sweep_configs,
    table1_trace, top_fraction_share,
)


class TestGenerator:
    def test_deterministic(self):
        config = SyntheticTraceConfig(num_accesses=2000, seed=5)
        a = generate_trace(config)
        b = generate_trace(config)
        assert np.array_equal(a.keys(), b.keys())

    def test_seed_changes_trace(self):
        a = generate_trace(SyntheticTraceConfig(num_accesses=2000, seed=5))
        b = generate_trace(SyntheticTraceConfig(num_accesses=2000, seed=6))
        assert not np.array_equal(a.keys(), b.keys())

    def test_exact_length(self):
        trace = generate_trace(SyntheticTraceConfig(num_accesses=3123))
        assert len(trace) == 3123

    def test_rows_within_tables(self):
        config = SyntheticTraceConfig(num_accesses=2000, rows_per_table=256)
        trace = generate_trace(config)
        assert trace.row_ids.max() < 256
        assert trace.table_ids.max() < config.num_tables

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(num_tables=0)
        with pytest.raises(ValueError):
            SyntheticTraceConfig(cold_fraction=1.5)
        with pytest.raises(ValueError):
            SyntheticTraceConfig(cluster_block=999, rows_per_table=10)


class TestPaperProperties:
    """The three trace properties the paper's analysis depends on."""

    def test_power_law_popularity(self, tiny_trace):
        # ~20% of vectors should take well over half the accesses.
        assert top_fraction_share(tiny_trace, 0.2) > 0.55

    def test_long_reuse_distances_present(self, tiny_trace):
        distances = reuse_distances(tiny_trace)
        cap = int(tiny_trace.num_unique * 0.2)
        assert long_reuse_fraction(distances, cap) > 0.05

    def test_session_correlation(self, tiny_trace):
        # Consecutive accesses repeat tables/clusters far more often than
        # a shuffled trace would.
        keys = tiny_trace.keys()
        rng = np.random.default_rng(0)
        shuffled = keys.copy()
        rng.shuffle(shuffled)
        # Not a strong statement about equality-adjacency, so compare
        # block reuse: distinct keys per window.
        def window_distinct(arr, w=50):
            return np.mean([len(set(arr[i:i + w].tolist()))
                            for i in range(0, len(arr) - w, w)])
        assert window_distinct(keys) < window_distinct(shuffled)


class TestScenarioGenerators:
    """Sharded-serving workloads: skew sweep, hot-shard, multi-tenant."""

    BASE = SyntheticTraceConfig(num_tables=4, rows_per_table=256,
                                num_accesses=8000, seed=12)

    @staticmethod
    def _flat(trace, rows_per_table=256):
        return trace.table_ids * rows_per_table + trace.row_ids

    def test_skew_sweep_varies_only_the_exponent(self):
        configs = skew_sweep_configs(self.BASE, [0.4, 1.1, 2.2])
        assert [c.zipf_s for c in configs] == [0.4, 1.1, 2.2]
        assert all(c.seed == self.BASE.seed
                   and c.num_accesses == self.BASE.num_accesses
                   for c in configs)

    def test_skew_sweep_concentrates_with_exponent(self):
        mild, heavy = generate_skew_sweep(self.BASE, [0.2, 2.5])
        assert len(mild) == len(heavy) == self.BASE.num_accesses
        assert (top_fraction_share(heavy, 0.05)
                > top_fraction_share(mild, 0.05))

    def test_hot_shard_band_concentration(self):
        trace = generate_hot_shard_trace(self.BASE, num_shards=4,
                                         hot_shard=2, hot_fraction=0.8)
        assert len(trace) == self.BASE.num_accesses
        universe = 4 * 256
        flat = self._flat(trace)
        band = (flat >= 2 * universe // 4) & (flat < 3 * universe // 4)
        # The hot band holds its own share plus its slice of the cold
        # remainder.
        assert band.mean() > 0.75
        # Deterministic per seed.
        again = generate_hot_shard_trace(self.BASE, num_shards=4,
                                         hot_shard=2, hot_fraction=0.8)
        assert np.array_equal(trace.keys(), again.keys())

    def test_hot_shard_maps_to_one_contiguous_router_shard(self):
        """The point of the generator: under contiguous routing of the
        dense-remapped universe, one shard absorbs the hot traffic."""
        from repro.cache import make_router
        from repro.traces.access import remap_to_dense

        trace = generate_hot_shard_trace(self.BASE, num_shards=4,
                                         hot_shard=1, hot_fraction=0.85)
        dense, _ = remap_to_dense(trace)
        router = make_router("contiguous", 4, int(dense.max()) + 1)
        shares = np.bincount(router.route_batch(dense), minlength=4) \
            / dense.size
        assert shares.max() > 0.6  # one shard dominates
        modulo = make_router("modulo", 4, int(dense.max()) + 1)
        mod_shares = np.bincount(modulo.route_batch(dense), minlength=4) \
            / dense.size
        assert mod_shares.max() < shares.max()  # striping spreads it

    def test_hot_shard_validation(self):
        with pytest.raises(ValueError):
            generate_hot_shard_trace(self.BASE, num_shards=4, hot_shard=4)
        with pytest.raises(ValueError):
            generate_hot_shard_trace(self.BASE, hot_fraction=1.5)

    def test_multi_tenant_phases_and_shares(self):
        trace = generate_multi_tenant_trace(self.BASE, num_tenants=4,
                                            tenant_shares=[4, 2, 1, 1],
                                            phase_length=200)
        assert len(trace) == self.BASE.num_accesses
        universe = 4 * 256
        tenant = self._flat(trace) * 4 // universe
        # Phases are single-tenant (tenant bands are disjoint).
        whole = tenant[: (len(trace) // 200) * 200].reshape(-1, 200)
        assert (whole == whole[:, :1]).all()
        # Shares are respected within sampling noise.
        shares = np.bincount(tenant, minlength=4) / tenant.size
        assert shares[0] > shares[2] and shares[0] > shares[3]

    def test_multi_tenant_validation(self):
        with pytest.raises(ValueError):
            generate_multi_tenant_trace(self.BASE, num_tenants=0)
        with pytest.raises(ValueError):
            generate_multi_tenant_trace(self.BASE, tenant_shares=[1, 2])
        with pytest.raises(ValueError):
            generate_multi_tenant_trace(self.BASE,
                                        tenant_shares=[0, 0, 0, 0])
        with pytest.raises(ValueError):
            generate_multi_tenant_trace(self.BASE, phase_length=0)


class TestDatasets:
    def test_all_presets_load(self):
        for name in DATASET_NAMES:
            trace = load_dataset(name, scale=0.05)
            assert len(trace) >= 1000
            assert trace.name == name

    def test_presets_differ(self):
        a = load_dataset("dataset0", scale=0.05)
        b = load_dataset("dataset1", scale=0.05)
        assert not np.array_equal(a.keys(), b.keys())

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            dataset_config("dataset9")

    def test_table1_shapes(self):
        small = table1_trace("DS1", scale=0.1)
        large = table1_trace("DS3", scale=0.1)
        assert large.num_tables > small.num_tables

    def test_table1_unknown(self):
        with pytest.raises(KeyError):
            table1_trace("DS9")
