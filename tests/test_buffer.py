"""Priority GPU buffer (Algorithms 1-2): semantics and fast/naive parity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import (
    BUFFER_IMPLS,
    ClockBuffer,
    FastPriorityBuffer,
    PriorityBuffer,
    make_buffer,
)


class TestReferenceSemantics:
    def test_evicts_lowest_priority(self):
        buf = PriorityBuffer(3)
        buf.insert(1, 5)
        buf.insert(2, 1)
        buf.insert(3, 4)
        assert buf.evict_one() == 2

    def test_aging_decrements(self):
        buf = PriorityBuffer(3)
        buf.insert(1, 2)
        buf.insert(2, 0)
        buf.evict_one()                 # evicts 2, ages 1 down to 1
        assert buf.priority_of(1) == 1

    def test_tie_breaks_by_recency(self):
        buf = PriorityBuffer(3)
        buf.insert(1, 1)
        buf.insert(2, 1)
        buf.set_priority(1, 1)          # touch 1 -> 2 is now oldest
        assert buf.evict_one() == 2

    def test_demote_evicted_first(self):
        buf = PriorityBuffer(3)
        buf.insert(1, 0)
        buf.insert(2, 5)
        buf.insert(3, 5)
        buf.demote(3)
        assert buf.evict_one() == 3

    def test_full_insert_raises(self):
        buf = PriorityBuffer(1)
        buf.insert(1, 1)
        with pytest.raises(RuntimeError):
            buf.insert(2, 1)

    def test_empty_evict_raises(self):
        with pytest.raises(RuntimeError):
            PriorityBuffer(1).evict_one()

    def test_priority_floor_at_zero(self):
        buf = PriorityBuffer(4)
        buf.insert(1, 1)
        buf.insert(2, 0)
        buf.insert(3, 0)
        assert buf.evict_one() == 2   # oldest zero-priority entry
        assert buf.priority_of(1) == 0  # aged 1 -> 0, floored
        assert buf.priority_of(3) == 0


OPS = st.lists(
    st.tuples(st.sampled_from(["insert", "set", "demote", "evict"]),
              st.integers(0, 40), st.integers(0, 6)),
    min_size=1, max_size=300,
)


class TestFastParity:
    @given(OPS)
    @settings(max_examples=60, deadline=None)
    def test_equivalent_to_reference(self, ops):
        """Both implementations make identical victim choices under any
        interleaving of inserts, priority updates, demotions, evictions."""
        ref = PriorityBuffer(12)
        fast = FastPriorityBuffer(12)
        for op, key, priority in ops:
            if op == "insert":
                if key in ref:
                    ref.set_priority(key, priority)
                    fast.set_priority(key, priority)
                elif not ref.is_full:
                    ref.insert(key, priority)
                    fast.insert(key, priority)
            elif op == "set" and key in ref:
                ref.set_priority(key, priority)
                fast.set_priority(key, priority)
            elif op == "demote" and key in ref:
                ref.demote(key)
                fast.demote(key)
            elif op == "evict" and len(ref):
                assert ref.evict_one() == fast.evict_one()
            assert len(ref) == len(fast)
        assert sorted(ref.keys()) == sorted(fast.keys())
        for key in ref.keys():
            assert ref.priority_of(key) == fast.priority_of(key)

    def test_fast_basic_semantics(self):
        buf = FastPriorityBuffer(3)
        buf.insert(1, 5)
        buf.insert(2, 1)
        buf.insert(3, 4)
        assert buf.evict_one() == 2
        assert buf.priority_of(1) == 4  # aged

    CAP1_OPS = st.lists(
        st.tuples(st.sampled_from(["insert", "set", "demote", "evict"]),
                  st.integers(0, 5), st.integers(0, 4)),
        min_size=1, max_size=120,
    )

    @given(CAP1_OPS)
    @settings(max_examples=60, deadline=None)
    def test_equivalent_at_capacity_one(self, ops):
        """Interleaved demote/set_priority/insert at capacity 1 — the
        degenerate buffer where every insert immediately borders an
        eviction and the zero/live heap migration is maximally hot."""
        ref = PriorityBuffer(1)
        fast = FastPriorityBuffer(1)
        for op, key, priority in ops:
            if op == "insert":
                if key in ref:
                    ref.set_priority(key, priority)
                    fast.set_priority(key, priority)
                elif not ref.is_full:
                    ref.insert(key, priority)
                    fast.insert(key, priority)
            elif op == "set" and key in ref:
                ref.set_priority(key, priority)
                fast.set_priority(key, priority)
            elif op == "demote" and key in ref:
                ref.demote(key)
                fast.demote(key)
            elif op == "evict" and len(ref):
                assert ref.evict_one() == fast.evict_one()
            assert len(ref) == len(fast)
            assert sorted(ref.keys()) == sorted(fast.keys())
            for key in ref.keys():
                assert ref.priority_of(key) == fast.priority_of(key)

    def test_fast_validations(self):
        buf = FastPriorityBuffer(1)
        with pytest.raises(RuntimeError):
            buf.evict_one()
        buf.insert(1, 1)
        with pytest.raises(RuntimeError):
            buf.insert(2, 1)
        with pytest.raises(KeyError):
            buf.set_priority(99, 1)
        with pytest.raises(KeyError):
            buf.demote(99)


@pytest.mark.parametrize("impl", ["reference", "fast"])
class TestEvictionOrderContract:
    """Regression tests for the documented (effective_priority, seqno)
    victim order: identical on both exact backends by construction, not
    by accident of dict/heap internals."""

    def _buf(self, impl, capacity):
        return make_buffer(impl, capacity)

    def test_equal_priority_evicts_oldest_touch_first(self, impl):
        buf = self._buf(impl, 3)
        buf.insert(1, 2)
        buf.insert(2, 2)
        buf.insert(3, 2)
        buf.set_priority(1, 2)          # refresh: 1 becomes newest
        assert buf.evict_batch(3) == [2, 3, 1]

    def test_demoted_keys_evict_in_reverse_demote_order(self, impl):
        """demote() draws fresh *decreasing* seqnos, so the most
        recently demoted key evicts first (stack order)."""
        buf = self._buf(impl, 3)
        buf.insert(1, 5)
        buf.insert(2, 5)
        buf.insert(3, 5)
        buf.demote(1)
        buf.demote(3)
        assert buf.evict_one() == 3     # demoted last -> smallest seqno
        assert buf.evict_one() == 1

    def test_reinsert_after_demote_refreshes_seqno(self, impl):
        buf = self._buf(impl, 3)
        buf.insert(1, 1)
        buf.insert(2, 1)
        buf.demote(1)
        buf.set_priority(1, 1)          # back to a fresh positive seqno
        assert buf.evict_one() == 2     # 2 is now the oldest at prio 1

    def test_aged_entry_ties_break_by_insertion_order(self, impl):
        """Entries reaching equal *effective* priority through different
        aging histories still tie-break by seqno."""
        buf = self._buf(impl, 3)
        buf.insert(1, 2)
        buf.insert(2, 0)
        assert buf.evict_one() == 2     # ages 1 down to 1
        buf.insert(3, 1)                # same effective priority as 1
        assert buf.evict_one() == 1     # older seqno loses the tie

    def test_victim_sequence_identical_across_exact_backends(self, impl):
        """The full drain order of a mixed workload is the contract;
        compare each backend against the hand-computed sequence."""
        buf = self._buf(impl, 4)
        buf.insert(10, 3)
        buf.insert(11, 1)
        buf.insert(12, 1)
        buf.demote(10)
        buf.insert(13, 0)
        buf.set_priority(11, 1)
        # 10 first (demoted: priority 0, negative seqno); the aging from
        # that eviction floors 11/12 to zero alongside 13, after which
        # pure seqno order drains 12 (seq 2), 13 (seq 3), 11 (seq 4).
        assert buf.evict_batch(4) == [10, 12, 13, 11]


class TestClockSemantics:
    """ClockBuffer unit semantics (the fuzz suite covers interleavings)."""

    def test_registry_exposes_three_backends(self):
        assert sorted(BUFFER_IMPLS) == ["clock", "fast", "reference"]
        assert make_buffer("clock", 2).approximate
        assert not make_buffer("fast", 2).approximate
        with pytest.raises(ValueError):
            make_buffer("nope", 2)

    def test_zero_priority_evicted_before_survivors(self):
        buf = ClockBuffer(3)
        buf.insert(1, 2)
        buf.insert(2, 0)
        buf.insert(3, 1)
        assert buf.evict_one() == 2

    def test_sweep_ages_survivors_once_per_pass(self):
        buf = ClockBuffer(3)
        buf.insert(1, 2)
        buf.insert(2, 1)
        buf.insert(3, 1)
        # No zeros: one aging sweep makes 2 and 3 zero; hand order
        # takes both before 1 (still at priority 1).
        assert buf.evict_batch(2) == [2, 3]
        assert buf.priority_of(1) == 1

    def test_batch_victims_nondecreasing_priority(self):
        buf = ClockBuffer(4)
        for key, priority in [(1, 3), (2, 0), (3, 2), (4, 0)]:
            buf.insert(key, priority)
        victims = buf.evict_batch(3)
        pre = {1: 3, 2: 0, 3: 2, 4: 0}
        order = [pre[v] for v in victims]
        assert order == sorted(order)
        assert max(order) <= min(pre[s] for s in buf.keys())

    def test_demote_marks_evict_soon(self):
        buf = ClockBuffer(3)
        buf.insert(1, 4)
        buf.insert(2, 4)
        buf.insert(3, 4)
        buf.demote(2)
        assert buf.evict_one() == 2

    def test_put_batch_checks_capacity_before_mutating(self):
        buf = ClockBuffer(2)
        buf.insert(1, 1)
        with pytest.raises(RuntimeError):
            buf.put_batch([2, 3], 1)
        assert sorted(buf.keys()) == [1]
        buf.put_batch([1, 2], 3)        # refresh + fill exactly
        assert sorted(buf.keys()) == [1, 2]
        assert buf.priority_of(1) == 3

    def test_validations_match_exact_backends(self):
        buf = ClockBuffer(1)
        with pytest.raises(RuntimeError):
            buf.evict_one()
        buf.insert(1, 1)
        with pytest.raises(RuntimeError):
            buf.insert(2, 1)
        with pytest.raises(KeyError):
            buf.set_priority(99, 1)
        with pytest.raises(KeyError):
            buf.demote(99)
        with pytest.raises(RuntimeError):
            buf.evict_batch(2)
        with pytest.raises(ValueError):
            ClockBuffer(0)

    def test_negative_priorities_clamp_and_still_evict(self):
        """Regression: a negative priority must not make an entry
        immortal (the sweep harvests the priority-zero class only)."""
        buf = ClockBuffer(2)
        buf.insert(1, -1)
        assert buf.priority_of(1) == 0
        buf.insert(2, 2)
        buf.set_priority(2, -5)
        assert buf.priority_of(2) == 0
        assert buf.evict_batch(2) == [1, 2]
        buf.put_batch([3], -3)
        assert buf.priority_of(3) == 0
        assert buf.evict_one() == 3

    def test_slots_recycle_across_full_turnover(self):
        buf = ClockBuffer(3)
        for generation in range(5):
            keys = list(range(10 * generation, 10 * generation + 3))
            buf.put_batch(keys, 1)
            assert sorted(buf.keys()) == keys
            assert buf.evict_batch(3) and len(buf) == 0


@pytest.mark.parametrize("impl", ["reference", "fast"])
class TestBulkProtocolExact:
    """contains_batch / set_priority_batch / demote_batch on the exact
    backends: defined as the scalar ops applied in order."""

    def test_contains_batch_matches_scalar(self, impl):
        buf = make_buffer(impl, 4)
        for key in (2, 5, 9):
            buf.insert(key, 1)
        probe = np.array([0, 2, 5, 7, 9, -1], dtype=np.int64)
        assert np.array_equal(
            buf.contains_batch(probe),
            np.array([k in buf for k in probe.tolist()]))

    def test_set_priority_batch_equals_scalar_loop(self, impl):
        bulk = make_buffer(impl, 4)
        scalar = make_buffer(impl, 4)
        for buf in (bulk, scalar):
            for key in (1, 2, 3):
                buf.insert(key, 2)
        bulk.set_priority_batch(np.array([2, 1]), 5)
        for key in (2, 1):
            scalar.set_priority(key, 5)
        assert bulk.evict_batch(3) == scalar.evict_batch(3)

    def test_set_priority_batch_requires_residency(self, impl):
        buf = make_buffer(impl, 2)
        buf.insert(1, 1)
        with pytest.raises(KeyError):
            buf.set_priority_batch([1, 99], 3)

    def test_demote_batch_preserves_reverse_demote_order(self, impl):
        buf = make_buffer(impl, 3)
        for key in (1, 2, 3):
            buf.insert(key, 4)
        buf.demote_batch([1, 3])
        assert buf.evict_one() == 3     # demoted last -> evicts first
        assert buf.evict_one() == 1


class TestClockSlotOrder:
    """Regression (PR 3): ``put_batch`` used to route new keys through
    ``set()``, so slots — and therefore hand-order victim tie-breaking —
    followed integer-hash order instead of first-touch order."""

    @pytest.mark.parametrize("key_space", [None, 64])
    def test_put_batch_assigns_slots_in_first_touch_order(self, key_space):
        buf = ClockBuffer(4, key_space=key_space)
        # set() iteration would order these 1, 2, 3.
        buf.put_batch([3, 1, 2], 0)
        assert buf.evict_batch(3) == [3, 1, 2]

    @pytest.mark.parametrize("key_space", [None, 64])
    def test_duplicates_keep_first_touch_position(self, key_space):
        buf = ClockBuffer(8, key_space=key_space)
        buf.put_batch([5, 3, 5, 2, 3, 7], 0)
        assert buf.evict_batch(4) == [5, 3, 2, 7]

    def test_mixed_resident_and_new_keys(self):
        buf = ClockBuffer(4)
        buf.insert(9, 0)                 # slot 0
        buf.put_batch([4, 9, 6], 0)      # new: 4 -> slot 1, 6 -> slot 2
        assert buf.evict_batch(3) == [9, 4, 6]


def _unit_step_clock_reference(prios, n):
    """Pre-PR 3 ``evict_batch`` aging semantics: harvest zeros in hand
    order, else age every survivor by exactly one, repeatedly.  Slot i
    holds key i; hand starts at 0 (fresh buffer).  Returns (victims,
    survivor priorities by slot)."""
    prio = list(prios)
    valid = [True] * len(prio)
    hand = 0
    victims = []
    while n:
        zeros = [i for i, p in enumerate(prio) if valid[i] and p == 0]
        if zeros:
            ordered = ([i for i in zeros if i >= hand]
                       + [i for i in zeros if i < hand])
            take = ordered[:n]
            for i in take:
                valid[i] = False
            victims.extend(take)
            n -= len(take)
            hand = (take[-1] + 1) % len(prio)
        if n:
            for i, p in enumerate(prio):
                if valid[i] and p > 0:
                    prio[i] = p - 1
    survivors = {i: prio[i] for i in range(len(prio)) if valid[i]}
    return victims, survivors


class TestClockBatchAgingStep:
    """Regression (PR 3): a dry sweep now ages survivors by the minimum
    surviving priority in one vectorized subtraction.  Victims and
    survivor priorities must equal the old one-per-sweep aging — which
    went O(priority · capacity) when priorities are large (high
    ``eviction_speed``)."""

    @pytest.mark.parametrize("key_space", [None, 4096])
    def test_differential_vs_unit_step_reference(self, key_space):
        import random as _random

        rng = _random.Random(99)
        for _ in range(12):
            capacity = rng.randint(2, 12)
            prios = [rng.randint(0, 3000) for _ in range(capacity)]
            buf = ClockBuffer(capacity, key_space=key_space)
            for key, priority in enumerate(prios):
                buf.insert(key, priority)
            n = rng.randint(1, capacity)
            expected_victims, expected_prios = \
                _unit_step_clock_reference(prios, n)
            assert buf.evict_batch(n) == expected_victims
            for key in buf.keys():
                assert buf.priority_of(key) == expected_prios[key]

    def test_high_speed_batch_aging_pass_count(self):
        """The whole point: huge priorities no longer cost one aging
        pass per unit of priority.  Deterministic operation-count proxy
        (no wall clock): every dry sweep issues exactly one
        ``np.subtract``, so reclaiming 64 slots from all-positive
        priorities must age at most 64 times — unit-step aging would
        issue ~100k subtracts here."""
        from unittest import mock

        capacity = 4096
        buf = ClockBuffer(capacity)
        for key in range(capacity):
            buf.insert(key, 100_000 + key)
        with mock.patch("repro.cache.buffer.np.subtract",
                        wraps=np.subtract) as aging:
            victims = buf.evict_batch(64)
        assert len(victims) == 64
        assert aging.call_count <= 64

    def test_single_aging_step_uses_min_surviving_priority(self):
        buf = ClockBuffer(3)
        buf.insert(1, 7)
        buf.insert(2, 3)
        buf.insert(3, 5)
        assert buf.evict_batch(1) == [2]
        # Survivors aged by min surviving priority (3), not just one.
        assert buf.priority_of(1) == 4
        assert buf.priority_of(3) == 2


class TestClockDenseMode:
    """key_space mode: residency bitmap + dense slot vector."""

    def test_make_buffer_forwards_key_space_to_every_backend(self):
        for impl in ("clock", "fast", "reference"):
            buf = make_buffer(impl, 4, key_space=32)
            assert buf.residency is not None
            assert buf.residency.key_space == 32
            assert make_buffer(impl, 4).residency is None

    def test_make_buffer_rejects_key_space_on_unsupporting_backend(self):
        """A registered backend without ``supports_key_space`` must
        raise instead of silently ignoring the dense universe (the
        exact pair used to no-op here)."""
        from repro.cache.buffer import BUFFER_IMPLS

        class NoDense:
            def __init__(self, capacity):
                self.capacity = capacity

        BUFFER_IMPLS["nodense"] = NoDense
        try:
            assert isinstance(make_buffer("nodense", 4), NoDense)
            with pytest.raises(ValueError, match="key_space"):
                make_buffer("nodense", 4, key_space=32)
        finally:
            del BUFFER_IMPLS["nodense"]

    def test_rejects_bad_key_space(self):
        with pytest.raises(ValueError):
            ClockBuffer(4, key_space=0)

    def test_spillover_keys_above_key_space(self):
        """The manager maps unseen keys above the vocabulary; they must
        behave exactly like in-range keys."""
        buf = ClockBuffer(3, key_space=8)
        buf.insert(2, 1)
        buf.insert(100, 1)      # spillover
        buf.put_batch([2, 101], 0)
        assert 100 in buf and 101 in buf
        assert np.array_equal(
            buf.contains_batch(np.array([2, 100, 101, 5])),
            np.array([True, True, True, False]))
        assert sorted(buf.evict_batch(3)) == [2, 100, 101]
        assert buf.residency.count() == 0

    def test_set_priority_batch_scatter(self):
        buf = ClockBuffer(4, key_space=16)
        buf.put_batch([1, 2, 3], 1)
        buf.set_priority_batch(np.array([3, 1]), 0)
        assert buf.priority_of(3) == 0 and buf.priority_of(1) == 0
        assert buf.priority_of(2) == 1
        with pytest.raises(KeyError):
            buf.set_priority_batch(np.array([1, 9]), 2)

    def test_residency_map_is_a_snapshot(self):
        buf = ClockBuffer(4, key_space=16)
        buf.put_batch([1, 2], 0)
        snapshot = buf.residency_map()
        assert sorted(snapshot) == [1, 2]
        buf.evict_batch(2)
        assert sorted(snapshot) == [1, 2]   # snapshot, not live
        assert len(buf.residency_map()) == 0


class TestFastDenseMode:
    """key_space mode of the exact pair: residency bitmap + dense
    (expiry, seqno) vectors on the fast backend, bitmap mirror on the
    reference backend.  Exhaustive dict/dense equivalence lives in
    tests/test_buffer_differential.py; these pin the contracts the
    batched serving engine builds on."""

    def test_numpy_duplicate_index_assignment_keeps_last(self):
        """serve_segment's linear first/last-occurrence scatters rely
        on fancy-index assignment writing duplicate indices in order
        (last value wins).  Pin the semantic so a numpy behavior change
        fails loudly here instead of corrupting victim selection."""
        out = np.empty(4, dtype=np.int64)
        out[np.array([2, 2, 2])] = np.array([10, 11, 12])
        assert out[2] == 12
        out[np.array([3, 3, 3])[::-1]] = np.array([7, 8, 9])[::-1]
        assert out[3] == 7

    def test_spillover_keys_above_key_space(self):
        """Ids outside the bitmap behave exactly like in-range keys."""
        buf = FastPriorityBuffer(3, key_space=8)
        buf.insert(2, 1)
        buf.insert(100, 1)      # spillover
        buf.put_batch([2, 101], 0)
        assert 100 in buf and 101 in buf
        assert np.array_equal(
            buf.contains_batch(np.array([2, 100, 101, 5])),
            np.array([True, True, True, False]))
        assert buf.priority_of(100) == 1 and buf.priority_of(101) == 0
        # Exact victim order: 2 first (zero, oldest seqno); the aging
        # step then ripens 100, whose older seqno beats 101.
        assert buf.evict_batch(3) == [2, 100, 101]
        assert buf.residency.count() == 0

    def test_dense_mode_keeps_exact_eviction_contract(self):
        """The documented (effective_priority, seqno) order, spot-wise:
        demote beats everything in reverse-demote order, equal priority
        evicts oldest touch first."""
        for buf in (FastPriorityBuffer(4, key_space=16),
                    PriorityBuffer(4, key_space=16)):
            buf.insert(1, 2)
            buf.insert(2, 2)
            buf.insert(3, 5)
            buf.insert(4, 5)
            buf.demote(1)
            buf.demote(2)
            assert buf.evict_batch(4) == [2, 1, 3, 4]

    def test_batch_ops_validate_before_scatter(self):
        buf = FastPriorityBuffer(4, key_space=16)
        buf.put_batch([1, 2, 3], 1)
        with pytest.raises(KeyError):
            buf.set_priority_batch(np.array([1, 9]), 2)
        with pytest.raises(KeyError):
            buf.demote_batch(np.array([1, 9]))
        with pytest.raises(RuntimeError):
            buf.put_batch([4, 5], 1)
        assert sorted(buf.keys()) == [1, 2, 3]

    def test_residency_map_is_a_snapshot(self):
        buf = FastPriorityBuffer(4, key_space=16)
        buf.put_batch([1, 2], 0)
        snapshot = buf.residency_map()
        assert sorted(snapshot) == [1, 2]
        buf.evict_batch(2)
        assert sorted(snapshot) == [1, 2]   # snapshot, not live
        assert len(buf.residency_map()) == 0


class TestServeSegment:
    """FastPriorityBuffer.serve_segment: the batched exact serving
    primitive (scalar-loop equivalence is fuzzed end to end in
    tests/test_buffer_differential.py)."""

    @staticmethod
    def _scalar(buf, segment, priority):
        decisions, victims = [], []
        for key in segment:
            key = int(key)
            if key in buf:
                decisions.append(True)
                buf.set_priority(key, priority)
            else:
                decisions.append(False)
                if buf.is_full:
                    victims.append(buf.evict_one())
                buf.insert(key, priority)
        return decisions, victims

    def test_dict_mode_returns_none(self):
        assert FastPriorityBuffer(4).serve_segment(
            np.array([1, 2]), 1) is None

    def test_full_segment_serve_matches_scalar(self):
        a = FastPriorityBuffer(6, key_space=16)
        b = FastPriorityBuffer(6, key_space=16)
        for buf in (a, b):  # two old entries that the misses evict
            buf.put_batch([11, 12], 0)
        segment = np.array([5, 6, 5, 7, 8, 8, 9], dtype=np.int64)
        decisions_b, victims_b = self._scalar(b, segment, 2)
        served, first_miss, victims_a, uniq = a.serve_segment(segment, 2)
        assert served == len(segment)
        assert victims_a == [11]
        decisions_a = [True] * served
        for position in first_miss.tolist():
            decisions_a[position] = False
        assert decisions_a == decisions_b
        assert victims_a == victims_b
        assert sorted(uniq.tolist()) == [5, 6, 7, 8, 9]
        assert sorted(a.keys()) == sorted(b.keys())
        for key in a.keys():
            assert a.priority_of(key) == b.priority_of(key)

    def test_partial_serve_stops_before_reaccess_of_victim(self):
        """A key evicted mid-segment and re-accessed later forces a
        prefix serve: the re-access must re-miss, so the bulk call
        stops right before it and the next call re-misses it."""
        a = FastPriorityBuffer(2, key_space=16)
        a.put_batch([1, 2], 1)
        a.evict_batch(2)  # age entries to zero quickly
        a.put_batch([1, 2], 0)
        # Segment: 3 misses (evicts 1), then 1 re-accessed -> must stop
        # before that access.
        segment = np.array([3, 2, 1, 2], dtype=np.int64)
        served, first_miss, victims, _ = a.serve_segment(segment, 0)
        assert victims == [1]
        assert served == 2
        assert first_miss.tolist() == [0]
        served2, first_miss2, victims2, _ = a.serve_segment(
            segment[served:], 0)
        assert served2 >= 1
        assert 0 in first_miss2.tolist()  # the re-miss of key 1

    def test_zero_serve_when_first_access_needs_unservable_eviction(self):
        """If even the first access cannot be bulk-served (its eviction
        would pop a positive-priority victim), serve_segment refuses
        without mutating."""
        buf = FastPriorityBuffer(1, key_space=8)
        buf.insert(1, 5)   # lone entry, still live
        before = (len(buf), buf.priority_of(1), buf._next_seq)
        result = buf.serve_segment(np.array([2], dtype=np.int64), 1)
        assert result[0] == 0
        assert (len(buf), buf.priority_of(1), buf._next_seq) == before

    def test_segment_wider_than_buffer_serves_fitting_prefix(self):
        buf = FastPriorityBuffer(2, key_space=16)
        segment = np.array([1, 2, 1, 3, 4], dtype=np.int64)
        served, first_miss, victims, _ = buf.serve_segment(segment, 0)
        assert served == 3          # distinct keys {1, 2} fit; 3 spills
        assert first_miss.tolist() == [0, 1]
        assert victims == []
        assert sorted(buf.keys()) == [1, 2]
