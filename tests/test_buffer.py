"""Priority GPU buffer (Algorithms 1-2): semantics and fast/naive parity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import (
    BUFFER_IMPLS,
    ClockBuffer,
    FastPriorityBuffer,
    PriorityBuffer,
    make_buffer,
)


class TestReferenceSemantics:
    def test_evicts_lowest_priority(self):
        buf = PriorityBuffer(3)
        buf.insert(1, 5)
        buf.insert(2, 1)
        buf.insert(3, 4)
        assert buf.evict_one() == 2

    def test_aging_decrements(self):
        buf = PriorityBuffer(3)
        buf.insert(1, 2)
        buf.insert(2, 0)
        buf.evict_one()                 # evicts 2, ages 1 down to 1
        assert buf.priority_of(1) == 1

    def test_tie_breaks_by_recency(self):
        buf = PriorityBuffer(3)
        buf.insert(1, 1)
        buf.insert(2, 1)
        buf.set_priority(1, 1)          # touch 1 -> 2 is now oldest
        assert buf.evict_one() == 2

    def test_demote_evicted_first(self):
        buf = PriorityBuffer(3)
        buf.insert(1, 0)
        buf.insert(2, 5)
        buf.insert(3, 5)
        buf.demote(3)
        assert buf.evict_one() == 3

    def test_full_insert_raises(self):
        buf = PriorityBuffer(1)
        buf.insert(1, 1)
        with pytest.raises(RuntimeError):
            buf.insert(2, 1)

    def test_empty_evict_raises(self):
        with pytest.raises(RuntimeError):
            PriorityBuffer(1).evict_one()

    def test_priority_floor_at_zero(self):
        buf = PriorityBuffer(4)
        buf.insert(1, 1)
        buf.insert(2, 0)
        buf.insert(3, 0)
        assert buf.evict_one() == 2   # oldest zero-priority entry
        assert buf.priority_of(1) == 0  # aged 1 -> 0, floored
        assert buf.priority_of(3) == 0


OPS = st.lists(
    st.tuples(st.sampled_from(["insert", "set", "demote", "evict"]),
              st.integers(0, 40), st.integers(0, 6)),
    min_size=1, max_size=300,
)


class TestFastParity:
    @given(OPS)
    @settings(max_examples=60, deadline=None)
    def test_equivalent_to_reference(self, ops):
        """Both implementations make identical victim choices under any
        interleaving of inserts, priority updates, demotions, evictions."""
        ref = PriorityBuffer(12)
        fast = FastPriorityBuffer(12)
        for op, key, priority in ops:
            if op == "insert":
                if key in ref:
                    ref.set_priority(key, priority)
                    fast.set_priority(key, priority)
                elif not ref.is_full:
                    ref.insert(key, priority)
                    fast.insert(key, priority)
            elif op == "set" and key in ref:
                ref.set_priority(key, priority)
                fast.set_priority(key, priority)
            elif op == "demote" and key in ref:
                ref.demote(key)
                fast.demote(key)
            elif op == "evict" and len(ref):
                assert ref.evict_one() == fast.evict_one()
            assert len(ref) == len(fast)
        assert sorted(ref.keys()) == sorted(fast.keys())
        for key in ref.keys():
            assert ref.priority_of(key) == fast.priority_of(key)

    def test_fast_basic_semantics(self):
        buf = FastPriorityBuffer(3)
        buf.insert(1, 5)
        buf.insert(2, 1)
        buf.insert(3, 4)
        assert buf.evict_one() == 2
        assert buf.priority_of(1) == 4  # aged

    CAP1_OPS = st.lists(
        st.tuples(st.sampled_from(["insert", "set", "demote", "evict"]),
                  st.integers(0, 5), st.integers(0, 4)),
        min_size=1, max_size=120,
    )

    @given(CAP1_OPS)
    @settings(max_examples=60, deadline=None)
    def test_equivalent_at_capacity_one(self, ops):
        """Interleaved demote/set_priority/insert at capacity 1 — the
        degenerate buffer where every insert immediately borders an
        eviction and the zero/live heap migration is maximally hot."""
        ref = PriorityBuffer(1)
        fast = FastPriorityBuffer(1)
        for op, key, priority in ops:
            if op == "insert":
                if key in ref:
                    ref.set_priority(key, priority)
                    fast.set_priority(key, priority)
                elif not ref.is_full:
                    ref.insert(key, priority)
                    fast.insert(key, priority)
            elif op == "set" and key in ref:
                ref.set_priority(key, priority)
                fast.set_priority(key, priority)
            elif op == "demote" and key in ref:
                ref.demote(key)
                fast.demote(key)
            elif op == "evict" and len(ref):
                assert ref.evict_one() == fast.evict_one()
            assert len(ref) == len(fast)
            assert sorted(ref.keys()) == sorted(fast.keys())
            for key in ref.keys():
                assert ref.priority_of(key) == fast.priority_of(key)

    def test_fast_validations(self):
        buf = FastPriorityBuffer(1)
        with pytest.raises(RuntimeError):
            buf.evict_one()
        buf.insert(1, 1)
        with pytest.raises(RuntimeError):
            buf.insert(2, 1)
        with pytest.raises(KeyError):
            buf.set_priority(99, 1)
        with pytest.raises(KeyError):
            buf.demote(99)


@pytest.mark.parametrize("impl", ["reference", "fast"])
class TestEvictionOrderContract:
    """Regression tests for the documented (effective_priority, seqno)
    victim order: identical on both exact backends by construction, not
    by accident of dict/heap internals."""

    def _buf(self, impl, capacity):
        return make_buffer(impl, capacity)

    def test_equal_priority_evicts_oldest_touch_first(self, impl):
        buf = self._buf(impl, 3)
        buf.insert(1, 2)
        buf.insert(2, 2)
        buf.insert(3, 2)
        buf.set_priority(1, 2)          # refresh: 1 becomes newest
        assert buf.evict_batch(3) == [2, 3, 1]

    def test_demoted_keys_evict_in_reverse_demote_order(self, impl):
        """demote() draws fresh *decreasing* seqnos, so the most
        recently demoted key evicts first (stack order)."""
        buf = self._buf(impl, 3)
        buf.insert(1, 5)
        buf.insert(2, 5)
        buf.insert(3, 5)
        buf.demote(1)
        buf.demote(3)
        assert buf.evict_one() == 3     # demoted last -> smallest seqno
        assert buf.evict_one() == 1

    def test_reinsert_after_demote_refreshes_seqno(self, impl):
        buf = self._buf(impl, 3)
        buf.insert(1, 1)
        buf.insert(2, 1)
        buf.demote(1)
        buf.set_priority(1, 1)          # back to a fresh positive seqno
        assert buf.evict_one() == 2     # 2 is now the oldest at prio 1

    def test_aged_entry_ties_break_by_insertion_order(self, impl):
        """Entries reaching equal *effective* priority through different
        aging histories still tie-break by seqno."""
        buf = self._buf(impl, 3)
        buf.insert(1, 2)
        buf.insert(2, 0)
        assert buf.evict_one() == 2     # ages 1 down to 1
        buf.insert(3, 1)                # same effective priority as 1
        assert buf.evict_one() == 1     # older seqno loses the tie

    def test_victim_sequence_identical_across_exact_backends(self, impl):
        """The full drain order of a mixed workload is the contract;
        compare each backend against the hand-computed sequence."""
        buf = self._buf(impl, 4)
        buf.insert(10, 3)
        buf.insert(11, 1)
        buf.insert(12, 1)
        buf.demote(10)
        buf.insert(13, 0)
        buf.set_priority(11, 1)
        # 10 first (demoted: priority 0, negative seqno); the aging from
        # that eviction floors 11/12 to zero alongside 13, after which
        # pure seqno order drains 12 (seq 2), 13 (seq 3), 11 (seq 4).
        assert buf.evict_batch(4) == [10, 12, 13, 11]


class TestClockSemantics:
    """ClockBuffer unit semantics (the fuzz suite covers interleavings)."""

    def test_registry_exposes_three_backends(self):
        assert sorted(BUFFER_IMPLS) == ["clock", "fast", "reference"]
        assert make_buffer("clock", 2).approximate
        assert not make_buffer("fast", 2).approximate
        with pytest.raises(ValueError):
            make_buffer("nope", 2)

    def test_zero_priority_evicted_before_survivors(self):
        buf = ClockBuffer(3)
        buf.insert(1, 2)
        buf.insert(2, 0)
        buf.insert(3, 1)
        assert buf.evict_one() == 2

    def test_sweep_ages_survivors_once_per_pass(self):
        buf = ClockBuffer(3)
        buf.insert(1, 2)
        buf.insert(2, 1)
        buf.insert(3, 1)
        # No zeros: one aging sweep makes 2 and 3 zero; hand order
        # takes both before 1 (still at priority 1).
        assert buf.evict_batch(2) == [2, 3]
        assert buf.priority_of(1) == 1

    def test_batch_victims_nondecreasing_priority(self):
        buf = ClockBuffer(4)
        for key, priority in [(1, 3), (2, 0), (3, 2), (4, 0)]:
            buf.insert(key, priority)
        victims = buf.evict_batch(3)
        pre = {1: 3, 2: 0, 3: 2, 4: 0}
        order = [pre[v] for v in victims]
        assert order == sorted(order)
        assert max(order) <= min(pre[s] for s in buf.keys())

    def test_demote_marks_evict_soon(self):
        buf = ClockBuffer(3)
        buf.insert(1, 4)
        buf.insert(2, 4)
        buf.insert(3, 4)
        buf.demote(2)
        assert buf.evict_one() == 2

    def test_put_batch_checks_capacity_before_mutating(self):
        buf = ClockBuffer(2)
        buf.insert(1, 1)
        with pytest.raises(RuntimeError):
            buf.put_batch([2, 3], 1)
        assert sorted(buf.keys()) == [1]
        buf.put_batch([1, 2], 3)        # refresh + fill exactly
        assert sorted(buf.keys()) == [1, 2]
        assert buf.priority_of(1) == 3

    def test_validations_match_exact_backends(self):
        buf = ClockBuffer(1)
        with pytest.raises(RuntimeError):
            buf.evict_one()
        buf.insert(1, 1)
        with pytest.raises(RuntimeError):
            buf.insert(2, 1)
        with pytest.raises(KeyError):
            buf.set_priority(99, 1)
        with pytest.raises(KeyError):
            buf.demote(99)
        with pytest.raises(RuntimeError):
            buf.evict_batch(2)
        with pytest.raises(ValueError):
            ClockBuffer(0)

    def test_negative_priorities_clamp_and_still_evict(self):
        """Regression: a negative priority must not make an entry
        immortal (the sweep harvests the priority-zero class only)."""
        buf = ClockBuffer(2)
        buf.insert(1, -1)
        assert buf.priority_of(1) == 0
        buf.insert(2, 2)
        buf.set_priority(2, -5)
        assert buf.priority_of(2) == 0
        assert buf.evict_batch(2) == [1, 2]
        buf.put_batch([3], -3)
        assert buf.priority_of(3) == 0
        assert buf.evict_one() == 3

    def test_slots_recycle_across_full_turnover(self):
        buf = ClockBuffer(3)
        for generation in range(5):
            keys = list(range(10 * generation, 10 * generation + 3))
            buf.put_batch(keys, 1)
            assert sorted(buf.keys()) == keys
            assert buf.evict_batch(3) and len(buf) == 0
