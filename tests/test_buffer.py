"""Priority GPU buffer (Algorithms 1-2): semantics and fast/naive parity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import FastPriorityBuffer, PriorityBuffer


class TestReferenceSemantics:
    def test_evicts_lowest_priority(self):
        buf = PriorityBuffer(3)
        buf.insert(1, 5)
        buf.insert(2, 1)
        buf.insert(3, 4)
        assert buf.evict_one() == 2

    def test_aging_decrements(self):
        buf = PriorityBuffer(3)
        buf.insert(1, 2)
        buf.insert(2, 0)
        buf.evict_one()                 # evicts 2, ages 1 down to 1
        assert buf.priority_of(1) == 1

    def test_tie_breaks_by_recency(self):
        buf = PriorityBuffer(3)
        buf.insert(1, 1)
        buf.insert(2, 1)
        buf.set_priority(1, 1)          # touch 1 -> 2 is now oldest
        assert buf.evict_one() == 2

    def test_demote_evicted_first(self):
        buf = PriorityBuffer(3)
        buf.insert(1, 0)
        buf.insert(2, 5)
        buf.insert(3, 5)
        buf.demote(3)
        assert buf.evict_one() == 3

    def test_full_insert_raises(self):
        buf = PriorityBuffer(1)
        buf.insert(1, 1)
        with pytest.raises(RuntimeError):
            buf.insert(2, 1)

    def test_empty_evict_raises(self):
        with pytest.raises(RuntimeError):
            PriorityBuffer(1).evict_one()

    def test_priority_floor_at_zero(self):
        buf = PriorityBuffer(4)
        buf.insert(1, 1)
        buf.insert(2, 0)
        buf.insert(3, 0)
        assert buf.evict_one() == 2   # oldest zero-priority entry
        assert buf.priority_of(1) == 0  # aged 1 -> 0, floored
        assert buf.priority_of(3) == 0


OPS = st.lists(
    st.tuples(st.sampled_from(["insert", "set", "demote", "evict"]),
              st.integers(0, 40), st.integers(0, 6)),
    min_size=1, max_size=300,
)


class TestFastParity:
    @given(OPS)
    @settings(max_examples=60, deadline=None)
    def test_equivalent_to_reference(self, ops):
        """Both implementations make identical victim choices under any
        interleaving of inserts, priority updates, demotions, evictions."""
        ref = PriorityBuffer(12)
        fast = FastPriorityBuffer(12)
        for op, key, priority in ops:
            if op == "insert":
                if key in ref:
                    ref.set_priority(key, priority)
                    fast.set_priority(key, priority)
                elif not ref.is_full:
                    ref.insert(key, priority)
                    fast.insert(key, priority)
            elif op == "set" and key in ref:
                ref.set_priority(key, priority)
                fast.set_priority(key, priority)
            elif op == "demote" and key in ref:
                ref.demote(key)
                fast.demote(key)
            elif op == "evict" and len(ref):
                assert ref.evict_one() == fast.evict_one()
            assert len(ref) == len(fast)
        assert sorted(ref.keys()) == sorted(fast.keys())
        for key in ref.keys():
            assert ref.priority_of(key) == fast.priority_of(key)

    def test_fast_basic_semantics(self):
        buf = FastPriorityBuffer(3)
        buf.insert(1, 5)
        buf.insert(2, 1)
        buf.insert(3, 4)
        assert buf.evict_one() == 2
        assert buf.priority_of(1) == 4  # aged

    CAP1_OPS = st.lists(
        st.tuples(st.sampled_from(["insert", "set", "demote", "evict"]),
                  st.integers(0, 5), st.integers(0, 4)),
        min_size=1, max_size=120,
    )

    @given(CAP1_OPS)
    @settings(max_examples=60, deadline=None)
    def test_equivalent_at_capacity_one(self, ops):
        """Interleaved demote/set_priority/insert at capacity 1 — the
        degenerate buffer where every insert immediately borders an
        eviction and the zero/live heap migration is maximally hot."""
        ref = PriorityBuffer(1)
        fast = FastPriorityBuffer(1)
        for op, key, priority in ops:
            if op == "insert":
                if key in ref:
                    ref.set_priority(key, priority)
                    fast.set_priority(key, priority)
                elif not ref.is_full:
                    ref.insert(key, priority)
                    fast.insert(key, priority)
            elif op == "set" and key in ref:
                ref.set_priority(key, priority)
                fast.set_priority(key, priority)
            elif op == "demote" and key in ref:
                ref.demote(key)
                fast.demote(key)
            elif op == "evict" and len(ref):
                assert ref.evict_one() == fast.evict_one()
            assert len(ref) == len(fast)
            assert sorted(ref.keys()) == sorted(fast.keys())
            for key in ref.keys():
                assert ref.priority_of(key) == fast.priority_of(key)

    def test_fast_validations(self):
        buf = FastPriorityBuffer(1)
        with pytest.raises(RuntimeError):
            buf.evict_one()
        buf.insert(1, 1)
        with pytest.raises(RuntimeError):
            buf.insert(2, 1)
        with pytest.raises(KeyError):
            buf.set_priority(99, 1)
        with pytest.raises(KeyError):
            buf.demote(99)
