"""Tests for benchmarks/compare_bench.py (the CI hot-path regression
gate), driven by synthetic BENCH_hotpaths.json fixtures.

The script is CI tooling that fails builds, so its three verdicts each
get a test: clean pass (exit 0), a gated speedup regressing more than
the threshold (exit 1), and a gated hot path vanishing from the fresh
run (exit 1) — plus the policy details: ungated entries never gate,
new paths are informational, and ``--max-regression`` moves the floor.

The hit-rate-lift gate (model-guided serving entries recorded with
``hit_rate_lift`` and no ``speedup``) has its own verdicts: a
committed positive lift surviving passes, vanishing (fresh lift <= 0)
or going missing fails, committed non-positive lifts never gate, and
lift-only entries must not leak into the speedup comparison.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" \
    / "compare_bench.py"


@pytest.fixture(scope="module")
def compare_bench():
    spec = importlib.util.spec_from_file_location("compare_bench", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _payload(entries):
    """BENCH_hotpaths.json shape from {name: (speedup, gated)} (a bare
    float means gated=True; None omits the speedup entirely)."""
    hot_paths = {}
    for name, value in entries.items():
        speedup, gated = (value if isinstance(value, tuple)
                          else (value, True))
        entry = {"accesses": 50_000, "seconds": 0.05}
        if speedup is not None:
            entry["speedup"] = speedup
        if gated:
            entry["gated"] = True
        hot_paths[name] = entry
    return {"source": "test", "hot_paths": hot_paths}


def _write(tmp_path, name, entries):
    path = tmp_path / name
    path.write_text(json.dumps(_payload(entries)))
    return str(path)


def test_clean_pass(compare_bench, tmp_path, capsys):
    baseline = _write(tmp_path, "base.json",
                      {"optgen": 20.0, "serving": 4.0})
    fresh = _write(tmp_path, "fresh.json",
                   {"optgen": 18.5, "serving": 4.2})
    assert compare_bench.main([baseline, fresh]) == 0
    out = capsys.readouterr().out
    assert "All 2 gated hot paths" in out
    assert "FAIL" not in out


def test_regression_beyond_threshold_fails(compare_bench, tmp_path,
                                           capsys):
    baseline = _write(tmp_path, "base.json",
                      {"optgen": 20.0, "serving": 4.0})
    fresh = _write(tmp_path, "fresh.json",
                   {"optgen": 20.0, "serving": 2.0})  # 50% drop
    assert compare_bench.main([baseline, fresh]) == 1
    captured = capsys.readouterr()
    assert "FAIL serving" in captured.out
    assert "regressed" in captured.err


def test_regression_within_threshold_passes(compare_bench, tmp_path):
    baseline = _write(tmp_path, "base.json", {"serving": 4.0})
    fresh = _write(tmp_path, "fresh.json", {"serving": 3.0})  # 25% drop
    assert compare_bench.main([baseline, fresh]) == 0
    # A tighter floor flips the verdict.
    assert compare_bench.main([baseline, fresh,
                               "--max-regression", "0.20"]) == 1


def test_vanished_gated_path_fails(compare_bench, tmp_path, capsys):
    baseline = _write(tmp_path, "base.json",
                      {"optgen": 20.0, "serving": 4.0})
    fresh = _write(tmp_path, "fresh.json", {"optgen": 20.0})
    assert compare_bench.main([baseline, fresh]) == 1
    assert "missing from the" in capsys.readouterr().err


def test_ungated_entries_never_gate(compare_bench, tmp_path, capsys):
    """Informational entries (no gated flag, or no speedup at all) are
    excluded on both sides: regressing or vanishing is fine."""
    baseline = _write(tmp_path, "base.json",
                      {"gated": 5.0,
                       "parity": (1.0, False),
                       "raw-only": (None, False)})
    fresh = _write(tmp_path, "fresh.json",
                   {"gated": 5.0, "parity": (0.2, False)})
    assert compare_bench.main([baseline, fresh]) == 0
    assert "All 1 gated hot paths" in capsys.readouterr().out


def test_metric_field_churn_is_tolerated(compare_bench, tmp_path,
                                         capsys):
    """Entries may rename, add or drop auxiliary metric fields
    (hit rates, depth stats, shard weights, ...) between runs without
    changing any verdict — only ``speedup`` and ``gated`` matter.  A
    gated entry vanishing outright still fails."""
    base_payload = _payload({"serving": 4.0, "hotshard": 2.0})
    base_payload["hot_paths"]["serving"]["queue_depth_mean"] = 3.5
    base = tmp_path / "base.json"
    base.write_text(json.dumps(base_payload))

    fresh_payload = _payload({"serving": 4.1, "hotshard": 1.9})
    # Renamed and newly added metric fields on the fresh side.
    fresh_payload["hot_paths"]["serving"]["inflight_depth_mean"] = 2.5
    fresh_payload["hot_paths"]["hotshard"]["shard_weights"] = \
        [0.85, 0.05, 0.05, 0.05]
    fresh_payload["hot_paths"]["note"] = "not a dict — skipped"
    fresh = tmp_path / "fresh.json"
    fresh.write_text(json.dumps(fresh_payload))
    assert compare_bench.main([str(base), str(fresh)]) == 0
    assert "All 2 gated hot paths" in capsys.readouterr().out

    # Field churn does not weaken the vanished-gated-path check.
    del fresh_payload["hot_paths"]["hotshard"]
    fresh.write_text(json.dumps(fresh_payload))
    assert compare_bench.main([str(base), str(fresh)]) == 1
    assert "hotshard: gated hot path missing" in capsys.readouterr().err


def test_new_gated_path_is_informational(compare_bench, tmp_path,
                                         capsys):
    """A fresh-only path cannot gate until its baseline is committed —
    but it is surfaced as NEW so the committer sees it."""
    baseline = _write(tmp_path, "base.json", {"optgen": 20.0})
    fresh = _write(tmp_path, "fresh.json",
                   {"optgen": 20.0, "sharded": 1.05})
    assert compare_bench.main([baseline, fresh]) == 0
    assert "NEW sharded" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Hit-rate-lift gate (model-guided serving entries)
# ----------------------------------------------------------------------
def _write_lifts(tmp_path, name, lifts, speedups=None):
    """Payload whose lift entries are gated and speedup-free (the shape
    ``model_guided_*_sync`` records); ``speedups`` adds ordinary gated
    speedup entries alongside."""
    payload = _payload(speedups or {})
    for entry_name, lift in lifts.items():
        payload["hot_paths"][entry_name] = {
            "accesses": 35_000, "seconds": 0.3, "gated": True,
            "hit_rate": 0.55, "hit_rate_lift": lift,
        }
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def test_preserved_lift_passes(compare_bench, tmp_path, capsys):
    baseline = _write_lifts(tmp_path, "base.json",
                            {"model_guided_zipf_sync": 0.030})
    fresh = _write_lifts(tmp_path, "fresh.json",
                         {"model_guided_zipf_sync": 0.012})
    assert compare_bench.main([baseline, fresh]) == 0
    out = capsys.readouterr().out
    assert "OK  model_guided_zipf_sync" in out
    assert "1 lift-gated entries checked" in out


def test_vanished_lift_fails(compare_bench, tmp_path, capsys):
    """The lift gate is strict — any fresh lift <= 0 fails, no 30%
    tolerance: lifts are decision metrics on a fixed seed, not
    wall-clock measurements."""
    baseline = _write_lifts(tmp_path, "base.json",
                            {"model_guided_zipf_sync": 0.030})
    fresh = _write_lifts(tmp_path, "fresh.json",
                         {"model_guided_zipf_sync": -0.002})
    assert compare_bench.main([baseline, fresh]) == 1
    captured = capsys.readouterr()
    assert "FAIL model_guided_zipf_sync" in captured.out
    assert "vanished" in captured.err


def test_missing_lift_entry_fails(compare_bench, tmp_path, capsys):
    baseline = _write_lifts(tmp_path, "base.json",
                            {"model_guided_zipf_sync": 0.030})
    fresh = _write_lifts(tmp_path, "fresh.json", {})
    assert compare_bench.main([baseline, fresh]) == 1
    assert "lift-gated entry missing" in capsys.readouterr().err


def test_lift_entries_skip_speedup_gate(compare_bench, tmp_path, capsys):
    """A lift-gated entry carries no ``speedup``, so it must neither
    count as a gated speedup nor trip the vanished-speedup check —
    and vice versa, speedup entries don't join the lift section."""
    baseline = _write_lifts(tmp_path, "base.json",
                            {"model_guided_zipf_sync": 0.030},
                            speedups={"optgen": 20.0})
    fresh = _write_lifts(tmp_path, "fresh.json",
                         {"model_guided_zipf_sync": 0.020},
                         speedups={"optgen": 19.0})
    assert compare_bench.main([baseline, fresh]) == 0
    out = capsys.readouterr().out
    assert "All 1 gated hot paths" in out
    assert "1 lift-gated entries checked" in out


def test_nonpositive_committed_lift_never_gates(compare_bench, tmp_path,
                                                capsys):
    """A scenario committed while the model underperforms must not lock
    the underperformance in as a requirement — or fail the build."""
    baseline = _write_lifts(tmp_path, "base.json",
                            {"model_guided_tenant_sync": -0.004})
    fresh = _write_lifts(tmp_path, "fresh.json", {})
    assert compare_bench.main([baseline, fresh]) == 0
    assert "SKIP model_guided_tenant_sync" in capsys.readouterr().out


def test_new_lift_entry_is_informational(compare_bench, tmp_path,
                                         capsys):
    baseline = _write_lifts(tmp_path, "base.json", {})
    fresh = _write_lifts(tmp_path, "fresh.json",
                         {"model_guided_zipf_sync": 0.030})
    assert compare_bench.main([baseline, fresh]) == 0
    assert "NEW model_guided_zipf_sync: lift" in capsys.readouterr().out
