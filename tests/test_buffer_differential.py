"""Differential fuzz: one op stream, every buffer backend.

~200 randomized operation sequences (insert / set_priority / demote /
put_batch / set_priority_batch / demote_batch / evict_one / evict_batch
interleavings) drive every backend behind the ``buffer_impl`` knob:

* the exact four (:class:`PriorityBuffer`, :class:`FastPriorityBuffer`,
  each in dict mode and dense ``key_space`` mode, the dense bitmaps
  chosen *smaller* than the fuzzed key range so spillover ids are
  exercised) must agree *key-for-key*: identical victims, identical
  resident sets, identical effective priorities after every operation;
* the approximate :class:`ClockBuffer` is checked against its contract
  instead: capacity never exceeded, the resident set is always a subset
  of the keys ever inserted, and within one ``evict_batch`` call the
  victims come out in nondecreasing pre-call priority and never outrank
  a survivor ("evictions prefer lower priority within a sweep");
* the clock backend runs twice — dict mode and dense
  (``key_space``) residency-bitmap mode — and the two must agree
  victim-for-victim: identical resident sets, priorities and eviction
  order;
* after **every** op, every backend's ``contains_batch`` must agree
  with scalar ``in`` membership over a probe range that includes
  out-of-range and negative ids (bitmap/dict residency agreement).

A second differential (:func:`test_exact_serving_decision_equivalence`)
runs the *manager* end to end on 200 seeded synthetic traces: the dense
``"fast"`` backend's batched serving engine
(``RecMGManager._serve_demand_batched_exact`` over
``FastPriorityBuffer.serve_segment``) must reproduce the scalar audit
loop decision-for-decision (``run(record_decisions=True)``), counter
for counter, and leave the identical buffer state — including runs
whose encoder is fitted on a prefix only, so unseen keys exercise the
spillover path mid-serving.
"""

import random

import numpy as np
import pytest

from repro.cache import ClockBuffer, FastPriorityBuffer, PriorityBuffer

NUM_SEQUENCES = 200
OPS_PER_SEQUENCE = 120
KEY_SPACE = 28
#: Dense-mode clock bitmap deliberately smaller than the fuzzed key
#: range: keys >= DENSE_SPACE exercise the spillover dict.
DENSE_SPACE = KEY_SPACE // 2 + 1
MAX_PRIORITY = 6

#: Probe for contains_batch/scalar agreement: spans below, inside and
#: above both the bitmap and the fuzzed key range.
PROBE = np.arange(-3, KEY_SPACE + 8, dtype=np.int64)

OP_WEIGHTS = [
    ("insert", 6),
    ("set_priority", 4),
    ("demote", 2),
    ("put_batch", 3),
    ("set_priority_batch", 2),
    ("demote_batch", 1),
    ("evict_one", 4),
    ("evict_batch", 3),
]


def _gen_ops(rng: random.Random):
    """One randomized op sequence (backend-independent description)."""
    names = [name for name, _ in OP_WEIGHTS]
    weights = [weight for _, weight in OP_WEIGHTS]
    ops = []
    for _ in range(OPS_PER_SEQUENCE):
        op = rng.choices(names, weights=weights)[0]
        key = rng.randrange(KEY_SPACE)
        priority = rng.randrange(MAX_PRIORITY + 1)
        batch = [rng.randrange(KEY_SPACE)
                 for _ in range(rng.randint(1, 10))]
        count = rng.randint(1, 6)
        ops.append((op, key, priority, batch, count))
    return ops


def _assert_contains_batch_agrees(buffer) -> None:
    """contains_batch must match scalar ``in`` over the probe range."""
    bulk = buffer.contains_batch(PROBE)
    scalar = np.array([int(key) in buffer for key in PROBE], dtype=bool)
    assert bulk.dtype == np.bool_ and bulk.shape == scalar.shape
    assert np.array_equal(bulk, scalar)


def _apply_exact_group(ref: PriorityBuffer, others, op):
    """Apply one op to every exact backend (dict- and dense-mode
    reference + fast), asserting key-for-key agreement on victims;
    validity is decided by the shared state."""
    kind, key, priority, batch, count = op
    group = (ref, *others)
    if kind == "insert":
        if key in ref:
            for buffer in group:
                buffer.set_priority(key, priority)
        elif not ref.is_full:
            for buffer in group:
                buffer.insert(key, priority)
    elif kind == "set_priority" and key in ref:
        for buffer in group:
            buffer.set_priority(key, priority)
    elif kind == "demote" and key in ref:
        for buffer in group:
            buffer.demote(key)
    elif kind == "put_batch":
        new = {k for k in batch if k not in ref}
        if len(ref) + len(new) > ref.capacity:
            for buffer in group:
                with pytest.raises(RuntimeError):
                    buffer.put_batch(batch, priority)
        else:
            for buffer in group:
                buffer.put_batch(batch, priority)
    elif kind == "set_priority_batch":
        resident = [k for k in batch if k in ref]
        for buffer in group:
            buffer.set_priority_batch(resident, priority)
    elif kind == "demote_batch":
        resident = [k for k in batch if k in ref]
        for buffer in group:
            buffer.demote_batch(resident)
    elif kind == "evict_one" and len(ref):
        victim = ref.evict_one()
        for buffer in others:
            assert buffer.evict_one() == victim
    elif kind == "evict_batch" and len(ref):
        n = min(count, len(ref))
        victims = ref.evict_batch(n)
        for buffer in others:
            assert buffer.evict_batch(n) == victims
    for buffer in others:
        assert len(buffer) == len(ref)
    for buffer in group:
        _assert_contains_batch_agrees(buffer)


def _assert_clock_modes_agree(clock: ClockBuffer, dense: ClockBuffer):
    """Dict-mode and dense-mode clocks are behaviorally identical."""
    assert len(clock) == len(dense)
    assert sorted(clock.keys()) == sorted(dense.keys())
    for key in clock.keys():
        assert clock.priority_of(key) == dense.priority_of(key)
    assert dense.residency.count() == len(dense)


def _apply_clock(clock: ClockBuffer, dense: ClockBuffer,
                 inserted_ever: set, op):
    """Apply one op to both clock modes (validity decided by their
    shared state) and check the invariants plus mode agreement."""
    kind, key, priority, batch, count = op
    if kind == "insert":
        if key in clock or not clock.is_full:
            clock.insert(key, priority)
            dense.insert(key, priority)
            inserted_ever.add(key)
    elif kind == "set_priority" and key in clock:
        clock.set_priority(key, priority)
        dense.set_priority(key, priority)
    elif kind == "demote" and key in clock:
        clock.demote(key)
        dense.demote(key)
        assert clock.priority_of(key) == 0
    elif kind == "put_batch":
        new = {k for k in batch if k not in clock}
        if len(clock) + len(new) > clock.capacity:
            resident_before = sorted(clock.keys())
            with pytest.raises(RuntimeError):
                clock.put_batch(batch, priority)
            with pytest.raises(RuntimeError):
                dense.put_batch(batch, priority)
            assert sorted(clock.keys()) == resident_before
            assert sorted(dense.keys()) == resident_before
        else:
            clock.put_batch(batch, priority)
            dense.put_batch(batch, priority)
            inserted_ever.update(batch)
            assert all(clock.priority_of(k) == priority for k in batch)
    elif kind == "set_priority_batch":
        resident = [k for k in batch if k in clock]
        clock.set_priority_batch(resident, priority)
        dense.set_priority_batch(resident, priority)
        assert all(clock.priority_of(k) == max(0, priority)
                   for k in resident)
    elif kind == "demote_batch":
        resident = [k for k in batch if k in clock]
        clock.demote_batch(resident)
        dense.demote_batch(resident)
        assert all(clock.priority_of(k) == 0 for k in resident)
    elif kind == "evict_one" and len(clock):
        victim = clock.evict_one()
        assert victim not in clock
        assert dense.evict_one() == victim
    elif kind == "evict_batch" and len(clock):
        n = min(count, len(clock))
        pre = {k: clock.priority_of(k) for k in clock.keys()}
        victims = clock.evict_batch(n)
        assert dense.evict_batch(n) == victims
        assert len(victims) == n
        assert len(set(victims)) == n
        # Victims drain in nondecreasing pre-call priority ...
        order = [pre[v] for v in victims]
        assert order == sorted(order), (victims, pre)
        # ... and never outrank a survivor (sweep preference).
        survivors = list(clock.keys())
        if survivors:
            assert max(order) <= min(pre[s] for s in survivors), \
                (victims, pre)
    # Global invariants, after every single op.
    assert len(clock) <= clock.capacity
    assert set(clock.keys()) <= inserted_ever
    _assert_clock_modes_agree(clock, dense)
    _assert_contains_batch_agrees(clock)
    _assert_contains_batch_agrees(dense)


@pytest.mark.parametrize("seed", range(NUM_SEQUENCES))
def test_differential_op_sequences(seed):
    rng = random.Random(8800 + seed)
    capacity = rng.randint(1, 16)
    ops = _gen_ops(rng)

    ref = PriorityBuffer(capacity)
    exact_others = [
        PriorityBuffer(capacity, key_space=DENSE_SPACE),
        FastPriorityBuffer(capacity),
        FastPriorityBuffer(capacity, key_space=DENSE_SPACE),
    ]
    clock = ClockBuffer(capacity)
    dense = ClockBuffer(capacity, key_space=DENSE_SPACE)
    inserted_ever: set = set()

    for op in ops:
        _apply_exact_group(ref, exact_others, op)
        if op[0] in ("insert", "put_batch"):
            inserted_ever.update([op[1]] if op[0] == "insert" else op[3])
        _apply_clock(clock, dense, inserted_ever, op)

    # Exact group: full key-for-key state agreement at the end.
    ref_keys = sorted(ref.keys())
    for buffer in exact_others:
        assert sorted(buffer.keys()) == ref_keys
        for key in ref_keys:
            assert buffer.priority_of(key) == ref.priority_of(key)
    fast_dense = exact_others[-1]
    assert fast_dense.residency.count() == len(ref)
    # Drain everything: the remaining victim order must agree too.
    remaining = len(ref)
    if remaining:
        drained = ref.evict_batch(remaining)
        for buffer in exact_others:
            assert buffer.evict_batch(remaining) == drained
    assert fast_dense.residency.count() == 0
    clock_remaining = len(clock)
    if clock_remaining:
        drained = clock.evict_batch(clock_remaining)
        assert len(drained) == clock_remaining
        assert dense.evict_batch(clock_remaining) == drained
    assert len(clock) == 0
    assert len(dense) == 0
    assert dense.residency.count() == 0


def test_exact_group_priority_parity_mid_sequence():
    """Spot-check that parity holds *during* a sequence, not only at the
    end (priorities age differently per eviction) — dense modes
    included."""
    rng = random.Random(4242)
    ref = PriorityBuffer(8)
    others = [PriorityBuffer(8, key_space=DENSE_SPACE),
              FastPriorityBuffer(8),
              FastPriorityBuffer(8, key_space=DENSE_SPACE)]
    for _ in range(4):
        for op in _gen_ops(rng):
            _apply_exact_group(ref, others, op)
            ref_keys = sorted(ref.keys())
            for buffer in others:
                assert sorted(buffer.keys()) == ref_keys
                for key in ref_keys:
                    assert buffer.priority_of(key) == ref.priority_of(key)


# ---------------------------------------------------------------------------
# Batched exact serving engine vs the scalar audit loop, end to end.

SERVING_SEEDS = 200


def _serving_trace(rng: random.Random):
    from repro.traces import SyntheticTraceConfig, generate_trace

    config = SyntheticTraceConfig(
        num_tables=rng.choice([1, 2, 4]),
        rows_per_table=rng.choice([40, 90, 160]),
        num_accesses=rng.choice([300, 600, 900]),
        num_clusters=rng.choice([4, 8]),
        cluster_block=4,
        periodic_items=rng.choice([0, 20, 60]),
        periodic_spacing=rng.choice([3, 7]),
        seed=rng.randrange(10_000),
    )
    return generate_trace(config)


@pytest.mark.parametrize("seed", range(SERVING_SEEDS))
def test_exact_serving_decision_equivalence(seed):
    """The dense ``"fast"`` batched serving engine reproduces the
    scalar audit loop decision-for-decision on randomized traces —
    counters, victims (via eviction counts), per-access hit stream and
    the final buffer state all identical.  Encoders fitted on a prefix
    only make the tail map above the vocabulary, exercising the
    spillover fallback mid-serving."""
    from repro.core import RecMGConfig
    from repro.core.features import FeatureEncoder
    from repro.core.manager import RecMGManager

    rng = random.Random(7100 + seed)
    trace = _serving_trace(rng)
    config = RecMGConfig(eviction_speed=rng.choice([1, 2, 4, 9]))
    fit_on = trace if rng.random() < 0.7 else trace.head(
        max(1, len(trace) // 2))
    encoder = FeatureEncoder(config).fit(fit_on)
    capacity = max(1, int(trace.num_unique * rng.choice([0.05, 0.2, 0.6])))

    def run(fast_serve):
        manager = RecMGManager(capacity, encoder, config,
                               buffer_impl="fast")
        stats = manager.run(trace, fast_serve=fast_serve,
                            record_decisions=True)
        return manager, stats

    batched_manager, batched = run(fast_serve=True)
    scalar_manager, scalar = run(fast_serve=False)
    assert batched_manager.buffer.residency is not None, \
        "fitted encoder must select the dense engine"
    assert batched == scalar
    assert np.array_equal(batched_manager.last_decisions,
                          scalar_manager.last_decisions)
    # Identical buffer state: same residents, priorities, and victim
    # order for a full drain.
    b_buf, s_buf = batched_manager.buffer, scalar_manager.buffer
    assert sorted(b_buf.keys()) == sorted(s_buf.keys())
    for key in s_buf.keys():
        assert b_buf.priority_of(key) == s_buf.priority_of(key)
    remaining = len(s_buf)
    if remaining:
        assert b_buf.evict_batch(remaining) == s_buf.evict_batch(remaining)
