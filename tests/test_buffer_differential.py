"""Differential fuzz: one op stream, every buffer backend.

~200 randomized operation sequences (insert / set_priority / demote /
put_batch / evict_one / evict_batch interleavings) drive every backend
behind the ``buffer_impl`` knob:

* the exact pair (:class:`PriorityBuffer`, :class:`FastPriorityBuffer`)
  must agree *key-for-key*: identical victims, identical resident sets,
  identical effective priorities after every operation;
* the approximate :class:`ClockBuffer` is checked against its contract
  instead: capacity never exceeded, the resident set is always a subset
  of the keys ever inserted, and within one ``evict_batch`` call the
  victims come out in nondecreasing pre-call priority and never outrank
  a survivor ("evictions prefer lower priority within a sweep");
* the clock backend runs twice — dict mode and dense
  (``key_space``) residency-bitmap mode, with the key space chosen
  *smaller* than the fuzzed key range so the spillover path is
  exercised — and the two must agree victim-for-victim: identical
  resident sets, priorities and eviction order;
* after **every** op, every backend's ``contains_batch`` must agree
  with scalar ``in`` membership over a probe range that includes
  out-of-range and negative ids (bitmap/dict residency agreement).
"""

import random

import numpy as np
import pytest

from repro.cache import ClockBuffer, FastPriorityBuffer, PriorityBuffer

NUM_SEQUENCES = 200
OPS_PER_SEQUENCE = 120
KEY_SPACE = 28
#: Dense-mode clock bitmap deliberately smaller than the fuzzed key
#: range: keys >= DENSE_SPACE exercise the spillover dict.
DENSE_SPACE = KEY_SPACE // 2 + 1
MAX_PRIORITY = 6

#: Probe for contains_batch/scalar agreement: spans below, inside and
#: above both the bitmap and the fuzzed key range.
PROBE = np.arange(-3, KEY_SPACE + 8, dtype=np.int64)

OP_WEIGHTS = [
    ("insert", 6),
    ("set_priority", 4),
    ("demote", 2),
    ("put_batch", 3),
    ("evict_one", 4),
    ("evict_batch", 3),
]


def _gen_ops(rng: random.Random):
    """One randomized op sequence (backend-independent description)."""
    names = [name for name, _ in OP_WEIGHTS]
    weights = [weight for _, weight in OP_WEIGHTS]
    ops = []
    for _ in range(OPS_PER_SEQUENCE):
        op = rng.choices(names, weights=weights)[0]
        key = rng.randrange(KEY_SPACE)
        priority = rng.randrange(MAX_PRIORITY + 1)
        batch = [rng.randrange(KEY_SPACE)
                 for _ in range(rng.randint(1, 10))]
        count = rng.randint(1, 6)
        ops.append((op, key, priority, batch, count))
    return ops


def _assert_contains_batch_agrees(buffer) -> None:
    """contains_batch must match scalar ``in`` over the probe range."""
    bulk = buffer.contains_batch(PROBE)
    scalar = np.array([int(key) in buffer for key in PROBE], dtype=bool)
    assert bulk.dtype == np.bool_ and bulk.shape == scalar.shape
    assert np.array_equal(bulk, scalar)


def _apply_exact_pair(ref: PriorityBuffer, fast: FastPriorityBuffer, op):
    """Apply one op to both exact backends, asserting key-for-key
    agreement on victims; validity is decided by the shared state."""
    kind, key, priority, batch, count = op
    if kind == "insert":
        if key in ref:
            ref.set_priority(key, priority)
            fast.set_priority(key, priority)
        elif not ref.is_full:
            ref.insert(key, priority)
            fast.insert(key, priority)
    elif kind == "set_priority" and key in ref:
        ref.set_priority(key, priority)
        fast.set_priority(key, priority)
    elif kind == "demote" and key in ref:
        ref.demote(key)
        fast.demote(key)
    elif kind == "put_batch":
        new = {k for k in batch if k not in ref}
        if len(ref) + len(new) > ref.capacity:
            with pytest.raises(RuntimeError):
                ref.put_batch(batch, priority)
            with pytest.raises(RuntimeError):
                fast.put_batch(batch, priority)
        else:
            ref.put_batch(batch, priority)
            fast.put_batch(batch, priority)
    elif kind == "evict_one" and len(ref):
        assert ref.evict_one() == fast.evict_one()
    elif kind == "evict_batch" and len(ref):
        n = min(count, len(ref))
        assert ref.evict_batch(n) == fast.evict_batch(n)
    assert len(ref) == len(fast)
    _assert_contains_batch_agrees(ref)
    _assert_contains_batch_agrees(fast)


def _assert_clock_modes_agree(clock: ClockBuffer, dense: ClockBuffer):
    """Dict-mode and dense-mode clocks are behaviorally identical."""
    assert len(clock) == len(dense)
    assert sorted(clock.keys()) == sorted(dense.keys())
    for key in clock.keys():
        assert clock.priority_of(key) == dense.priority_of(key)
    assert dense.residency.count() == len(dense)


def _apply_clock(clock: ClockBuffer, dense: ClockBuffer,
                 inserted_ever: set, op):
    """Apply one op to both clock modes (validity decided by their
    shared state) and check the invariants plus mode agreement."""
    kind, key, priority, batch, count = op
    if kind == "insert":
        if key in clock or not clock.is_full:
            clock.insert(key, priority)
            dense.insert(key, priority)
            inserted_ever.add(key)
    elif kind == "set_priority" and key in clock:
        clock.set_priority(key, priority)
        dense.set_priority(key, priority)
    elif kind == "demote" and key in clock:
        clock.demote(key)
        dense.demote(key)
        assert clock.priority_of(key) == 0
    elif kind == "put_batch":
        new = {k for k in batch if k not in clock}
        if len(clock) + len(new) > clock.capacity:
            resident_before = sorted(clock.keys())
            with pytest.raises(RuntimeError):
                clock.put_batch(batch, priority)
            with pytest.raises(RuntimeError):
                dense.put_batch(batch, priority)
            assert sorted(clock.keys()) == resident_before
            assert sorted(dense.keys()) == resident_before
        else:
            clock.put_batch(batch, priority)
            dense.put_batch(batch, priority)
            inserted_ever.update(batch)
            assert all(clock.priority_of(k) == priority for k in batch)
    elif kind == "evict_one" and len(clock):
        victim = clock.evict_one()
        assert victim not in clock
        assert dense.evict_one() == victim
    elif kind == "evict_batch" and len(clock):
        n = min(count, len(clock))
        pre = {k: clock.priority_of(k) for k in clock.keys()}
        victims = clock.evict_batch(n)
        assert dense.evict_batch(n) == victims
        assert len(victims) == n
        assert len(set(victims)) == n
        # Victims drain in nondecreasing pre-call priority ...
        order = [pre[v] for v in victims]
        assert order == sorted(order), (victims, pre)
        # ... and never outrank a survivor (sweep preference).
        survivors = list(clock.keys())
        if survivors:
            assert max(order) <= min(pre[s] for s in survivors), \
                (victims, pre)
    # Global invariants, after every single op.
    assert len(clock) <= clock.capacity
    assert set(clock.keys()) <= inserted_ever
    _assert_clock_modes_agree(clock, dense)
    _assert_contains_batch_agrees(clock)
    _assert_contains_batch_agrees(dense)


@pytest.mark.parametrize("seed", range(NUM_SEQUENCES))
def test_differential_op_sequences(seed):
    rng = random.Random(8800 + seed)
    capacity = rng.randint(1, 16)
    ops = _gen_ops(rng)

    ref = PriorityBuffer(capacity)
    fast = FastPriorityBuffer(capacity)
    clock = ClockBuffer(capacity)
    dense = ClockBuffer(capacity, key_space=DENSE_SPACE)
    inserted_ever: set = set()

    for op in ops:
        _apply_exact_pair(ref, fast, op)
        if op[0] in ("insert", "put_batch"):
            inserted_ever.update([op[1]] if op[0] == "insert" else op[3])
        _apply_clock(clock, dense, inserted_ever, op)

    # Exact pair: full key-for-key state agreement at the end.
    assert sorted(ref.keys()) == sorted(fast.keys())
    for key in ref.keys():
        assert ref.priority_of(key) == fast.priority_of(key)
    # Drain everything: the remaining victim order must agree too.
    remaining = len(ref)
    if remaining:
        assert ref.evict_batch(remaining) == fast.evict_batch(remaining)
    clock_remaining = len(clock)
    if clock_remaining:
        drained = clock.evict_batch(clock_remaining)
        assert len(drained) == clock_remaining
        assert dense.evict_batch(clock_remaining) == drained
    assert len(clock) == 0
    assert len(dense) == 0
    assert dense.residency.count() == 0


def test_exact_pair_priority_parity_mid_sequence():
    """Spot-check that parity holds *during* a sequence, not only at the
    end (priorities age differently per eviction)."""
    rng = random.Random(4242)
    ref = PriorityBuffer(8)
    fast = FastPriorityBuffer(8)
    for _ in range(4):
        for op in _gen_ops(rng):
            _apply_exact_pair(ref, fast, op)
            assert sorted(ref.keys()) == sorted(fast.keys())
            for key in ref.keys():
                assert ref.priority_of(key) == fast.priority_of(key)
