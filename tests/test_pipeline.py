"""CPU serving simulation: thread scaling and the relaxed pipeline."""

import pytest

from repro.core import PipelineSimulator, simulate_thread_throughput


class TestThreadThroughput:
    def test_monotone_increasing(self):
        values = [simulate_thread_throughput(t) for t in (1, 4, 16, 64)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_near_linear_then_rolloff(self):
        t1 = simulate_thread_throughput(1)
        t16 = simulate_thread_throughput(16)
        t64 = simulate_thread_throughput(64)
        assert t16 / t1 > 10          # near-linear early
        assert t64 / t1 < 64          # sublinear at scale (Fig. 7)

    def test_validates_threads(self):
        with pytest.raises(ValueError):
            simulate_thread_throughput(0)


class TestPipeline:
    def test_gpu_never_waits(self):
        sim = PipelineSimulator()
        result = sim.run([10.0] * 5, [100.0] * 5)
        assert result.total_time_ms == pytest.approx(50.0)
        assert result.skipped_model_updates > 0

    def test_fast_cpu_no_skips(self):
        sim = PipelineSimulator()
        result = sim.run([10.0] * 5, [1.0] * 5)
        assert result.skipped_model_updates == 0

    def test_pipelined_beats_serialized(self):
        sim = PipelineSimulator()
        result = sim.run([10.0] * 8, [8.0] * 8)
        assert result.total_time_ms < result.serialized_time_ms
        assert result.speedup > 1.0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            PipelineSimulator().run([1.0], [1.0, 2.0])
