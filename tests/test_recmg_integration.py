"""End-to-end RecMG: fit, deploy, evaluate, headline shape."""

import pytest

from repro.cache import LRUCache, simulate, simulate_belady
from repro.core import RecMG


class TestFit:
    def test_report_populated(self, trained_recmg):
        report = trained_recmg.report
        assert report is not None
        assert 0.0 <= report.caching_accuracy <= 1.0
        assert 0.0 <= report.prefetch_correctness <= 1.0
        assert 0.0 < report.opt_hit_rate < 1.0
        assert report.caching.num_parameters > 0
        assert report.prefetch.num_parameters > 0

    def test_deploy_before_fit_raises(self, tiny_recmg_config):
        system = RecMG(tiny_recmg_config)
        with pytest.raises(RuntimeError):
            system.deploy(capacity=100)

    def test_fitted_flag(self, trained_recmg, tiny_recmg_config):
        assert trained_recmg.fitted
        assert not RecMG(tiny_recmg_config).fitted


class TestHeadlineShape:
    """The paper's qualitative claims at test scale."""

    def test_caching_accuracy_beats_chance(self, trained_recmg):
        # Paper reports 83%; at tiny scale with one epoch we only insist
        # on being meaningfully above coin flipping.
        assert trained_recmg.report.caching_accuracy > 0.55

    def test_recmg_between_lru_and_opt(self, trained_recmg, tiny_trace,
                                       tiny_capacity):
        _, test = tiny_trace.split(0.6)
        stats = trained_recmg.evaluate(test, capacity=tiny_capacity)
        lru = LRUCache(tiny_capacity)
        simulate(lru, test)
        opt_stats, _ = simulate_belady(test, tiny_capacity)
        # RecMG must not fall meaningfully below LRU and cannot beat OPT.
        assert stats.hit_rate >= lru.stats.hit_rate - 0.05
        assert stats.hit_rate <= opt_stats.hit_rate + 1e-9

    def test_ablation_variants_run(self, trained_recmg, tiny_trace,
                                   tiny_capacity):
        _, test = tiny_trace.split(0.6)
        full = trained_recmg.evaluate(test, capacity=tiny_capacity)
        cm = trained_recmg.evaluate(test, capacity=tiny_capacity,
                                    use_prefetch_model=False)
        pf = trained_recmg.evaluate(test, capacity=tiny_capacity,
                                    use_caching_model=False)
        none = trained_recmg.evaluate(test, capacity=tiny_capacity,
                                      use_caching_model=False,
                                      use_prefetch_model=False)
        for stats in (full, cm, pf, none):
            assert stats.breakdown.total == len(test)

    def test_loss_kinds_fit(self, tiny_trace, tiny_capacity,
                            tiny_recmg_config):
        train, _ = tiny_trace.split(0.6)
        for kind in ("l2",):
            system = RecMG(tiny_recmg_config)
            report = system.fit(train, buffer_capacity=tiny_capacity,
                                loss_kind=kind)
            assert report.prefetch.losses
