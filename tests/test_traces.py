"""Trace datatypes, statistics and persistence."""

import numpy as np
import pytest

from repro.traces import (
    Access, Trace, load_trace, pack_key, remap_to_dense, save_trace,
    summarize, top_fraction_share, hot_set, per_table_counts, unpack_key,
)


class TestKeys:
    def test_pack_unpack_roundtrip(self):
        for table, row in [(0, 0), (3, 12345), (855, 2 ** 39)]:
            assert unpack_key(pack_key(table, row)) == (table, row)

    def test_access_key(self):
        assert Access(2, 5).key == pack_key(2, 5)


class TestTrace:
    def test_validation_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Trace(np.zeros(3, np.int64), np.zeros(4, np.int64))

    def test_validation_offsets(self):
        with pytest.raises(ValueError):
            Trace(np.zeros(3, np.int64), np.zeros(3, np.int64),
                  query_offsets=np.array([0, 2]))

    def test_from_pairs_and_iter(self):
        trace = Trace.from_pairs([(0, 1), (2, 3)])
        assert len(trace) == 2
        assert list(trace) == [Access(0, 1), Access(2, 3)]

    def test_unique_and_tables(self):
        trace = Trace.from_pairs([(0, 1), (0, 1), (1, 1)])
        assert trace.num_unique == 2
        assert trace.num_tables == 2

    def test_slicing_and_head(self):
        trace = Trace.from_pairs([(0, i) for i in range(10)])
        assert len(trace[2:5]) == 3
        assert len(trace.head(4)) == 4

    def test_concatenate(self):
        a = Trace.from_pairs([(0, 1)])
        b = Trace.from_pairs([(1, 2)])
        merged = Trace.concatenate([a, b])
        assert len(merged) == 2

    def test_split_fractions(self):
        trace = Trace.from_pairs([(0, i) for i in range(10)])
        train, test = trace.split(0.7)
        assert len(train) == 7 and len(test) == 3
        with pytest.raises(ValueError):
            trace.split(1.5)

    def test_pooling_factors(self, tiny_trace):
        factors = tiny_trace.pooling_factors()
        assert factors.sum() == len(tiny_trace)
        assert factors.min() >= 1

    def test_pooling_requires_offsets(self):
        trace = Trace.from_pairs([(0, 1)])
        with pytest.raises(ValueError):
            trace.pooling_factors()

    def test_from_keys_roundtrip(self):
        trace = Trace.from_pairs([(3, 7), (1, 9)])
        again = Trace.from_keys(trace.keys())
        assert np.array_equal(again.table_ids, trace.table_ids)
        assert np.array_equal(again.row_ids, trace.row_ids)


class TestRemap:
    def test_dense_ids_contiguous(self):
        trace = Trace.from_pairs([(1, 5), (0, 3), (1, 5), (2, 1)])
        dense, mapping = remap_to_dense(trace)
        assert set(dense.tolist()) == {0, 1, 2}
        assert len(mapping) == 3

    def test_dense_order_is_sorted_by_key(self):
        trace = Trace.from_pairs([(1, 0), (0, 0)])
        dense, _ = remap_to_dense(trace)
        # (0,0) has the smaller packed key -> dense id 0.
        assert dense.tolist() == [1, 0]


class TestStats:
    def test_top_fraction_share_bounds(self, tiny_trace):
        share = top_fraction_share(tiny_trace, 0.2)
        assert 0.0 < share <= 1.0
        assert top_fraction_share(tiny_trace, 1.0) == pytest.approx(1.0)

    def test_top_fraction_validates(self, tiny_trace):
        with pytest.raises(ValueError):
            top_fraction_share(tiny_trace, 0.0)

    def test_hot_set_covers(self, tiny_trace):
        keys = hot_set(tiny_trace, coverage=0.5)
        counts = dict(zip(*np.unique(tiny_trace.keys(), return_counts=True)))
        covered = sum(counts[k] for k in keys) / len(tiny_trace)
        assert covered >= 0.5

    def test_per_table_counts_total(self, tiny_trace):
        assert sum(per_table_counts(tiny_trace).values()) == len(tiny_trace)

    def test_summarize(self, tiny_trace):
        summary = summarize(tiny_trace)
        assert summary.num_accesses == len(tiny_trace)
        assert summary.num_unique == tiny_trace.num_unique
        assert summary.mean_pooling > 1


class TestIO:
    def test_save_load_roundtrip(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(tiny_trace, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.table_ids, tiny_trace.table_ids)
        assert np.array_equal(loaded.row_ids, tiny_trace.row_ids)
        assert np.array_equal(loaded.query_offsets, tiny_trace.query_offsets)
