"""Tests for the priority-provider seam (:mod:`repro.serving.priorities`)
and the online retraining loop (:class:`OnlineCachingTrainer`).

The contract under test, in three layers:

* **Providers in isolation** — the tri-state bit protocol: sync bits
  equal an offline predict over the same dense segment; async bits are
  ``-1`` until the refresh worker lands them and equal the sync bits
  once it has; spillover keys never get a prediction; the bounded
  refresh queue drops oldest and never blocks.
* **The manager seam** — ``priority_mode="sync"`` run() is replayed
  decision-for-decision by a model-free manager plus a manual per-block
  predict/apply loop (the provider is *only* a refactoring of that
  loop); serial and threaded sharded serving stay decision-identical
  under the provider; ``record_decisions=True`` keeps working under
  model-guided and concurrent engines.
* **Online retraining** — the sliding window trims to size, the
  retrain cadence honors interval+window, the tuned model is a clone
  (the served model's weights are never touched in place), and
  ``label_live_window`` agrees with a direct OPTgen pass.
"""

import threading

import numpy as np
import pytest

from repro.core.caching_model import CachingModel
from repro.core.config import RecMGConfig
from repro.core.features import FeatureEncoder
from repro.core.labeling import build_labels, caching_targets, label_live_window
from repro.core.manager import RecMGManager
from repro.core.training import (
    OnlineCachingTrainer,
    clone_caching_model,
    train_caching_model,
)
from repro.cache.optgen import run_optgen
from repro.serving.priorities import (
    PRIORITY_MODES,
    AsyncModelProvider,
    NullProvider,
    SyncModelProvider,
    make_provider,
)
from repro.traces.access import Trace
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace


@pytest.fixture(scope="module")
def small_config():
    return RecMGConfig(hidden=16, hash_buckets=256, caching_epochs=1,
                       max_train_chunks=200, buffer_impl="clock")


@pytest.fixture(scope="module")
def world(small_config):
    """(train_head, serve_tail, encoder, capacity, trained model)."""
    trace = generate_trace(SyntheticTraceConfig(
        num_tables=4, rows_per_table=512, num_accesses=12_000, seed=5))
    head, tail = trace.split(0.3)
    encoder = FeatureEncoder(small_config).fit(head)
    capacity = max(1, int(encoder.vocab_size * 0.2))
    labels = build_labels(head, capacity, small_config, encoder)
    chunks = encoder.encode_chunks(head)
    model = CachingModel(small_config, encoder.num_tables)
    train_caching_model(model, chunks, caching_targets(chunks, labels),
                        small_config)
    return head, tail, encoder, capacity, model


# ----------------------------------------------------------------------
# Construction & validation
# ----------------------------------------------------------------------
def test_make_provider_validates_mode(world, small_config):
    _, _, encoder, _, model = world
    with pytest.raises(ValueError, match="priority_mode"):
        make_provider("eventually", model, encoder, small_config)


def test_make_provider_none_is_null(small_config):
    provider = make_provider("none", None, None, small_config)
    assert isinstance(provider, NullProvider)
    assert provider.mode == "none"
    assert provider.bits_for(np.array([1, 2, 3])) is None
    assert provider.staleness_blocks() is None
    provider.observe(np.array([1]))
    provider.close()  # no-op, idempotent
    provider.close()


def test_model_modes_require_model_and_fitted_encoder(world, small_config):
    _, _, encoder, _, model = world
    with pytest.raises(ValueError, match="caching model"):
        make_provider("sync", None, encoder, small_config)
    with pytest.raises(ValueError, match="fitted"):
        make_provider("async", model, FeatureEncoder(small_config),
                      small_config)


def test_retrainer_requires_capacity(world):
    _, _, encoder, _, model = world
    config = RecMGConfig(hidden=16, hash_buckets=256,
                         online_retrain_interval=1000)
    with pytest.raises(ValueError, match="capacity"):
        make_provider("sync", model, encoder, config)


def test_config_validates_priority_knobs():
    with pytest.raises(ValueError, match="priority_mode"):
        RecMGConfig(priority_mode="later")
    with pytest.raises(ValueError, match="refresh_blocks"):
        RecMGConfig(priority_refresh_blocks=0)
    with pytest.raises(ValueError, match="pending_max"):
        RecMGConfig(priority_pending_max=0)
    with pytest.raises(ValueError, match="retrain_interval"):
        RecMGConfig(online_retrain_interval=-1)
    with pytest.raises(ValueError, match="window"):
        RecMGConfig(online_retrain_window=3)  # < input_len (15)
    assert "sync" in PRIORITY_MODES


# ----------------------------------------------------------------------
# Dense-segment encoding (the serving-side feature path)
# ----------------------------------------------------------------------
def test_encode_dense_chunks_matches_encode_chunks(world, small_config):
    head, _, encoder, _, _ = world
    length = small_config.input_len
    aligned = head.head((len(head) // length) * length)
    offline = encoder.encode_chunks(aligned)
    online = encoder.encode_dense_chunks(encoder.dense_ids(aligned))
    for field in ("table_ids", "hashed_rows", "norm_index", "freq",
                  "dense_ids"):
        np.testing.assert_array_equal(getattr(offline, field),
                                      getattr(online, field), err_msg=field)


def test_encode_dense_chunks_pads_tail(world, small_config):
    _, _, encoder, _, _ = world
    length = small_config.input_len
    dense = encoder.dense_ids(world[0])[: length + 3]
    chunks = encoder.encode_dense_chunks(dense)
    assert len(chunks) == 2
    # Pad positions repeat the segment's last access.
    np.testing.assert_array_equal(chunks.dense_ids[1][3:],
                                  np.full(length - 3, dense[-1]))
    with pytest.raises(ValueError, match="empty"):
        encoder.encode_dense_chunks(np.empty(0, dtype=np.int64))


def test_tables_for_dense_covers_spillover(world, small_config):
    """Spillover dense ids (unseen at fit time) recover their table
    from the packed key they carry — identical to trace-side encoding."""
    head, tail, encoder, _, _ = world
    dense = encoder.dense_ids(tail)
    expected = encoder.table_indices(tail)
    np.testing.assert_array_equal(encoder.tables_for_dense(dense), expected)
    assert (dense >= encoder.vocab_size).any(), \
        "fixture should exercise spillover ids"


# ----------------------------------------------------------------------
# Sync provider
# ----------------------------------------------------------------------
def test_sync_bits_match_offline_predict(world, small_config):
    _, tail, encoder, _, model = world
    provider = make_provider("sync", model, encoder, small_config)
    assert isinstance(provider, SyncModelProvider)
    dense = encoder.dense_ids(tail)[:600]
    bits = provider.bits_for(dense)
    expected = model.predict(
        encoder.encode_dense_chunks(dense)).reshape(-1)[:dense.size]
    np.testing.assert_array_equal(bits, expected.astype(np.int8))
    assert bits.dtype == np.int8
    assert set(np.unique(bits)) <= {0, 1}
    assert provider.bits_for(np.empty(0, dtype=np.int64)) is None
    assert provider.staleness_blocks() is None
    assert provider.stats()["inference_batches"] == 1


# ----------------------------------------------------------------------
# Async provider
# ----------------------------------------------------------------------
def test_async_bits_follow_refresh(world, small_config):
    _, tail, encoder, _, model = world
    provider = make_provider("async", model, encoder, small_config)
    assert isinstance(provider, AsyncModelProvider)
    try:
        dense = encoder.dense_ids(tail)
        # Unique keys: the async table is *per key* (a duplicate key's
        # last position wins the scatter), while sync bits are per
        # position — only a duplicate-free block compares exactly.
        in_vocab = np.unique(dense[dense < encoder.vocab_size])[:400]
        # Before any refresh: the whole table is "no prediction".
        np.testing.assert_array_equal(
            provider.bits_for(in_vocab), np.full(in_vocab.size, -1,
                                                 dtype=np.int8))
        provider.observe(in_vocab)
        assert provider.flush(), "refresh worker did not drain"
        sync = make_provider("sync", model, encoder, small_config)
        np.testing.assert_array_equal(provider.bits_for(in_vocab),
                                      sync.bits_for(in_vocab))
        assert provider.staleness_blocks() == 0
        stats = provider.stats()
        assert stats["refreshed_blocks"] == 1
        assert 0.0 < stats["table_coverage"] <= 1.0
    finally:
        provider.close()
        provider.close()  # idempotent
    # After close the table is frozen but still readable.
    assert provider.bits_for(in_vocab[:5]) is not None


def test_async_spillover_keys_have_no_prediction(world, small_config):
    _, _, encoder, _, model = world
    provider = make_provider("async", model, encoder, small_config)
    try:
        spill = np.array([encoder.vocab_size + 7,
                          encoder.vocab_size + 12_345], dtype=np.int64)
        provider.observe(spill)
        assert provider.flush()
        np.testing.assert_array_equal(provider.bits_for(spill),
                                      np.array([-1, -1], dtype=np.int8))
    finally:
        provider.close()


def test_async_queue_drops_oldest_and_never_blocks(world, small_config):
    _, _, encoder, _, model = world
    provider = AsyncModelProvider(model, encoder, small_config,
                                  key_space=encoder.vocab_size,
                                  pending_max=2, refresh_blocks=1)
    release = threading.Event()
    real_predict = provider._predict

    def stalled_predict(keys):
        release.wait(timeout=10.0)
        return real_predict(keys)

    provider._predict = stalled_predict
    try:
        first = np.array([0, 1], dtype=np.int64)
        provider.observe(first)
        # Wait for the worker to take the first block in flight.
        for _ in range(1000):
            with provider._lock:
                if not provider._pending:
                    break
            threading.Event().wait(0.005)
        else:
            pytest.fail("worker never picked up the first block")
        provider.observe(np.array([2], dtype=np.int64))
        provider.observe(np.array([3], dtype=np.int64))
        # Queue full (pending_max=2): the oldest queued block drops.
        provider.observe(np.array([4], dtype=np.int64))
        assert provider.dropped_blocks == 1
        # Staleness counts in-queue + in-flight, bounded by
        # pending_max + 1.
        assert provider.staleness_blocks() <= provider.pending_max + 1
        release.set()
        assert provider.flush()
        assert provider.staleness_blocks() == 0
    finally:
        release.set()
        provider.close()


def test_async_refresh_interval_skips_blocks(world, small_config):
    _, _, encoder, _, model = world
    provider = AsyncModelProvider(model, encoder, small_config,
                                  key_space=encoder.vocab_size,
                                  refresh_blocks=3)
    try:
        for i in range(7):
            provider.observe(np.array([i], dtype=np.int64))
        assert provider.observed_blocks == 7
        assert provider.submitted_blocks == 3  # blocks 1, 4, 7
    finally:
        provider.close()


def test_async_worker_error_does_not_freeze_serving(world, small_config):
    _, _, encoder, _, model = world
    provider = AsyncModelProvider(model, encoder, small_config,
                                  key_space=encoder.vocab_size)

    def broken_predict(keys):
        raise RuntimeError("inference backend fell over")

    provider._predict = broken_predict
    try:
        keys = np.array([1, 2, 3], dtype=np.int64)
        provider.observe(keys)
        assert provider.flush(), "errored refresh must still drain"
        assert provider.worker_errors == 1
        # Nothing landed: bits stay at "no prediction".
        np.testing.assert_array_equal(provider.bits_for(keys),
                                      np.full(3, -1, dtype=np.int8))
    finally:
        provider.close()


# ----------------------------------------------------------------------
# The manager seam
# ----------------------------------------------------------------------
def test_sync_run_equals_manual_replay(world, small_config):
    """``priority_mode="sync"`` is *only* a refactoring of "serve a
    block, predict it, apply the bits": a model-free manager driven by
    that manual loop must reproduce the sync run decision-for-decision,
    including final buffer state."""
    _, tail, encoder, capacity, model = world
    guided = RecMGManager(capacity, encoder, small_config,
                          caching_model=model, priority_mode="sync")
    stats = guided.run(tail, fast_serve=True, record_decisions=True)
    decisions = guided.last_decisions
    guided.close()

    manual = RecMGManager(capacity, encoder, small_config,
                          priority_mode="none")
    serve = manual._select_engine(True)
    block = manual._SERVE_BLOCK * getattr(manual.buffer, "num_shards", 1)
    dense = encoder.dense_ids(tail)
    manual._record_hits = []
    for start in range(0, dense.size, block):
        segment = dense[start:start + block]
        serve(segment)
        bits = model.predict(
            encoder.encode_dense_chunks(segment)).reshape(-1)[:segment.size]
        manual._apply_caching_bits(segment, bits)
    replayed = np.asarray(manual._record_hits, dtype=bool)
    manual._record_hits = None
    manual.close()

    assert len(decisions) == len(tail)
    np.testing.assert_array_equal(decisions, replayed)
    assert (stats.breakdown.cache_hits
            + stats.breakdown.prefetch_hits) == int(replayed.sum())


def test_sync_sharded_serial_equals_threads(world):
    """Provider decisions are thread-layout independent: the sink runs
    on the calling thread after the gather, so the threaded shard pool
    must reproduce the serial shard loop bit for bit."""
    _, tail, encoder, capacity, model = world

    def run(concurrency):
        config = RecMGConfig(hidden=16, hash_buckets=256,
                             buffer_impl="clock", num_shards=2,
                             concurrency=concurrency)
        manager = RecMGManager(capacity, encoder, config,
                               caching_model=model, priority_mode="sync")
        stats = manager.run(tail, fast_serve=True, record_decisions=True)
        decisions = manager.last_decisions
        manager.close()
        return stats, decisions

    serial_stats, serial_dec = run("serial")
    threads_stats, threads_dec = run("threads")
    assert serial_stats == threads_stats
    np.testing.assert_array_equal(serial_dec, threads_dec)


def test_record_decisions_under_async_concurrent(world):
    """The satellite pin: ``record_decisions=True`` must deliver one
    decision per access under the model-guided *and* concurrent
    engines (the provider sink never touches the recording stream)."""
    _, tail, encoder, capacity, model = world
    config = RecMGConfig(hidden=16, hash_buckets=256, buffer_impl="clock",
                         num_shards=2, concurrency="threads")
    manager = RecMGManager(capacity, encoder, config, caching_model=model,
                           priority_mode="async")
    stats = manager.run(tail, record_decisions=True)
    decisions = manager.last_decisions
    manager.close()
    assert decisions is not None
    assert len(decisions) == len(tail)
    assert decisions.dtype == bool
    assert int(decisions.sum()) == (stats.breakdown.cache_hits
                                    + stats.breakdown.prefetch_hits)


def test_none_mode_with_model_matches_legacy_offline_pass(world,
                                                          small_config):
    """``priority_mode="none"`` with a caching model still runs the
    legacy offline chunk pass — the provider seam must not have
    perturbed it (the goldens pin the model-free engines; this pins
    the model-guided legacy path)."""
    _, tail, encoder, capacity, model = world
    runs = []
    for _ in range(2):
        manager = RecMGManager(capacity, encoder, small_config,
                               caching_model=model, priority_mode="none")
        stats = manager.run(tail, fast_serve=True, record_decisions=True)
        runs.append((stats, manager.last_decisions))
        manager.close()
    assert runs[0][0] == runs[1][0]
    np.testing.assert_array_equal(runs[0][1], runs[1][1])
    # And the offline pass actually fired: decisions differ from a
    # model-free run (the model is trained and must change something).
    free = RecMGManager(capacity, encoder, small_config,
                        priority_mode="none")
    free.run(tail, fast_serve=True, record_decisions=True)
    assert not np.array_equal(runs[0][1], free.last_decisions)
    free.close()


def test_serve_batch_sinks_through_provider(world, small_config):
    _, tail, encoder, capacity, model = world
    dense = encoder.dense_ids(tail)
    manager = RecMGManager(capacity, encoder, small_config,
                           caching_model=model, priority_mode="sync")
    for lo in range(0, 4096, 512):
        manager.serve_batch(dense[lo:lo + 512])
    summary = manager.serving_metrics.summary()
    assert summary["inference_batches"] == 8
    assert summary["inference_mean_ms"] > 0.0
    manager.close()

    manager = RecMGManager(capacity, encoder, small_config,
                           caching_model=model, priority_mode="async")
    for lo in range(0, 4096, 512):
        manager.serve_batch(dense[lo:lo + 512])
    summary = manager.serving_metrics.summary()
    # The sink samples staleness per served block, serving thread side.
    assert summary["staleness_max"] <= small_config.priority_pending_max + 1
    assert manager.priority_provider.stats()["observed_blocks"] == 8
    manager.close()
    # close() is propagated to the provider.
    assert manager.priority_provider._closed


# ----------------------------------------------------------------------
# Online retraining
# ----------------------------------------------------------------------
def test_label_live_window_matches_optgen(world, small_config):
    _, tail, encoder, capacity, _ = world
    dense = encoder.dense_ids(tail)[:2000]
    bits = label_live_window(dense, capacity, small_config)
    budget = max(1, int(capacity * small_config.optgen_fraction))
    expected = run_optgen(Trace.from_keys(dense),
                          budget).cache_friendly.astype(np.float64)
    np.testing.assert_array_equal(bits, expected)


def test_trainer_window_and_cadence(world, small_config):
    _, _, encoder, capacity, _ = world
    trainer = OnlineCachingTrainer(encoder, small_config, capacity,
                                   interval=100, window=30)
    block = np.arange(20, dtype=np.int64)
    assert not trainer.observe(block)        # since=20, held=20
    assert not trainer.observe(block + 20)   # since=40, held=40->40
    assert trainer.window_keys().size <= 30 + 19  # trims whole blocks
    due = [trainer.observe(block + 40 * i) for i in range(2, 6)]
    assert due[-1], "retrain must come due once interval+window are met"
    assert trainer.window_keys().size >= 30


def test_trainer_retrain_returns_clone(world, small_config):
    _, tail, encoder, capacity, model = world
    trainer = OnlineCachingTrainer(encoder, small_config, capacity,
                                   interval=64, window=512, epochs=1)
    dense = encoder.dense_ids(tail)[:1024]
    trainer.observe(dense)
    before = model.state_dict()  # returns copies
    tuned = trainer.retrain(model)
    assert tuned is not model
    # The served model's weights were never touched in place.
    for name, array in model.state_dict().items():
        np.testing.assert_array_equal(array, before[name])
    # The clone actually fine-tuned (weights moved).
    moved = any(not np.array_equal(array, before[name])
                for name, array in tuned.state_dict().items())
    assert moved
    assert trainer.retrains == 1
    assert trainer.last_result is not None
    # The countdown reset: the next observe is not immediately due.
    assert not trainer.observe(dense[:16])


def test_clone_caching_model_is_independent(world, small_config):
    _, _, _, _, model = world
    clone = clone_caching_model(model)
    for (name_a, a), (name_b, b) in zip(model.state_dict().items(),
                                        clone.state_dict().items()):
        assert name_a == name_b
        np.testing.assert_array_equal(a, b)
    # Mutating a live parameter of the clone must not bleed back into
    # the served model (state_dict() itself returns copies, so the
    # mutation has to go through named_parameters()).
    name, param = next(iter(clone.named_parameters()))
    param.data[...] += 1.0
    assert not np.array_equal(model.state_dict()[name],
                              clone.state_dict()[name])
    np.testing.assert_allclose(
        model.state_dict()[name],
        clone.state_dict()[name] - 1.0, atol=1e-12)


def test_sync_provider_retrains_online(world, small_config):
    """End to end through the provider: the retrainer swaps a tuned
    clone in, and the provider keeps serving bits afterwards."""
    _, tail, encoder, capacity, model = world
    config = RecMGConfig(hidden=16, hash_buckets=256, caching_epochs=1,
                         buffer_impl="clock",
                         online_retrain_interval=1500,
                         online_retrain_window=512,
                         online_retrain_epochs=1)
    provider = make_provider("sync", model, encoder, config,
                             capacity=capacity)
    dense = encoder.dense_ids(tail)
    original = provider.model
    for lo in range(0, 4096, 512):
        segment = dense[lo:lo + 512]
        provider.observe(segment)
        assert provider.bits_for(segment) is not None
    assert provider.retrainer.retrains >= 1
    assert provider.model is not original
    assert provider.stats()["retrains"] >= 1
