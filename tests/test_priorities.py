"""Tests for the priority-provider seam (:mod:`repro.serving.priorities`)
and the online retraining loop (:class:`OnlineCachingTrainer`).

The contract under test, in three layers:

* **Providers in isolation** — the tri-state bit protocol: sync bits
  equal an offline predict over the same dense segment; async bits are
  ``-1`` until the refresh worker lands them and equal the sync bits
  once it has; spillover keys never get a prediction; the bounded
  refresh queue drops oldest and never blocks.
* **The manager seam** — ``priority_mode="sync"`` run() is replayed
  decision-for-decision by a model-free manager plus a manual per-block
  predict/apply loop (the provider is *only* a refactoring of that
  loop); serial and threaded sharded serving stay decision-identical
  under the provider; ``record_decisions=True`` keeps working under
  model-guided and concurrent engines.
* **Online retraining** — the sliding window trims to size, the
  retrain cadence honors interval+window, the tuned model is a clone
  (the served model's weights are never touched in place), and
  ``label_live_window`` agrees with a direct OPTgen pass.
"""

import threading

import numpy as np
import pytest

from repro.core.caching_model import CachingModel
from repro.core.config import RecMGConfig
from repro.core.features import FeatureEncoder
from repro.core.labeling import (
    build_labels,
    caching_targets,
    label_live_window,
    window_targets,
)
from repro.core.manager import RecMGManager
from repro.core.training import (
    OnlineCachingTrainer,
    clone_caching_model,
    finetune_for_capacity,
    train_caching_model,
)
from repro.cache.optgen import run_optgen
from repro.serving.priorities import (
    PRIORITY_MODES,
    AsyncModelProvider,
    LiftGuard,
    NullProvider,
    SyncModelProvider,
    apply_caching_bits,
    make_provider,
)
from repro.traces.access import Trace
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace


@pytest.fixture(scope="module")
def small_config():
    return RecMGConfig(hidden=16, hash_buckets=256, caching_epochs=1,
                       max_train_chunks=200, buffer_impl="clock")


@pytest.fixture(scope="module")
def world(small_config):
    """(train_head, serve_tail, encoder, capacity, trained model)."""
    trace = generate_trace(SyntheticTraceConfig(
        num_tables=4, rows_per_table=512, num_accesses=12_000, seed=5))
    head, tail = trace.split(0.3)
    encoder = FeatureEncoder(small_config).fit(head)
    capacity = max(1, int(encoder.vocab_size * 0.2))
    labels = build_labels(head, capacity, small_config, encoder)
    chunks = encoder.encode_chunks(head)
    model = CachingModel(small_config, encoder.num_tables)
    train_caching_model(model, chunks, caching_targets(chunks, labels),
                        small_config)
    return head, tail, encoder, capacity, model


# ----------------------------------------------------------------------
# Construction & validation
# ----------------------------------------------------------------------
def test_make_provider_validates_mode(world, small_config):
    _, _, encoder, _, model = world
    with pytest.raises(ValueError, match="priority_mode"):
        make_provider("eventually", model, encoder, small_config)


def test_make_provider_none_is_null(small_config):
    provider = make_provider("none", None, None, small_config)
    assert isinstance(provider, NullProvider)
    assert provider.mode == "none"
    assert provider.bits_for(np.array([1, 2, 3])) is None
    assert provider.staleness_blocks() is None
    provider.observe(np.array([1]))
    provider.close()  # no-op, idempotent
    provider.close()


def test_model_modes_require_model_and_fitted_encoder(world, small_config):
    _, _, encoder, _, model = world
    with pytest.raises(ValueError, match="caching model"):
        make_provider("sync", None, encoder, small_config)
    with pytest.raises(ValueError, match="fitted"):
        make_provider("async", model, FeatureEncoder(small_config),
                      small_config)


def test_retrainer_requires_capacity(world):
    _, _, encoder, _, model = world
    config = RecMGConfig(hidden=16, hash_buckets=256,
                         online_retrain_interval=1000)
    with pytest.raises(ValueError, match="capacity"):
        make_provider("sync", model, encoder, config)


def test_config_validates_priority_knobs():
    with pytest.raises(ValueError, match="priority_mode"):
        RecMGConfig(priority_mode="later")
    with pytest.raises(ValueError, match="refresh_blocks"):
        RecMGConfig(priority_refresh_blocks=0)
    with pytest.raises(ValueError, match="pending_max"):
        RecMGConfig(priority_pending_max=0)
    with pytest.raises(ValueError, match="retrain_interval"):
        RecMGConfig(online_retrain_interval=-1)
    with pytest.raises(ValueError, match="window"):
        RecMGConfig(online_retrain_window=3)  # < input_len (15)
    with pytest.raises(ValueError, match="lift_guard"):
        RecMGConfig(priority_lift_guard=-1)
    with pytest.raises(ValueError, match="lift_margin"):
        RecMGConfig(priority_lift_margin=-0.1)
    assert "sync" in PRIORITY_MODES


# ----------------------------------------------------------------------
# Dense-segment encoding (the serving-side feature path)
# ----------------------------------------------------------------------
def test_encode_dense_chunks_matches_encode_chunks(world, small_config):
    head, _, encoder, _, _ = world
    length = small_config.input_len
    aligned = head.head((len(head) // length) * length)
    offline = encoder.encode_chunks(aligned)
    online = encoder.encode_dense_chunks(encoder.dense_ids(aligned))
    for field in ("table_ids", "hashed_rows", "norm_index", "freq",
                  "dense_ids"):
        np.testing.assert_array_equal(getattr(offline, field),
                                      getattr(online, field), err_msg=field)


def test_encode_dense_chunks_pads_tail(world, small_config):
    _, _, encoder, _, _ = world
    length = small_config.input_len
    dense = encoder.dense_ids(world[0])[: length + 3]
    chunks = encoder.encode_dense_chunks(dense)
    assert len(chunks) == 2
    # Pad positions repeat the segment's last access.
    np.testing.assert_array_equal(chunks.dense_ids[1][3:],
                                  np.full(length - 3, dense[-1]))
    with pytest.raises(ValueError, match="empty"):
        encoder.encode_dense_chunks(np.empty(0, dtype=np.int64))


def test_tables_for_dense_covers_spillover(world, small_config):
    """Spillover dense ids (unseen at fit time) recover their table
    from the packed key they carry — identical to trace-side encoding."""
    head, tail, encoder, _, _ = world
    dense = encoder.dense_ids(tail)
    expected = encoder.table_indices(tail)
    np.testing.assert_array_equal(encoder.tables_for_dense(dense), expected)
    assert (dense >= encoder.vocab_size).any(), \
        "fixture should exercise spillover ids"


# ----------------------------------------------------------------------
# Sync provider
# ----------------------------------------------------------------------
def test_sync_bits_match_offline_predict(world, small_config):
    _, tail, encoder, _, model = world
    provider = make_provider("sync", model, encoder, small_config)
    assert isinstance(provider, SyncModelProvider)
    dense = encoder.dense_ids(tail)[:600]
    bits = provider.bits_for(dense)
    expected = model.predict(
        encoder.encode_dense_chunks(dense)).reshape(-1)[:dense.size]
    np.testing.assert_array_equal(bits, expected.astype(np.int8))
    assert bits.dtype == np.int8
    assert set(np.unique(bits)) <= {0, 1}
    assert provider.bits_for(np.empty(0, dtype=np.int64)) is None
    assert provider.staleness_blocks() is None
    assert provider.stats()["inference_batches"] == 1


# ----------------------------------------------------------------------
# Async provider
# ----------------------------------------------------------------------
def test_async_bits_follow_refresh(world, small_config):
    _, tail, encoder, _, model = world
    provider = make_provider("async", model, encoder, small_config)
    assert isinstance(provider, AsyncModelProvider)
    try:
        dense = encoder.dense_ids(tail)
        # Unique keys: the async table is *per key* (a duplicate key's
        # last position wins the scatter), while sync bits are per
        # position — only a duplicate-free block compares exactly.
        in_vocab = np.unique(dense[dense < encoder.vocab_size])[:400]
        # Before any refresh: the whole table is "no prediction".
        np.testing.assert_array_equal(
            provider.bits_for(in_vocab), np.full(in_vocab.size, -1,
                                                 dtype=np.int8))
        provider.observe(in_vocab)
        assert provider.flush(), "refresh worker did not drain"
        sync = make_provider("sync", model, encoder, small_config)
        np.testing.assert_array_equal(provider.bits_for(in_vocab),
                                      sync.bits_for(in_vocab))
        assert provider.staleness_blocks() == 0
        stats = provider.stats()
        assert stats["refreshed_blocks"] == 1
        assert 0.0 < stats["table_coverage"] <= 1.0
    finally:
        provider.close()
        provider.close()  # idempotent
    # After close the table is frozen but still readable.
    assert provider.bits_for(in_vocab[:5]) is not None


def test_async_spillover_keys_have_no_prediction(world, small_config):
    _, _, encoder, _, model = world
    provider = make_provider("async", model, encoder, small_config)
    try:
        spill = np.array([encoder.vocab_size + 7,
                          encoder.vocab_size + 12_345], dtype=np.int64)
        provider.observe(spill)
        assert provider.flush()
        np.testing.assert_array_equal(provider.bits_for(spill),
                                      np.array([-1, -1], dtype=np.int8))
    finally:
        provider.close()


def test_async_queue_drops_oldest_and_never_blocks(world, small_config):
    _, _, encoder, _, model = world
    provider = AsyncModelProvider(model, encoder, small_config,
                                  key_space=encoder.vocab_size,
                                  pending_max=2, refresh_blocks=1)
    release = threading.Event()
    real_predict = provider._predict

    def stalled_predict(keys):
        release.wait(timeout=10.0)
        return real_predict(keys)

    provider._predict = stalled_predict
    try:
        first = np.array([0, 1], dtype=np.int64)
        provider.observe(first)
        # Wait for the worker to take the first block in flight.
        for _ in range(1000):
            with provider._lock:
                if not provider._pending:
                    break
            threading.Event().wait(0.005)
        else:
            pytest.fail("worker never picked up the first block")
        provider.observe(np.array([2], dtype=np.int64))
        provider.observe(np.array([3], dtype=np.int64))
        # Queue full (pending_max=2): the oldest queued block drops.
        provider.observe(np.array([4], dtype=np.int64))
        assert provider.dropped_blocks == 1
        # Staleness counts in-queue + in-flight, bounded by
        # pending_max + 1.
        assert provider.staleness_blocks() <= provider.pending_max + 1
        release.set()
        assert provider.flush()
        assert provider.staleness_blocks() == 0
    finally:
        release.set()
        provider.close()


def test_async_refresh_interval_skips_blocks(world, small_config):
    _, _, encoder, _, model = world
    provider = AsyncModelProvider(model, encoder, small_config,
                                  key_space=encoder.vocab_size,
                                  refresh_blocks=3)
    try:
        for i in range(7):
            provider.observe(np.array([i], dtype=np.int64))
        assert provider.observed_blocks == 7
        assert provider.submitted_blocks == 3  # blocks 1, 4, 7
    finally:
        provider.close()


def test_async_worker_error_does_not_freeze_serving(world, small_config):
    _, _, encoder, _, model = world
    provider = AsyncModelProvider(model, encoder, small_config,
                                  key_space=encoder.vocab_size)

    def broken_predict(keys):
        raise RuntimeError("inference backend fell over")

    provider._predict = broken_predict
    try:
        keys = np.array([1, 2, 3], dtype=np.int64)
        provider.observe(keys)
        assert provider.flush(), "errored refresh must still drain"
        assert provider.worker_errors == 1
        # Nothing landed: bits stay at "no prediction".
        np.testing.assert_array_equal(provider.bits_for(keys),
                                      np.full(3, -1, dtype=np.int8))
    finally:
        provider.close()


# ----------------------------------------------------------------------
# The manager seam
# ----------------------------------------------------------------------
def test_sync_run_equals_manual_replay(world, small_config):
    """``priority_mode="sync"`` is *only* a refactoring of "serve a
    block, predict it, apply the bits": a model-free manager driven by
    that manual loop must reproduce the sync run decision-for-decision,
    including final buffer state."""
    _, tail, encoder, capacity, model = world
    guided = RecMGManager(capacity, encoder, small_config,
                          caching_model=model, priority_mode="sync")
    stats = guided.run(tail, fast_serve=True, record_decisions=True)
    decisions = guided.last_decisions
    guided.close()

    manual = RecMGManager(capacity, encoder, small_config,
                          priority_mode="none")
    serve = manual._select_engine(True)
    block = manual._SERVE_BLOCK * getattr(manual.buffer, "num_shards", 1)
    dense = encoder.dense_ids(tail)
    manual._record_hits = []
    for start in range(0, dense.size, block):
        segment = dense[start:start + block]
        serve(segment)
        bits = model.predict(
            encoder.encode_dense_chunks(segment)).reshape(-1)[:segment.size]
        manual._apply_caching_bits(segment, bits)
    replayed = np.asarray(manual._record_hits, dtype=bool)
    manual._record_hits = None
    manual.close()

    assert len(decisions) == len(tail)
    np.testing.assert_array_equal(decisions, replayed)
    assert (stats.breakdown.cache_hits
            + stats.breakdown.prefetch_hits) == int(replayed.sum())


def test_sync_sharded_serial_equals_threads(world):
    """Provider decisions are thread-layout independent: the sink runs
    on the calling thread after the gather, so the threaded shard pool
    must reproduce the serial shard loop bit for bit."""
    _, tail, encoder, capacity, model = world

    def run(concurrency):
        config = RecMGConfig(hidden=16, hash_buckets=256,
                             buffer_impl="clock", num_shards=2,
                             concurrency=concurrency)
        manager = RecMGManager(capacity, encoder, config,
                               caching_model=model, priority_mode="sync")
        stats = manager.run(tail, fast_serve=True, record_decisions=True)
        decisions = manager.last_decisions
        manager.close()
        return stats, decisions

    serial_stats, serial_dec = run("serial")
    threads_stats, threads_dec = run("threads")
    assert serial_stats == threads_stats
    np.testing.assert_array_equal(serial_dec, threads_dec)


def test_record_decisions_under_async_concurrent(world):
    """The satellite pin: ``record_decisions=True`` must deliver one
    decision per access under the model-guided *and* concurrent
    engines (the provider sink never touches the recording stream)."""
    _, tail, encoder, capacity, model = world
    config = RecMGConfig(hidden=16, hash_buckets=256, buffer_impl="clock",
                         num_shards=2, concurrency="threads")
    manager = RecMGManager(capacity, encoder, config, caching_model=model,
                           priority_mode="async")
    stats = manager.run(tail, record_decisions=True)
    decisions = manager.last_decisions
    manager.close()
    assert decisions is not None
    assert len(decisions) == len(tail)
    assert decisions.dtype == bool
    assert int(decisions.sum()) == (stats.breakdown.cache_hits
                                    + stats.breakdown.prefetch_hits)


def test_none_mode_with_model_matches_legacy_offline_pass(world,
                                                          small_config):
    """``priority_mode="none"`` with a caching model still runs the
    legacy offline chunk pass — the provider seam must not have
    perturbed it (the goldens pin the model-free engines; this pins
    the model-guided legacy path)."""
    _, tail, encoder, capacity, model = world
    runs = []
    for _ in range(2):
        manager = RecMGManager(capacity, encoder, small_config,
                               caching_model=model, priority_mode="none")
        stats = manager.run(tail, fast_serve=True, record_decisions=True)
        runs.append((stats, manager.last_decisions))
        manager.close()
    assert runs[0][0] == runs[1][0]
    np.testing.assert_array_equal(runs[0][1], runs[1][1])
    # And the offline pass actually fired: decisions differ from a
    # model-free run (the model is trained and must change something).
    free = RecMGManager(capacity, encoder, small_config,
                        priority_mode="none")
    free.run(tail, fast_serve=True, record_decisions=True)
    assert not np.array_equal(runs[0][1], free.last_decisions)
    free.close()


def test_serve_batch_sinks_through_provider(world, small_config):
    _, tail, encoder, capacity, model = world
    dense = encoder.dense_ids(tail)
    manager = RecMGManager(capacity, encoder, small_config,
                           caching_model=model, priority_mode="sync")
    for lo in range(0, 4096, 512):
        manager.serve_batch(dense[lo:lo + 512])
    summary = manager.serving_metrics.summary()
    assert summary["inference_batches"] == 8
    assert summary["inference_mean_ms"] > 0.0
    manager.close()

    manager = RecMGManager(capacity, encoder, small_config,
                           caching_model=model, priority_mode="async")
    for lo in range(0, 4096, 512):
        manager.serve_batch(dense[lo:lo + 512])
    summary = manager.serving_metrics.summary()
    # The sink samples staleness per served block, serving thread side.
    assert summary["staleness_max"] <= small_config.priority_pending_max + 1
    assert manager.priority_provider.stats()["observed_blocks"] == 8
    manager.close()
    # close() is propagated to the provider.
    assert manager.priority_provider._closed


# ----------------------------------------------------------------------
# Online retraining
# ----------------------------------------------------------------------
def test_label_live_window_matches_optgen(world, small_config):
    _, tail, encoder, capacity, _ = world
    dense = encoder.dense_ids(tail)[:2000]
    bits = label_live_window(dense, capacity, small_config)
    budget = max(1, int(capacity * small_config.optgen_fraction))
    expected = run_optgen(Trace.from_keys(dense),
                          budget).cache_friendly.astype(np.float64)
    np.testing.assert_array_equal(bits, expected)


def test_trainer_window_and_cadence(world, small_config):
    _, _, encoder, capacity, _ = world
    trainer = OnlineCachingTrainer(encoder, small_config, capacity,
                                   interval=100, window=30)
    block = np.arange(20, dtype=np.int64)
    assert not trainer.observe(block)        # since=20, held=20
    assert not trainer.observe(block + 20)   # since=40, held=40->40
    assert trainer.window_keys().size <= 30 + 19  # trims whole blocks
    due = [trainer.observe(block + 40 * i) for i in range(2, 6)]
    assert due[-1], "retrain must come due once interval+window are met"
    assert trainer.window_keys().size >= 30


def test_trainer_retrain_returns_clone(world, small_config):
    _, tail, encoder, capacity, model = world
    trainer = OnlineCachingTrainer(encoder, small_config, capacity,
                                   interval=64, window=512, epochs=1)
    dense = encoder.dense_ids(tail)[:1024]
    trainer.observe(dense)
    before = model.state_dict()  # returns copies
    tuned = trainer.retrain(model)
    assert tuned is not model
    # The served model's weights were never touched in place.
    for name, array in model.state_dict().items():
        np.testing.assert_array_equal(array, before[name])
    # The clone actually fine-tuned (weights moved).
    moved = any(not np.array_equal(array, before[name])
                for name, array in tuned.state_dict().items())
    assert moved
    assert trainer.retrains == 1
    assert trainer.last_result is not None
    # The countdown reset: the next observe is not immediately due.
    assert not trainer.observe(dense[:16])


def test_clone_caching_model_is_independent(world, small_config):
    _, _, _, _, model = world
    clone = clone_caching_model(model)
    for (name_a, a), (name_b, b) in zip(model.state_dict().items(),
                                        clone.state_dict().items()):
        assert name_a == name_b
        np.testing.assert_array_equal(a, b)
    # Mutating a live parameter of the clone must not bleed back into
    # the served model (state_dict() itself returns copies, so the
    # mutation has to go through named_parameters()).
    name, param = next(iter(clone.named_parameters()))
    param.data[...] += 1.0
    assert not np.array_equal(model.state_dict()[name],
                              clone.state_dict()[name])
    np.testing.assert_allclose(
        model.state_dict()[name],
        clone.state_dict()[name] - 1.0, atol=1e-12)


def test_sync_provider_retrains_online(world, small_config):
    """End to end through the provider: the retrainer swaps a tuned
    clone in, and the provider keeps serving bits afterwards."""
    _, tail, encoder, capacity, model = world
    config = RecMGConfig(hidden=16, hash_buckets=256, caching_epochs=1,
                         buffer_impl="clock",
                         online_retrain_interval=1500,
                         online_retrain_window=512,
                         online_retrain_epochs=1)
    provider = make_provider("sync", model, encoder, config,
                             capacity=capacity)
    dense = encoder.dense_ids(tail)
    original = provider.model
    for lo in range(0, 4096, 512):
        segment = dense[lo:lo + 512]
        provider.observe(segment)
        assert provider.bits_for(segment) is not None
    assert provider.retrainer.retrains >= 1
    assert provider.model is not original
    assert provider.stats()["retrains"] >= 1


# ----------------------------------------------------------------------
# PR 9 satellites: applier hardening, retraining-window thinning fix,
# capacity-matched labels, and the lift guard.
# ----------------------------------------------------------------------
class _RecordingBuffer:
    """Minimal bulk-protocol stub: everything is resident; records the
    keys each priority call receives."""

    def __init__(self):
        self.promoted = []
        self.demoted = []

    def contains_batch(self, keys):
        return np.ones(len(keys), dtype=bool)

    def set_priority_batch(self, keys, priority):
        self.promoted.extend(np.asarray(keys).tolist())

    def demote_batch(self, keys):
        self.demoted.extend(np.asarray(keys).tolist())


def test_apply_caching_bits_masks_no_prediction_inline():
    """The applier itself must drop ``-1`` ("no prediction") positions
    — not rely on the manager's pre-filter.  Before the mask a direct
    caller would have promoted every unpredicted key (``-1 != 0``)."""
    buffer = _RecordingBuffer()
    keys = np.array([10, 11, 12, 13, 14], dtype=np.int64)
    bits = np.array([1, -1, 0, -1, 1], dtype=np.int8)
    apply_caching_bits(buffer, keys, bits, speed=4)
    assert buffer.promoted == [10, 14]
    assert buffer.demoted == [12]


def test_apply_caching_bits_all_unpredicted_is_noop():
    buffer = _RecordingBuffer()
    apply_caching_bits(buffer, np.array([1, 2, 3], dtype=np.int64),
                       np.full(3, -1, dtype=np.int8), speed=4)
    assert buffer.promoted == [] and buffer.demoted == []


def test_async_retrainer_sees_every_block(world, small_config):
    """Regression for the retraining-window thinning bug: with
    ``refresh_blocks=k`` the refresh queue sheds inference, but the
    retraining window must still be fed **every** observed block —
    the old early-return starved it to a k-times-sparser stream."""
    _, _, encoder, capacity, model = world
    retrainer = OnlineCachingTrainer(encoder, small_config, capacity,
                                     interval=10**9, window=1024)
    provider = AsyncModelProvider(model, encoder, small_config,
                                  key_space=encoder.vocab_size,
                                  refresh_blocks=3, retrainer=retrainer)
    try:
        for i in range(6):
            provider.observe(np.arange(i * 32, (i + 1) * 32,
                                       dtype=np.int64))
        assert provider.observed_blocks == 6
        assert provider.submitted_blocks == 2  # blocks 1 and 4
        assert retrainer.window_keys().size == 6 * 32
    finally:
        provider.close()


def test_async_retrain_runs_on_worker(world, small_config):
    """The serving thread only *arms* a retrain; the expensive
    label/fine-tune/swap cycle runs on the refresh worker and
    ``flush()`` waits it out."""
    _, tail, encoder, capacity, model = world
    config = RecMGConfig(hidden=16, hash_buckets=256, caching_epochs=1,
                         buffer_impl="clock",
                         priority_refresh_blocks=4,
                         online_retrain_interval=1500,
                         online_retrain_window=512,
                         online_retrain_epochs=1)
    provider = make_provider("async", model, encoder, config,
                             capacity=capacity)
    try:
        original = provider.model
        dense = encoder.dense_ids(tail)
        for lo in range(0, 4096, 512):
            provider.observe(dense[lo:lo + 512])
        assert provider.flush(), "flush must drain refreshes + retrain"
        assert provider.retrainer.retrains >= 1
        assert provider.model is not original
        assert provider.worker_errors == 0
        assert provider.stats()["retrains"] >= 1
    finally:
        provider.close()


def test_staleness_never_negative_under_concurrent_stats(world,
                                                         small_config):
    """stats()/staleness_blocks() snapshot the three queue counters
    under the provider lock — hammer them against a live worker and
    assert no torn (negative) snapshot ever surfaces."""
    _, tail, encoder, _, model = world
    provider = make_provider("async", model, encoder, small_config)
    try:
        dense = encoder.dense_ids(tail)
        seen = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                seen.append(provider.staleness_blocks())
                seen.append(provider.stats()["staleness_blocks"])

        thread = threading.Thread(target=reader)
        thread.start()
        for lo in range(0, 16_384, 256):
            provider.observe(dense[lo % dense.size:
                                   lo % dense.size + 256])
        provider.flush()
        stop.set()
        thread.join()
        assert seen and min(seen) >= 0
    finally:
        provider.close()


# ----------------------------------------------------------------------
# Capacity-matched labels (tentpole 2a)
# ----------------------------------------------------------------------
def test_window_targets_matches_live_labels(world, small_config):
    _, tail, encoder, capacity, _ = world
    dense = encoder.dense_ids(tail)[:1000]
    targets = window_targets(dense, capacity, small_config)
    length = small_config.input_len
    assert targets.shape == (-(-dense.size // length), length)
    bits = label_live_window(dense, capacity, small_config)
    # Head chunks are the raw labels; the tail chunk pads with its
    # last labeled bit.
    np.testing.assert_array_equal(targets.ravel()[:bits.size], bits)
    assert set(np.unique(targets.ravel()[bits.size:])) <= {bits[-1]}
    with pytest.raises(ValueError):
        window_targets(np.array([], dtype=np.int64), capacity,
                       small_config)


def test_finetune_for_capacity_returns_tuned_clone(world, small_config):
    """The offline-to-serving adapter: relabel a window at the
    *serving* capacity and fine-tune a clone — the input model's
    weights must never move."""
    _, tail, encoder, capacity, model = world
    serving_capacity = max(1, int(encoder.vocab_size * 0.05))
    dense = encoder.dense_ids(tail)[:2048]
    before = model.state_dict()
    tuned, result = finetune_for_capacity(model, dense, serving_capacity,
                                          small_config, encoder, epochs=1)
    assert tuned is not model
    for name, array in model.state_dict().items():
        np.testing.assert_array_equal(array, before[name])
    moved = any(not np.array_equal(array, before[name])
                for name, array in tuned.state_dict().items())
    assert moved
    assert len(result.losses) >= 1
    assert result.num_parameters > 0


# ----------------------------------------------------------------------
# LiftGuard (tentpole 2b)
# ----------------------------------------------------------------------
def test_lift_guard_validates_params():
    with pytest.raises(ValueError, match="phase_blocks"):
        LiftGuard(phase_blocks=0)
    with pytest.raises(ValueError, match="window_phases"):
        LiftGuard(window_phases=0)
    with pytest.raises(ValueError, match="probe_every"):
        LiftGuard(probe_every=1)
    with pytest.raises(ValueError, match="margin"):
        LiftGuard(margin=-0.01)
    with pytest.raises(RuntimeError, match="begin_block"):
        LiftGuard().record_block(1, 10)


def _drive(guard, guided_rate, control_rate, blocks, size=100):
    """Feed ``blocks`` begin/record pairs with per-arm synthetic hit
    rates; returns how many were served guided."""
    guided_blocks = 0
    for _ in range(blocks):
        arm = guard.begin_block()
        guided_blocks += arm
        rate = guided_rate if arm else control_rate
        guard.record_block(int(rate * size), size)
    return guided_blocks


def test_lift_guard_trips_on_negative_lift_and_recovers():
    guard = LiftGuard(phase_blocks=1, window_phases=2, probe_every=4)
    # Healthy: 3-in-4 phases guided, 1-in-4 control.
    assert [guard.begin_block() for _ in range(8)] == \
        [True, True, True, False] * 2
    for _ in range(8):
        guard.record_block(0, 100)
    assert guard._decided == type(guard._decided)()
    # Guided clearly worse: both windows fill, then trip.
    _drive(guard, guided_rate=0.2, control_rate=0.6, blocks=16)
    assert guard.tripped and guard.trips == 1
    # Tripped: roles invert — most blocks now run control.
    guided = _drive(guard, guided_rate=0.2, control_rate=0.6, blocks=8)
    assert guided <= 2
    # Guidance recovers: the probe phases measure it beating control
    # and the guard untrips (windows were cleared on the trip, so only
    # post-trip samples vote).
    _drive(guard, guided_rate=0.9, control_rate=0.3, blocks=64)
    assert guard.untrips == 1 and not guard.tripped
    stats = guard.stats()
    assert stats["trips"] == 1 and stats["untrips"] == 1
    assert stats["blocks_decided"] > 0


def test_lift_guard_hysteresis_margin_holds_state():
    guard = LiftGuard(phase_blocks=1, window_phases=2, probe_every=2,
                      margin=0.2)
    # A small negative lift (inside the margin) must not trip.
    _drive(guard, guided_rate=0.50, control_rate=0.55, blocks=32)
    assert not guard.tripped and guard.trips == 0
    # A large one must.
    _drive(guard, guided_rate=0.10, control_rate=0.60, blocks=32)
    assert guard.tripped


def test_manager_lift_guard_floors_adverse_guidance(world, small_config):
    """The low-capacity inversion, forced: an adversarial provider
    (demote the hot keys, pin the cold ones) at 5% capacity.  The
    guard must trip and pull the run back to (near) model-free;
    without it the same guidance craters the hit rate."""
    _, tail, encoder, _, model = world
    vocab = encoder.vocab_size
    low_capacity = max(1, int(vocab * 0.05))
    dense_tail = encoder.dense_ids(tail)
    counts = np.bincount(dense_tail[dense_tail < vocab], minlength=vocab)
    hot = np.zeros(vocab, dtype=bool)
    hot[np.argsort(counts)[::-1][:max(1, vocab // 5)]] = True

    def adversarial_bits(keys):
        keys = np.asarray(keys, dtype=np.int64)
        bits = np.full(keys.size, -1, dtype=np.int8)
        local = keys < vocab
        bits[local] = np.where(hot[keys[local]], 0, 1).astype(np.int8)
        return bits

    def run(priority_mode, guard, adversarial):
        config = RecMGConfig(hidden=16, hash_buckets=256,
                             buffer_impl="clock",
                             priority_lift_guard=1 if guard else 0)
        manager = RecMGManager(low_capacity, encoder, config,
                               caching_model=(model if priority_mode
                                              != "none" else None),
                               priority_mode=priority_mode)
        manager._SERVE_BLOCK = 256
        if guard:
            # Tighter windows than the config default so the ~8.4k
            # access tail holds enough phases to trip.
            manager.lift_guard = LiftGuard(phase_blocks=1,
                                           window_phases=2,
                                           probe_every=4)
        if adversarial:
            manager.priority_provider.bits_for = adversarial_bits
        stats = manager.run(tail, fast_serve=True)
        hits = (stats.breakdown.cache_hits
                + stats.breakdown.prefetch_hits)
        guard_obj = manager.lift_guard
        manager.close()
        return hits, guard_obj

    model_free, _ = run("none", guard=False, adversarial=False)
    unguarded, _ = run("sync", guard=False, adversarial=True)
    guarded, guard = run("sync", guard=True, adversarial=True)

    assert unguarded < model_free  # the inversion is real
    assert guard is not None and guard.trips >= 1
    assert guarded > unguarded
    # Floor: the guarded run stays within the probe phases' cost of
    # the model-free baseline.
    assert guarded >= model_free * 0.95


def test_manager_lift_guard_off_by_default(world, small_config):
    _, _, encoder, capacity, model = world
    manager = RecMGManager(capacity, encoder, small_config,
                           caching_model=model, priority_mode="sync")
    assert manager.lift_guard is None
    manager.close()
