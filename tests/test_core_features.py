"""Feature encoding for the RecMG models."""

import numpy as np
import pytest

from repro.core import FeatureEncoder, RecMGConfig
from repro.traces import Trace


@pytest.fixture(scope="module")
def encoder(tiny_trace, tiny_recmg_config):
    return FeatureEncoder(tiny_recmg_config).fit(tiny_trace)


class TestEncoder:
    def test_requires_fit(self, tiny_trace, tiny_recmg_config):
        encoder = FeatureEncoder(tiny_recmg_config)
        with pytest.raises(RuntimeError):
            encoder.dense_ids(tiny_trace)
        with pytest.raises(RuntimeError):
            encoder.encode_chunks(tiny_trace)

    def test_vocab_matches_unique(self, encoder, tiny_trace):
        assert encoder.vocab_size == tiny_trace.num_unique
        assert encoder.num_tables == tiny_trace.num_tables

    def test_dense_ids_in_range(self, encoder, tiny_trace):
        dense = encoder.dense_ids(tiny_trace)
        assert dense.min() >= 0
        assert dense.max() < encoder.vocab_size

    def test_unseen_keys_get_unique_ids(self, encoder):
        foreign = Trace.from_pairs([(999, 999999)])
        dense = encoder.dense_ids(foreign)
        # Unseen keys must not alias trained vectors (false buffer hits).
        assert dense[0] >= encoder.vocab_size
        assert encoder.freq_values(dense)[0] == 0.0
        assert encoder.normalize(dense)[0] == 1.0

    def test_vectorized_lookups_match_dicts(self, encoder, tiny_trace):
        """The searchsorted bulk lookups must agree with the fitted
        dictionaries access-for-access, including unseen keys/tables."""
        mixed = Trace(
            np.concatenate([tiny_trace.table_ids[:300],
                            np.array([991, 992], dtype=np.int64)]),
            np.concatenate([tiny_trace.row_ids[:300],
                            np.array([123456, 99], dtype=np.int64)]),
        )
        keys = mixed.keys()
        vocab = encoder.vocab_size
        expected_dense = np.array(
            [encoder._key_to_dense.get(int(key), vocab + int(key))
             for key in keys], dtype=np.int64)
        assert np.array_equal(encoder.dense_ids(mixed), expected_dense)
        num = max(1, encoder.num_tables)
        expected_tables = np.array(
            [encoder._table_to_id.get(int(t), int(t) % num)
             for t in mixed.table_ids], dtype=np.int64)
        assert np.array_equal(encoder.table_indices(mixed), expected_tables)

    def test_refit_invalidates_lookup_mirrors(self, tiny_trace,
                                              tiny_recmg_config):
        """Regression: re-fitting must rebuild the searchsorted mirrors,
        not serve lookups from the previous vocabulary."""
        enc = FeatureEncoder(tiny_recmg_config)
        small = Trace.from_pairs([(0, 1), (0, 2), (1, 3)])
        enc.fit(small)
        enc.dense_ids(small)        # populate the cached mirrors
        enc.fit(tiny_trace)
        dense = enc.dense_ids(tiny_trace)
        assert dense.min() >= 0
        assert dense.max() < enc.vocab_size
        assert enc.table_indices(tiny_trace).max() < enc.num_tables

    def test_normalize_roundtrip(self, encoder):
        dense = np.array([0, encoder.vocab_size // 2, encoder.vocab_size - 1])
        values = encoder.normalize(dense)
        assert values.min() >= 0.0 and values.max() <= 1.0
        assert np.array_equal(encoder.denormalize(values), dense)

    def test_freq_reflects_popularity(self, encoder, tiny_trace):
        dense = encoder.dense_ids(tiny_trace)
        counts = np.bincount(dense, minlength=encoder.vocab_size)
        hottest = int(np.argmax(counts))
        coldest = int(np.argmin(counts))
        freq = encoder.freq_values(np.array([hottest, coldest]))
        assert freq[0] >= freq[1]
        assert freq.max() <= 1.0


class TestChunks:
    def test_shapes(self, encoder, tiny_trace, tiny_recmg_config):
        chunks = encoder.encode_chunks(tiny_trace.head(500))
        length = tiny_recmg_config.input_len
        assert chunks.table_ids.shape[1] == length
        assert chunks.hashed_rows.shape == chunks.table_ids.shape
        assert chunks.norm_index.shape == chunks.table_ids.shape
        assert chunks.freq.shape == chunks.table_ids.shape
        assert len(chunks.starts) == len(chunks)

    def test_nonoverlapping_default(self, encoder, tiny_trace,
                                    tiny_recmg_config):
        chunks = encoder.encode_chunks(tiny_trace.head(500))
        assert np.all(np.diff(chunks.starts) == tiny_recmg_config.input_len)

    def test_custom_stride(self, encoder, tiny_trace):
        chunks = encoder.encode_chunks(tiny_trace.head(500), stride=3)
        assert np.all(np.diff(chunks.starts) == 3)

    def test_too_short_trace_raises(self, encoder, tiny_trace):
        with pytest.raises(ValueError):
            encoder.encode_chunks(tiny_trace.head(3))

    def test_hashed_rows_bounded(self, encoder, tiny_trace,
                                 tiny_recmg_config):
        chunks = encoder.encode_chunks(tiny_trace.head(500))
        assert chunks.hashed_rows.max() < tiny_recmg_config.hash_buckets


class TestConfigValidation:
    def test_bad_lengths(self):
        with pytest.raises(ValueError):
            RecMGConfig(input_len=0)
        with pytest.raises(ValueError):
            RecMGConfig(input_len=5, output_len=6)

    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            RecMGConfig(alpha=1.0)

    def test_bad_window_ratio(self):
        with pytest.raises(ValueError):
            RecMGConfig(window_ratio=0)

    def test_eval_window(self):
        config = RecMGConfig(output_len=5, window_ratio=3)
        assert config.eval_window == 15
