"""Sharded-buffer subsystem tests: routers, wiring, and differentials.

Three layers of checking for :mod:`repro.cache.sharding`:

* **Unit** — router totality/determinism (scalar == batch, every int64
  key maps to exactly one shard, contiguous ranges tile the universe),
  ``make_buffer`` validation (``num_shards > 1`` without ``key_space``
  is rejected with a clear error, mirroring the PR 4 ``key_space``
  rejection), and the deterministic water-filling eviction allocation.
* **Op-level differential (200-seed fuzz)** — a 1-shard
  :class:`ShardedBuffer` must be decision-for-decision identical to
  the bare backend it wraps (victims, resident sets, priorities, after
  every op), for the exact and the clock backend alike; simultaneously
  an N>1 sharded buffer must keep the partition invariants after every
  op: every key routes to exactly one shard, per-shard residency
  bitmaps are pairwise disjoint, and their union equals the global
  ``contains_batch`` (spillover ids above the bitmap included).
* **Manager-level** — the shard-wise serving engine
  (``RecMGManager._serve_demand_sharded``) must be
  decision-for-decision identical to the scalar audit loop over the
  same sharded buffer for exact shards (the clock engine is
  approximate by contract: totals conserved, capacity never exceeded),
  and a 1-shard sharded manager must reproduce the bare dense-fast
  manager exactly.
"""

import random

import numpy as np
import pytest

from repro.cache import (
    ClockBuffer,
    FastPriorityBuffer,
    ShardedBuffer,
    backend_for_key,
    make_buffer,
    make_router,
)
from repro.cache.sharding import _allocate_evictions

KEY_SPACE = 26
#: Sharded key_space deliberately smaller than the fuzzed key range:
#: keys >= DENSE_SPACE exercise the spillover routing (key mod N).
DENSE_SPACE = KEY_SPACE - 7
MAX_PRIORITY = 6
NUM_SEQUENCES = 200
OPS_PER_SEQUENCE = 90

#: Probe spanning below, inside, and above both the bitmap and the
#: fuzzed key range.
PROBE = np.arange(-4, KEY_SPACE + 9, dtype=np.int64)


# ---------------------------------------------------------------------------
# Routers.


@pytest.mark.parametrize("policy", ["contiguous", "modulo"])
@pytest.mark.parametrize("num_shards", [1, 2, 3, 5])
def test_router_total_and_batch_consistent(policy, num_shards):
    router = make_router(policy, num_shards, 40)
    keys = np.arange(-15, 120, dtype=np.int64)
    batch = router.route_batch(keys)
    assert batch.dtype == np.int64
    assert ((batch >= 0) & (batch < num_shards)).all()
    for key, shard in zip(keys.tolist(), batch.tolist()):
        assert router.route(key) == shard  # scalar == batch, per key


def test_contiguous_ranges_tile_universe():
    router = make_router("contiguous", 3, 10)
    covered = []
    for shard in range(3):
        lo, hi = router.range_of(shard)
        covered.extend(range(lo, hi))
        for key in range(lo, hi):
            assert router.route(key) == shard
    assert covered == list(range(10))  # disjoint, exhaustive, in order


def test_modulo_router_stripes():
    router = make_router("modulo", 4, 100)
    assert router.route(0) == 0 and router.route(7) == 3
    assert router.route(103) == 3  # spillover ids stripe identically


def test_make_router_rejects_unknown_policy():
    with pytest.raises(ValueError, match="shard_policy"):
        make_router("hash-ring", 2, 10)


# ---------------------------------------------------------------------------
# Id compression (the N×-memory fix): exact per-router bijections.


@pytest.mark.parametrize("policy", ["contiguous", "modulo"])
@pytest.mark.parametrize("num_shards", [1, 2, 3, 5])
@pytest.mark.parametrize("key_space", [1, 2, 7, 19, 40])
def test_compress_round_trips_owned_universe(policy, num_shards,
                                             key_space):
    """``compress`` is an exact, order-preserving bijection from a
    shard's owned in-universe ids onto a dense prefix of
    ``[0, shard_key_space)``; ``decompress`` inverts it; scalar and
    batch forms agree key for key."""
    router = make_router(policy, num_shards, key_space)
    all_ids = np.arange(key_space, dtype=np.int64)
    routes = router.route_batch(all_ids)
    total_owned = 0
    for shard in range(num_shards):
        owned = all_ids[routes == shard]
        local = router.compress(shard, owned)
        space = router.shard_key_space(shard)
        # The owned ids fill the compressed universe exactly (the
        # max(1, .) floor only pads shards that own nothing).
        assert space == max(1, owned.size)
        assert ((local >= 0) & (local < space)).all()
        assert np.unique(local).size == owned.size  # injective
        # Strictly monotonic: sorted/unique segment orders survive
        # compression, which is why decisions cannot drift.
        assert (np.diff(local) > 0).all()
        assert np.array_equal(router.decompress(shard, local), owned)
        for key, loc in zip(owned.tolist(), local.tolist()):
            assert router.compress_key(shard, key) == loc
            assert router.decompress_key(shard, loc) == key
        total_owned += owned.size
    assert total_owned == key_space  # shards partition the universe
    # The whole-block form agrees with the per-shard form element-wise
    # (including spillover passthrough).
    probe = np.concatenate([all_ids, [-5, -1, key_space, key_space + 7]])
    routes = router.route_batch(probe)
    block = router.compress_routed(probe, routes)
    for shard in range(num_shards):
        mask = routes == shard
        assert np.array_equal(block[mask],
                              router.compress(shard, probe[mask]))


@pytest.mark.parametrize("policy", ["contiguous", "modulo"])
def test_compress_spillover_passthrough(policy):
    """Ids outside ``[0, key_space)`` pass through compression and
    decompression unchanged — they live in the backends' spillover
    side paths under their global identity, so decompression stays
    unambiguous."""
    router = make_router(policy, 3, 12)
    spill = np.array([-9, -1, 12, 13, 40, 10**12], dtype=np.int64)
    for shard in range(3):
        owned = spill[router.route_batch(spill) == shard]
        assert np.array_equal(router.compress(shard, owned), owned)
        assert np.array_equal(router.decompress(shard, owned), owned)
        for key in owned.tolist():
            assert router.compress_key(shard, key) == key
            assert router.decompress_key(shard, key) == key


@pytest.mark.parametrize("impl", ["fast", "clock"])
@pytest.mark.parametrize("policy", ["contiguous", "modulo"])
def test_sharded_per_id_memory_matches_single_shard(impl, policy):
    """Memory-footprint regression (the tentpole): a 4-shard dense
    buffer's summed per-id array bytes equal the single-shard
    footprint — per-id state is independent of ``num_shards``.  Before
    compression every shard spanned the full universe, costing 4×."""
    key_space, capacity = 4096, 512
    single = make_buffer(impl, capacity, key_space=key_space)
    sharded = make_buffer(impl, capacity, key_space=key_space,
                          num_shards=4, shard_policy=policy)
    assert single.per_id_nbytes() > 0
    # The compressed shard universes tile the global one exactly, so
    # the summed footprint matches to the byte here (the per-shard
    # max(1, .) floor only pads when shards outnumber ids).
    assert sharded.per_id_nbytes() == single.per_id_nbytes()


# ---------------------------------------------------------------------------
# Weighted capacity splits.


def test_split_capacity_uniform_matches_historical_formula():
    from repro.cache import split_capacity

    assert split_capacity(11, 4) == [3, 3, 3, 2]
    assert split_capacity(8, 4) == [2, 2, 2, 2]
    assert split_capacity(5, 1) == [5]


def test_split_capacity_weighted_largest_remainder():
    from repro.cache import split_capacity

    assert split_capacity(20, 4, [0.85, 0.05, 0.05, 0.05]) == [17, 1, 1, 1]
    # Equal fractional parts break ties to the lowest shard id.
    assert split_capacity(10, 3, [1.0, 1.0, 1.0]) == [4, 3, 3]
    # Every shard keeps at least one slot even under extreme skew.
    assert split_capacity(4, 4, [100.0, 1e-6, 1e-6, 1e-6]) == [1, 1, 1, 1]
    split = split_capacity(97, 5, [5, 4, 3, 2, 1])
    assert sum(split) == 97 and all(c >= 1 for c in split)


def test_split_capacity_weighted_validation():
    from repro.cache import split_capacity

    with pytest.raises(ValueError, match="one weight per shard"):
        split_capacity(10, 3, [1.0, 2.0])
    with pytest.raises(ValueError, match="positive and finite"):
        split_capacity(10, 2, [1.0, 0.0])
    with pytest.raises(ValueError, match="positive and finite"):
        split_capacity(10, 2, [1.0, float("nan")])


def test_make_buffer_shard_weights():
    buf = make_buffer("clock", 20, key_space=128, num_shards=4,
                      shard_weights=(0.85, 0.05, 0.05, 0.05))
    assert buf.shard_capacities == [17, 1, 1, 1]
    assert [s.capacity for s in buf.shards] == [17, 1, 1, 1]
    assert buf.shard_weights == (0.85, 0.05, 0.05, 0.05)
    # Fill each shard to its weighted capacity (contiguous routing:
    # shard i owns [32*i, 32*(i+1))) — the global contract holds.
    keys = np.concatenate([np.arange(17), [32, 64, 96]]).astype(np.int64)
    buf.put_batch(keys, 2)
    assert len(buf) == 20 and buf.is_full
    with pytest.raises(ValueError, match="num_shards > 1"):
        make_buffer("clock", 8, key_space=64, shard_weights=(1.0,))


def test_config_shard_weights_validation():
    from repro.core import RecMGConfig

    config = RecMGConfig(num_shards=4,
                         shard_weights=(0.85, 0.05, 0.05, 0.05))
    assert config.shard_weights == (0.85, 0.05, 0.05, 0.05)
    with pytest.raises(ValueError, match="num_shards > 1"):
        RecMGConfig(shard_weights=(1.0,))
    with pytest.raises(ValueError, match="one weight per shard"):
        RecMGConfig(num_shards=3, shard_weights=(1.0, 2.0))
    with pytest.raises(ValueError, match="positive and finite"):
        RecMGConfig(num_shards=2, shard_weights=(1.0, -1.0))


def test_manager_shard_weights_via_config():
    """RecMGConfig.shard_weights threads through to the buffer split
    (and the run still conserves totals)."""
    from repro.core import RecMGConfig
    from repro.core.features import FeatureEncoder
    from repro.core.manager import RecMGManager
    from repro.traces import SyntheticTraceConfig, generate_trace

    trace = generate_trace(SyntheticTraceConfig(
        num_tables=2, rows_per_table=64, num_accesses=600, seed=4))
    config = RecMGConfig(num_shards=4,
                         shard_weights=(0.7, 0.1, 0.1, 0.1))
    encoder = FeatureEncoder(config).fit(trace)
    manager = RecMGManager(20, encoder, config)
    assert isinstance(manager.buffer, ShardedBuffer)
    assert manager.buffer.shard_capacities == [14, 2, 2, 2]
    stats = manager.run(trace)
    assert stats.breakdown.total == len(trace)


# ---------------------------------------------------------------------------
# make_buffer validation (both error paths of the sharding knob).


def test_make_buffer_rejects_shards_without_key_space():
    """The routers partition [0, key_space); without it there is no id
    universe to shard — must raise, not silently build one shard."""
    with pytest.raises(ValueError, match="key_space"):
        make_buffer("clock", 8, num_shards=2)
    with pytest.raises(ValueError, match="key_space"):
        make_buffer("fast", 8, num_shards=4, shard_policy="modulo")


def test_make_buffer_rejects_key_space_on_unsupporting_sharded_backend():
    """Sharding composes with the PR 4 rejection: a backend that cannot
    run dense membership cannot shard either."""
    from repro.cache.buffer import BUFFER_IMPLS

    class NoDense:
        def __init__(self, capacity):
            self.capacity = capacity

    BUFFER_IMPLS["nodense"] = NoDense
    try:
        with pytest.raises(ValueError, match="key_space"):
            make_buffer("nodense", 8, key_space=32, num_shards=2)
    finally:
        del BUFFER_IMPLS["nodense"]


def test_make_buffer_shard_validation():
    with pytest.raises(ValueError, match="num_shards"):
        make_buffer("clock", 8, key_space=32, num_shards=0)
    with pytest.raises(ValueError, match="at least one slot"):
        make_buffer("clock", 3, key_space=32, num_shards=4)
    with pytest.raises(ValueError, match="shard_policy"):
        make_buffer("clock", 8, key_space=32, num_shards=2,
                    shard_policy="nope")
    with pytest.raises(ValueError, match="unknown buffer_impl"):
        make_buffer("nope", 8, key_space=32, num_shards=2)


def test_make_buffer_one_shard_returns_bare_backend():
    buf = make_buffer("clock", 8, key_space=32, num_shards=1)
    assert isinstance(buf, ClockBuffer)
    assert make_buffer("fast", 8, key_space=32).residency is not None


def test_make_buffer_sharded_partitions_capacity():
    buf = make_buffer("fast", 11, key_space=64, num_shards=4)
    assert isinstance(buf, ShardedBuffer)
    assert buf.shard_capacities == [3, 3, 3, 2]  # remainder to low ids
    assert sum(buf.shard_capacities) == buf.capacity == 11
    assert all(isinstance(s.backend, FastPriorityBuffer)
               for s in buf.shards)
    assert all(s.residency is not None for s in buf.shards)
    # Each backend runs over the router's compressed universe, not the
    # full [0, key_space) — this is the N×-memory fix.
    assert all(s.backend.key_space == buf.router.shard_key_space(i)
               for i, s in enumerate(buf.shards))
    assert sum(s.backend.key_space for s in buf.shards) == buf.key_space
    assert not buf.approximate
    assert make_buffer("clock", 8, key_space=64, num_shards=2).approximate


# ---------------------------------------------------------------------------
# Eviction allocation (water-filling).


def test_allocate_evictions_levels_fullest_shards():
    lengths = np.array([10, 3, 7, 3], dtype=np.int64)
    take = _allocate_evictions(lengths, 5)
    assert take.sum() == 5
    assert (take <= lengths).all()
    # Levelling: occupancies after eviction are as equal as possible,
    # fullest shards pay first.
    after = (lengths - take).tolist()
    assert after == [6, 3, 6, 3]


def test_allocate_evictions_deterministic_tiebreak():
    lengths = np.array([4, 4, 4], dtype=np.int64)
    assert _allocate_evictions(lengths, 2).tolist() == [1, 1, 0]
    assert _allocate_evictions(lengths, 3).tolist() == [1, 1, 1]
    assert _allocate_evictions(lengths, 12).tolist() == [4, 4, 4]


def test_allocate_evictions_rejects_overdraw():
    with pytest.raises(RuntimeError):
        _allocate_evictions(np.array([2, 1], dtype=np.int64), 4)


def test_sharded_evict_one_targets_fullest_shard():
    buf = ShardedBuffer("fast", 6, key_space=30, num_shards=3)
    # contiguous ranges over 30 ids / 3 shards: [0,10), [10,20), [20,30)
    buf.put_batch([1, 2, 11], 0)
    assert buf.shard_id_of(int(buf.evict_one())) == 0  # fullest shard
    assert len(buf) == 2


def _victim_order_fixture():
    """3 contiguous fast shards ([0,10), [10,20), [20,30)) whose global
    ``(effective_priority, seqno)`` eviction order would *interleave*
    shards: the minimum-priority entries all live in shard 2."""
    buf = ShardedBuffer("fast", 9, key_space=30, num_shards=3)
    for key, priority in [(0, 5), (1, 5), (2, 5),
                          (10, 3), (11, 3),
                          (20, 0), (21, 0), (22, 0)]:
        buf.insert(key, priority)
    return buf


def test_evict_batch_victim_order_is_per_shard():
    """Pins the documented :meth:`ShardedBuffer.evict_batch` victim
    contract (cross-referenced from the bulk-protocol docs in
    ``cache/buffer.py``): victims come out grouped per shard in
    shard-id order, the per-shard counts follow the water-filling
    allocation, and each group is exactly what that shard would have
    evicted standalone — NOT the global ``(effective_priority, seqno)``
    interleave a bare backend would produce."""
    buf = _victim_order_fixture()
    twin = _victim_order_fixture()
    lengths = np.array([len(shard) for shard in buf.shards],
                       dtype=np.int64)
    shares = _allocate_evictions(lengths, 4)
    expected = []
    for shard, share in zip(twin.shards, shares.tolist()):
        if share:
            expected.extend(shard.evict_batch(share))
    victims = buf.evict_batch(4)
    assert victims == expected
    # Grouped per shard, groups in shard-id order.
    shard_ids = [buf.shard_id_of(int(victim)) for victim in victims]
    assert shard_ids == sorted(shard_ids)
    # And decidedly not the global priority order: every priority-0
    # entry lives in shard 2, yet shard 0 (a fullest shard) pays first.
    assert shard_ids[0] == 0


# ---------------------------------------------------------------------------
# Op-level differential fuzz: 1-shard == bare; N-shard partition laws.

OP_WEIGHTS = [
    ("insert", 6),
    ("set_priority", 4),
    ("demote", 2),
    ("put_batch", 3),
    ("set_priority_batch", 2),
    ("demote_batch", 1),
    ("evict_one", 4),
    ("evict_batch", 3),
]


def _gen_ops(rng: random.Random):
    names = [name for name, _ in OP_WEIGHTS]
    weights = [weight for _, weight in OP_WEIGHTS]
    ops = []
    for _ in range(OPS_PER_SEQUENCE):
        ops.append((rng.choices(names, weights=weights)[0],
                    rng.randrange(KEY_SPACE),
                    rng.randrange(MAX_PRIORITY + 1),
                    [rng.randrange(KEY_SPACE)
                     for _ in range(rng.randint(1, 10))],
                    rng.randint(1, 6)))
    return ops


def _apply_op(buffer, op):
    """Apply one op to ``buffer`` when locally valid (validity judged
    from the buffer's own state, so bare and 1-shard wrappers see the
    same decisions); returns the victims of eviction ops, or None."""
    kind, key, priority, batch, count = op
    if kind == "insert":
        if key in buffer:
            buffer.set_priority(key, priority)
        elif not backend_for_key(buffer, key).is_full:
            buffer.insert(key, priority)
    elif kind == "set_priority":
        if key in buffer:
            buffer.set_priority(key, priority)
    elif kind == "demote":
        if key in buffer:
            buffer.demote(key)
    elif kind == "put_batch":
        before = sorted(buffer.keys())
        try:
            buffer.put_batch(batch, priority)
        except RuntimeError:
            # Raise-before-mutate: a rejected batch leaves the buffer
            # untouched (per-shard capacity pre-check on the wrapper).
            assert sorted(buffer.keys()) == before
            return "raised"
    elif kind == "set_priority_batch":
        buffer.set_priority_batch([k for k in batch if k in buffer],
                                  priority)
    elif kind == "demote_batch":
        buffer.demote_batch([k for k in batch if k in buffer])
    elif kind == "evict_one":
        if len(buffer):
            return [buffer.evict_one()]
    elif kind == "evict_batch":
        if len(buffer):
            return buffer.evict_batch(min(count, len(buffer)))
    return None


def _assert_partition_invariants(sharded: ShardedBuffer):
    """After any op: every key routes to exactly one shard, the
    per-shard resident sets are pairwise disjoint, their union is the
    global contains_batch, and each shard's compressed residency
    bitmap decompresses exactly onto the global ids it owns."""
    # Scatter the probe the way every bulk op does: a compressed shard
    # view only speaks for keys that route to it (the per-shard
    # bijections alias foreign keys by design), so per-shard answers
    # are only meaningful for the shard's own sub-segment.
    gathered = np.zeros(PROBE.size, dtype=bool)
    for _, shard, positions, sub in sharded.iter_shard_segments(PROBE):
        gathered[positions] = shard.contains_batch(sub)
    assert np.array_equal(gathered, sharded.contains_batch(PROBE))
    # Routing + disjointness: every resident (decompressed) key lives
    # in exactly its router shard, so the resident sets cannot overlap.
    seen = set()
    for index, shard in enumerate(sharded.shards):
        resident = list(shard.keys())
        for key in resident:
            assert sharded.shard_id_of(key) == index
            assert key not in seen  # a key lives in at most one shard
            seen.add(key)
        # The raw bitmap covers the *compressed* universe; its set bits
        # decompress exactly onto the shard's in-universe residents.
        bitmap_ids = np.flatnonzero(shard.residency.bitmap)
        decompressed = sharded.router.decompress(index, bitmap_ids)
        in_universe = sorted(key for key in resident
                             if 0 <= key < sharded.key_space)
        assert sorted(decompressed.tolist()) == in_universe
    assert len(seen) == len(sharded)
    assert len(sharded) == sum(len(shard) for shard in sharded.shards)
    assert len(sharded) <= sharded.capacity


@pytest.mark.parametrize("seed", range(NUM_SEQUENCES))
def test_sharding_differential_op_sequences(seed):
    rng = random.Random(9900 + seed)
    capacity = rng.randint(3, 16)
    policy = rng.choice(["contiguous", "modulo"])
    ops = _gen_ops(rng)

    pairs = [
        (FastPriorityBuffer(capacity, key_space=DENSE_SPACE),
         ShardedBuffer("fast", capacity, key_space=DENSE_SPACE,
                       num_shards=1, shard_policy=policy)),
        (ClockBuffer(capacity, key_space=DENSE_SPACE),
         ShardedBuffer("clock", capacity, key_space=DENSE_SPACE,
                       num_shards=1, shard_policy=policy)),
    ]
    multi = [
        ShardedBuffer("fast", capacity, key_space=DENSE_SPACE,
                      num_shards=3, shard_policy=policy),
        ShardedBuffer("clock", capacity, key_space=DENSE_SPACE,
                      num_shards=3, shard_policy=policy),
    ]

    for op in ops:
        for bare, wrapped in pairs:
            bare_victims = _apply_op(bare, op)
            wrapped_victims = _apply_op(wrapped, op)
            # Decision-for-decision: same victims, same residents, same
            # priorities, same bulk residency answers.
            assert bare_victims == wrapped_victims
            assert len(bare) == len(wrapped)
            keys = sorted(bare.keys())
            assert sorted(wrapped.keys()) == keys
            for key in keys:
                assert wrapped.priority_of(key) == bare.priority_of(key)
            assert np.array_equal(bare.contains_batch(PROBE),
                                  wrapped.contains_batch(PROBE))
        for sharded in multi:
            _apply_op(sharded, op)
            _assert_partition_invariants(sharded)

    # Drain: remaining victim order still identical for the 1-shard
    # wrappers, and the N-shard buffers drain to empty cleanly.
    for bare, wrapped in pairs:
        remaining = len(bare)
        if remaining:
            assert wrapped.evict_batch(remaining) == \
                bare.evict_batch(remaining)
    for sharded in multi:
        remaining = len(sharded)
        if remaining:
            victims = sharded.evict_batch(remaining)
            assert len(victims) == len(set(victims)) == remaining
        assert len(sharded) == 0
        _assert_partition_invariants(sharded)


def test_protected_clock_eviction_with_spillover_avoid():
    """ClockBuffer.evict_batch(avoid=...) protects in-range and
    spillover ids alike (mixed batches keep the vectorized in-range
    path), ages past protected zeros, and raises on overdraw."""
    buf = ClockBuffer(5, key_space=8)
    buf.put_batch([1, 2, 3, 100], 0)   # 100 spills over the bitmap
    buf.insert(4, 2)
    victims = buf.evict_batch(2, avoid=np.array([1, 100, -3, 50]))
    assert sorted(victims) == [2, 3]   # protected keys survive
    assert 1 in buf and 100 in buf
    # Only 4 (positive priority) remains eligible: aging must ripen it
    # rather than touch the protected zeros.
    assert buf.evict_batch(1, avoid=np.array([1, 100])) == [4]
    assert buf.priority_of(1) == 0 and buf.priority_of(100) == 0
    with pytest.raises(RuntimeError, match="more entries"):
        buf.evict_batch(3, avoid=np.array([1, 100]))


def test_sharded_spillover_keys_route_and_serve():
    """Ids outside [0, key_space) route deterministically (mod N) and
    behave like in-range keys through the whole protocol."""
    buf = ShardedBuffer("clock", 6, key_space=8, num_shards=2)
    buf.put_batch([1, 100, 101, 7], 2)  # 100 -> shard 0, 101 -> shard 1
    assert 100 in buf and 101 in buf
    assert buf.shard_id_of(100) == 0 and buf.shard_id_of(101) == 1
    assert np.array_equal(
        buf.contains_batch(np.array([1, 7, 100, 101, 102, -5])),
        np.array([True, True, True, True, False, False]))
    buf.demote_batch(np.array([100, 101]))
    assert buf.priority_of(100) == 0 and buf.priority_of(101) == 0
    victims = buf.evict_batch(4)
    assert sorted(victims) == [1, 7, 100, 101]
    assert len(buf) == 0


# ---------------------------------------------------------------------------
# Manager-level differentials.

MANAGER_SEEDS = 40


def _serving_trace(rng: random.Random):
    from repro.traces import SyntheticTraceConfig, generate_trace

    config = SyntheticTraceConfig(
        num_tables=rng.choice([1, 2, 4]),
        rows_per_table=rng.choice([40, 90, 160]),
        num_accesses=rng.choice([300, 600, 900]),
        num_clusters=rng.choice([4, 8]),
        cluster_block=4,
        periodic_items=rng.choice([0, 20, 60]),
        periodic_spacing=rng.choice([3, 7]),
        seed=rng.randrange(10_000),
    )
    return generate_trace(config)


def _manager_setup(seed):
    from repro.core import RecMGConfig
    from repro.core.features import FeatureEncoder

    rng = random.Random(6200 + seed)
    trace = _serving_trace(rng)
    config = RecMGConfig(eviction_speed=rng.choice([1, 2, 4]))
    fit_on = trace if rng.random() < 0.7 else trace.head(
        max(1, len(trace) // 2))
    encoder = FeatureEncoder(config).fit(fit_on)
    num_shards = rng.choice([2, 3, 4])
    policy = rng.choice(["contiguous", "modulo"])
    capacity = max(num_shards,
                   int(trace.num_unique * rng.choice([0.05, 0.2, 0.6])))
    return trace, config, encoder, capacity, num_shards, policy


@pytest.mark.parametrize("seed", range(MANAGER_SEEDS))
def test_sharded_exact_serving_decision_equivalence(seed):
    """The shard-wise batched engine over exact (fast) shards must
    reproduce the scalar audit loop over the same sharded buffer
    decision-for-decision — counters, per-access hit stream, final
    residents/priorities, and full-drain victim order — including
    prefix-fitted encoders whose tail ids spill over the bitmaps.
    The ``concurrency="threads"`` engine rides the same 40 seeds: it
    must be bit-identical to the serial shard-wise engine (and hence
    to the scalar loop), with the worker count varied per seed."""
    from repro.core.manager import RecMGManager

    trace, config, encoder, capacity, num_shards, policy = \
        _manager_setup(seed)

    def run(fast_serve, concurrency="serial", num_workers=None):
        manager = RecMGManager(capacity, encoder, config,
                               buffer_impl="fast", num_shards=num_shards,
                               shard_policy=policy, concurrency=concurrency,
                               num_workers=num_workers)
        stats = manager.run(trace, fast_serve=fast_serve,
                            record_decisions=True)
        manager.close()
        return manager, stats

    batched_manager, batched = run(True)
    scalar_manager, scalar = run(False)
    threaded_manager, threaded = run(True, concurrency="threads",
                                     num_workers=1 + seed % 4)
    assert isinstance(batched_manager.buffer, ShardedBuffer)
    assert batched == scalar
    assert threaded == batched
    assert np.array_equal(batched_manager.last_decisions,
                          scalar_manager.last_decisions)
    assert np.array_equal(threaded_manager.last_decisions,
                          batched_manager.last_decisions)
    b_buf, s_buf = batched_manager.buffer, scalar_manager.buffer
    t_buf = threaded_manager.buffer
    assert sorted(b_buf.keys()) == sorted(s_buf.keys())
    assert sorted(t_buf.keys()) == sorted(s_buf.keys())
    for key in s_buf.keys():
        assert b_buf.priority_of(key) == s_buf.priority_of(key)
        assert t_buf.priority_of(key) == s_buf.priority_of(key)
    remaining = len(s_buf)
    if remaining:
        drain = s_buf.evict_batch(remaining)
        assert b_buf.evict_batch(remaining) == drain
        assert t_buf.evict_batch(remaining) == drain


@pytest.mark.parametrize("seed", range(0, MANAGER_SEEDS, 2))
def test_one_shard_manager_matches_bare_backend(seed):
    """A 1-shard sharded manager is the bare dense-fast manager:
    identical counters, decisions, and buffer state."""
    from repro.core.manager import RecMGManager

    trace, config, encoder, capacity, _, policy = _manager_setup(seed)

    bare = RecMGManager(capacity, encoder, config, buffer_impl="fast")
    bare_stats = bare.run(trace, record_decisions=True)
    one = RecMGManager(capacity, encoder, config, buffer_impl="fast",
                       num_shards=1, shard_policy=policy)
    one_stats = one.run(trace, record_decisions=True)
    # num_shards=1 never builds the wrapper: only real sharding pays
    # the routing layer.
    assert not isinstance(one.buffer, ShardedBuffer)
    assert one_stats == bare_stats
    assert np.array_equal(one.last_decisions, bare.last_decisions)
    assert sorted(one.buffer.keys()) == sorted(bare.buffer.keys())


@pytest.mark.parametrize("seed", range(0, MANAGER_SEEDS, 2))
def test_sharded_clock_serving_contract(seed):
    """Approximate sharded serving: counters conserve the trace total,
    capacity is never exceeded, and the final residency satisfies the
    partition invariants."""
    from repro.core.manager import RecMGManager

    trace, config, encoder, capacity, num_shards, policy = \
        _manager_setup(seed)
    manager = RecMGManager(capacity, encoder, config, buffer_impl="clock",
                           num_shards=num_shards, shard_policy=policy)
    stats = manager.run(trace)
    assert stats.breakdown.total == len(trace)
    assert stats.breakdown.prefetch_hits == 0
    buffer = manager.buffer
    assert len(buffer) <= capacity
    for shard in buffer.shards:
        assert len(shard) <= shard.capacity
    seen = buffer.contains_batch(encoder.dense_ids(trace))
    # Everything resident at the end was served from this trace.
    assert len(buffer) == len({int(k) for k in buffer.keys()})
    assert seen.any() or capacity == 0


class _StubPrefetchModel:
    """Deterministic predict_indices: neighbours of the chunk's own
    ids — a mix of resident and non-resident targets, so prefetch
    fills, prefetch hits, and tag-dropping evictions all occur."""

    def predict_indices(self, chunks, encoder, sel):
        dense = chunks.dense_ids[sel]
        vocab = max(1, encoder.vocab_size)
        return (dense[:, :4] + 1) % vocab


@pytest.mark.parametrize("seed", range(0, MANAGER_SEEDS, 2))
def test_sharded_prefetch_accounting_matches_scalar(seed):
    """Prefetch counters through the sharded batched engine must match
    the scalar audit loop exactly (exact shards): tags are consumed in
    the chunk where the key is served, before a later chunk's eviction
    can drop them."""
    from repro.core.manager import RecMGManager

    trace, config, encoder, capacity, num_shards, policy = \
        _manager_setup(seed)

    def run(fast_serve):
        manager = RecMGManager(capacity, encoder, config,
                               buffer_impl="fast", num_shards=num_shards,
                               shard_policy=policy,
                               prefetch_model=_StubPrefetchModel())
        stats = manager.run(trace, fast_serve=fast_serve)
        return stats

    batched = run(True)
    scalar = run(False)
    assert batched == scalar
    assert (batched.breakdown.prefetch_hits
            == batched.prefetches_useful
            == scalar.prefetches_useful)
    # Conservation regardless of engine.
    assert batched.breakdown.total == len(trace)


def test_sharded_manager_requires_fitted_encoder():
    """num_shards > 1 with an unfitted encoder (no dense universe)
    surfaces make_buffer's key_space rejection."""
    from repro.core import RecMGConfig
    from repro.core.features import FeatureEncoder
    from repro.core.manager import RecMGManager

    config = RecMGConfig()
    with pytest.raises(ValueError, match="key_space"):
        RecMGManager(8, FeatureEncoder(config), config, num_shards=2)


def test_sharded_manager_via_config_knobs():
    """RecMGConfig.num_shards / shard_policy thread through without
    constructor arguments."""
    from repro.core import RecMGConfig
    from repro.core.features import FeatureEncoder
    from repro.core.manager import RecMGManager
    from repro.traces import SyntheticTraceConfig, generate_trace

    trace = generate_trace(SyntheticTraceConfig(
        num_tables=2, rows_per_table=64, num_accesses=600, seed=4))
    config = RecMGConfig(num_shards=3, shard_policy="modulo")
    encoder = FeatureEncoder(config).fit(trace)
    manager = RecMGManager(9, encoder, config)
    assert isinstance(manager.buffer, ShardedBuffer)
    assert manager.buffer.num_shards == 3
    assert manager.buffer.shard_policy == "modulo"
    stats = manager.run(trace)
    assert stats.breakdown.total == len(trace)
    with pytest.raises(ValueError, match="shard_policy"):
        RecMGConfig(shard_policy="nope")
    with pytest.raises(ValueError, match="num_shards"):
        RecMGConfig(num_shards=0)


def test_sharded_caching_bits_match_bare():
    """_apply_caching_bits through the sharded bulk protocol lands the
    same priorities the bare dense backend gets."""
    from repro.core import RecMGConfig
    from repro.core.features import FeatureEncoder
    from repro.core.manager import RecMGManager
    from repro.traces import SyntheticTraceConfig, generate_trace

    trace = generate_trace(SyntheticTraceConfig(
        num_tables=2, rows_per_table=64, num_accesses=400, seed=9))
    config = RecMGConfig()
    encoder = FeatureEncoder(config).fit(trace)
    rng = np.random.default_rng(3)

    def build(**kwargs):
        manager = RecMGManager(12, encoder, config, buffer_impl="fast",
                               **kwargs)
        dense = encoder.dense_ids(trace)[:12]
        manager.buffer.put_batch(dense, config.eviction_speed)
        bits = rng.integers(0, 2, size=dense.size)
        manager._apply_caching_bits(dense, bits)
        return manager.buffer, dense

    rng = np.random.default_rng(3)
    bare_buf, dense = build()
    rng = np.random.default_rng(3)
    sharded_buf, _ = build(num_shards=3)
    for key in dense.tolist():
        assert sharded_buf.priority_of(key) == bare_buf.priority_of(key)


# ---------------------------------------------------------------------------
# Classifier and harness wiring.


def test_buffer_classifier_sharded_matches_scalar_totals():
    from repro.dlrm.inference import BufferClassifier
    from repro.traces import SyntheticTraceConfig, generate_trace
    from repro.traces.access import remap_to_dense

    trace = generate_trace(SyntheticTraceConfig(
        num_tables=2, rows_per_table=64, num_accesses=800, seed=5))
    keys, _ = remap_to_dense(trace)
    key_space = int(keys.max()) + 1
    for impl in ("fast", "clock"):
        batch = BufferClassifier(10, buffer_impl=impl,
                                 key_space=key_space, num_shards=2)
        scalar = BufferClassifier(10, buffer_impl=impl,
                                  key_space=key_space, num_shards=2)
        batched_hits = np.concatenate([
            batch.access_batch(keys[lo:lo + 96])
            for lo in range(0, len(keys), 96)])
        scalar_hits = np.array([scalar.access(int(k)) for k in keys])
        if impl == "fast":
            # Exact shards: batch classification is bit-identical.
            assert np.array_equal(batched_hits, scalar_hits)
        assert batched_hits.size == scalar_hits.size == len(keys)
        assert len(batch.buffer) <= 10


def test_lru_harness_sharded():
    from repro.prefetch import LRUBufferWithPrefetch, run_breakdown
    from repro.traces import SyntheticTraceConfig, generate_trace

    trace = generate_trace(SyntheticTraceConfig(
        num_tables=2, rows_per_table=64, num_accesses=700, seed=6))
    with pytest.raises(ValueError, match="cannot shard"):
        LRUBufferWithPrefetch(8, buffer_impl="ordered", num_shards=2)
    sharded = run_breakdown(trace, 12, buffer_impl="fast", num_shards=3)
    assert sharded.total == len(trace)
    # Sharded LRU is per-shard recency — close to, but not necessarily
    # equal to, global LRU; totals and class counts must still conserve.
    global_lru = run_breakdown(trace, 12, buffer_impl="fast")
    assert abs(sharded.hit_rate - global_lru.hit_rate) < 0.2
    clock = run_breakdown(trace, 12, buffer_impl="clock", num_shards=3,
                          shard_policy="modulo")
    assert clock.total == len(trace)
