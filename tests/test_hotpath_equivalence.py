"""Fast hot-path engines must be trace-level identical to the audit
references: OPTgen labeling, bulk manager serving, the vectorized LRU
breakdown, and the reuse-distance kernel they share."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import FastPriorityBuffer, PriorityBuffer, run_optgen, \
    run_optgen_reference
from repro.core import RecMGConfig, RecMGManager
from repro.core.features import FeatureEncoder
from repro.prefetch import run_breakdown
from repro.traces import Trace, count_left_leq, reuse_distances, \
    reuse_distances_fast

KEY_LISTS = st.lists(st.integers(0, 25), min_size=1, max_size=200)


def trace_of(keys):
    return Trace.from_pairs([(0, k) for k in keys])


class TestOptgenEngines:
    @pytest.mark.parametrize("engine", ["fast", "slices", "tree"])
    @given(keys=KEY_LISTS, capacity=st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_bit_identical_to_reference(self, engine, keys, capacity):
        trace = trace_of(keys)
        ref = run_optgen_reference(trace, capacity)
        fast = run_optgen(trace, capacity, engine=engine)
        assert np.array_equal(fast.opt_hits, ref.opt_hits)
        assert np.array_equal(fast.cache_friendly, ref.cache_friendly)
        assert fast.stats.hits == ref.stats.hits
        assert fast.stats.misses == ref.stats.misses

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            run_optgen(trace_of([1, 2]), 2, engine="warp-drive")


class TestReuseDistanceKernel:
    @given(KEY_LISTS)
    @settings(max_examples=40, deadline=None)
    def test_fast_matches_fenwick(self, keys):
        trace = trace_of(keys)
        assert np.array_equal(reuse_distances_fast(trace),
                              reuse_distances(trace))

    @given(st.lists(st.integers(-5, 30), max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_count_left_leq_matches_bruteforce(self, values):
        arr = np.asarray(values, dtype=np.int64)
        expected = np.array(
            [int((arr[:i] <= arr[i]).sum()) for i in range(arr.size)],
            dtype=np.int64,
        )
        assert np.array_equal(count_left_leq(arr), expected.reshape(arr.shape))


class TestBreakdownEngines:
    @given(keys=KEY_LISTS, capacity=st.integers(1, 24),
           metadata=st.sampled_from([0.0, 0.25, 0.5]))
    @settings(max_examples=40, deadline=None)
    def test_lru_breakdown_identical(self, keys, capacity, metadata):
        trace = trace_of(keys)
        fast = run_breakdown(trace, capacity, metadata_fraction=metadata)
        ref = run_breakdown(trace, capacity, metadata_fraction=metadata,
                            engine="reference")
        assert fast == ref
        assert fast.total == len(trace)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            run_breakdown(trace_of([1]), 2, engine="warp-drive")

    @given(keys=KEY_LISTS, metadata=st.sampled_from([0.0, 0.3]))
    @settings(max_examples=25, deadline=None)
    def test_sweep_matches_per_capacity_runs(self, keys, metadata):
        from repro.prefetch import run_breakdown_sweep

        trace = trace_of(keys)
        capacities = [1, 2, 5, 13, 40]
        swept = run_breakdown_sweep(trace, capacities,
                                    metadata_fraction=metadata)
        singles = [run_breakdown(trace, capacity, metadata_fraction=metadata,
                                 engine="reference")
                   for capacity in capacities]
        assert swept == singles


class _StubCachingModel:
    """Deterministic pseudo-random keep bits keyed on dense ids."""

    def predict(self, chunks, sel=None):
        dense = chunks.dense_ids[sel]
        return ((dense * 2654435761) % 3 == 0).astype(np.int8)


class _StubPrefetchModel:
    """Deterministic dense-id predictions (some resident, some not)."""

    def __init__(self, vocab_size):
        self.vocab_size = vocab_size

    def predict_indices(self, chunks, encoder, sel=None):
        dense = chunks.dense_ids[sel]
        width = min(7, dense.shape[1])
        return (dense[:, :width] * 31 + 3) % self.vocab_size


MANAGER_CASES = st.tuples(
    st.lists(st.integers(0, 40), min_size=1, max_size=260),  # row ids
    st.integers(1, 24),                                      # capacity
    st.integers(2, 12),                                      # input_len
    st.integers(1, 5),                                       # eviction speed
    st.booleans(),                                           # caching model
    st.booleans(),                                           # prefetch model
)


class TestManagerServingEngines:
    @given(MANAGER_CASES)
    @settings(max_examples=30, deadline=None)
    def test_fast_serve_identical(self, case):
        rows, capacity, input_len, speed, use_cm, use_pm = case
        trace = trace_of(rows)
        config = RecMGConfig(input_len=input_len, output_len=1,
                             eviction_speed=speed)
        encoder = FeatureEncoder(config).fit(trace)
        caching = _StubCachingModel() if use_cm else None
        prefetch = _StubPrefetchModel(encoder.vocab_size) if use_pm else None

        results = []
        for fast_serve in (True, False):
            manager = RecMGManager(capacity, encoder, config,
                                   caching_model=caching,
                                   prefetch_model=prefetch)
            stats = manager.run(trace, fast_serve=fast_serve,
                                record_decisions=True)
            results.append((stats, {key: manager.buffer.priority_of(key)
                                    for key in manager.buffer.keys()},
                            manager.last_decisions))
        (fast_stats, fast_buffer, fast_dec), \
            (ref_stats, ref_buffer, ref_dec) = results
        assert fast_stats == ref_stats
        assert fast_buffer == ref_buffer
        assert fast_stats.breakdown.total == len(trace)
        assert np.array_equal(fast_dec, ref_dec)
        assert len(fast_dec) == len(trace)
        assert (int(fast_dec.sum())
                == fast_stats.breakdown.cache_hits
                + fast_stats.breakdown.prefetch_hits)


BATCH_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("batch"),
                  st.lists(st.integers(0, 20), min_size=1, max_size=12),
                  st.integers(0, 6)),
        st.tuples(st.just("evict"), st.just([]), st.just(0)),
        st.tuples(st.just("demote"), st.lists(st.integers(0, 20),
                                              min_size=1, max_size=1),
                  st.just(0)),
    ),
    min_size=1, max_size=60,
)


class TestPutBatchParity:
    @given(BATCH_OPS)
    @settings(max_examples=50, deadline=None)
    def test_batch_equals_scalar_sequence(self, ops):
        """``FastPriorityBuffer.put_batch`` must be indistinguishable
        from the scalar insert-or-set loop the reference buffer runs."""
        ref = PriorityBuffer(10)
        fast = FastPriorityBuffer(10)
        for op, keys, priority in ops:
            if op == "batch":
                new = set(k for k in keys if k not in ref)
                if len(ref) + len(new) > ref.capacity:
                    with pytest.raises(RuntimeError):
                        fast.put_batch(keys, priority)
                    continue
                ref.put_batch(keys, priority)
                fast.put_batch(keys, priority)
            elif op == "demote" and keys[0] in ref:
                ref.demote(keys[0])
                fast.demote(keys[0])
            elif op == "evict" and len(ref):
                assert ref.evict_one() == fast.evict_one()
            assert len(ref) == len(fast)
        assert sorted(ref.keys()) == sorted(fast.keys())
        for key in ref.keys():
            assert ref.priority_of(key) == fast.priority_of(key)
        while len(ref):
            assert ref.evict_one() == fast.evict_one()
