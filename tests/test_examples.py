"""Smoke tests for the ``examples/`` scripts.

Each example is imported from its file and run end to end with
``load_dataset`` patched down to a tiny synthetic scale, so the scripts
cannot silently rot as the APIs they showcase evolve.  Assertions stay
qualitative (the script runs, prints something, and leaves no
exception); the numeric behavior is covered by the unit suites.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.traces import load_dataset

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: Scale factor applied to every dataset an example loads; the
#: generator floors at 1000 accesses, which keeps training in the
#: quickstart/serving examples to a couple of seconds.
SMOKE_SCALE = 0.02


def _load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_smoke_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", [
    "quickstart",
    "cache_study",
    "compare_prefetchers",
    "inference_serving",
])
def test_example_runs_on_tiny_trace(name, monkeypatch, capsys):
    module = _load_example(name)
    assert hasattr(module, "main"), f"examples/{name}.py lost its main()"
    monkeypatch.setattr(
        module, "load_dataset",
        lambda dataset, scale=1.0: load_dataset(dataset, scale=SMOKE_SCALE))
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"examples/{name}.py printed nothing"


def test_serving_daemon_runs_on_tiny_stream(capsys):
    """The serving daemon generates its own multi-tenant stream (no
    ``load_dataset``), so it is smoke-run through its ``main()``
    keywords instead: a tiny trace, 2 shards, a 2-thread pool."""
    module = _load_example("serving_daemon")
    module.main(total_accesses=4000, num_shards=2, num_workers=2,
                max_batch_keys=256, queue_size=16, report_every=0)
    out = capsys.readouterr().out
    assert "hit rate" in out
    assert "latency ms" in out
    assert "shard utilization" in out


def test_serving_daemon_elastic_rebalancing(capsys):
    """``--rebalance N``: the daemon serves with the online elastic
    rebalancer armed and reports migration stats (count, migrated
    keys, pause) plus the final capacity split."""
    module = _load_example("serving_daemon")
    module.main(total_accesses=4000, num_shards=2, num_workers=2,
                max_batch_keys=256, queue_size=16, report_every=0,
                rebalance_interval=512)
    out = capsys.readouterr().out
    assert "elastic rebalancing" in out
    assert "final split" in out
    assert "hit rate" in out


def test_serving_daemon_model_in_the_loop(capsys):
    """``--model --retrain``: the head of the stream trains a caching
    model, the async provider refreshes priorities off the critical
    path (with online fine-tuning), and the report grows staleness and
    inference lines alongside the latency percentiles."""
    module = _load_example("serving_daemon")
    module.main(total_accesses=6000, num_shards=2, num_workers=2,
                max_batch_keys=256, queue_size=16, report_every=0,
                model=True, online_retrain=True)
    out = capsys.readouterr().out
    assert "caching model" in out
    assert "priority staleness" in out
    assert "async inference" in out
    assert "online retrains" in out
    assert "hit rate" in out
