"""Online manager (Algorithms 1-2 runtime) and the model adapter."""

import numpy as np
import pytest

from repro.core import ModelPrefetcher, RecMGManager


class TestManagerNoModels:
    def test_access_conservation(self, trained_recmg, tiny_trace,
                                 tiny_capacity):
        _, test = tiny_trace.split(0.6)
        manager = RecMGManager(tiny_capacity, trained_recmg.encoder,
                               trained_recmg.config)
        stats = manager.run(test)
        assert stats.breakdown.total == len(test)
        assert stats.prefetches_issued == 0

    def test_buffer_capacity_respected(self, trained_recmg, tiny_trace,
                                       tiny_capacity):
        _, test = tiny_trace.split(0.6)
        manager = RecMGManager(tiny_capacity, trained_recmg.encoder,
                               trained_recmg.config)
        manager.run(test)
        assert len(manager.buffer) <= tiny_capacity

    def test_rejects_bad_capacity(self, trained_recmg):
        with pytest.raises(ValueError):
            RecMGManager(0, trained_recmg.encoder, trained_recmg.config)


class TestManagerWithModels:
    def test_full_system_conserves(self, trained_recmg, tiny_trace,
                                   tiny_capacity):
        _, test = tiny_trace.split(0.6)
        stats = trained_recmg.evaluate(test, capacity=tiny_capacity)
        assert stats.breakdown.total == len(test)
        assert stats.prefetches_useful <= stats.prefetches_issued
        assert 0.0 <= stats.prefetch_accuracy <= 1.0

    def test_fast_serve_matches_reference_end_to_end(self, trained_recmg,
                                                     tiny_trace,
                                                     tiny_capacity):
        """The bulk serving pre-pass must be invisible: identical
        ManagerStats with the real trained models in the loop."""
        _, test = tiny_trace.split(0.6)
        fast = trained_recmg.evaluate(test, capacity=tiny_capacity)
        reference = trained_recmg.deploy(tiny_capacity).run(
            test, fast_serve=False)
        assert fast == reference

    def test_prefetch_hits_only_with_prefetch_model(self, trained_recmg,
                                                    tiny_trace,
                                                    tiny_capacity):
        _, test = tiny_trace.split(0.6)
        cm_only = trained_recmg.evaluate(test, capacity=tiny_capacity,
                                         use_prefetch_model=False)
        assert cm_only.breakdown.prefetch_hits == 0
        assert cm_only.prefetches_issued == 0

    def test_oracle_caching_bits_beat_plain_buffer(self, trained_recmg,
                                                   tiny_trace,
                                                   tiny_capacity):
        """Feeding OPTgen's own bits through Algorithm 1 must beat the
        model-free buffer — validates the priority plumbing."""
        from repro.core import build_labels

        _, test = tiny_trace.split(0.6)
        labels = build_labels(test, tiny_capacity, trained_recmg.config,
                              trained_recmg.encoder)

        class OracleCachingModel:
            def __init__(self, bits, length):
                self.bits = bits
                self.length = length
                self.cursor = 0

            def predict(self, chunks, sel=None):
                out = np.stack([
                    self.bits[chunks.starts[i]:chunks.starts[i] + self.length]
                    for i in sel
                ])
                return out.astype(np.int8)

        manager = RecMGManager(
            tiny_capacity, trained_recmg.encoder, trained_recmg.config,
            caching_model=OracleCachingModel(
                labels.cache_friendly, trained_recmg.config.input_len),
        )
        oracle_stats = manager.run(test)

        plain = RecMGManager(tiny_capacity, trained_recmg.encoder,
                             trained_recmg.config)
        plain_stats = plain.run(test)
        assert oracle_stats.hit_rate > plain_stats.hit_rate


class TestBufferImplKnob:
    """Backend selection threading (config knob, deploy override) and
    the clock backend's batched-reclaim serving engine."""

    def test_config_knob_selects_backend(self, trained_recmg,
                                         tiny_capacity):
        from dataclasses import replace

        from repro.cache import ClockBuffer, FastPriorityBuffer

        config = replace(trained_recmg.config, buffer_impl="clock")
        manager = RecMGManager(tiny_capacity, trained_recmg.encoder, config)
        assert isinstance(manager.buffer, ClockBuffer)
        # Explicit argument overrides the config.
        manager = RecMGManager(tiny_capacity, trained_recmg.encoder, config,
                               buffer_impl="fast")
        assert isinstance(manager.buffer, FastPriorityBuffer)
        with pytest.raises(ValueError):
            RecMGManager(tiny_capacity, trained_recmg.encoder,
                         trained_recmg.config, buffer_impl="nope")
        with pytest.raises(ValueError):
            replace(trained_recmg.config, buffer_impl="nope")

    @pytest.mark.parametrize("impl", ["reference", "fast", "clock"])
    def test_every_backend_conserves(self, trained_recmg, tiny_trace,
                                     tiny_capacity, impl):
        _, test = tiny_trace.split(0.6)
        manager = trained_recmg.deploy(tiny_capacity, buffer_impl=impl)
        stats = manager.run(test)
        assert stats.breakdown.total == len(test)
        assert len(manager.buffer) <= tiny_capacity
        assert stats.prefetches_useful <= stats.prefetches_issued

    def test_reference_backend_matches_fast_backend(self, trained_recmg,
                                                    tiny_trace,
                                                    tiny_capacity):
        """Both exact backends run different serving engines (scalar
        audit loop vs bulk pre-pass) but share Algorithm 2 semantics —
        identical ManagerStats end to end."""
        _, test = tiny_trace.split(0.6)
        fast = trained_recmg.evaluate(test, capacity=tiny_capacity,
                                      buffer_impl="fast")
        reference = trained_recmg.evaluate(test, capacity=tiny_capacity,
                                           buffer_impl="reference")
        assert fast == reference

    def test_clock_backend_close_to_exact(self, trained_recmg, tiny_trace,
                                          tiny_capacity):
        """Approximate victim order must not wreck the hit rate."""
        _, test = tiny_trace.split(0.6)
        exact = trained_recmg.evaluate(test, capacity=tiny_capacity)
        clock = trained_recmg.evaluate(test, capacity=tiny_capacity,
                                       buffer_impl="clock")
        assert clock.breakdown.total == exact.breakdown.total
        assert abs(clock.hit_rate - exact.hit_rate) < 0.08

    def test_clock_record_decisions_consistent(self, trained_recmg,
                                               tiny_trace, tiny_capacity):
        """The batched-reclaim engine's recorded hit stream must agree
        with its own counters."""
        _, test = tiny_trace.split(0.6)
        manager = trained_recmg.deploy(tiny_capacity, buffer_impl="clock")
        stats = manager.run(test, record_decisions=True)
        assert len(manager.last_decisions) == len(test)
        hits = int(manager.last_decisions.sum())
        assert hits == (stats.breakdown.cache_hits
                        + stats.breakdown.prefetch_hits)

    def test_clock_record_decisions_counters_conserved(self, trained_recmg,
                                                       tiny_trace,
                                                       tiny_capacity):
        """Recording must not perturb the batched-reclaim engine, and
        every counter must stay conserved across the reclaim loop."""
        _, test = tiny_trace.split(0.6)
        manager = trained_recmg.deploy(tiny_capacity, buffer_impl="clock")
        stats = manager.run(test, record_decisions=True)
        decisions = manager.last_decisions
        assert len(decisions) == len(test)
        hits = int(decisions.sum())
        assert hits == (stats.breakdown.cache_hits
                        + stats.breakdown.prefetch_hits)
        assert stats.breakdown.total == len(test)
        assert stats.breakdown.on_demand == len(test) - hits
        assert stats.prefetches_useful <= stats.prefetches_issued
        assert len(manager.buffer) <= tiny_capacity
        # Same run without recording: identical stats (recording is
        # observation only, never policy).
        silent = trained_recmg.deploy(tiny_capacity,
                                      buffer_impl="clock").run(test)
        assert silent == stats

    def test_apply_caching_bits_matches_scalar_loop(self, trained_recmg):
        """The vectorized chunk-boundary write (contains_batch +
        set_priority_batch/demote_batch) must be indistinguishable from
        the per-key loop: last occurrence wins for duplicate keys, and
        eviction order is preserved on the exact backends."""
        config = trained_recmg.config
        speed = config.eviction_speed
        resident = [1, 2, 3, 4, 5]
        # Duplicates with conflicting bits: key 1 flips 0 -> 1
        # (friendly wins), key 2 flips 1 -> 0 (averse wins); key 6 is
        # not resident and must be ignored.
        keys = np.array([1, 6, 2, 3, 1, 4, 2])
        bits = np.array([0, 1, 1, 0, 1, 1, 0])
        for impl in ("reference", "fast", "clock"):
            bulk = RecMGManager(8, trained_recmg.encoder, config,
                                buffer_impl=impl)
            scalar = RecMGManager(8, trained_recmg.encoder, config,
                                  buffer_impl=impl)
            for manager in (bulk, scalar):
                for key in resident:
                    manager._demand_access(key)
            bulk._apply_caching_bits(keys, bits)
            buf = scalar.buffer
            for key, bit in zip(keys.tolist(), bits.tolist()):
                if key in buf:
                    if bit:
                        buf.set_priority(key, speed + 1)
                    else:
                        buf.demote(key)
            for key in resident:
                assert (bulk.buffer.priority_of(key)
                        == scalar.buffer.priority_of(key))
            assert (bulk.buffer.evict_batch(len(resident))
                    == scalar.buffer.evict_batch(len(resident)))

    def test_clock_degenerate_segment_wider_than_buffer(self, trained_recmg,
                                                        tiny_trace):
        """Segments with more distinct keys than the whole buffer cannot
        be made eviction-free; the scalar fallback must still conserve."""
        _, test = tiny_trace.split(0.6)
        manager = RecMGManager(3, trained_recmg.encoder,
                               trained_recmg.config, buffer_impl="clock")
        stats = manager.run(test, record_decisions=True)
        assert stats.breakdown.total == len(test)
        assert len(manager.buffer) <= 3
        assert len(manager.last_decisions) == len(test)


class TestPrefetchBudget:
    def test_resident_keys_do_not_consume_budget(self, trained_recmg,
                                                 tiny_capacity):
        """Regression: ``predicted[:budget]`` used to be sliced before
        filtering resident keys, so residents ate the budget and fewer
        real prefetches issued than ``max_prefetch_per_chunk`` allows."""
        config = trained_recmg.config
        budget = config.max_prefetch_per_chunk
        capacity = max(tiny_capacity, 3 * budget)
        manager = RecMGManager(capacity, trained_recmg.encoder, config)
        resident = list(range(budget))
        for key in resident:
            manager._demand_access(key)
        fresh = list(range(1000, 1000 + 2 * budget))
        manager._apply_prefetches(np.asarray(resident + fresh))
        assert manager.prefetches_issued == budget
        assert all(key in manager.buffer for key in fresh[:budget])

    def test_budget_still_caps_real_fills(self, trained_recmg,
                                          tiny_capacity):
        config = trained_recmg.config
        budget = config.max_prefetch_per_chunk
        capacity = max(tiny_capacity, 3 * budget)
        manager = RecMGManager(capacity, trained_recmg.encoder, config)
        fresh = list(range(1000, 1000 + 2 * budget))
        manager._apply_prefetches(np.asarray(fresh))
        assert manager.prefetches_issued == budget
        assert len(manager.buffer) == budget


class TestModelPrefetcherAdapter:
    def test_emits_on_chunk_boundary(self, trained_recmg):
        config = trained_recmg.config
        adapter = ModelPrefetcher(trained_recmg.prefetch_model,
                                  trained_recmg.encoder, config)
        outputs = []
        for i in range(config.input_len * 3):
            outputs.append(adapter.observe(i % 50, pc=0))
        emitted = [o for o in outputs if o]
        assert len(emitted) >= 2
        assert all(len(o) <= config.max_prefetch_per_chunk for o in emitted)

    def test_reset_clears_state(self, trained_recmg):
        adapter = ModelPrefetcher(trained_recmg.prefetch_model,
                                  trained_recmg.encoder, trained_recmg.config)
        for i in range(5):
            adapter.observe(i)
        adapter.reset()
        assert adapter._step == 0
        assert len(adapter._dense) == 0

    def test_fires_exactly_every_input_len(self, trained_recmg):
        """Chunk alignment: predictions fire at steps input_len,
        2*input_len, ... and nowhere else."""
        config = trained_recmg.config
        adapter = ModelPrefetcher(trained_recmg.prefetch_model,
                                  trained_recmg.encoder, config)
        fired = []
        for step in range(1, 4 * config.input_len + 3):
            out = adapter.observe(step % 50, pc=0)
            if out:
                fired.append(step)
        assert fired == [config.input_len * k for k in range(1, 5)]

    def test_alignment_restarts_after_reset(self, trained_recmg):
        """A mid-chunk reset() must realign: the next prediction fires
        exactly input_len observations later, not on the stale phase."""
        config = trained_recmg.config
        adapter = ModelPrefetcher(trained_recmg.prefetch_model,
                                  trained_recmg.encoder, config)
        for i in range(config.input_len // 2 + 1):  # partial chunk
            assert adapter.observe(i) == []
        adapter.reset()
        fired = []
        for step in range(1, 2 * config.input_len + 1):
            if adapter.observe(step % 50, pc=0):
                fired.append(step)
        assert fired == [config.input_len, 2 * config.input_len]

    def test_streaming_matches_direct_chunk_inference(self, trained_recmg):
        """Equivalence: feeding the adapter one access at a time must
        reproduce ``predict_single`` on each aligned chunk."""
        config = trained_recmg.config
        encoder = trained_recmg.encoder
        model = trained_recmg.prefetch_model
        adapter = ModelPrefetcher(model, encoder, config)
        rng = np.random.default_rng(9)
        keys = rng.integers(0, max(2, encoder.vocab_size), size=3 * config.input_len)
        tables = rng.integers(0, max(1, encoder.num_tables), size=keys.size)
        streamed = []
        for key, table in zip(keys.tolist(), tables.tolist()):
            out = adapter.observe(key, pc=table)
            if out:
                streamed.append(out)
        expected = []
        for start in range(0, keys.size, config.input_len):
            dense = np.asarray(keys[start:start + config.input_len],
                               dtype=np.int64)
            chunk_tables = (tables[start:start + config.input_len]
                            % max(1, encoder.num_tables))
            predicted = model.predict_single(
                chunk_tables.astype(np.int64),
                dense % config.hash_buckets,
                encoder.normalize(dense),
                encoder.freq_values(dense),
                encoder,
            )
            expected.append(
                [int(p) for p in predicted[:config.max_prefetch_per_chunk]])
        assert streamed == expected
