"""Online manager (Algorithms 1-2 runtime) and the model adapter."""

import numpy as np
import pytest

from repro.cache import LRUCache, capacity_from_fraction, simulate
from repro.core import ManagerStats, ModelPrefetcher, RecMGManager
from repro.core.manager import RecMGManager as ManagerClass


class TestManagerNoModels:
    def test_access_conservation(self, trained_recmg, tiny_trace,
                                 tiny_capacity):
        _, test = tiny_trace.split(0.6)
        manager = RecMGManager(tiny_capacity, trained_recmg.encoder,
                               trained_recmg.config)
        stats = manager.run(test)
        assert stats.breakdown.total == len(test)
        assert stats.prefetches_issued == 0

    def test_buffer_capacity_respected(self, trained_recmg, tiny_trace,
                                       tiny_capacity):
        _, test = tiny_trace.split(0.6)
        manager = RecMGManager(tiny_capacity, trained_recmg.encoder,
                               trained_recmg.config)
        manager.run(test)
        assert len(manager.buffer) <= tiny_capacity

    def test_rejects_bad_capacity(self, trained_recmg):
        with pytest.raises(ValueError):
            RecMGManager(0, trained_recmg.encoder, trained_recmg.config)


class TestManagerWithModels:
    def test_full_system_conserves(self, trained_recmg, tiny_trace,
                                   tiny_capacity):
        _, test = tiny_trace.split(0.6)
        stats = trained_recmg.evaluate(test, capacity=tiny_capacity)
        assert stats.breakdown.total == len(test)
        assert stats.prefetches_useful <= stats.prefetches_issued
        assert 0.0 <= stats.prefetch_accuracy <= 1.0

    def test_prefetch_hits_only_with_prefetch_model(self, trained_recmg,
                                                    tiny_trace,
                                                    tiny_capacity):
        _, test = tiny_trace.split(0.6)
        cm_only = trained_recmg.evaluate(test, capacity=tiny_capacity,
                                         use_prefetch_model=False)
        assert cm_only.breakdown.prefetch_hits == 0
        assert cm_only.prefetches_issued == 0

    def test_oracle_caching_bits_beat_plain_buffer(self, trained_recmg,
                                                   tiny_trace,
                                                   tiny_capacity):
        """Feeding OPTgen's own bits through Algorithm 1 must beat the
        model-free buffer — validates the priority plumbing."""
        from repro.core import build_labels

        _, test = tiny_trace.split(0.6)
        labels = build_labels(test, tiny_capacity, trained_recmg.config,
                              trained_recmg.encoder)

        class OracleCachingModel:
            def __init__(self, bits, length):
                self.bits = bits
                self.length = length
                self.cursor = 0

            def predict(self, chunks, sel=None):
                out = np.stack([
                    self.bits[chunks.starts[i]:chunks.starts[i] + self.length]
                    for i in sel
                ])
                return out.astype(np.int8)

        manager = RecMGManager(
            tiny_capacity, trained_recmg.encoder, trained_recmg.config,
            caching_model=OracleCachingModel(
                labels.cache_friendly, trained_recmg.config.input_len),
        )
        oracle_stats = manager.run(test)

        plain = RecMGManager(tiny_capacity, trained_recmg.encoder,
                             trained_recmg.config)
        plain_stats = plain.run(test)
        assert oracle_stats.hit_rate > plain_stats.hit_rate


class TestModelPrefetcherAdapter:
    def test_emits_on_chunk_boundary(self, trained_recmg):
        config = trained_recmg.config
        adapter = ModelPrefetcher(trained_recmg.prefetch_model,
                                  trained_recmg.encoder, config)
        outputs = []
        for i in range(config.input_len * 3):
            outputs.append(adapter.observe(i % 50, pc=0))
        emitted = [o for o in outputs if o]
        assert len(emitted) >= 2
        assert all(len(o) <= config.max_prefetch_per_chunk for o in emitted)

    def test_reset_clears_state(self, trained_recmg):
        adapter = ModelPrefetcher(trained_recmg.prefetch_model,
                                  trained_recmg.encoder, trained_recmg.config)
        for i in range(5):
            adapter.observe(i)
        adapter.reset()
        assert adapter._step == 0
        assert len(adapter._dense) == 0
