"""Shared fixtures: small traces and a tiny trained RecMG system.

Session-scoped so expensive artifacts (trace generation, model training)
are built once for the whole suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import capacity_from_fraction
from repro.core import RecMG, RecMGConfig
from repro.traces import SyntheticTraceConfig, generate_trace


def pytest_configure(config):
    if not config.pluginmanager.hasplugin("timeout"):
        # pytest-timeout is a CI dependency (requirements-ci.txt); when
        # it is absent locally the marker must still be known so the
        # concurrency suite runs warning-free (the limit is then simply
        # not enforced).
        config.addinivalue_line(
            "markers",
            "timeout(seconds): per-test wall-clock limit, enforced by "
            "pytest-timeout where installed (a hung worker/queue test "
            "fails instead of wedging CI)")


TINY_CONFIG = SyntheticTraceConfig(
    num_tables=4,
    rows_per_table=512,
    num_accesses=6000,
    num_clusters=24,
    cluster_block=8,
    periodic_items=200,
    periodic_spacing=6,
    seed=3,
)


@pytest.fixture(scope="session")
def tiny_trace():
    return generate_trace(TINY_CONFIG)


@pytest.fixture(scope="session")
def tiny_capacity(tiny_trace):
    return capacity_from_fraction(tiny_trace, 0.20)


@pytest.fixture(scope="session")
def tiny_recmg_config():
    return RecMGConfig(
        input_len=10,
        output_len=4,
        window_ratio=3,
        embed_dim=8,
        hidden=16,
        hash_buckets=256,
        caching_epochs=1,
        prefetch_epochs=1,
        max_train_chunks=120,
        batch_size=16,
    )


@pytest.fixture(scope="session")
def trained_recmg(tiny_trace, tiny_capacity, tiny_recmg_config):
    """A RecMG system trained briefly on the tiny trace's first half."""
    train, _ = tiny_trace.split(0.6)
    system = RecMG(tiny_recmg_config)
    system.fit(train, buffer_capacity=tiny_capacity)
    return system


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
