"""Gradient checks and semantics of the autograd core."""

import numpy as np
import pytest

from repro.nn import (
    Tensor, concat, stack, softmax, log_softmax, bce_with_logits,
    cross_entropy, chamfer_loss, chamfer_directed, unbroadcast,
)


def numeric_gradient(fn, x0, eps=1e-6):
    grad = np.zeros_like(x0)
    flat = x0.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = fn(Tensor(x0)).item()
        flat[i] = orig - eps
        minus = fn(Tensor(x0)).item()
        flat[i] = orig
        grad.ravel()[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(fn, x0, tol=1e-4):
    x = Tensor(x0.copy(), requires_grad=True)
    fn(x).backward()
    numeric = numeric_gradient(fn, x0)
    assert np.max(np.abs(numeric - x.grad)) < tol


class TestElementwiseGradients:
    def test_tanh(self, rng):
        check_gradient(lambda x: x.tanh().sum(), rng.normal(size=(3, 4)))

    def test_sigmoid(self, rng):
        check_gradient(lambda x: x.sigmoid().sum(), rng.normal(size=(3, 4)))

    def test_exp_log(self, rng):
        check_gradient(lambda x: (x.exp() + 1.0).log().sum(),
                       rng.normal(size=(2, 3)))

    def test_relu(self, rng):
        # Avoid the kink at exactly zero.
        x0 = rng.normal(size=(3, 4))
        x0[np.abs(x0) < 0.1] = 0.5
        check_gradient(lambda x: x.relu().sum(), x0)

    def test_abs(self, rng):
        x0 = rng.normal(size=(3, 4))
        x0[np.abs(x0) < 0.1] = 0.5
        check_gradient(lambda x: x.abs().sum(), x0)

    def test_pow(self, rng):
        check_gradient(lambda x: (x ** 3.0).sum(), rng.normal(size=(2, 2)))

    def test_division(self, rng):
        x0 = rng.normal(size=(2, 3)) + 3.0
        check_gradient(lambda x: (1.0 / x).sum(), x0)


class TestMatmulGradients:
    def test_2d_2d(self, rng):
        w = Tensor(rng.normal(size=(4, 5)))
        check_gradient(lambda x: (x @ w).sum(), rng.normal(size=(3, 4)))

    def test_2d_2d_right(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        check_gradient(lambda x: (a @ x).sum(), rng.normal(size=(4, 5)))

    def test_batched_3d(self, rng):
        b = Tensor(rng.normal(size=(2, 4, 5)))
        check_gradient(lambda x: (x @ b).sum(), rng.normal(size=(2, 3, 4)))

    def test_3d_with_shared_2d(self, rng):
        w = rng.normal(size=(4, 4))
        check_gradient(lambda x: ((x @ Tensor(w)).tanh()).sum(),
                       rng.normal(size=(2, 3, 4)))

    def test_shared_2d_weight_gradient(self, rng):
        # Gradient wrt the broadcast weight must sum over the batch.
        x = Tensor(rng.normal(size=(2, 3, 4)))
        check_gradient(lambda w: (x @ w).sum(), rng.normal(size=(4, 5)))


class TestReductionsAndShapes:
    def test_sum_axis(self, rng):
        check_gradient(lambda x: (x.sum(axis=1) ** 2.0).sum(),
                       rng.normal(size=(3, 4)))

    def test_mean_keepdims(self, rng):
        check_gradient(lambda x: (x - x.mean(axis=1, keepdims=True)
                                  ).pow(2.0).sum(),
                       rng.normal(size=(3, 4)))

    def test_max_axis(self, rng):
        x0 = rng.normal(size=(3, 5))
        check_gradient(lambda x: x.max(axis=1).sum(), x0)

    def test_min_axis(self, rng):
        x0 = rng.normal(size=(3, 5))
        check_gradient(lambda x: x.min(axis=1).sum(), x0)

    def test_reshape_transpose(self, rng):
        check_gradient(
            lambda x: (x.reshape(4, 3).transpose(1, 0) ** 2.0).sum(),
            rng.normal(size=(2, 6)),
        )

    def test_getitem_fancy(self, rng):
        rows = np.array([0, 1, 1])
        cols = np.array([2, 0, 2])
        check_gradient(lambda x: x[rows, cols].sum(), rng.normal(size=(2, 3)))

    def test_take_rows_accumulates_duplicates(self, rng):
        w = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        out = w.take_rows(np.array([1, 1, 3]))
        out.sum().backward()
        assert np.allclose(w.grad[1], [2.0, 2.0])
        assert np.allclose(w.grad[3], [1.0, 1.0])
        assert np.allclose(w.grad[0], 0.0)

    def test_concat_gradient(self, rng):
        a0 = rng.normal(size=(2, 3))
        b = Tensor(rng.normal(size=(2, 2)))
        check_gradient(lambda x: (concat([x, b], axis=1) ** 2.0).sum(), a0)

    def test_stack_gradient(self, rng):
        b = Tensor(rng.normal(size=(2, 3)))
        check_gradient(lambda x: (stack([x, b], axis=1) ** 2.0).sum(),
                       rng.normal(size=(2, 3)))


class TestLossGradients:
    def test_softmax_rows_sum_to_one(self, rng):
        probs = softmax(Tensor(rng.normal(size=(5, 7))), axis=-1)
        assert np.allclose(probs.data.sum(axis=-1), 1.0)

    def test_log_softmax_gradient(self, rng):
        mult = Tensor(rng.normal(size=(3, 4)))
        check_gradient(lambda x: (log_softmax(x, axis=-1) * mult).sum(),
                       rng.normal(size=(3, 4)))

    def test_bce_gradient(self, rng):
        targets = Tensor((rng.random((3, 4)) > 0.5).astype(float))
        check_gradient(lambda x: bce_with_logits(x, targets),
                       rng.normal(size=(3, 4)))

    def test_bce_matches_naive_formula(self, rng):
        logits = rng.normal(size=(4, 3))
        targets = (rng.random((4, 3)) > 0.5).astype(float)
        stable = bce_with_logits(Tensor(logits), Tensor(targets)).item()
        probs = 1 / (1 + np.exp(-logits))
        naive = -(targets * np.log(probs)
                  + (1 - targets) * np.log(1 - probs)).mean()
        assert abs(stable - naive) < 1e-9

    def test_cross_entropy_gradient(self, rng):
        labels = np.array([1, 0, 3])
        check_gradient(lambda x: cross_entropy(x, labels),
                       rng.normal(size=(3, 5)))

    def test_chamfer_scalar_gradient(self, rng):
        window = Tensor(rng.normal(size=(2, 8)))
        check_gradient(lambda x: chamfer_loss(x, window),
                       rng.normal(size=(2, 4)), tol=1e-3)

    def test_chamfer_vector_gradient(self, rng):
        window = Tensor(rng.normal(size=(2, 6, 3)))
        check_gradient(lambda x: chamfer_loss(x, window),
                       rng.normal(size=(2, 4, 3)), tol=1e-3)

    def test_chamfer_zero_when_identical(self, rng):
        points = rng.normal(size=(2, 4))
        loss = chamfer_loss(Tensor(points), Tensor(points.copy()))
        assert loss.item() < 1e-12

    def test_chamfer_directed_matches_manual(self, rng):
        a = np.array([[1.0, 5.0]])
        b = np.array([[2.0, 7.0, 100.0]])
        # 1->2 (1.0), 5->7 (2.0): sum = 3.0
        value = chamfer_directed(Tensor(a), Tensor(b)).item()
        assert abs(value - 3.0) < 1e-12


class TestMechanics:
    def test_backward_requires_scalar(self):
        with pytest.raises(ValueError):
            Tensor(np.ones(3), requires_grad=True).backward()

    def test_gradient_accumulates_over_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        assert np.allclose(x.grad, [7.0])

    def test_detach_cuts_graph(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = (x * 3.0).detach() * x
        y.backward()
        assert np.allclose(x.grad, [6.0])  # only the second factor

    def test_unbroadcast_shapes(self):
        grad = np.ones((4, 3, 5))
        assert unbroadcast(grad, (3, 5)).shape == (3, 5)
        assert unbroadcast(grad, (1, 5)).shape == (1, 5)
        assert np.allclose(unbroadcast(grad, (3, 5)), 4.0)
