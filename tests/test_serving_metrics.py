"""Edge-case tests for :mod:`repro.serving.metrics`.

The serving daemon and the perf benches read ``summary()`` at
arbitrary moments — including before any traffic and after exactly one
batch — so the empty/single-sample behavior is part of the contract:
every field must be present and finite with no samples recorded, and
single-sample percentiles must collapse to that sample rather than
interpolate garbage.  The inference/staleness stat families added for
the priority providers get the same treatment.
"""

import numpy as np
import pytest

from repro.serving import LatencyWindow, ServingMetrics


# ----------------------------------------------------------------------
# LatencyWindow
# ----------------------------------------------------------------------
def test_empty_window_percentiles_are_zero():
    window = LatencyWindow(window=16)
    assert window.percentile(50.0) == 0.0
    assert window.percentiles([50.0, 95.0, 99.0]) == {
        50.0: 0.0, 95.0: 0.0, 99.0: 0.0}
    assert window.mean_seconds == 0.0
    assert window.count == 0


def test_single_sample_percentiles_collapse_to_it():
    window = LatencyWindow(window=16)
    window.record(0.25)
    for q in (1.0, 50.0, 95.0, 99.0, 100.0):
        assert window.percentile(q) == pytest.approx(0.25)
    assert window.mean_seconds == pytest.approx(0.25)


def test_window_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        LatencyWindow(window=0)


def test_ring_wrap_keeps_only_recent_samples():
    """Percentiles track the current regime: once the ring wraps, old
    samples stop influencing them while count/total keep full history."""
    window = LatencyWindow(window=4)
    for _ in range(8):
        window.record(100.0)  # ancient slow regime
    for _ in range(4):
        window.record(1.0)    # current fast regime fills the ring
    assert window.percentile(99.0) == pytest.approx(1.0)
    assert window.count == 12
    assert window.total_seconds == pytest.approx(8 * 100.0 + 4 * 1.0)


# ----------------------------------------------------------------------
# ServingMetrics summary stability
# ----------------------------------------------------------------------
def test_summary_is_stable_with_no_samples():
    metrics = ServingMetrics()
    summary = metrics.summary()
    assert summary["batches"] == 0
    assert summary["keys_served"] == 0
    for key in ("latency_p50_ms", "latency_p95_ms", "latency_p99_ms",
                "latency_mean_ms", "queue_depth_mean",
                "inflight_depth_mean", "inference_mean_ms",
                "inference_max_ms", "staleness_mean"):
        assert summary[key] == 0.0, key
    assert summary["queue_depth_max"] == 0
    assert summary["inflight_depth_max"] == 0
    assert summary["inference_batches"] == 0
    assert summary["staleness_max"] == 0
    assert summary["batch_size_histogram"] == {}
    # No busy time recorded: the throughput key is absent, not inf/nan.
    assert "keys_per_sec_busy" not in summary


def test_zero_busy_seconds_never_divides():
    """A recorded batch of zero seconds must not produce inf/nan
    throughput — the keys_per_sec_busy key is simply withheld."""
    metrics = ServingMetrics()
    metrics.record_batch(128, 0.0)
    summary = metrics.summary()
    assert summary["batches"] == 1
    assert "keys_per_sec_busy" not in summary
    assert summary["latency_mean_ms"] == 0.0


def test_single_batch_summary():
    metrics = ServingMetrics()
    metrics.record_batch(100, 0.010, queue_depth=3, inflight_depth=2)
    summary = metrics.summary()
    assert summary["latency_p50_ms"] == pytest.approx(10.0)
    assert summary["latency_p99_ms"] == pytest.approx(10.0)
    assert summary["queue_depth_mean"] == pytest.approx(3.0)
    assert summary["inflight_depth_max"] == 2
    assert summary["batch_size_histogram"] == {"64-127": 1}
    assert summary["keys_per_sec_busy"] == pytest.approx(100 / 0.010)


def test_shard_utilization_against_explicit_wall():
    metrics = ServingMetrics()
    metrics.record_batch(10, 0.001)
    summary = metrics.summary(shard_busy_seconds=[0.5, 0.25],
                              wall_seconds=1.0)
    assert summary["shard_utilization"] == [
        pytest.approx(0.5), pytest.approx(0.25)]


# ----------------------------------------------------------------------
# Inference / staleness families (priority providers)
# ----------------------------------------------------------------------
def test_record_inference_accumulates():
    metrics = ServingMetrics()
    metrics.record_inference(0.004, keys=512)
    metrics.record_inference(0.010, keys=256)
    assert metrics.inference_batches == 2
    assert metrics.inference_keys == 768
    assert metrics.inference_mean_ms == pytest.approx(7.0)
    summary = metrics.summary()
    assert summary["inference_batches"] == 2
    assert summary["inference_mean_ms"] == pytest.approx(7.0)
    assert summary["inference_max_ms"] == pytest.approx(10.0)


def test_record_staleness_accumulates():
    metrics = ServingMetrics()
    for blocks in (0, 3, 1):
        metrics.record_staleness(blocks)
    assert metrics.staleness_samples == 3
    assert metrics.staleness_mean == pytest.approx(4 / 3)
    summary = metrics.summary()
    assert summary["staleness_mean"] == pytest.approx(4 / 3)
    assert summary["staleness_max"] == 3


def test_summary_is_json_ready():
    import json

    metrics = ServingMetrics()
    metrics.record_batch(64, 0.002, queue_depth=1)
    metrics.record_inference(0.003, keys=64)
    metrics.record_staleness(2)
    encoded = json.dumps(metrics.summary(shard_busy_seconds=[0.1],
                                         wall_seconds=1.0))
    assert isinstance(json.loads(encoded), dict)
