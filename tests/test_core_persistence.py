"""Round-tripping a trained RecMG system through disk."""

import numpy as np
import pytest

from repro.core import RecMG
from repro.core.persistence import load_recmg, save_recmg


class TestPersistence:
    def test_save_requires_fitted(self, tiny_recmg_config, tmp_path):
        with pytest.raises(RuntimeError):
            save_recmg(RecMG(tiny_recmg_config), tmp_path / "x.npz")

    def test_roundtrip_predictions_identical(self, trained_recmg, tiny_trace,
                                             tmp_path):
        path = tmp_path / "recmg.npz"
        save_recmg(trained_recmg, path)
        restored = load_recmg(path)

        assert restored.fitted
        assert restored.encoder.vocab_size == trained_recmg.encoder.vocab_size

        chunks_a = trained_recmg.encoder.encode_chunks(tiny_trace.head(300))
        chunks_b = restored.encoder.encode_chunks(tiny_trace.head(300))
        sel = np.arange(min(8, len(chunks_a)))
        assert np.array_equal(
            trained_recmg.caching_model.predict(chunks_a, sel=sel),
            restored.caching_model.predict(chunks_b, sel=sel),
        )
        assert np.array_equal(
            trained_recmg.prefetch_model.predict_indices(
                chunks_a, trained_recmg.encoder, sel=sel),
            restored.prefetch_model.predict_indices(
                chunks_b, restored.encoder, sel=sel),
        )

    def test_roundtrip_deployment_identical(self, trained_recmg, tiny_trace,
                                            tiny_capacity, tmp_path):
        path = tmp_path / "recmg.npz"
        save_recmg(trained_recmg, path)
        restored = load_recmg(path)
        _, test = tiny_trace.split(0.6)
        original = trained_recmg.evaluate(test.head(800),
                                          capacity=tiny_capacity)
        replayed = restored.evaluate(test.head(800), capacity=tiny_capacity)
        assert original.hit_rate == pytest.approx(replayed.hit_rate)
        assert (original.breakdown.fractions()
                == replayed.breakdown.fractions())
