"""Caching and prefetch model architecture."""

import numpy as np
import pytest

from repro.core import CachingModel, FeatureEncoder, PrefetchModel
from repro.core.prefetch_model import BucketDecoder


@pytest.fixture(scope="module")
def setup(tiny_trace, tiny_recmg_config):
    encoder = FeatureEncoder(tiny_recmg_config).fit(tiny_trace)
    chunks = encoder.encode_chunks(tiny_trace.head(600))
    return tiny_recmg_config, encoder, chunks


class TestCachingModel:
    def test_logit_shape(self, setup, rng):
        config, encoder, chunks = setup
        model = CachingModel(config, encoder.num_tables, rng=rng)
        logits = model(chunks, sel=np.arange(4))
        assert logits.shape == (4, config.input_len)

    def test_predict_binary(self, setup, rng):
        config, encoder, chunks = setup
        model = CachingModel(config, encoder.num_tables, rng=rng)
        bits = model.predict(chunks, sel=np.arange(3))
        assert set(np.unique(bits)).issubset({0, 1})

    def test_predict_single_matches_batch(self, setup, rng):
        config, encoder, chunks = setup
        model = CachingModel(config, encoder.num_tables, rng=rng)
        single = model.predict_single(
            chunks.table_ids[0], chunks.hashed_rows[0],
            chunks.norm_index[0], chunks.freq[0],
        )
        batch = model.predict(chunks, sel=np.arange(1))[0]
        assert np.array_equal(single, batch)

    def test_stacks_grow_parameters(self, setup, rng):
        config, encoder, _ = setup
        from dataclasses import replace
        one = CachingModel(replace(config, caching_stacks=1),
                           encoder.num_tables, rng=rng)
        two = CachingModel(replace(config, caching_stacks=2),
                           encoder.num_tables, rng=rng)
        assert two.num_parameters() > one.num_parameters()


class TestPrefetchModel:
    def test_forward_shapes(self, setup, rng):
        config, encoder, chunks = setup
        model = PrefetchModel(config, encoder.num_tables, rng=rng)
        logits = model.forward_logits(chunks, sel=np.arange(4))
        assert logits.shape == (4, config.output_len, config.hash_buckets)
        points = model(chunks, sel=np.arange(4))
        assert points.shape == (4, config.output_len, config.embed_dim)

    def test_predict_requires_decoder(self, setup, rng):
        config, encoder, chunks = setup
        model = PrefetchModel(config, encoder.num_tables, rng=rng)
        with pytest.raises(RuntimeError):
            model.predict_indices(chunks, encoder, sel=np.arange(1))

    def test_predict_with_decoder(self, setup, rng):
        config, encoder, chunks = setup
        model = PrefetchModel(config, encoder.num_tables, rng=rng)
        miss_ids = rng.integers(0, encoder.vocab_size, size=100)
        model.set_decoder(BucketDecoder.from_miss_ids(miss_ids,
                                                      config.hash_buckets))
        predicted = model.predict_indices(chunks, encoder, sel=np.arange(3))
        assert predicted.shape == (3, config.output_len)
        assert predicted.min() >= 0
        assert predicted.max() < encoder.vocab_size

    def test_target_points_shape(self, setup, rng):
        config, encoder, _ = setup
        model = PrefetchModel(config, encoder.num_tables, rng=rng)
        window = rng.integers(0, config.hash_buckets, size=(3, 7))
        points = model.target_points(window)
        assert points.shape == (3, 7, config.embed_dim)
        assert not points.requires_grad


class TestBucketDecoder:
    def test_hot_candidate_wins_bucket(self):
        # ids 5 and 5+K hash to the same bucket; 5 misses more often.
        K = 64
        miss_ids = np.array([5] * 4 + [5 + K] * 2 + [7])
        decoder = BucketDecoder.from_miss_ids(miss_ids, K)
        assert decoder.bucket_hot[5] == 5
        assert decoder.bucket_hot[7] == 7

    def test_decode_buckets_masks_empty(self):
        K = 8
        decoder = BucketDecoder.from_miss_ids(np.array([3]), K)
        logits = np.zeros((2, K))
        logits[:, 5] = 10.0  # highest score but bucket 5 has no candidate
        out = decoder.decode_buckets(logits)
        assert np.all(out == 3)

    def test_decode_nearest_codeword(self, rng):
        K, D = 8, 4
        codebook = rng.normal(size=(K, D))
        decoder = BucketDecoder.from_miss_ids(np.arange(K), K)
        out = decoder.decode(codebook[2].reshape(1, D), codebook)
        assert out[0] == 2
