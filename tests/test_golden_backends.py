"""Golden end-to-end regression: committed per-backend counters.

A fixed-seed synthetic trace is served by every manager backend (and
the LRU harness) and the resulting hit/miss/eviction counters are
checked against values committed here.  Hot-path rewrites are supposed
to be *behaviorally invisible* — the exact backends bit-for-bit, the
clock backend stable under its own contract — so any silent policy
shift (a changed victim order, a misclassified access, an off-by-one
in batch accounting) breaks this file loudly instead of drifting the
paper's figures.

The clock goldens were last regenerated when the single-shard
batched-reclaim engine adopted *protected* eviction
(``evict_batch(avoid=segment)``, matching the sharded sub-engine):
victims can no longer collide with the segment being served, which
legitimately raises clock hits (7616 -> 7638 here; larger on looping
workloads — see ``benchmarks/test_perf_hotpaths.py``).

If a change legitimately alters policy behavior (it should say so in
its PR), regenerate the constants by running the printed expressions
— every entry is a plain (cache_hits, on_demand, evictions) tuple.
"""

import pytest

from repro.core import RecMGConfig
from repro.core.features import FeatureEncoder
from repro.core.manager import RecMGManager
from repro.prefetch import run_breakdown
from repro.traces import SyntheticTraceConfig, generate_trace

#: (cache_hits, on_demand, evictions) per (buffer_impl, key_space mode)
#: at a 20% buffer on the golden trace below.  The exact trio must
#: stay identical to each other *and* to these values; the clock pair
#: approximates (its own committed values, also mode-identical).
GOLDEN_MANAGER = {
    ("reference", "auto"): (7666, 4334, 4137),
    ("fast", None): (7666, 4334, 4137),
    ("fast", "auto"): (7666, 4334, 4137),
    ("clock", None): (7638, 4362, 4165),
    ("clock", "auto"): (7638, 4362, 4165),
}

#: (cache_hits, on_demand, evictions) per (buffer_impl, num_shards,
#: shard_policy) sharded manager config at the same 20% total capacity
#: on the golden trace.  Sharded serving is legitimately its own
#: policy: capacity splits per shard (so eviction pressure is local)
#: and the clock engine pre-reclaims with *protected* eviction — hence
#: the clock rows beat the unsharded clock golden, while the exact
#: rows stay within noise of the exact trio (per-shard exact serving of
#: a partitioned stream).
GOLDEN_SHARDED = {
    ("fast", 2, "contiguous"): (7666, 4334, 4137),
    ("fast", 2, "modulo"): (7655, 4345, 4148),
    ("fast", 4, "contiguous"): (7674, 4326, 4129),
    ("fast", 4, "modulo"): (7668, 4332, 4135),
    ("clock", 2, "contiguous"): (8358, 3642, 3445),
    ("clock", 2, "modulo"): (8375, 3625, 3428),
    ("clock", 4, "contiguous"): (8257, 3743, 3546),
    ("clock", 4, "modulo"): (8264, 3736, 3539),
}

#: (cache_hits, on_demand, evictions, rebalance_count, migrated_keys)
#: per (buffer_impl, rebalance_interval) for the 4-shard contiguous
#: manager on the *drifting-hot-band* trace below (20% capacity).
#: ``interval=0`` is the static-split baseline; ``interval=1024`` runs
#: the online elastic rebalancer (threshold 0.05).  These pin the
#: whole migration path end to end — EWMA trigger, barrier, export/
#: re-route/import, donor shrink — and the committed rows double as
#: the decision-identity golden: any reordering of migrated entries'
#: eviction state shifts the downstream victim stream and these
#: counters with it.  The adaptive row must also *beat* its static
#: sibling (the self-consistency test below), mirroring the gated
#: drifting-hot-band bench in ``benchmarks/test_perf_hotpaths.py``.
GOLDEN_REBALANCED = {
    ("fast", 0): (8171, 3829, 3516, 0, 0),
    ("fast", 1024): (9209, 2791, 2478, 1, 65),
    ("clock", 0): (8621, 3379, 3066, 0, 0),
    ("clock", 1024): (9493, 2507, 2194, 1, 65),
}

#: (cache_hits, on_demand) for the no-prefetcher LRU harness on the
#: same trace/capacity: closed form == simulation (exact LRU), clock =
#: second-chance approximation.
GOLDEN_LRU = (7666, 4334)
GOLDEN_LRU_CLOCK = (7632, 4368)


@pytest.fixture(scope="module")
def golden_trace():
    config = SyntheticTraceConfig(
        num_tables=4, rows_per_table=512, num_accesses=12_000,
        num_clusters=16, cluster_block=8, periodic_items=120,
        periodic_spacing=7, seed=20260730,
    )
    return generate_trace(config)


@pytest.fixture(scope="module")
def golden_capacity(golden_trace):
    return max(1, int(golden_trace.num_unique * 0.2))


@pytest.mark.parametrize("impl,key_space", sorted(GOLDEN_MANAGER,
                                                  key=repr))
def test_manager_backend_matches_golden(golden_trace, golden_capacity,
                                        impl, key_space):
    config = RecMGConfig()
    encoder = FeatureEncoder(config).fit(golden_trace)
    manager = RecMGManager(golden_capacity, encoder, config,
                           buffer_impl=impl, key_space=key_space)
    stats = manager.run(golden_trace)
    observed = (stats.breakdown.cache_hits, stats.breakdown.on_demand,
                stats.evictions)
    assert observed == GOLDEN_MANAGER[(impl, key_space)], (
        f"{impl!r}/key_space={key_space!r} shifted policy behavior: "
        f"{observed} != committed golden")
    assert stats.breakdown.total == len(golden_trace)
    assert stats.breakdown.prefetch_hits == 0  # no models deployed


@pytest.mark.parametrize("impl,num_shards,policy",
                         sorted(GOLDEN_SHARDED, key=repr))
def test_sharded_manager_matches_golden(golden_trace, golden_capacity,
                                        impl, num_shards, policy):
    config = RecMGConfig()
    encoder = FeatureEncoder(config).fit(golden_trace)
    manager = RecMGManager(golden_capacity, encoder, config,
                           buffer_impl=impl, num_shards=num_shards,
                           shard_policy=policy)
    stats = manager.run(golden_trace)
    observed = (stats.breakdown.cache_hits, stats.breakdown.on_demand,
                stats.evictions)
    assert observed == GOLDEN_SHARDED[(impl, num_shards, policy)], (
        f"{impl!r}/{num_shards} shards/{policy!r} shifted sharded "
        f"policy behavior: {observed} != committed golden")
    assert stats.breakdown.total == len(golden_trace)
    assert stats.breakdown.prefetch_hits == 0  # no models deployed
    # Per-shard capacities partition the total exactly.
    assert sum(manager.buffer.shard_capacities) == golden_capacity


@pytest.fixture(scope="module")
def drifting_trace():
    from repro.traces.synthetic import generate_drifting_hot_band_trace

    config = SyntheticTraceConfig(
        num_tables=4, rows_per_table=512, num_accesses=12_000,
        seed=20260730,
    )
    return generate_drifting_hot_band_trace(config, num_shards=4)


@pytest.mark.parametrize("impl,interval", sorted(GOLDEN_REBALANCED,
                                                 key=repr))
def test_rebalanced_manager_matches_golden(drifting_trace, impl,
                                           interval):
    config = RecMGConfig()
    encoder = FeatureEncoder(config).fit(drifting_trace)
    capacity = max(1, int(drifting_trace.num_unique * 0.2))
    manager = RecMGManager(capacity, encoder, config, buffer_impl=impl,
                           num_shards=4, shard_policy="contiguous",
                           rebalance_interval=interval,
                           rebalance_threshold=0.05)
    stats = manager.run(drifting_trace)
    summary = manager.serving_metrics.summary()
    observed = (stats.breakdown.cache_hits, stats.breakdown.on_demand,
                stats.evictions, summary["rebalance_count"],
                summary["rebalance_migrated_keys"])
    assert observed == GOLDEN_REBALANCED[(impl, interval)], (
        f"{impl!r}/interval={interval} shifted rebalancing behavior: "
        f"{observed} != committed golden")
    # Capacity conservation survives migration; donor-shrink victims
    # are accounted exactly once (hits + misses == accesses and the
    # buffer never over-admits).
    assert stats.breakdown.total == len(drifting_trace)
    assert sum(manager.buffer.shard_capacities) == capacity
    assert len(manager.buffer) <= capacity
    manager.close()


def test_rebalanced_goldens_are_self_consistent():
    """The adaptive rows must trigger at least one migration and beat
    their static siblings on the drifting workload — the committed
    form of the bench's recovered-gap gate."""
    for impl in ("fast", "clock"):
        static = GOLDEN_REBALANCED[(impl, 0)]
        adaptive = GOLDEN_REBALANCED[(impl, 1024)]
        assert static[0] + static[1] == adaptive[0] + adaptive[1] == 12_000
        assert static[3] == 0  # interval=0 never rebalances
        assert adaptive[3] >= 1 and adaptive[4] > 0
        assert adaptive[0] > static[0]


def test_sharded_goldens_are_self_consistent():
    """Exact sharded configs stay close to the exact trio (per-shard
    exact serving); protected-reclaim clock configs must not fall below
    the unsharded clock golden (that is the point of the protection)."""
    exact_hits = GOLDEN_MANAGER[("fast", "auto")][0]
    clock_hits = GOLDEN_MANAGER[("clock", "auto")][0]
    for (impl, _, _), (hits, misses, evictions) in GOLDEN_SHARDED.items():
        assert hits + misses == 12_000
        if impl == "fast":
            assert abs(hits - exact_hits) <= 20
        else:
            assert hits >= clock_hits


def test_exact_backends_identical_on_golden_trace():
    """The committed goldens themselves must agree across the exact
    trio and across dense/dict modes of each backend."""
    exact = {GOLDEN_MANAGER[key] for key in GOLDEN_MANAGER
             if key[0] != "clock"}
    assert len(exact) == 1
    clock = {GOLDEN_MANAGER[key] for key in GOLDEN_MANAGER
             if key[0] == "clock"}
    assert len(clock) == 1


def test_lru_harness_matches_golden(golden_trace, golden_capacity):
    closed = run_breakdown(golden_trace, golden_capacity)
    assert (closed.cache_hits, closed.on_demand) == GOLDEN_LRU
    simulated = run_breakdown(golden_trace, golden_capacity,
                              engine="reference")
    assert simulated == closed
    for impl in ("reference", "fast"):
        assert run_breakdown(golden_trace, golden_capacity,
                             engine="reference",
                             buffer_impl=impl) == closed
    clock = run_breakdown(golden_trace, golden_capacity,
                          buffer_impl="clock")
    assert (clock.cache_hits, clock.on_demand) == GOLDEN_LRU_CLOCK
