"""Aggregate metrics and ASCII rendering."""

import numpy as np
import pytest

from repro.analysis import (
    ascii_bars, ascii_table, geomean, normalize_to, reduction, speedup,
    stacked_fractions,
)


class TestMetrics:
    def test_geomean_known(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_handles_zero(self):
        assert geomean([0.0, 1.0]) >= 0.0

    def test_speedup_and_reduction(self):
        assert speedup(10.0, 5.0) == pytest.approx(2.0)
        assert reduction(10.0, 7.0) == pytest.approx(0.3)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_normalize(self):
        out = normalize_to([2.0, 4.0], 2.0)
        assert np.allclose(out, [1.0, 2.0])
        with pytest.raises(ValueError):
            normalize_to([1.0], 0.0)


class TestRendering:
    def test_table_contains_cells(self):
        text = ascii_table(["name", "value"], [["LRU", 0.5], ["OPT", 0.71]],
                           title="hit rates")
        assert "hit rates" in text
        assert "LRU" in text and "0.71" in text

    def test_bars_scale(self):
        text = ascii_bars(["a", "b"], [1.0, 2.0])
        lines = text.splitlines()
        assert lines[1].count("#") > lines[0].count("#")

    def test_stacked(self):
        text = stacked_fractions(
            ["LRU"], [{"cache_hit": 0.5, "on_demand": 0.5}]
        )
        assert "cache_hit" in text and "LRU" in text
