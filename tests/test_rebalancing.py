"""Online elastic rebalancing: the migration-invariant test battery.

Four layers of checking for :meth:`repro.cache.sharding.ShardedBuffer.
rebalance` and the manager's online driver:

* **Migration-invariant fuzz (200 seeds)** — random op/rebalance
  interleavings over fast and clock backends under both routers.  After
  *every* rebalance: the partition invariants hold (disjoint per-shard
  resident sets whose union is the global ``contains_batch``, every
  resident routes to its shard, compressed residency bitmaps
  decompress exactly onto the owned residents), the resident union is
  preserved (``after ∪ evicted == before``, disjointly), every shard's
  occupancy respects its *new* capacity, and — when no donor-shrink
  eviction ran — every survivor keeps its exact effective priority.
* **Decision identity** — a rebalance onto the current target is a
  no-op, bit-identical to never calling it (checked by running an
  identical op suffix over a rebalanced twin); a real rebalance leaves
  the buffer decision-identical to a *fresh* :class:`ShardedBuffer`
  rebalanced-empty onto the same weights and pre-seeded with the same
  residents in canonical order (the module docstring's canonical-
  rebuild contract; the committed end-to-end counters live in
  ``tests/test_golden_backends.py``).
* **Raise-before-mutate regression** — ``put_batch``'s per-shard
  pre-validation must read the *post-rebalance* capacities.  The
  original :class:`CompressedShardView` snapshotted ``capacity`` at
  construction, so a donor shard shrunk by a rebalance kept validating
  against its stale larger capacity and over-admitted; ``capacity`` is
  now a delegating property and both directions (shrunk shard rejects,
  grown shard accepts) are pinned here.
* **Concurrency stress** — the manager's online driver under
  ``concurrency="threads"`` at 1/2/4 workers (×3 repeats) must
  reproduce the serial engine bit-for-bit — counters, per-access
  decisions, final residents, and the rebalance firing at the same
  block indices — and the pipelined stream must gather every in-flight
  block and quiesce the worker pool *before* a migration starts.
"""

import random
import threading

import numpy as np
import pytest

from repro.cache import ShardedBuffer, backend_for_key
from repro.cache.sharding import split_capacity

KEY_SPACE = 26
#: Deliberately smaller than the fuzzed key range: keys >= DENSE_SPACE
#: exercise spillover ids, which never migrate (they route mod N under
#: both routers, independent of the range partition).
DENSE_SPACE = KEY_SPACE - 7
MAX_PRIORITY = 6
NUM_SEQUENCES = 200
OPS_PER_SEQUENCE = 60

PROBE = np.arange(-4, KEY_SPACE + 9, dtype=np.int64)

OP_WEIGHTS = [
    ("insert", 6),
    ("set_priority", 4),
    ("demote", 2),
    ("put_batch", 3),
    ("set_priority_batch", 2),
    ("demote_batch", 1),
    ("evict_one", 4),
    ("evict_batch", 3),
]


def _gen_ops(rng: random.Random, count=OPS_PER_SEQUENCE):
    names = [name for name, _ in OP_WEIGHTS]
    weights = [weight for _, weight in OP_WEIGHTS]
    ops = []
    for _ in range(count):
        ops.append((rng.choices(names, weights=weights)[0],
                    rng.randrange(KEY_SPACE),
                    rng.randrange(MAX_PRIORITY + 1),
                    [rng.randrange(KEY_SPACE)
                     for _ in range(rng.randint(1, 10))],
                    rng.randint(1, 6)))
    return ops


def _apply_op(buffer, op):
    """Apply one op when locally valid (validity judged from the
    buffer's own state, so two buffers in identical state make
    identical decisions); returns eviction victims, if any."""
    kind, key, priority, batch, count = op
    if kind == "insert":
        if key in buffer:
            buffer.set_priority(key, priority)
        elif not backend_for_key(buffer, key).is_full:
            buffer.insert(key, priority)
    elif kind == "set_priority":
        if key in buffer:
            buffer.set_priority(key, priority)
    elif kind == "demote":
        if key in buffer:
            buffer.demote(key)
    elif kind == "put_batch":
        try:
            buffer.put_batch(batch, priority)
        except RuntimeError:
            return "raised"
    elif kind == "set_priority_batch":
        buffer.set_priority_batch([k for k in batch if k in buffer],
                                  priority)
    elif kind == "demote_batch":
        buffer.demote_batch([k for k in batch if k in buffer])
    elif kind == "evict_one":
        if len(buffer):
            return [buffer.evict_one()]
    elif kind == "evict_batch":
        if len(buffer):
            return buffer.evict_batch(min(count, len(buffer)))
    return None


def _random_weights(rng: random.Random, num_shards: int):
    if rng.random() < 0.2:
        return None
    return tuple(rng.choice([0.5, 1.0, 2.0, 3.0, 5.0])
                 for _ in range(num_shards))


def _assert_partition_invariants(sharded: ShardedBuffer):
    """Disjointness, routing coherence, bitmap round-trip — must hold
    after any op and, in particular, after any rebalance (the routing
    checks run under whatever partition is *currently* drawn)."""
    gathered = np.zeros(PROBE.size, dtype=bool)
    for _, shard, positions, sub in sharded.iter_shard_segments(PROBE):
        gathered[positions] = shard.contains_batch(sub)
    assert np.array_equal(gathered, sharded.contains_batch(PROBE))
    seen = set()
    for index, shard in enumerate(sharded.shards):
        resident = list(shard.keys())
        assert len(resident) <= shard.capacity
        assert shard.capacity == shard.backend.capacity
        for key in resident:
            assert sharded.shard_id_of(key) == index
            assert key not in seen
            seen.add(key)
        # Compressed-universe round-trip on every in-universe survivor:
        # the residency bitmap covers the compressed ids; its set bits
        # must decompress exactly onto the shard's owned residents.
        bitmap_ids = np.flatnonzero(shard.residency.bitmap)
        decompressed = sharded.router.decompress(index, bitmap_ids)
        in_universe = sorted(key for key in resident
                             if 0 <= key < sharded.key_space)
        assert sorted(decompressed.tolist()) == in_universe
    assert len(seen) == len(sharded)
    assert len(sharded) <= sharded.capacity


def _checked_rebalance(sharded: ShardedBuffer, weights):
    """Rebalance and assert the full migration-invariant battery."""
    before = {key: sharded.priority_of(key) for key in sharded.keys()}
    stats = sharded.rebalance(weights)
    after = set(sharded.keys())
    evicted = set(stats["evicted"])
    # Residency-union preservation: nothing appears, nothing silently
    # vanishes — every departed key is reported as a shrink victim.
    assert len(evicted) == len(stats["evicted"])  # no duplicate victims
    assert after.isdisjoint(evicted)
    assert after | evicted == set(before)
    # The new split partitions total capacity; occupancy respects it.
    assert stats["shard_capacities"] == sharded.shard_capacities
    assert sum(sharded.shard_capacities) == sharded.capacity
    assert all(cap >= 1 for cap in sharded.shard_capacities)
    _assert_partition_invariants(sharded)
    if not evicted and not sharded.approximate:
        # No donor-shrink aging ran: exact survivors carry their
        # effective priorities bit-for-bit across the migration.
        for key in after:
            assert sharded.priority_of(key) == before[key]
    if not stats["changed"]:
        assert stats["migrated_keys"] == 0 and not evicted
    return stats


@pytest.mark.parametrize("seed", range(NUM_SEQUENCES))
def test_rebalance_fuzz_interleaved_ops(seed):
    """200-seed fuzz: random op streams with rebalances interleaved at
    random points, across fast+clock backends and both routers."""
    rng = random.Random(9900 + seed)
    policy = rng.choice(["contiguous", "modulo"])
    num_shards = rng.choice([2, 3, 4])
    capacity = rng.randint(num_shards, 16)
    ops = _gen_ops(rng)

    buffers = [
        ShardedBuffer("fast", capacity, key_space=DENSE_SPACE,
                      num_shards=num_shards, shard_policy=policy),
        ShardedBuffer("clock", capacity, key_space=DENSE_SPACE,
                      num_shards=num_shards, shard_policy=policy),
    ]
    for op in ops:
        for sharded in buffers:
            _apply_op(sharded, op)
            if rng.random() < 0.15:
                _checked_rebalance(sharded,
                                   _random_weights(rng, num_shards))
    for sharded in buffers:
        # Always end on a rebalance, then prove the buffer still
        # drains cleanly under the final partition.
        _checked_rebalance(sharded, _random_weights(rng, num_shards))
        remaining = len(sharded)
        if remaining:
            victims = sharded.evict_batch(remaining)
            assert len(victims) == len(set(victims)) == remaining
        assert len(sharded) == 0
        _assert_partition_invariants(sharded)


@pytest.mark.parametrize("impl", ["fast", "clock"])
@pytest.mark.parametrize("policy", ["contiguous", "modulo"])
def test_noop_rebalance_is_bit_identical(impl, policy):
    """A rebalance whose target equals the current state returns
    ``changed=False`` before touching any backend: a twin that calls
    it stays decision-identical through an arbitrary op suffix."""
    rng = random.Random(77)
    prefix, suffix = _gen_ops(rng, 30), _gen_ops(rng, 40)

    def build():
        buf = ShardedBuffer(impl, 9, key_space=DENSE_SPACE,
                            num_shards=3, shard_policy=policy)
        for op in prefix:
            _apply_op(buf, op)
        return buf

    plain, poked = build(), build()
    # Same-target forms of the no-op: construction defaults on a
    # never-rebalanced buffer, then the same weights twice in a row.
    assert not poked.rebalance(None)["changed"]
    weights = (2.0, 1.0, 1.0)
    first = poked.rebalance(weights)
    second = poked.rebalance(weights)
    assert first["changed"] and not second["changed"]
    plain.rebalance(weights)
    for op in suffix:
        assert _apply_op(plain, op) == _apply_op(poked, op)
        assert sorted(plain.keys()) == sorted(poked.keys())
        for key in plain.keys():
            assert plain.priority_of(key) == poked.priority_of(key)
    remaining = len(plain)
    if remaining:
        assert plain.evict_batch(remaining) == poked.evict_batch(remaining)


@pytest.mark.parametrize("impl", ["fast", "clock"])
@pytest.mark.parametrize("policy", ["contiguous", "modulo"])
@pytest.mark.parametrize("seed", range(12))
def test_rebalanced_matches_fresh_preseeded_buffer(impl, policy, seed):
    """Canonical-rebuild contract: after ``rebalance(w)`` the buffer is
    decision-identical to a *fresh* ShardedBuffer rebalanced-empty onto
    ``w`` and pre-seeded with the same residents in canonical order
    (shard asc, per-shard eviction order, exact priorities)."""
    rng = random.Random(4400 + seed)
    num_shards = rng.choice([2, 3, 4])
    # Enough headroom that a skewed split actually moves capacity.
    capacity = rng.randint(3 * num_shards, 24)
    # Deliberately skewed: the contract under test is the canonical
    # rebuild of a *real* rebalance (a no-op rebalance intentionally
    # leaves the non-canonical layout alone, see the no-op test).
    weights = tuple([3.0] + [1.0] * (num_shards - 1))

    lived = ShardedBuffer(impl, capacity, key_space=DENSE_SPACE,
                          num_shards=num_shards, shard_policy=policy)
    for op in _gen_ops(rng, 50):
        _apply_op(lived, op)
    assert lived.rebalance(weights)["changed"]

    fresh = ShardedBuffer(impl, capacity, key_space=DENSE_SPACE,
                          num_shards=num_shards, shard_policy=policy)
    fresh.rebalance(weights)
    assert fresh.shard_capacities == lived.shard_capacities
    # Pre-seed in canonical order.  export_state speaks the backend's
    # own eviction-order encoding: exact backends carry explicit
    # seqnos (rank = insertion order), the clock backend returns hand
    # order directly — either way inserting in that order reproduces
    # the post-migration packed state.
    for index, view in enumerate(lived.shards):
        state = view.backend.export_state()
        if lived.approximate:
            local, prio = state
        else:
            local, prio, seq = state
            order = np.argsort(seq, kind="stable")
            local, prio = local[order], prio[order]
        for key, priority in zip(
                lived.router.decompress(index, local).tolist(),
                prio.tolist()):
            fresh.insert(int(key), int(priority))

    suffix = _gen_ops(rng, 40)
    for op in suffix:
        assert _apply_op(lived, op) == _apply_op(fresh, op)
    assert sorted(lived.keys()) == sorted(fresh.keys())
    for key in lived.keys():
        assert lived.priority_of(key) == fresh.priority_of(key)
    remaining = len(lived)
    if remaining:
        assert lived.evict_batch(remaining) == fresh.evict_batch(remaining)


# ---------------------------------------------------------------------------
# Satellite regression: put_batch pre-validation vs post-rebalance
# capacities.


def test_view_capacity_tracks_rebalanced_backend():
    buf = ShardedBuffer("fast", 8, key_space=16, num_shards=2)
    view = buf.shards[1]
    assert view.capacity == 4
    buf.rebalance((3.0, 1.0))
    # The view must delegate, not replay its construction snapshot.
    assert view.capacity == view.backend.capacity == 2
    assert buf.shard_capacities == [6, 2]


@pytest.mark.parametrize("impl", ["fast", "clock"])
def test_put_batch_validates_against_rebalanced_capacities(impl):
    """Raise-before-mutate must consult the *new* split: a shrunk
    donor shard rejects batches its stale capacity would have
    over-admitted, and a grown shard accepts batches the stale
    capacity would have spuriously rejected."""
    buf = ShardedBuffer(impl, 8, key_space=16, num_shards=2)
    assert buf.shard_capacities == [4, 4]
    buf.rebalance((3.0, 1.0))
    # Contiguous ranges re-split with the weights: shard 0 now owns
    # [0, 12) at capacity 6, shard 1 owns [12, 16) at capacity 2.
    assert buf.shard_capacities == [6, 2]
    before = sorted(buf.keys())
    with pytest.raises(RuntimeError, match="full"):
        buf.put_batch([12, 13, 14], 1)  # 3 distinct keys, capacity 2
    assert sorted(buf.keys()) == before  # untouched on rejection
    # The grown shard really has the headroom the new split grants.
    buf.put_batch([0, 2, 4, 6, 8, 10], 1)
    assert len(buf.shards[0]) == 6
    # And the shrunk shard admits exactly its new capacity.
    buf.put_batch([12, 15], 1)
    assert len(buf.shards[1]) == 2


def test_rebalance_shrink_reports_every_victim():
    """Donor shrink picks overflow victims through the backend's own
    eviction order and reports them all."""
    buf = ShardedBuffer("fast", 8, key_space=16, num_shards=2)
    seeded = [0, 1, 2, 3, 8, 9, 10, 11]  # both shards at capacity
    buf.put_batch(seeded, 0)
    assert len(buf.shards[0]) == 4 and len(buf.shards[1]) == 4
    stats = buf.rebalance((1.0, 3.0))
    # The shrunk donor's overflow left through evict_batch and the
    # union is preserved.
    assert stats["changed"]
    assert set(buf.keys()) | set(stats["evicted"]) == set(seeded)
    assert len(buf) + len(stats["evicted"]) == len(seeded)
    for index, shard in enumerate(buf.shards):
        assert len(shard) <= shard.capacity


# ---------------------------------------------------------------------------
# Manager-level: the online driver.


def _drifting_setup(num_accesses=4000, seed=5):
    from repro.core import RecMGConfig
    from repro.core.features import FeatureEncoder
    from repro.traces.synthetic import (
        SyntheticTraceConfig,
        generate_drifting_hot_band_trace,
    )

    trace_config = SyntheticTraceConfig(
        num_accesses=num_accesses, num_tables=4, rows_per_table=100,
        seed=seed)
    trace = generate_drifting_hot_band_trace(trace_config, num_shards=4)
    config = RecMGConfig(num_shards=4)
    encoder = FeatureEncoder(config).fit(trace)
    return trace, config, encoder


def _run_manager(trace, config, encoder, *, concurrency="serial",
                 num_workers=None, interval=512, impl="fast"):
    from repro.core.manager import RecMGManager

    manager = RecMGManager(
        80, encoder, config, buffer_impl=impl, num_shards=4,
        concurrency=concurrency, num_workers=num_workers,
        rebalance_interval=interval, rebalance_threshold=0.05)
    stats = manager.run(trace, record_decisions=True)
    decisions = manager.last_decisions.copy()
    residents = sorted(manager.buffer.keys())
    summary = manager.serving_metrics.summary()
    capacities = list(manager.buffer.shard_capacities)
    manager.close()
    return stats, decisions, residents, summary, capacities


@pytest.mark.parametrize("repeat", range(3))
@pytest.mark.parametrize("num_workers", [1, 2, 4])
def test_threads_match_serial_under_rebalancing(num_workers, repeat):
    """Mid-run rebalances fire at the same block indices under the
    concurrent engine: counters, decisions, residents, final split and
    rebalance count all match the serial engine, across worker counts
    and repeats (scheduling nondeterminism must not leak through)."""
    trace, config, encoder = _drifting_setup(seed=5 + repeat)
    serial = _run_manager(trace, config, encoder)
    threaded = _run_manager(trace, config, encoder,
                            concurrency="threads",
                            num_workers=num_workers)
    s_stats, s_dec, s_res, s_sum, s_caps = serial
    t_stats, t_dec, t_res, t_sum, t_caps = threaded
    assert s_sum["rebalance_count"] >= 1  # the scenario must trigger
    assert t_sum["rebalance_count"] == s_sum["rebalance_count"]
    assert t_sum["rebalance_migrated_keys"] == \
        s_sum["rebalance_migrated_keys"]
    assert t_stats == s_stats
    assert np.array_equal(t_dec, s_dec)
    assert t_res == s_res
    assert t_caps == s_caps


def test_pipelined_stream_drains_before_migration():
    """The pipelined no-model stream must gather every in-flight block
    and quiesce the shard workers before a migration starts: no
    per-shard serve may be running when ``rebalance`` executes."""
    from repro.core.manager import RecMGManager

    trace, config, encoder = _drifting_setup()
    manager = RecMGManager(80, encoder, config, num_shards=4,
                           concurrency="threads", num_workers=2,
                           rebalance_interval=512,
                           rebalance_threshold=0.05)
    lock = threading.Lock()
    state = {"inflight": 0, "max_seen": 0, "rebalances": 0}

    inner_serve = manager._serve_subsegment

    def tracked_serve(shard, sub):
        with lock:
            state["inflight"] += 1
            state["max_seen"] = max(state["max_seen"], state["inflight"])
        try:
            return inner_serve(shard, sub)
        finally:
            with lock:
                state["inflight"] -= 1
    manager._serve_subsegment = tracked_serve

    inner_rebalance = manager.buffer.rebalance

    def guarded_rebalance(weights=None):
        with lock:
            assert state["inflight"] == 0, \
                "migration overlapped an in-flight per-shard serve"
            state["rebalances"] += 1
        return inner_rebalance(weights)
    manager.buffer.rebalance = guarded_rebalance

    manager.run(trace)
    manager.close()
    assert state["rebalances"] >= 1
    assert state["max_seen"] >= 1  # jobs really ran through the pool


def test_serve_batch_drives_online_rebalancer():
    """The admission front door participates: skewed batches through
    serve_batch trigger a rebalance and tilt the split toward the hot
    shard, with the pause accounted in the metrics."""
    trace, config, encoder = _drifting_setup()
    from repro.core.manager import RecMGManager

    manager = RecMGManager(40, encoder, config, num_shards=4,
                           rebalance_interval=256,
                           rebalance_threshold=0.05)
    quarter = encoder.vocab_size // 4
    rng = np.random.default_rng(3)
    for _ in range(12):
        hot = rng.integers(0, quarter, size=256)  # all route to shard 0
        hits = manager.serve_batch(hot)
        assert hits.size == 256
    summary = manager.serving_metrics.summary()
    assert summary["rebalance_count"] >= 1
    assert summary["rebalance_pause_ms_total"] > 0.0
    assert summary["rebalance_pause_ms_max"] <= \
        summary["rebalance_pause_ms_total"]
    # Capacity followed the traffic: the hot shard outgrew the cold.
    caps = manager.buffer.shard_capacities
    assert caps[0] == max(caps) and caps[0] > caps[-1]
    manager.close()


def test_rebalance_knob_validation():
    from repro.core import RecMGConfig
    from repro.core.features import FeatureEncoder
    from repro.core.manager import RecMGManager
    from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

    with pytest.raises(ValueError, match="rebalance_interval"):
        RecMGConfig(rebalance_interval=-1)
    with pytest.raises(ValueError, match="num_shards"):
        RecMGConfig(rebalance_interval=100)  # single shard
    with pytest.raises(ValueError, match="rebalance_threshold"):
        RecMGConfig(num_shards=2, rebalance_interval=100,
                    rebalance_threshold=float("inf"))
    config = RecMGConfig()
    trace = generate_trace(SyntheticTraceConfig(num_accesses=200))
    encoder = FeatureEncoder(config).fit(trace)
    with pytest.raises(ValueError, match="ShardedBuffer"):
        RecMGManager(10, encoder, config, rebalance_interval=64)


def test_rebalance_weight_split_matches_largest_remainder():
    """The driver hands the buffer EWMA-share weights; the resulting
    split must be the documented largest-remainder apportionment."""
    buf = ShardedBuffer("fast", 10, key_space=30, num_shards=3)
    buf.rebalance((5.0, 3.0, 2.0))
    assert buf.shard_capacities == split_capacity(10, 3, (5.0, 3.0, 2.0))
    assert buf.shard_capacities == [5, 3, 2]
