"""Concurrent serving front-end: admission units + determinism stress.

Three layers of checking for :mod:`repro.serving` and the manager's
``concurrency="threads"`` engine:

* **Unit** — :class:`RequestQueue` (FIFO, bounded backpressure, close
  semantics), :class:`Batcher` (max-size / max-wait flush policy),
  :class:`ServingMetrics` / :class:`LatencyWindow` (percentiles over a
  ring window, counts over the whole history, size histogram), and
  :class:`ShardWorkerPool` (static pinning, per-shard FIFO, busy
  accounting, idempotent close).
* **Integration** — producer threads → queue → batcher →
  :meth:`RecMGManager.serve_batch`: the coalesced stream must be served
  decision-for-decision like the same access stream fed straight to
  the engine, with admission telemetry recorded.
* **Determinism stress** — the tentpole invariant: the multi-tenant
  trace served with ``concurrency="threads"`` at 1/2/4/8 workers,
  repeatedly, must reproduce the serial shard-wise engine *bit for
  bit* — counters, per-access decision stream, and the union of
  per-shard residents.  Any cross-thread ordering leak (a shard served
  off its pinned worker, a gather out of shard order, a racy shared
  counter) shows up here as a diff, not a flake.

The blocking tests carry ``pytest.mark.timeout`` so a deadlocked queue
or wedged worker fails fast in CI (pytest-timeout; marker is a no-op
when the plugin is absent — see ``conftest.py``).
"""

import threading
import time

import numpy as np
import pytest

from repro.core import RecMGConfig
from repro.core.features import FeatureEncoder
from repro.core.manager import RecMGManager
from repro.serving import (
    Batcher,
    LatencyWindow,
    QueueClosed,
    Request,
    RequestQueue,
    ServingMetrics,
    ShardWorkerPool,
)
from repro.traces import SyntheticTraceConfig, generate_multi_tenant_trace

TENANT_CONFIG = SyntheticTraceConfig(
    num_tables=4,
    rows_per_table=256,
    num_accesses=6000,
    num_clusters=12,
    cluster_block=8,
    seed=77,
)


# ---------------------------------------------------------------------------
# RequestQueue.


@pytest.mark.timeout(30)
def test_request_queue_fifo_and_depth():
    queue = RequestQueue(maxsize=8)
    for tenant in range(5):
        queue.put(Request(keys=np.array([tenant]), tenant=tenant))
    assert queue.depth() == 5
    order = [queue.get().tenant for _ in range(5)]
    assert order == [0, 1, 2, 3, 4]
    assert queue.depth() == 0


def test_request_queue_validation():
    with pytest.raises(ValueError):
        RequestQueue(maxsize=0)


@pytest.mark.timeout(30)
def test_request_queue_put_times_out_when_full():
    queue = RequestQueue(maxsize=1)
    queue.put(Request(keys=np.array([1])))
    with pytest.raises(TimeoutError):
        queue.put(Request(keys=np.array([2])), timeout=0.01)


@pytest.mark.timeout(30)
def test_request_queue_get_times_out_when_empty():
    queue = RequestQueue(maxsize=1)
    assert queue.get(timeout=0.01) is None


@pytest.mark.timeout(30)
def test_request_queue_close_wakes_producer_and_drains():
    queue = RequestQueue(maxsize=1)
    queue.put(Request(keys=np.array([1])))
    errors = []

    def blocked_producer():
        try:
            queue.put(Request(keys=np.array([2])))  # full -> blocks
        except QueueClosed as exc:
            errors.append(exc)

    producer = threading.Thread(target=blocked_producer)
    producer.start()
    time.sleep(0.02)  # let it park on the full queue
    queue.close()
    producer.join(timeout=5)
    assert not producer.is_alive()
    assert len(errors) == 1  # woken with QueueClosed, not wedged
    # Pending requests stay drainable after close; then the stop signal.
    assert queue.get().keys.tolist() == [1]
    assert queue.get() is None
    with pytest.raises(QueueClosed):
        queue.put(Request(keys=np.array([3])))


@pytest.mark.timeout(30)
def test_request_queue_backpressure_bounds_depth():
    """A fast producer against a slow consumer never overshoots
    ``maxsize`` — puts block instead of queueing unboundedly."""
    queue = RequestQueue(maxsize=4)
    seen_depths = []

    def producer():
        for i in range(32):
            queue.put(Request(keys=np.array([i])))
        queue.close()

    thread = threading.Thread(target=producer)
    thread.start()
    drained = []
    while True:
        request = queue.get(timeout=1.0)
        if request is None:
            break
        seen_depths.append(queue.depth())
        drained.append(int(request.keys[0]))
    thread.join(timeout=5)
    assert drained == list(range(32))  # FIFO end to end
    assert max(seen_depths) <= 4


@pytest.mark.timeout(30)
def test_request_queue_put_timeout_is_one_deadline():
    """Regression: ``put`` used to restart the *full* timeout on every
    wakeup of the full-queue wait loop, so a producer racing other
    producers (or any notify that didn't free a slot for it) could
    block far past its deadline.  Deterministic repro: the queue stays
    full while a teaser thread keeps notifying ``_not_full`` — each
    wakeup finds the queue still full, and with the bug each wakeup
    also re-armed the whole timeout, pushing the deadline out for as
    long as the teasing lasts."""
    queue = RequestQueue(maxsize=1)
    queue.put(Request(keys=np.array([1])))  # full, and stays full
    stop = threading.Event()

    def teaser():
        while not stop.is_set():
            with queue._lock:
                queue._not_full.notify_all()
            time.sleep(0.02)

    thread = threading.Thread(target=teaser)
    thread.start()
    try:
        began = time.perf_counter()
        with pytest.raises(TimeoutError):
            queue.put(Request(keys=np.array([2])), timeout=0.2)
        elapsed = time.perf_counter() - began
    finally:
        stop.set()
        thread.join(timeout=5)
    # One deadline for the whole call: the teased wakeups re-wait only
    # on the remainder.  (With the restart bug this blocked for the
    # teaser's whole lifetime — bounded only by the test timeout.)
    assert elapsed < 2.0
    assert queue.depth() == 1  # the timed-out request was not enqueued


@pytest.mark.timeout(30)
def test_request_queue_two_producers_slow_consumer_meet_deadlines():
    """Two producers racing for a slow consumer's freed slots: every
    put must land within its (generous) deadline — under the
    timeout-restart bug a producer that repeatedly lost the slot race
    could starve past its deadline without ever raising."""
    queue = RequestQueue(maxsize=1)
    per_producer = 8
    failures = []

    def producer(tenant):
        for i in range(per_producer):
            try:
                queue.put(Request(keys=np.array([i]), tenant=tenant),
                          timeout=10.0)
            except TimeoutError:  # pragma: no cover - the failure mode
                failures.append((tenant, i))
                return

    producers = [threading.Thread(target=producer, args=(tenant,))
                 for tenant in range(2)]
    for thread in producers:
        thread.start()
    drained = []
    while len(drained) < 2 * per_producer and not failures:
        request = queue.get(timeout=5.0)
        if request is None:
            break
        time.sleep(0.005)  # slow consumer: keep the slot race alive
        drained.append(request.tenant)
    for thread in producers:
        thread.join(timeout=10)
    assert not failures
    assert len(drained) == 2 * per_producer
    assert sorted(drained) == [0] * per_producer + [1] * per_producer


@pytest.mark.timeout(30)
def test_request_queue_blocking_get_survives_spurious_wakeup():
    """Regression: a blocking ``get(timeout=None)`` waited only once —
    a spurious wakeup (or a notify won by a racing close/put
    interleaving) while the queue was open and empty returned ``None``,
    which ``Batcher.batches()`` reads as closed-and-drained,
    permanently killing the serving loop.  An open-but-idle queue must
    never yield ``None`` from a blocking get, whatever wakeups occur."""
    queue = RequestQueue(maxsize=4)
    results = []

    def consumer():
        results.append(queue.get(timeout=None))

    thread = threading.Thread(target=consumer)
    thread.start()
    time.sleep(0.02)  # let it park on the empty queue
    for _ in range(5):  # spurious wakeups: queue still open and empty
        with queue._lock:
            queue._not_empty.notify_all()
        time.sleep(0.01)
    # The consumer must still be parked — not returned None.
    assert thread.is_alive()
    assert not results
    queue.put(Request(keys=np.array([42])))
    thread.join(timeout=5)
    assert not thread.is_alive()
    assert len(results) == 1 and results[0] is not None
    assert results[0].keys.tolist() == [42]


# ---------------------------------------------------------------------------
# Batcher.


def test_batcher_validation():
    queue = RequestQueue()
    with pytest.raises(ValueError):
        Batcher(queue, max_batch_keys=0)
    with pytest.raises(ValueError):
        Batcher(queue, max_wait_s=-1.0)


@pytest.mark.timeout(30)
def test_batcher_flushes_on_size_bound():
    queue = RequestQueue()
    for lo in range(0, 12, 3):
        queue.put(Request(keys=np.arange(lo, lo + 3)))
    queue.close()
    # Generous deadline: the size bound (6 keys = 2 requests) must be
    # what flushes, not the clock.
    batches = list(Batcher(queue, max_batch_keys=6,
                           max_wait_s=10.0).batches())
    assert [batch.num_requests for batch in batches] == [2, 2]
    assert np.concatenate([b.keys for b in batches]).tolist() == \
        list(range(12))  # arrival order preserved across flushes
    for batch in batches:
        assert batch.queue_wait_seconds >= 0.0


@pytest.mark.timeout(30)
def test_batcher_flushes_lone_request_on_deadline():
    queue = RequestQueue()
    queue.put(Request(keys=np.array([7, 8])))
    batcher = Batcher(queue, max_batch_keys=1024, max_wait_s=0.01)
    iterator = batcher.batches()
    batch = next(iterator)  # must yield after ~max_wait_s, not block
    assert batch.keys.tolist() == [7, 8]
    assert batch.num_requests == 1
    queue.close()
    assert list(iterator) == []


@pytest.mark.timeout(30)
def test_batcher_drains_after_close():
    queue = RequestQueue()
    for i in range(5):
        queue.put(Request(keys=np.array([i])))
    queue.close()
    batches = list(Batcher(queue, max_batch_keys=2,
                           max_wait_s=0.0).batches())
    assert np.concatenate([b.keys for b in batches]).tolist() == \
        [0, 1, 2, 3, 4]


# ---------------------------------------------------------------------------
# Metrics.


def test_latency_window_percentiles_and_totals():
    window = LatencyWindow(window=4)
    for value in (0.010, 0.020, 0.030, 0.040, 0.050, 0.060):
        window.record(value)
    # Counts/totals span the whole history, percentiles the window.
    assert window.count == 6
    assert window.total_seconds == pytest.approx(0.210)
    assert window.percentile(50.0) == pytest.approx(0.045)
    assert window.percentile(100.0) == pytest.approx(0.060)
    assert window.mean_seconds == pytest.approx(0.035)


def test_serving_metrics_summary_shape():
    metrics = ServingMetrics()
    for size, latency, depth in [(100, 0.001, 0), (300, 0.002, 2),
                                 (600, 0.004, 4)]:
        metrics.record_batch(size, latency, queue_depth=depth)
    summary = metrics.summary(shard_busy_seconds=[0.004, 0.002],
                              wall_seconds=0.010)
    assert summary["batches"] == 3
    assert summary["keys_served"] == 1000
    assert summary["latency_p50_ms"] == pytest.approx(2.0)
    assert summary["latency_p99_ms"] <= 4.0 + 1e-9
    assert summary["queue_depth_mean"] == pytest.approx(2.0)
    assert summary["queue_depth_max"] == 4
    assert summary["batch_size_histogram"] == {
        "64-127": 1, "256-511": 1, "512-1023": 1}
    assert summary["shard_utilization"] == [
        pytest.approx(0.4), pytest.approx(0.2)]


def test_serving_metrics_empty_summary():
    summary = ServingMetrics().summary()
    assert summary["batches"] == 0
    assert summary["keys_served"] == 0
    assert summary["queue_depth_mean"] == 0.0
    assert summary["inflight_depth_mean"] == 0.0


def test_serving_metrics_rejects_negative_staleness():
    """A negative staleness sample can only come from a torn read of
    the provider's queue counters (the bug the locked snapshot in
    ``AsyncModelProvider.staleness_blocks`` fixes) — reject it loudly
    instead of folding it into the mean."""
    metrics = ServingMetrics()
    metrics.record_staleness(0)
    metrics.record_staleness(3)
    with pytest.raises(ValueError, match="negative"):
        metrics.record_staleness(-1)
    # The rejected sample must not have perturbed the counters.
    assert metrics.staleness_samples == 2
    assert metrics.staleness_max == 3


def test_serving_metrics_inflight_depth_is_distinct_stat():
    """Regression: the concurrent engine's pipeline depth used to be
    recorded as ``queue_depth``, silently mixing units with the
    admission-queue depth ``serve_batch`` records.  The two stats must
    accumulate independently."""
    metrics = ServingMetrics()
    # The admission path records queue depth; the pipelined engine
    # records in-flight depth; some batches record neither.
    metrics.record_batch(100, 0.001, queue_depth=3)
    metrics.record_batch(100, 0.001, inflight_depth=7)
    metrics.record_batch(100, 0.001, queue_depth=5, inflight_depth=1)
    metrics.record_batch(100, 0.001)
    assert metrics.queue_depth_samples == 2
    assert metrics.queue_depth_mean == pytest.approx(4.0)
    assert metrics.queue_depth_max == 5
    assert metrics.inflight_depth_samples == 2
    assert metrics.inflight_depth_mean == pytest.approx(4.0)
    assert metrics.inflight_depth_max == 7
    summary = metrics.summary()
    assert summary["queue_depth_mean"] == pytest.approx(4.0)
    assert summary["queue_depth_max"] == 5
    assert summary["inflight_depth_mean"] == pytest.approx(4.0)
    assert summary["inflight_depth_max"] == 7


def test_concurrent_manager_records_inflight_not_queue_depth():
    """The pipelined trace engine samples its in-flight block depth —
    and must leave the admission-queue stats untouched (no caller is
    tracking an admission queue on this path)."""
    trace = generate_multi_tenant_trace(TENANT_CONFIG, num_tenants=2)
    config = RecMGConfig(buffer_impl="clock", num_shards=2,
                         concurrency="threads")
    encoder = FeatureEncoder(config).fit(trace)
    capacity = max(2, int(trace.num_unique * 0.2))
    with RecMGManager(capacity, encoder, config) as manager:
        manager.run(trace)
        metrics = manager.serving_metrics
        assert metrics.inflight_depth_samples > 0
        assert metrics.queue_depth_samples == 0


# ---------------------------------------------------------------------------
# ShardWorkerPool.


def test_worker_pool_validation_and_clamp():
    with pytest.raises(ValueError):
        ShardWorkerPool(0)
    with pytest.raises(ValueError):
        ShardWorkerPool(2, num_workers=0)
    with ShardWorkerPool(2, num_workers=8) as pool:
        assert pool.num_workers == 2  # extras would idle forever


@pytest.mark.timeout(30)
def test_worker_pool_pins_shards_and_keeps_fifo():
    """Every shard's tasks run on one thread, in submission order,
    even with fewer workers than shards."""
    num_shards, per_shard = 4, 25
    executed = {shard: [] for shard in range(num_shards)}
    threads = {shard: set() for shard in range(num_shards)}

    def task(shard, step):
        executed[shard].append(step)
        threads[shard].add(threading.current_thread().name)

    with ShardWorkerPool(num_shards, num_workers=2) as pool:
        futures = [pool.submit(shard, task, shard, step)
                   for step in range(per_shard)
                   for shard in range(num_shards)]
        for future in futures:
            future.result()
    for shard in range(num_shards):
        assert executed[shard] == list(range(per_shard))  # FIFO
        assert len(threads[shard]) == 1  # pinned
        assert pool.worker_of(shard) == shard % 2
    # Shards pinned to the same worker share its (single) thread.
    assert threads[0] == threads[2]
    assert threads[1] == threads[3]
    assert threads[0] != threads[1]


@pytest.mark.timeout(30)
def test_worker_pool_busy_accounting_and_close():
    pool = ShardWorkerPool(2)
    pool.submit(0, time.sleep, 0.01).result()
    busy = pool.busy_seconds()
    assert busy[0] >= 0.005 and busy[1] == 0.0
    assert 0.0 <= pool.utilization()[1] <= 1.0
    pool.close()
    pool.close()  # idempotent
    assert pool.closed
    with pytest.raises(RuntimeError):
        pool.submit(0, time.sleep, 0)


def test_worker_pool_rejects_out_of_range_shard():
    with ShardWorkerPool(2) as pool:
        with pytest.raises(IndexError):
            pool.submit(2, time.sleep, 0)


# ---------------------------------------------------------------------------
# Manager integration: knob plumbing + admission front door.


def _tenant_setup(num_shards=4, capacity_frac=0.2):
    trace = generate_multi_tenant_trace(TENANT_CONFIG, num_tenants=4)
    config = RecMGConfig(num_shards=num_shards)
    encoder = FeatureEncoder(config).fit(trace)
    capacity = max(num_shards, int(trace.num_unique * capacity_frac))
    return trace, config, encoder, capacity


def test_threads_requires_sharded_buffer():
    trace, config, encoder, capacity = _tenant_setup()
    with pytest.raises(ValueError, match="num_shards"):
        RecMGManager(capacity, encoder, RecMGConfig(),
                     concurrency="threads")
    with pytest.raises(ValueError, match="concurrency"):
        RecMGManager(capacity, encoder, config, concurrency="fibers")
    with pytest.raises(ValueError, match="concurrency"):
        RecMGConfig(concurrency="fibers")
    with pytest.raises(ValueError, match="num_shards"):
        RecMGConfig(concurrency="threads", num_shards=1)
    with pytest.raises(ValueError, match="num_workers"):
        RecMGConfig(num_workers=0)


def test_concurrency_knob_flows_from_config():
    trace, config, encoder, capacity = _tenant_setup()
    config = RecMGConfig(num_shards=4, concurrency="threads",
                         num_workers=2)
    with RecMGManager(capacity, encoder, config) as manager:
        assert manager.concurrency == "threads"
        assert manager.num_workers == 2
        manager.run(trace.head(600))
        assert manager._pool is not None
        assert manager._pool.num_workers == 2
    assert manager._pool.closed  # context exit joins the pool


@pytest.mark.timeout(60)
def test_admission_pipeline_matches_direct_serving():
    """Producer threads → queue → batcher → serve_batch must serve the
    exact access stream (coalescing only re-chunks, never reorders a
    single producer's keys) and decide it exactly like the engine fed
    directly."""
    trace, config, encoder, capacity = _tenant_setup()
    dense = encoder.dense_ids(trace)[:2048]

    def build():
        return RecMGManager(capacity, encoder, config,
                            buffer_impl="fast", num_shards=4,
                            concurrency="threads", num_workers=2)

    queue = RequestQueue(maxsize=64)

    def producer():
        for lo in range(0, len(dense), 32):
            queue.put(Request(keys=dense[lo:lo + 32]))
        queue.close()

    thread = threading.Thread(target=producer)
    thread.start()
    served_keys, served_hits = [], []
    with build() as manager:
        for batch in Batcher(queue, max_batch_keys=256,
                             max_wait_s=0.001).batches():
            hits = manager.serve_batch(batch.keys,
                                       queue_depth=batch.queue_depth)
            served_keys.append(batch.keys)
            served_hits.append(hits)
        metrics = manager.serving_metrics
    thread.join(timeout=5)
    assert np.concatenate(served_keys).tolist() == dense.tolist()
    pipeline_hits = np.concatenate(served_hits)
    assert metrics.batches == len(served_keys)
    assert metrics.keys_served == len(dense)

    # Reference: same stream, same batch boundaries, engine fed direct.
    with build() as reference:
        direct_hits = np.concatenate([
            reference.serve_batch(batch) for batch in served_keys])
    assert np.array_equal(pipeline_hits, direct_hits)


# ---------------------------------------------------------------------------
# Determinism stress: the tentpole invariant, repeated.

STRESS_WORKERS = (1, 2, 4, 8)
STRESS_REPEATS = 3


@pytest.mark.timeout(300)
@pytest.mark.parametrize("impl", ["fast", "clock"])
def test_concurrent_serving_is_bit_identical_to_serial(impl):
    """The multi-tenant trace through ``concurrency="threads"`` at
    1/2/4/8 workers, repeatedly, must reproduce the serial shard-wise
    engine exactly: counters, per-access decision stream, and the
    union of per-shard residents.  Repeats catch schedule-dependent
    flakiness; worker counts below the shard count exercise shards
    time-sharing a worker."""
    trace, config, encoder, capacity = _tenant_setup()

    def run(concurrency, num_workers=None):
        manager = RecMGManager(capacity, encoder, config,
                               buffer_impl=impl, num_shards=4,
                               concurrency=concurrency,
                               num_workers=num_workers)
        stats = manager.run(trace, record_decisions=True)
        counters = (stats.breakdown.cache_hits, stats.breakdown.on_demand,
                    stats.breakdown.prefetch_hits, stats.evictions)
        residents = sorted(manager.buffer.keys())
        decisions = manager.last_decisions.copy()
        manager.close()
        return counters, residents, decisions

    serial_counters, serial_residents, serial_decisions = run("serial")
    for _ in range(STRESS_REPEATS):
        for workers in STRESS_WORKERS:
            counters, residents, decisions = run("threads", workers)
            assert counters == serial_counters, (impl, workers)
            assert residents == serial_residents, (impl, workers)
            assert np.array_equal(decisions, serial_decisions), \
                (impl, workers)
