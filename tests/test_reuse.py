"""Reuse-distance analysis: Fenwick tree, histograms, LRU curves."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import LRUCache, simulate
from repro.traces import (
    COLD_MISS, FenwickTree, Trace, lru_hit_rate, lru_hit_rate_curve,
    reuse_distances, reuse_histogram,
)


def naive_reuse_distances(keys):
    out = []
    last = {}
    for i, key in enumerate(keys):
        if key in last:
            out.append(len(set(keys[last[key] + 1:i])))
        else:
            out.append(COLD_MISS)
        last[key] = i
    return np.array(out)


class TestFenwick:
    def test_prefix_sums(self):
        tree = FenwickTree(10)
        tree.add(3, 5)
        tree.add(7, 2)
        assert tree.prefix_sum(2) == 0
        assert tree.prefix_sum(3) == 5
        assert tree.prefix_sum(9) == 7
        assert tree.range_sum(4, 7) == 2
        assert tree.range_sum(7, 4) == 0

    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(-5, 5)),
                    max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_matches_naive_array(self, updates):
        tree = FenwickTree(20)
        arr = np.zeros(20, dtype=np.int64)
        for idx, delta in updates:
            tree.add(idx, delta)
            arr[idx] += delta
        assert tree.prefix_sum(19) == arr.sum()
        assert tree.range_sum(5, 12) == arr[5:13].sum()


class TestReuseDistances:
    def test_hand_example(self):
        # a b c a b b -> distances: -,-,-,2,2,0
        keys = [1, 2, 3, 1, 2, 2]
        trace = Trace.from_pairs([(0, k) for k in keys])
        expected = [COLD_MISS, COLD_MISS, COLD_MISS, 2, 2, 0]
        assert reuse_distances(trace).tolist() == expected

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=120))
    @settings(max_examples=30, deadline=None)
    def test_matches_naive(self, keys):
        trace = Trace.from_pairs([(0, k) for k in keys])
        assert np.array_equal(reuse_distances(trace),
                              naive_reuse_distances(keys))

    @given(st.lists(st.integers(0, 25), min_size=5, max_size=150),
           st.integers(1, 30))
    @settings(max_examples=30, deadline=None)
    def test_lru_hit_rate_matches_simulation(self, keys, capacity):
        """Reuse distance < capacity iff fully associative LRU hits."""
        trace = Trace.from_pairs([(0, k) for k in keys])
        distances = reuse_distances(trace)
        analytic = lru_hit_rate(distances, capacity)
        cache = LRUCache(capacity)
        simulate(cache, trace)
        assert analytic == pytest.approx(cache.stats.hit_rate)

    def test_curve_monotone(self, tiny_trace):
        distances = reuse_distances(tiny_trace.head(3000))
        caps = [1, 8, 64, 512, 4096]
        curve = lru_hit_rate_curve(distances, caps)
        assert np.all(np.diff(curve) >= 0)

    def test_histogram_counts_warm_accesses(self, tiny_trace):
        distances = reuse_distances(tiny_trace.head(2000))
        _, counts = reuse_histogram(distances)
        assert counts.sum() == (distances >= 0).sum()
