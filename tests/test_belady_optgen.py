"""Belady MIN and OPTgen: optimality and label semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import (
    LRUCache, NEVER, next_use_indices, prefetch_trace_from, run_optgen,
    simulate, simulate_belady,
)
from repro.traces import Trace


def trace_of(keys):
    return Trace.from_pairs([(0, k) for k in keys])


class TestNextUse:
    def test_hand_example(self):
        keys = np.array([1, 2, 1, 3])
        nxt = next_use_indices(keys)
        assert nxt[0] == 2
        assert nxt[1] == NEVER
        assert nxt[2] == NEVER


class TestBelady:
    def test_classic_example(self):
        # With capacity 2, Belady on a,b,c,a,b keeps a and b; c misses.
        stats, decisions = simulate_belady(trace_of([1, 2, 3, 1, 2]),
                                           capacity=2,
                                           record_decisions=True)
        assert stats.hits == 2
        assert decisions.tolist() == [False, False, False, True, True]

    @given(st.lists(st.integers(0, 12), min_size=5, max_size=150),
           st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_belady_at_least_lru(self, keys, capacity):
        trace = trace_of(keys)
        opt_stats, _ = simulate_belady(trace, capacity)
        lru = LRUCache(capacity)
        simulate(lru, trace)
        assert opt_stats.hits >= lru.stats.hits

    def test_infinite_capacity_only_cold_misses(self):
        keys = [1, 2, 3, 1, 2, 3, 1]
        stats, _ = simulate_belady(trace_of(keys), capacity=100)
        assert stats.misses == 3


class TestOptgen:
    @given(st.lists(st.integers(0, 12), min_size=5, max_size=120),
           st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_matches_belady_hit_count(self, keys, capacity):
        """For a fully associative cache OPTgen reproduces MIN exactly
        (both implement the same feasibility argument)."""
        trace = trace_of(keys)
        belady_stats, _ = simulate_belady(trace, capacity)
        result = run_optgen(trace, capacity)
        assert result.stats.hits == belady_stats.hits

    def test_cache_friendly_semantics(self):
        # All reuses fit with capacity 2: every non-final access of a
        # reused key is friendly; final accesses are not.
        result = run_optgen(trace_of([1, 2, 1, 2]), capacity=2)
        assert result.cache_friendly.tolist() == [True, True, False, False]

    def test_last_access_never_friendly(self, tiny_trace):
        result = run_optgen(tiny_trace.head(1500), capacity=100)
        keys = tiny_trace.head(1500).keys()
        last_positions = {}
        for i, key in enumerate(keys):
            last_positions[int(key)] = i
        for position in last_positions.values():
            assert not result.cache_friendly[position]

    def test_prefetch_trace_is_miss_complement(self, tiny_trace):
        trace = tiny_trace.head(1500)
        result = run_optgen(trace, capacity=100)
        misses = prefetch_trace_from(result, trace)
        assert len(misses) == result.stats.misses
        assert not result.opt_hits[misses].any()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            run_optgen(trace_of([1, 2]), capacity=0)


class TestDegenerateIntervals:
    """Immediate repeats produce single-slot (and, defensively, empty)
    reuse intervals — regression tests for the ``range_max(prev, i - 1)``
    guard."""

    def test_immediate_repeats_all_hit_at_capacity_one(self):
        result = run_optgen(trace_of([7, 7, 7, 7]), capacity=1)
        assert result.opt_hits.tolist() == [False, True, True, True]
        assert result.stats.hits == 3

    def test_immediate_repeats_interleaved(self):
        # The repeat of 3 must not be starved by the surrounding
        # occupancy of key 7's intervals.
        result = run_optgen(trace_of([7, 7, 3, 3, 7]), capacity=1)
        reference = run_optgen(trace_of([7, 7, 3, 3, 7]), capacity=1,
                               engine="reference")
        assert np.array_equal(result.opt_hits, reference.opt_hits)
        assert result.opt_hits.tolist() == [False, True, False, True, False]

    @given(st.integers(1, 8), st.integers(1, 12))
    @settings(max_examples=20, deadline=None)
    def test_pure_repeat_trace(self, repeats, capacity):
        keys = [5] * repeats
        result = run_optgen(trace_of(keys), capacity)
        assert result.stats.hits == repeats - 1
        assert result.stats.misses == 1

    def test_trees_accept_empty_interval(self):
        from repro.cache.optgen import (_MaxSegmentTree,
                                        _RecursiveMaxSegmentTree)

        for tree in (_MaxSegmentTree(8), _RecursiveMaxSegmentTree(8)):
            tree.add(2, 1, 5)            # empty: must be a no-op
            assert tree.range_max(2, 1) == 0   # empty: trivially feasible
            assert tree.range_max(0, 7) == 0
            tree.add(1, 3, 2)
            assert tree.range_max(0, 7) == 2

    def test_iterative_tree_matches_recursive(self):
        from repro.cache.optgen import (_MaxSegmentTree,
                                        _RecursiveMaxSegmentTree)

        rng = np.random.default_rng(5)
        flat, recursive = _MaxSegmentTree(33), _RecursiveMaxSegmentTree(33)
        for _ in range(300):
            lo, hi = sorted(int(v) for v in rng.integers(0, 33, size=2))
            if rng.random() < 0.5:
                value = int(rng.integers(-3, 4))
                flat.add(lo, hi, value)
                recursive.add(lo, hi, value)
            else:
                assert flat.range_max(lo, hi) == recursive.range_max(lo, hi)
