"""Cache policies: LRU/LFU semantics, set-associative engine, RRIP family."""

import numpy as np
import pytest

from repro.cache import (
    BRRIPReplacement, DRRIPReplacement, HawkeyeReplacement, LFUCache,
    LRUCache, LRUReplacement, MockingjayReplacement, PredictorReplacement,
    SetAssociativeCache, SRRIPReplacement, capacity_from_fraction, simulate,
)


def make_cache(capacity, policy_cls, **kwargs):
    cache = SetAssociativeCache(capacity, ways=4)
    cache.policy = policy_cls(cache.num_sets, cache.ways, **kwargs)
    return cache


class TestLRU:
    def test_eviction_order(self):
        cache = LRUCache(2)
        assert not cache.access(1)
        assert not cache.access(2)
        assert cache.access(1)       # 1 is now MRU
        assert not cache.access(3)   # evicts 2
        assert 2 not in cache
        assert cache.access(1)

    def test_capacity_respected(self, tiny_trace):
        cache = LRUCache(50)
        simulate(cache, tiny_trace.head(2000))
        assert len(cache) <= 50

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestLFU:
    def test_evicts_least_frequent(self):
        cache = LFUCache(2)
        cache.access(1)
        cache.access(1)
        cache.access(2)
        cache.access(3)   # evicts 2 (freq 1 < freq 2)
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_tie_breaks_by_recency(self):
        cache = LFUCache(2)
        cache.access(1)
        cache.access(2)
        cache.access(3)   # 1 and 2 tie at freq 1; 1 is older
        assert 1 not in cache and 2 in cache

    def test_hit_rate_reasonable(self, tiny_trace, tiny_capacity):
        cache = LFUCache(tiny_capacity)
        simulate(cache, tiny_trace)
        assert 0.0 < cache.stats.hit_rate < 1.0


class TestSetAssociative:
    def test_capacity_and_geometry(self):
        cache = SetAssociativeCache(128, ways=32)
        assert cache.capacity == cache.num_sets * cache.ways
        assert cache.ways == 32

    def test_fills_and_hits(self):
        cache = SetAssociativeCache(64, ways=4)
        assert not cache.access(7)
        assert cache.access(7)
        assert len(cache) == 1

    def test_prefetch_tracking(self):
        cache = SetAssociativeCache(64, ways=4)
        assert cache.prefetch(9)
        assert cache.prefetch(9) is False  # already cached: not issued
        assert cache.access(9)              # first demand hit = useful
        assert cache.prefetch_stats.useful == 1
        assert cache.prefetch_stats.issued == 1  # real fills only
        assert cache.prefetch_stats.filled == 1
        assert cache.prefetch_stats.duplicate_requests == 1
        assert cache.prefetch_stats.accuracy == 1.0

    def test_policy_dimension_check(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(64, ways=4, policy=LRUReplacement(99, 4))

    @pytest.mark.parametrize("policy_cls", [
        LRUReplacement, SRRIPReplacement, BRRIPReplacement,
        DRRIPReplacement, HawkeyeReplacement, MockingjayReplacement,
    ])
    def test_policies_run_and_bound_capacity(self, policy_cls, tiny_trace):
        cache = make_cache(128, policy_cls)
        simulate(cache, tiny_trace.head(3000))
        assert len(cache) <= cache.capacity
        assert cache.stats.accesses == 3000
        assert 0 <= cache.stats.hit_rate < 1


class TestSRRIPSemantics:
    def test_hit_promotes(self):
        policy = SRRIPReplacement(1, 4)
        policy.on_fill(0, 0, pc=0, key=1, is_prefetch=False)
        policy.on_hit(0, 0, pc=0, key=1)
        assert policy._rrpv[0, 0] == 0

    def test_victim_prefers_distant(self):
        policy = SRRIPReplacement(1, 2)
        policy.on_fill(0, 0, pc=0, key=1, is_prefetch=False)  # rrpv 2
        policy.on_fill(0, 1, pc=0, key=2, is_prefetch=True)   # rrpv 3
        assert policy.victim(0, pc=0, key=3) == 1


class TestPredictorReplacement:
    def test_oracle_beats_lru(self, tiny_trace, tiny_capacity):
        """A friendliness oracle built from future popularity should beat
        plain LRU — this is the 'CM' configuration of Fig. 15."""
        trace = tiny_trace.head(4000)
        keys, counts = np.unique(trace.keys(), return_counts=True)
        popular = set(keys[counts >= 3].tolist())

        cap = max(64, tiny_capacity // 2)
        lru = SetAssociativeCache(cap, ways=4)
        simulate(lru, trace)

        oracle = SetAssociativeCache(cap, ways=4)
        oracle.policy = PredictorReplacement(
            oracle.num_sets, oracle.ways,
            predict=lambda key, pc: key in popular,
        )
        simulate(oracle, trace)
        assert oracle.stats.hit_rate > lru.stats.hit_rate


class TestCapacityFromFraction:
    def test_fraction(self, tiny_trace):
        cap = capacity_from_fraction(tiny_trace, 0.5)
        assert cap == int(round(tiny_trace.num_unique * 0.5))

    def test_positive_required(self, tiny_trace):
        with pytest.raises(ValueError):
            capacity_from_fraction(tiny_trace, 0.0)
