"""DLRM substrate: model, queries, tiered memory, inference timing."""

import numpy as np
import pytest

from repro.cache import LRUCache
from repro.dlrm import (
    ControlledHitRateCache, DLRM, DLRMConfig, EmbeddingBagCollection,
    EmbeddingTable, InferenceEngine, LinearPerformanceModel,
    ManagerClassifier, TieredMemoryConfig, batched, calibrate,
    queries_from_trace,
)


class TestEmbeddings:
    def test_pooled_is_sum(self, rng):
        table = EmbeddingTable(10, 4, rng=rng)
        rows = np.array([1, 3])
        assert np.allclose(table.pooled(rows),
                           table.weights[1] + table.weights[3])

    def test_empty_pool_is_zero(self, rng):
        table = EmbeddingTable(10, 4, rng=rng)
        assert np.allclose(table.pooled(np.array([], dtype=np.int64)), 0.0)

    def test_out_of_range(self, rng):
        with pytest.raises(IndexError):
            EmbeddingTable(10, 4, rng=rng).lookup(np.array([10]))

    def test_collection_memory(self):
        bags = EmbeddingBagCollection(3, 100, 8)
        assert bags.total_rows == 300
        assert bags.memory_bytes == 3 * 100 * 8 * 8  # float64


class TestDLRM:
    def test_ctr_in_unit_interval(self, rng):
        dlrm = DLRM(DLRMConfig(num_tables=4, rows_per_table=64,
                               embedding_dim=8))
        ctr = dlrm.forward_one(
            rng.normal(size=8), {0: np.array([1, 2]), 2: np.array([5])}
        )
        assert 0.0 < ctr < 1.0

    def test_batch_matches_single(self, rng):
        dlrm = DLRM(DLRMConfig(num_tables=4, rows_per_table=64,
                               embedding_dim=8))
        dense = rng.normal(size=(2, 8))
        sparse = [{0: np.array([1])}, {1: np.array([3, 4])}]
        batch = dlrm.forward_batch(dense, sparse)
        assert batch[0] == pytest.approx(dlrm.forward_one(dense[0], sparse[0]))

    def test_flops_positive(self):
        assert DLRM().flops_per_query > 0


class TestQueries:
    def test_reconstruction_matches_pooling(self, tiny_trace):
        queries = queries_from_trace(tiny_trace)
        assert len(queries) == tiny_trace.num_queries
        total = sum(q.pooling_factor for q in queries)
        assert total == len(tiny_trace)

    def test_batched_covers_all(self, tiny_trace):
        queries = queries_from_trace(tiny_trace)
        batches = list(batched(queries, 32))
        assert sum(len(b) for b in batches) == len(queries)


class TestTieredMemory:
    def test_on_demand_cost_dominates(self):
        memory = TieredMemoryConfig()
        assert memory.on_demand_time_ms(100) > memory.hit_time_ms(100)

    def test_copy_time_scales(self):
        memory = TieredMemoryConfig()
        assert memory.copy_time_ms(2000, 16) > memory.copy_time_ms(100, 16)


class TestInferenceEngine:
    def test_breakdown_totals(self, tiny_trace):
        engine = InferenceEngine(accesses_per_batch=512)
        report = engine.run(tiny_trace.head(2000), LRUCache(300))
        assert report.total_accesses == 2000
        assert len(report.batches) == 4
        breakdown = report.mean_breakdown()
        assert breakdown.total_ms == pytest.approx(report.mean_batch_ms)

    def test_higher_hit_rate_is_faster(self, tiny_trace):
        engine = InferenceEngine(accesses_per_batch=512)
        slow = engine.run(tiny_trace.head(2000), ControlledHitRateCache(0.1))
        fast = engine.run(tiny_trace.head(2000), ControlledHitRateCache(0.9))
        assert fast.mean_batch_ms < slow.mean_batch_ms
        assert fast.hit_rate > slow.hit_rate

    def test_manager_classifier_replays(self, trained_recmg, tiny_trace,
                                        tiny_capacity):
        _, test = tiny_trace.split(0.6)
        manager = trained_recmg.deploy(tiny_capacity)
        classifier = ManagerClassifier(manager, test)
        engine = InferenceEngine(accesses_per_batch=512)
        report = engine.run(test, classifier)
        assert report.total_accesses == len(test)
        assert report.hit_rate == pytest.approx(manager.breakdown.hit_rate)

    def test_manager_classifier_exhaustion_fails_loudly(self, trained_recmg,
                                                        tiny_trace,
                                                        tiny_capacity):
        """Serving more accesses than the wrapped run recorded must
        raise (batched replay must not silently under-count)."""
        _, test = tiny_trace.split(0.6)
        classifier = ManagerClassifier(trained_recmg.deploy(tiny_capacity),
                                       test.head(100))
        engine = InferenceEngine(accesses_per_batch=64)
        with pytest.raises(IndexError):
            engine.run(test.head(200), classifier)

    @pytest.mark.parametrize("impl", ["reference", "fast", "clock"])
    def test_buffer_classifier_serves_every_backend(self, tiny_trace, impl):
        from repro.dlrm import BufferClassifier

        head = tiny_trace.head(2000)
        engine = InferenceEngine(accesses_per_batch=512)
        classifier = BufferClassifier(300, buffer_impl=impl)
        report = engine.run(head, classifier)
        assert report.total_accesses == len(head)
        assert 0.0 < report.hit_rate < 1.0
        assert len(classifier.buffer) <= 300

    def test_buffer_classifier_dense_fast_matches_scalar(self, tiny_trace):
        """The exact ``"fast"`` classifier with its dense universe
        (``key_space``) serves batches through ``serve_segment`` — the
        per-batch hit masks, report, and final buffer state must be
        bit-identical to the dict-mode scalar replay."""
        from repro.dlrm import BufferClassifier
        from repro.traces.access import Trace, remap_to_dense

        head = tiny_trace.head(2000)
        dense_keys, _ = remap_to_dense(head)
        dense_trace = Trace(table_ids=np.zeros(len(dense_keys),
                                               dtype=np.int64),
                            row_ids=dense_keys)
        key_space = int(dense_keys.max()) + 1
        engine = InferenceEngine(accesses_per_batch=512)
        batched = BufferClassifier(300, buffer_impl="fast",
                                   key_space=key_space)
        scalar = BufferClassifier(300, buffer_impl="fast")
        assert batched.buffer.residency is not None
        report_batched = engine.run(dense_trace, batched)
        report_scalar = engine.run(dense_trace, scalar)
        assert report_batched.hits == report_scalar.hits
        assert report_batched.misses == report_scalar.misses
        assert (sorted(batched.buffer.keys())
                == sorted(scalar.buffer.keys()))
        for key in scalar.buffer.keys():
            assert (batched.buffer.priority_of(key)
                    == scalar.buffer.priority_of(key))
        remaining = len(scalar.buffer)
        assert (batched.buffer.evict_batch(remaining)
                == scalar.buffer.evict_batch(remaining))


class TestPerformanceModel:
    def test_controlled_cache_hits_target(self, tiny_trace):
        cache = ControlledHitRateCache(0.25)
        hits = sum(cache.access(int(k)) for k in tiny_trace.head(2000).keys())
        assert hits == pytest.approx(500, abs=2)

    def test_fit_slope_negative(self, tiny_trace):
        engine = InferenceEngine(accesses_per_batch=512)
        model, reports = calibrate(engine, tiny_trace.head(2000),
                                   hit_rates=(0.0, 0.5, 1.0))
        assert model.slope < 0
        assert model.rmse_ms >= 0
        assert len(reports) == 3

    def test_predict_interpolates(self):
        model = LinearPerformanceModel.fit([0.0, 1.0], [10.0, 2.0])
        assert model.predict(0.5) == pytest.approx(6.0)

    def test_fit_needs_points(self):
        with pytest.raises(ValueError):
            LinearPerformanceModel.fit([0.5], [3.0])
