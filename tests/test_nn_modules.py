"""Modules, optimizers and serialization."""

import numpy as np
import pytest

from repro.nn import (
    Adam, Embedding, Linear, MLP, SGD, Sequential, Tensor,
    clip_grad_norm, dropout, load_module, save_module,
)


class TestLinearAndEmbedding:
    def test_linear_shapes(self, rng):
        layer = Linear(4, 7, rng=rng)
        out = layer(Tensor(rng.normal(size=(5, 4))))
        assert out.shape == (5, 7)

    def test_linear_no_bias(self, rng):
        layer = Linear(4, 7, rng=rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_embedding_lookup(self, rng):
        emb = Embedding(10, 3, rng=rng)
        out = emb(np.array([1, 1, 9]))
        assert out.shape == (3, 3)
        assert np.allclose(out.data[0], out.data[1])

    def test_embedding_out_of_range(self, rng):
        emb = Embedding(10, 3, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([10]))

    def test_mlp_final_activation(self, rng):
        mlp = MLP([4, 8, 1], rng=rng, final_activation="sigmoid")
        out = mlp(Tensor(rng.normal(size=(6, 4))))
        assert np.all(out.data > 0) and np.all(out.data < 1)

    def test_mlp_unknown_activation(self, rng):
        mlp = MLP([2, 2], rng=rng, activation="bogus",
                  final_activation="bogus")
        with pytest.raises(ValueError):
            mlp(Tensor(rng.normal(size=(1, 2))))

    def test_sequential_chains(self, rng):
        model = Sequential(Linear(3, 5, rng=rng), Linear(5, 2, rng=rng))
        assert model(Tensor(rng.normal(size=(4, 3)))).shape == (4, 2)


class TestModuleIntrospection:
    def test_num_parameters(self, rng):
        layer = Linear(4, 7, rng=rng)
        assert layer.num_parameters() == 4 * 7 + 7

    def test_named_parameters_nested(self, rng):
        model = Sequential(Linear(3, 5, rng=rng), Linear(5, 2, rng=rng))
        names = [name for name, _ in model.named_parameters()]
        assert "layers.0.weight" in names
        assert "layers.1.bias" in names

    def test_state_dict_roundtrip(self, rng):
        a = Linear(3, 4, rng=rng)
        b = Linear(3, 4, rng=np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.data, b.weight.data)

    def test_load_state_dict_shape_mismatch(self, rng):
        a = Linear(3, 4, rng=rng)
        state = a.state_dict()
        state["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_load_state_dict_missing_key(self, rng):
        a = Linear(3, 4, rng=rng)
        with pytest.raises(KeyError):
            a.load_state_dict({})

    def test_save_load_file(self, rng, tmp_path):
        a = MLP([3, 5, 2], rng=rng)
        path = tmp_path / "model.npz"
        save_module(a, path)
        b = MLP([3, 5, 2], rng=np.random.default_rng(1234))
        load_module(b, path)
        x = Tensor(rng.normal(size=(2, 3)))
        assert np.allclose(a(x).data, b(x).data)


class TestOptimizers:
    def _loss(self, layer, x, y):
        pred = layer(x)
        return ((pred - y) ** 2.0).mean()

    def test_sgd_decreases_loss(self, rng):
        layer = Linear(3, 1, rng=rng)
        x = Tensor(rng.normal(size=(16, 3)))
        y = Tensor(rng.normal(size=(16, 1)))
        opt = SGD(layer.parameters(), lr=0.05, momentum=0.9)
        first = None
        for _ in range(50):
            loss = self._loss(layer, x, y)
            opt.zero_grad()
            loss.backward()
            opt.step()
            first = first if first is not None else loss.item()
        assert loss.item() < first * 0.5

    def test_adam_decreases_loss(self, rng):
        layer = Linear(3, 1, rng=rng)
        x = Tensor(rng.normal(size=(16, 3)))
        y = Tensor(rng.normal(size=(16, 1)))
        opt = Adam(layer.parameters(), lr=0.05)
        first = None
        for _ in range(50):
            loss = self._loss(layer, x, y)
            opt.zero_grad()
            loss.backward()
            opt.step()
            first = first if first is not None else loss.item()
        assert loss.item() < first * 0.5

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_negative_lr_rejected(self, rng):
        with pytest.raises(ValueError):
            Adam(Linear(2, 2, rng=rng).parameters(), lr=-1.0)

    def test_clip_grad_norm(self, rng):
        p = Tensor(np.zeros(4), requires_grad=True)
        p.grad = np.full(4, 10.0)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm > 1.0
        assert abs(np.linalg.norm(p.grad) - 1.0) < 1e-9

    def test_clip_noop_under_limit(self, rng):
        p = Tensor(np.zeros(4), requires_grad=True)
        p.grad = np.full(4, 0.01)
        clip_grad_norm([p], max_norm=1.0)
        assert np.allclose(p.grad, 0.01)


class TestDropout:
    def test_identity_when_not_training(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        assert np.allclose(dropout(x, 0.5, training=False).data, x.data)

    def test_scales_when_training(self, rng):
        x = Tensor(np.ones((1000,)))
        out = dropout(x, 0.5, rng=rng, training=True)
        kept = out.data[out.data > 0]
        assert np.allclose(kept, 2.0)
        assert 0.3 < (out.data > 0).mean() < 0.7
