"""Training pipelines: labeling, losses, metrics."""

import numpy as np
import pytest

from repro.cache import capacity_from_fraction
from repro.core import (
    CachingModel, FeatureEncoder, PrefetchModel, build_labels,
    caching_accuracy, caching_targets, prefetch_metrics, prefetch_targets,
    train_caching_model, train_prefetch_model, output_collapse_ratio,
)
from repro.core.prefetch_model import BucketDecoder


@pytest.fixture(scope="module")
def pipeline(tiny_trace, tiny_recmg_config):
    config = tiny_recmg_config
    train, _ = tiny_trace.split(0.6)
    capacity = capacity_from_fraction(tiny_trace, 0.2)
    encoder = FeatureEncoder(config).fit(train)
    labels = build_labels(train, capacity, config, encoder)
    chunks = encoder.encode_chunks(train)
    return config, encoder, labels, chunks


class TestLabeling:
    def test_labels_aligned(self, pipeline):
        config, encoder, labels, chunks = pipeline
        targets = caching_targets(chunks, labels)
        assert targets.shape == (len(chunks), config.input_len)
        assert set(np.unique(targets)).issubset({0.0, 1.0})

    def test_miss_positions_sorted(self, pipeline):
        _, _, labels, _ = pipeline
        assert np.all(np.diff(labels.miss_positions) > 0)

    def test_prefetch_windows(self, pipeline):
        config, encoder, labels, chunks = pipeline
        sel, norm, dense = prefetch_targets(chunks, labels, config, encoder)
        assert norm.shape == (len(sel), config.eval_window)
        assert dense.shape == norm.shape
        assert norm.min() >= 0.0 and norm.max() <= 1.0

    def test_windows_are_future_misses(self, pipeline):
        config, encoder, labels, chunks = pipeline
        sel, _, dense = prefetch_targets(chunks, labels, config, encoder)
        # First window entry must be a miss occurring after the chunk.
        first_chunk_end = chunks.starts[sel[0]] + config.input_len
        miss_after = labels.miss_positions[
            labels.miss_positions >= first_chunk_end
        ][: config.eval_window]
        assert np.array_equal(dense[0], labels.dense_ids[miss_after])


class TestCachingTraining:
    def test_loss_decreases_and_accuracy(self, pipeline, rng):
        from dataclasses import replace

        config, encoder, labels, chunks = pipeline
        config = replace(config, caching_epochs=3)
        model = CachingModel(config, encoder.num_tables, rng=rng)
        targets = caching_targets(chunks, labels)
        result = train_caching_model(model, chunks, targets, config)
        third = max(1, len(result.losses) // 3)
        assert (np.mean(result.losses[-third:])
                < np.mean(result.losses[:third]))
        assert 0.0 <= result.final_metric <= 1.0
        assert result.num_parameters == model.num_parameters()

    def test_accuracy_range(self, pipeline, rng):
        config, encoder, labels, chunks = pipeline
        model = CachingModel(config, encoder.num_tables, rng=rng)
        value = caching_accuracy(model, chunks, caching_targets(chunks, labels),
                                 sel=np.arange(10))
        assert 0.0 <= value <= 1.0


class TestPrefetchTraining:
    @pytest.mark.parametrize("loss_kind", ["chamfer", "chamfer_forward", "l2"])
    def test_all_losses_run(self, pipeline, rng, loss_kind):
        config, encoder, labels, chunks = pipeline
        model = PrefetchModel(config, encoder.num_tables, rng=rng)
        miss_dense = labels.dense_ids[labels.miss_positions]
        model.set_decoder(BucketDecoder.from_miss_ids(miss_dense,
                                                      config.hash_buckets))
        sel, norm, dense = prefetch_targets(chunks, labels, config, encoder)
        result = train_prefetch_model(model, chunks, sel, norm, dense,
                                      encoder, config, loss_kind=loss_kind)
        assert len(result.losses) > 0
        assert np.isfinite(result.losses).all()

    def test_unknown_loss_rejected(self, pipeline, rng):
        config, encoder, labels, chunks = pipeline
        model = PrefetchModel(config, encoder.num_tables, rng=rng)
        sel, norm, dense = prefetch_targets(chunks, labels, config, encoder)
        with pytest.raises(ValueError):
            train_prefetch_model(model, chunks, sel, norm, dense, encoder,
                                 config, loss_kind="huber")


class TestPrefetchMetrics:
    def test_oracle_predictions_score_one(self, pipeline, rng):
        config, encoder, labels, chunks = pipeline
        sel, _, dense = prefetch_targets(chunks, labels, config, encoder)

        class Oracle:
            def predict_indices(self, chunks_, encoder_, sel=None):
                rows = np.searchsorted(np.asarray(globals_sel), sel)
                return dense[rows][:, : config.output_len]

        globals_sel = sel
        correctness, coverage = prefetch_metrics(
            Oracle(), chunks, sel[:20], dense[:20], encoder
        )
        assert correctness == pytest.approx(1.0)
        assert coverage > 0.0

    def test_collapse_ratio_detects_constant(self, pipeline, rng):
        config, encoder, labels, chunks = pipeline
        sel, _, dense = prefetch_targets(chunks, labels, config, encoder)

        class Constant:
            def predict_indices(self, chunks_, encoder_, sel=None):
                return np.full((len(sel), config.output_len), 7)

        assert output_collapse_ratio(Constant(), chunks, sel[:10],
                                     encoder) == 1.0
