"""Baseline prefetchers and evaluation metrics."""

import numpy as np
import pytest

from repro.prefetch import (
    BertiPrefetcher, BestOffsetPrefetcher, BingoPrefetcher,
    DominoPrefetcher, MicroArmedBanditPrefetcher, NullPrefetcher,
    Prefetcher, StridePrefetcher, TransFetchPrefetcher,
    VoyagerPrefetcher, VoyagerScaleError, estimate_memory_bytes,
    evaluate_prefetcher, run_breakdown,
)
from repro.traces import Trace


def trace_of(keys, tables=None):
    tables = tables if tables is not None else [0] * len(keys)
    return Trace(np.asarray(tables, np.int64), np.asarray(keys, np.int64))


class PerfectNextPrefetcher(Prefetcher):
    """Cheating oracle used to validate the metric plumbing."""

    name = "oracle"

    def __init__(self, keys):
        self.keys = list(keys)
        self.cursor = -1

    def observe(self, key, pc=0, hit=True):
        self.cursor += 1
        if self.cursor + 1 < len(self.keys):
            return [int(self.keys[self.cursor + 1])]
        return []


class TestEvaluation:
    def test_oracle_scores_perfectly(self):
        keys = list(range(100)) * 2
        trace = trace_of(keys)
        evaluation = evaluate_prefetcher(PerfectNextPrefetcher(trace.keys()),
                                         trace, window=4)
        assert evaluation.correctness == pytest.approx(1.0)
        assert evaluation.coverage > 0.2
        assert evaluation.accuracy == pytest.approx(1.0)

    def test_null_prefetcher_zero(self, tiny_trace):
        evaluation = evaluate_prefetcher(NullPrefetcher(),
                                         tiny_trace.head(500))
        assert evaluation.total_prefetches == 0
        assert evaluation.correctness == 0.0
        assert evaluation.coverage == 0.0


class TestStride:
    def test_detects_constant_stride(self):
        pf = StridePrefetcher(degree=2, confirm=2)
        outputs = [pf.observe(k, pc=1) for k in range(0, 40, 4)]
        assert outputs[-1] == [40, 44]

    def test_no_prediction_on_noise(self, rng):
        pf = StridePrefetcher()
        outputs = [pf.observe(int(k), pc=1)
                   for k in rng.integers(0, 10_000, size=50)]
        assert sum(len(o) for o in outputs) <= 2


class TestBOP:
    def test_learns_offset(self):
        pf = BestOffsetPrefetcher(offsets=[1, 2, 3], degree=1)
        last = []
        for k in range(0, 900, 3):
            last = pf.observe(k)
        assert last == [k + 3]


class TestDomino:
    def test_replays_recorded_sequence(self):
        pf = DominoPrefetcher(degree=3)
        pattern = [5, 9, 2, 7, 4]
        for _ in range(3):
            for k in pattern:
                out = pf.observe(k)
        # After training, seeing the pattern start should predict its tail.
        out = pf.observe(5)
        assert 9 in out or 2 in out

    def test_metadata_budget_bounds_tables(self):
        pf = DominoPrefetcher(metadata_fraction=0.1)
        for k in range(2000):
            pf.observe(k % 500)
        assert len(pf._index1) <= max(16, int(500 * 0.1))


class TestBingo:
    def test_replays_footprint(self):
        pf = BingoPrefetcher(region_size=8, active_window=4)
        # Visit region 0 with offsets {0, 1, 2}; then idle; then re-trigger.
        for k in [0, 1, 2]:
            pf.observe(k, pc=3)
        for k in [100, 200, 300, 400, 500]:
            pf.observe(k, pc=9)
        out = pf.observe(0, pc=3)
        assert set(out) >= {1, 2}

    def test_no_spatial_pattern_no_prefetch(self, rng):
        pf = BingoPrefetcher()
        outs = [pf.observe(int(k)) for k in rng.integers(0, 10**6, size=200)]
        assert sum(len(o) for o in outs) < 20


class TestBerti:
    def test_learns_local_delta(self):
        pf = BertiPrefetcher(latency=1, confidence_threshold=0.2)
        out = []
        for k in range(0, 600, 7):
            out = pf.observe(k, pc=2)
        # On a pure stride-7 stream every confident delta is a multiple
        # of the stride.
        assert out
        assert all((o - k) % 7 == 0 for o in out)


class TestMAB:
    def test_runs_and_selects(self, tiny_trace):
        pf = MicroArmedBanditPrefetcher(epoch=64)
        evaluation = evaluate_prefetcher(pf, tiny_trace.head(1500))
        assert evaluation.total_prefetches >= 0
        assert pf._counts.sum() > 0


class TestTransFetch:
    def test_trains_and_loss_decreases(self, tiny_trace):
        pf = TransFetchPrefetcher(context=4, dim=8, delta_range=32,
                                  predict_every=4)
        losses = pf.train(tiny_trace.head(1500), epochs=2, max_samples=300)
        assert losses[-1] < losses[0]
        assert pf.trained

    def test_predicts_within_delta_range(self, tiny_trace):
        pf = TransFetchPrefetcher(context=4, dim=8, delta_range=16,
                                  predict_every=1, threshold=0.0)
        pf.train(tiny_trace.head(800), epochs=1, max_samples=150)
        outs = []
        for k in range(100, 140):
            outs.extend(pf.observe(k))
        # All predictions are bounded-delta offsets of the inputs — the
        # structural limitation the paper calls out.
        assert outs
        assert all(100 - 16 <= o <= 139 + 16 for o in outs)


class TestVoyager:
    def test_memory_estimate_production_scale(self):
        # The paper's finding: 62M unique rows blow past 512 GB DDR...
        bytes_needed = estimate_memory_bytes(856, 62_000_000)
        assert bytes_needed > 300 * 2 ** 30

    def test_oom_guard(self, tiny_trace):
        pf = VoyagerPrefetcher(memory_budget_bytes=1000)
        with pytest.raises(VoyagerScaleError):
            pf.train(tiny_trace.head(500))

    def test_trains_at_toy_scale(self, tiny_trace):
        pf = VoyagerPrefetcher(context=4, dim=8, hidden=12, predict_every=8)
        losses = pf.train(tiny_trace.head(800), epochs=1, max_samples=100)
        assert len(losses) > 0
        out = []
        for access in tiny_trace.head(100):
            out.extend(pf.observe(access.key))
        # Predictions are packed (table, row) keys.
        assert all(isinstance(k, (int, np.integer)) for k in out)


class TestBreakdownHarness:
    def test_fractions_sum_to_one(self, tiny_trace):
        breakdown = run_breakdown(tiny_trace.head(2000), capacity=200,
                                  prefetcher=DominoPrefetcher())
        fractions = breakdown.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert breakdown.total == 2000

    def test_prefetcher_adds_prefetch_hits(self, tiny_trace):
        plain = run_breakdown(tiny_trace.head(2000), capacity=200)
        with_pf = run_breakdown(tiny_trace.head(2000), capacity=200,
                                prefetcher=DominoPrefetcher())
        assert plain.prefetch_hits == 0
        assert with_pf.prefetch_hits >= 0

    def test_metadata_fraction_shrinks_buffer(self, tiny_trace):
        full = run_breakdown(tiny_trace.head(2000), capacity=200)
        taxed = run_breakdown(tiny_trace.head(2000), capacity=200,
                              metadata_fraction=0.5)
        assert taxed.hit_rate <= full.hit_rate + 1e-9

    @pytest.mark.parametrize("impl", ["reference", "fast"])
    def test_exact_buffer_impls_reproduce_lru(self, tiny_trace, impl):
        """Priority backends at constant priority 0 are exact LRU: the
        breakdown matches both the OrderedDict loop and the closed
        form, with and without a prefetcher in the loop."""
        head = tiny_trace.head(2000)
        closed_form = run_breakdown(head, capacity=200)
        assert run_breakdown(head, capacity=200, engine="reference",
                             buffer_impl=impl) == closed_form
        ordered = run_breakdown(head, capacity=200,
                                prefetcher=DominoPrefetcher())
        assert run_breakdown(head, capacity=200,
                             prefetcher=DominoPrefetcher(),
                             buffer_impl=impl) == ordered

    def test_clock_buffer_impl_approximates_lru(self, tiny_trace):
        """Second-chance CLOCK: conserved totals, hit rate near LRU."""
        head = tiny_trace.head(2000)
        lru = run_breakdown(head, capacity=200)
        clock = run_breakdown(head, capacity=200, buffer_impl="clock")
        assert clock.total == len(head)
        assert abs(clock.hit_rate - lru.hit_rate) < 0.08
