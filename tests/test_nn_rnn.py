"""LSTM, seq2seq stacks and attention."""

import numpy as np
import pytest

from repro.nn import (
    Adam, LSTM, LSTMCell, Linear, LuongAttention, SelfAttention,
    Seq2SeqStack, StackedSeq2Seq, Tensor,
)


class TestLSTM:
    def test_cell_shapes(self, rng):
        cell = LSTMCell(5, 7, rng=rng)
        h, c = cell.zero_state(3)
        h2, c2 = cell(Tensor(rng.normal(size=(3, 5))), (h, c))
        assert h2.shape == (3, 7) and c2.shape == (3, 7)

    def test_unroll_shapes(self, rng):
        lstm = LSTM(5, 7, rng=rng)
        out, (h, c) = lstm(Tensor(rng.normal(size=(2, 9, 5))))
        assert out.shape == (2, 9, 7)
        assert h.shape == (2, 7)

    def test_state_carries_information(self, rng):
        lstm = LSTM(2, 4, rng=rng)
        x1 = Tensor(rng.normal(size=(1, 3, 2)))
        x2 = Tensor(rng.normal(size=(1, 3, 2)))
        _, (h1, _) = lstm(x1)
        _, (h2, _) = lstm(x2)
        assert not np.allclose(h1.data, h2.data)

    def test_gradients_flow_through_time(self, rng):
        lstm = LSTM(2, 4, rng=rng)
        x = Tensor(rng.normal(size=(1, 6, 2)))
        out, _ = lstm(x)
        out.sum().backward()
        assert lstm.cell.w_x.grad is not None
        assert np.abs(lstm.cell.w_x.grad).sum() > 0


class TestSeq2Seq:
    def test_stack_output_shape(self, rng):
        stack = Seq2SeqStack(input_size=4, hidden_size=6, out_steps=3, rng=rng)
        out = stack(Tensor(rng.normal(size=(2, 8, 4))))
        assert out.shape == (2, 3, 6)

    def test_stacked_chaining(self, rng):
        model = StackedSeq2Seq(4, 6, out_steps=3, num_stacks=2, rng=rng)
        out = model(Tensor(rng.normal(size=(2, 8, 4))))
        assert out.shape == (2, 3, 6)

    def test_num_stacks_validated(self, rng):
        with pytest.raises(ValueError):
            StackedSeq2Seq(4, 6, out_steps=3, num_stacks=0, rng=rng)

    def test_parameters_grow_with_stacks(self, rng):
        one = StackedSeq2Seq(4, 6, 3, num_stacks=1, rng=rng)
        two = StackedSeq2Seq(4, 6, 3, num_stacks=2, rng=rng)
        assert two.num_parameters() > one.num_parameters()

    def test_trainable_end_to_end(self, rng):
        model = StackedSeq2Seq(3, 8, out_steps=2, num_stacks=1, rng=rng)
        head = Linear(8, 1, rng=rng)
        opt = Adam(model.parameters() + head.parameters(), lr=1e-2)
        x = Tensor(rng.normal(size=(4, 5, 3)))
        target = Tensor(rng.normal(size=(4, 2)))
        losses = []
        for _ in range(25):
            out = model(x)
            b, t, h = out.shape
            pred = head(out.reshape(b * t, h)).reshape(b, t)
            loss = ((pred - target) ** 2.0).mean()
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.6


class TestAttention:
    def test_luong_weights_sum_to_one(self, rng):
        att = LuongAttention(6, rng=rng)
        out = att(Tensor(rng.normal(size=(3, 6))),
                  Tensor(rng.normal(size=(3, 7, 6))))
        assert out.shape == (3, 6)
        assert np.allclose(att.last_weights.sum(axis=1), 1.0)

    def test_self_attention_shape(self, rng):
        att = SelfAttention(6, rng=rng)
        out = att(Tensor(rng.normal(size=(2, 5, 6))))
        assert out.shape == (2, 5, 6)

    def test_self_attention_differentiable(self, rng):
        att = SelfAttention(4, rng=rng)
        x = Tensor(rng.normal(size=(1, 3, 4)), requires_grad=True)
        att(x).sum().backward()
        assert x.grad is not None and np.abs(x.grad).sum() > 0
