"""Setup shim so legacy (non-PEP 517) editable installs work offline."""

from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=(
        "RecMG: ML-guided memory optimization for DLRM inference on "
        "tiered memory (HPCA 2025 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
)
