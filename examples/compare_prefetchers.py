"""Compare prefetcher baselines on an embedding-access stream (§VII-B).

Runs Bingo (spatial), Domino (temporal), BOP, Berti, MAB, Stride and a
trained TransFetch over the same dense index stream and reports
correctness / coverage / volume / cost — the paper's Fig. 9-10 metrics.

Run:  python examples/compare_prefetchers.py
"""

import numpy as np

from repro.analysis import ascii_table
from repro.prefetch import (
    BertiPrefetcher, BestOffsetPrefetcher, BingoPrefetcher,
    DominoPrefetcher, MicroArmedBanditPrefetcher, StridePrefetcher,
    TransFetchPrefetcher, evaluate_prefetcher,
)
from repro.traces import Trace, load_dataset
from repro.traces.access import remap_to_dense


def main() -> None:
    trace = load_dataset("dataset3", scale=0.2)
    train, test = trace.split(0.5)
    dense, _ = remap_to_dense(test)
    stream = Trace(np.zeros(len(dense), np.int64), dense)
    stream.table_ids = test.table_ids

    transfetch = TransFetchPrefetcher(predict_every=4)
    print("training TransFetch ...")
    transfetch.train(train, epochs=1, max_samples=600)

    prefetchers = [
        BingoPrefetcher(),
        DominoPrefetcher(metadata_fraction=0.10, degree=2),
        BestOffsetPrefetcher(),
        BertiPrefetcher(),
        StridePrefetcher(),
        MicroArmedBanditPrefetcher(),
        transfetch,
    ]
    rows = []
    for prefetcher in prefetchers:
        ev = evaluate_prefetcher(prefetcher, stream.head(5000), window=15)
        rows.append([prefetcher.name, ev.correctness, ev.coverage,
                     ev.total_prefetches, ev.cost_per_prediction_us])
    print()
    print(ascii_table(
        ["prefetcher", "correctness", "coverage", "#prefetches",
         "cost (us/access)"],
        rows, title="prefetcher comparison on embedding accesses",
    ))
    print("\nNote: spatial prefetching (Bingo) fails on embedding streams "
          "— the paper's core observation.")


if __name__ == "__main__":
    main()
