"""Quickstart: train RecMG on a synthetic trace and beat LRU.

Run:  python examples/quickstart.py
"""

from repro.cache import LRUCache, capacity_from_fraction, simulate, simulate_belady
from repro.core import RecMG, RecMGConfig
from repro.traces import load_dataset, summarize


def main() -> None:
    # 1. A production-like embedding-access trace (synthetic stand-in
    #    for Meta's dlrm_datasets; see DESIGN.md for the substitution).
    trace = load_dataset("dataset0", scale=0.3)
    print("trace:", summarize(trace))

    train, test = trace.split(0.6)
    capacity = capacity_from_fraction(trace, 0.20)  # 20% of unique vectors
    print(f"GPU buffer capacity: {capacity} vectors")

    # 2. Offline training: OPTgen labels -> caching + prefetch models.
    system = RecMG(RecMGConfig(caching_epochs=3, prefetch_epochs=3,
                               max_train_chunks=600))
    report = system.fit(train, buffer_capacity=capacity)
    print(f"caching-model accuracy vs OPT: {report.caching_accuracy:.1%}")
    print(f"prefetch-model correctness:    {report.prefetch_correctness:.1%}")

    # 3. Online deployment on the held-out traffic.
    stats = system.evaluate(test, capacity=capacity)
    print(f"RecMG hit rate: {stats.hit_rate:.1%}  "
          f"(breakdown: {stats.breakdown.fractions()})")

    # 4. Baselines.
    lru = LRUCache(capacity)
    simulate(lru, test)
    opt_stats, _ = simulate_belady(test, capacity)
    print(f"LRU hit rate:   {lru.stats.hit_rate:.1%}")
    print(f"Belady optimal: {opt_stats.hit_rate:.1%}")
    gain = stats.hit_rate / max(lru.stats.hit_rate, 1e-9) - 1.0
    print(f"RecMG vs LRU:   {gain:+.1%} hits")


if __name__ == "__main__":
    main()
