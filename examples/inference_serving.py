"""End-to-end DLRM inference serving on tiered memory.

Builds a numpy DLRM, reconstructs inference queries from a trace, and
compares per-batch serving time under LRU vs RecMG buffer management,
including the pipelined CPU/GPU execution of the models (paper Fig. 6).

Run:  python examples/inference_serving.py
"""

import numpy as np

from repro.cache import LRUCache, capacity_from_fraction
from repro.core import PipelineSimulator, RecMG, RecMGConfig
from repro.dlrm import (
    DLRM, DLRMConfig, BufferClassifier, InferenceEngine, ManagerClassifier,
    queries_from_trace,
)
from repro.traces import load_dataset


def main() -> None:
    trace = load_dataset("dataset1", scale=0.25)
    train, test = trace.split(0.6)
    capacity = capacity_from_fraction(trace, 0.20)

    # A real (small) DLRM: the CTR outputs prove the lookup path works.
    dlrm = DLRM(DLRMConfig(num_tables=trace.num_tables,
                           rows_per_table=4096, embedding_dim=16))
    # Query boundaries live on the full trace (split() cuts mid-query).
    queries = queries_from_trace(trace)
    sample = queries[:8]
    ctrs = dlrm.forward_batch(
        np.stack([q.dense for q in sample]), [q.sparse for q in sample]
    )
    print("sample CTRs:", np.round(ctrs, 3))

    # Train RecMG and serve with both buffer managers.
    system = RecMG(RecMGConfig(caching_epochs=3, prefetch_epochs=2,
                               max_train_chunks=500))
    system.fit(train, buffer_capacity=capacity)

    engine = InferenceEngine(dlrm=dlrm, accesses_per_batch=2048)
    lru_report = engine.run(test, LRUCache(capacity))
    # Model-free aged-priority buffer on the array-backed CLOCK backend
    # (the cheapest manager the serving loop supports; buffer_impl also
    # accepts "fast"/"reference" for the exact heap/audit backends).
    clock_report = engine.run(test, BufferClassifier(capacity,
                                                     buffer_impl="clock"))
    recmg_report = engine.run(
        test, ManagerClassifier(system.deploy(capacity), test)
    )
    print(f"LRU:   {lru_report.mean_batch_ms:.2f} ms/batch "
          f"(hit rate {lru_report.hit_rate:.1%})")
    print(f"CLOCK: {clock_report.mean_batch_ms:.2f} ms/batch "
          f"(hit rate {clock_report.hit_rate:.1%})")
    print(f"RecMG: {recmg_report.mean_batch_ms:.2f} ms/batch "
          f"(hit rate {recmg_report.hit_rate:.1%})")
    saved = 1 - recmg_report.mean_batch_ms / lru_report.mean_batch_ms
    print(f"end-to-end reduction: {saved:.1%}")

    # Pipelined execution: model inference overlaps GPU batches.
    gpu_times = [b.total_ms for b in recmg_report.batches]
    cpu_times = [2.0] * len(gpu_times)  # model serving per batch (ms)
    result = PipelineSimulator().run(gpu_times, cpu_times)
    print(f"pipelined: {result.total_time_ms:.1f} ms vs serialized "
          f"{result.serialized_time_ms:.1f} ms "
          f"({result.skipped_model_updates} updates skipped)")


if __name__ == "__main__":
    main()
