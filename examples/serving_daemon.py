"""Concurrent serving daemon: the full admission -> worker-pool stack.

Replays a multi-tenant access stream through the serving front end the
way an online deployment would see it: one producer thread per tenant
enqueues small requests into a bounded :class:`RequestQueue`, a
:class:`Batcher` coalesces them into demand segments under a
max-size/max-wait flush policy, and the serving loop feeds each batch
to :meth:`RecMGManager.serve_batch` on a sharded buffer with
``concurrency="threads"`` — per-shard worker threads, shard-order
gather.  A live metrics line (p50/p95/p99 latency, queue depth, batch
mix) prints as the stream drains; the final report adds per-shard
worker utilization and the end-to-end hit rate.

With ``--model`` the daemon becomes model-in-the-loop: the head of
the stream trains a small :class:`CachingModel` on OPTgen labels, and
the remainder is served with ``priority_mode="async"`` — a background
worker refreshes a dense priority table while ``serve_batch`` reads
possibly-stale bits without ever blocking on inference.  The live
retraining window (``--retrain``) fine-tunes a clone of the model from
the stream itself and swaps it in atomically, all off the critical
path.  The final report then adds the async provider's staleness and
inference-latency lines next to the serving percentiles.

With ``--rebalance N`` the static capacity split becomes elastic: the
manager tracks per-shard traffic through an EWMA and, every ``N``
served accesses, migrates buffer capacity (and the resident keys) to
the shards actually absorbing the load — the multi-tenant stream
time-shares the id space in phases, so the hot band moves and the
daemon's report grows a rebalance line (count, migrated keys, and the
serving pause each migration cost).

Defaults drive ~2M keys (~64k requests).  Everything is a ``main()``
keyword so the smoke test (``tests/test_examples.py``) can run the
same daemon on a tiny trace with a small pool in well under a second.

Run:  python examples/serving_daemon.py
      python examples/serving_daemon.py --accesses 5000000
      python examples/serving_daemon.py --model --retrain
"""

import threading
import time

from repro.core import RecMGConfig
from repro.core.caching_model import CachingModel
from repro.core.features import FeatureEncoder
from repro.core.labeling import build_labels, caching_targets
from repro.core.manager import RecMGManager
from repro.core.training import train_caching_model
from repro.serving import Batcher, Request, RequestQueue
from repro.traces import SyntheticTraceConfig, generate_multi_tenant_trace


def main(total_accesses: int = 2_000_000,
         num_tenants: int = 4,
         num_shards: int = 4,
         num_workers: int = None,
         buffer_impl: str = "clock",
         request_keys: int = 32,
         max_batch_keys: int = 4096,
         max_wait_s: float = 0.002,
         queue_size: int = 256,
         capacity_fraction: float = 0.2,
         report_every: int = 100,
         model: bool = False,
         train_fraction: float = 0.25,
         online_retrain: bool = False,
         rebalance_interval: int = 0,
         rebalance_threshold: float = 0.05) -> None:
    trace_config = SyntheticTraceConfig(
        num_tables=8, rows_per_table=4096, num_accesses=total_accesses,
        num_clusters=32, cluster_block=8, seed=20260807)
    trace = generate_multi_tenant_trace(trace_config,
                                        num_tenants=num_tenants)
    config = RecMGConfig(
        buffer_impl=buffer_impl, num_shards=num_shards,
        concurrency="threads", num_workers=num_workers,
        priority_mode="async" if model else "none",
        online_retrain_interval=(max(max_batch_keys * 8, 4096)
                                 if model and online_retrain else 0),
        rebalance_interval=rebalance_interval,
        rebalance_threshold=rebalance_threshold)
    caching_model = None
    if model:
        # Train on the head of the stream, serve the remainder — the
        # deployment shape: yesterday's traffic trains, today's serves.
        head, serve_trace = trace.split(train_fraction)
        encoder = FeatureEncoder(config).fit(head)
        train_capacity = max(1, int(encoder.vocab_size
                                    * capacity_fraction))
        labels = build_labels(head, train_capacity, config, encoder)
        chunks = encoder.encode_chunks(head)
        caching_model = CachingModel(config, encoder.num_tables)
        result = train_caching_model(
            caching_model, chunks, caching_targets(chunks, labels), config)
        print(f"caching model: trained on {len(head):,} head accesses "
              f"({result.final_metric:.1%} holdout accuracy); async "
              f"priority refresh"
              + (", online retraining on" if online_retrain else ""))
    else:
        serve_trace = trace
        encoder = FeatureEncoder(config).fit(trace)
    dense = encoder.dense_ids(serve_trace)
    capacity = max(num_shards, int(trace.num_unique * capacity_fraction))
    print(f"stream: {len(dense):,} keys, {trace.num_unique:,} distinct; "
          f"buffer: {capacity:,} slots x {num_shards} shards "
          f"({buffer_impl}), {num_tenants} tenant producers")

    # Requests round-robin across tenant producers; each producer
    # replays its own subsequence in order (the queue interleaves
    # tenants nondeterministically, as live traffic would).
    runs = [dense[lo:lo + request_keys]
            for lo in range(0, len(dense), request_keys)]
    queue = RequestQueue(maxsize=queue_size)
    live_producers = [num_tenants]
    producers_lock = threading.Lock()

    def producer(tenant: int) -> None:
        for run in runs[tenant::num_tenants]:
            queue.put(Request(keys=run, tenant=tenant))
        with producers_lock:
            live_producers[0] -= 1
            if live_producers[0] == 0:
                queue.close()  # last producer out stops the batcher

    manager = RecMGManager(capacity, encoder, config,
                           caching_model=caching_model)
    producers = [threading.Thread(target=producer, args=(tenant,),
                                  name=f"tenant-{tenant}")
                 for tenant in range(num_tenants)]
    began = time.perf_counter()
    for thread in producers:
        thread.start()
    batcher = Batcher(queue, max_batch_keys=max_batch_keys,
                      max_wait_s=max_wait_s)
    metrics = manager.serving_metrics
    with manager:
        for batch in batcher.batches():
            manager.serve_batch(batch.keys, queue_depth=batch.queue_depth)
            if report_every and metrics.batches % report_every == 0:
                live = metrics.summary()
                print(f"  [{metrics.batches:>6} batches] "
                      f"{live['keys_served']:>10,} keys  "
                      f"p50 {live['latency_p50_ms']:6.2f} ms  "
                      f"p99 {live['latency_p99_ms']:6.2f} ms  "
                      f"depth~{live['queue_depth_mean']:.1f}")
        for thread in producers:
            thread.join()
        wall = time.perf_counter() - began
        summary = metrics.summary(
            shard_busy_seconds=manager._pool.busy_seconds()
            if manager._pool is not None else None,
            wall_seconds=wall)
    breakdown = manager.breakdown
    served = breakdown.total
    hits = served - breakdown.on_demand
    print(f"drained {summary['batches']:,} batches "
          f"({summary['keys_served']:,} keys) in {wall:.2f} s "
          f"= {summary['keys_served'] / wall:,.0f} keys/s")
    print(f"latency ms: p50 {summary['latency_p50_ms']:.2f}  "
          f"p95 {summary['latency_p95_ms']:.2f}  "
          f"p99 {summary['latency_p99_ms']:.2f}  "
          f"mean {summary['latency_mean_ms']:.2f}")
    print(f"queue depth: mean {summary['queue_depth_mean']:.1f} "
          f"max {summary['queue_depth_max']}  "
          f"batch mix {summary['batch_size_histogram']}")
    if metrics.inflight_depth_samples:
        # Pipeline depth of the concurrent engine — a different stage
        # (and unit) than the admission-queue depth above.
        print(f"in-flight blocks: mean {summary['inflight_depth_mean']:.1f} "
              f"max {summary['inflight_depth_max']}")
    if "shard_utilization" in summary:
        util = "  ".join(f"{u:.0%}" for u in summary["shard_utilization"])
        print(f"shard utilization: {util}")
    if rebalance_interval:
        caps = "/".join(str(c) for c in manager.buffer.shard_capacities)
        print(f"elastic rebalancing: {summary['rebalance_count']} "
              f"rebalances, {summary['rebalance_migrated_keys']:,} keys "
              f"migrated, pause "
              f"{summary['rebalance_pause_ms_total']:.2f} ms total "
              f"(max {summary['rebalance_pause_ms_max']:.2f} ms); "
              f"final split {caps}")
    if model:
        # Read after close(): the refresh worker drains its queue on
        # shutdown, so the pre-close summary can undercount inference.
        provider = manager.priority_provider.stats()
        print(f"priority staleness: mean {metrics.staleness_mean:.1f} "
              f"max {summary['staleness_max']} blocks  "
              f"(table coverage {provider['table_coverage']:.1%}, "
              f"{provider['dropped_blocks']} blocks shed)")
        print(f"async inference: {metrics.inference_batches} batches "
              f"off the serving thread, mean "
              f"{metrics.inference_mean_ms:.2f} ms"
              + (f"; {provider['retrains']} online retrains"
                 if online_retrain else ""))
    print(f"hit rate: {hits / served:.1%} over {served:,} accesses "
          f"({manager.evictions:,} evictions)")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--accesses", type=int, default=2_000_000,
                        help="total keys to stream (default 2M)")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--buffer", default="clock",
                        choices=["clock", "fast", "reference"])
    parser.add_argument("--model", action="store_true",
                        help="train a caching model on the stream head "
                             "and serve with the async priority provider")
    parser.add_argument("--retrain", action="store_true",
                        help="with --model: fine-tune the model online "
                             "from the live stream")
    parser.add_argument("--rebalance", type=int, default=0,
                        metavar="N",
                        help="served accesses between elastic rebalance "
                             "checks (0 = keep the static capacity split)")
    args = parser.parse_args()
    main(total_accesses=args.accesses, num_shards=args.shards,
         num_workers=args.workers, buffer_impl=args.buffer,
         model=args.model, online_retrain=args.retrain,
         rebalance_interval=args.rebalance)
