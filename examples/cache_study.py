"""Reuse-distance and caching-policy study (reproduces §III's analysis).

Characterizes a trace the way the paper characterizes Meta production
traces: reuse-distance histogram, the 80/20 popularity skew, and the
LRU-vs-optimal capacity gap that motivates ML-guided management.

Run:  python examples/cache_study.py
"""


from repro.analysis import ascii_bars, ascii_table
from repro.cache import (
    LFUCache, LRUCache, belady_hit_rate, simulate,
)
from repro.traces import (
    load_dataset, long_reuse_fraction, reuse_distances, reuse_histogram, top_fraction_share,
)


def main() -> None:
    trace = load_dataset("dataset2", scale=0.3)
    print(f"accesses={len(trace)}  unique={trace.num_unique}  "
          f"tables={trace.num_tables}")
    print(f"top-20% share of accesses: {top_fraction_share(trace):.1%} "
          "(paper: ~80%)")

    distances = reuse_distances(trace)
    _, counts = reuse_histogram(distances, max_power=14)
    print()
    print(ascii_bars([f"2^{i}" for i in range(len(counts))],
                     counts.astype(float),
                     title="reuse-distance histogram"))
    buffer = int(trace.num_unique * 0.2)
    print(f"\naccesses with reuse distance beyond a 20% buffer: "
          f"{long_reuse_fraction(distances, buffer):.1%}")

    capacities = [buffer // 8, buffer // 4, buffer // 2, buffer]
    rows = []
    for capacity in capacities:
        lru = LRUCache(capacity)
        simulate(lru, trace)
        lfu = LFUCache(capacity)
        simulate(lfu, trace)
        rows.append([capacity, lru.stats.hit_rate, lfu.stats.hit_rate,
                     belady_hit_rate(trace, capacity)])
    print()
    print(ascii_table(["capacity", "LRU", "LFU", "Belady"], rows,
                      title="hit rate vs capacity"))

    # The paper's capacity-efficiency observation: how much smaller can
    # the optimal cache be while matching LRU at full capacity?
    lru_full = rows[-1][1]
    for capacity in capacities:
        if belady_hit_rate(trace, capacity) >= lru_full:
            print(f"\noptimal matches LRU@{buffer} with only "
                  f"{capacity} entries ({capacity / buffer:.0%})")
            break


if __name__ == "__main__":
    main()
