"""Sharded buffer: partition a dense key space across N backend shards.

Production embedding caches do not serve millions of users from one
buffer: the id space is *partitioned* across shards, each shard owns an
independent slice of the capacity, and a request batch is scattered to
its shards, served per shard, and gathered back.  This module builds
that layer on top of the single-shard backends in
:mod:`repro.cache.buffer`.

**Routing contract.**  A :class:`ShardedBuffer` is constructed over a
dense id universe ``[0, key_space)`` (the same universe the
:class:`~repro.cache.residency.ResidencyIndex` bitmaps cover) and a
*router* — one of :data:`SHARD_POLICIES`:

* ``"contiguous"`` (:class:`ContiguousRangeRouter`) — shard ``s`` owns
  the contiguous id range ``[ceil(s*K/N), ceil((s+1)*K/N))``.  Dense
  ids are assigned in sorted packed-key order
  (:func:`repro.traces.access.remap_to_dense` keeps same-table rows
  contiguous), so contiguous ranges map to contiguous (table, row)
  regions — the natural partition for range-partitioned embedding
  tables, and the one hot-shard workloads stress.
* ``"modulo"`` (:class:`ModuloRouter`) — shard ``s`` owns every id
  congruent to ``s`` mod N; a hash-free striping that spreads
  contiguous hot ranges evenly across shards.

Routing is **total and deterministic**: every int64 key — including ids
outside ``[0, key_space)``, which the manager assigns to keys unseen at
encoder-fit time — maps to exactly one shard, and the scalar and batch
forms agree key for key (out-of-range ids route by ``key mod N`` under
both policies, so spillover correctness never depends on the id fitting
the universe).  Because a key can only ever live in its router shard,
the per-shard residents are pairwise disjoint and their union *is* the
global residency — ``contains_batch`` answers by scattering the query
to shards and gathering the per-shard gathers back (property-tested
after every op in ``tests/test_sharding.py``).

**Id compression (the translation boundary).**  Each shard's dense
backend is built over the *compressed* per-shard universe
``[0, shard_key_space)``, not the full ``[0, key_space)``: both routers
admit an exact, vectorized bijection from the ids a shard owns onto a
dense local range (contiguous: ``id - range_lo``; modulo: ``id // N``),
so per-id backend state (slot vectors, expiry/seqno vectors, residency
bitmaps) costs the same total memory as a single-shard buffer instead
of N× it.  Translation happens at exactly one layer — the
:class:`CompressedShardView` wrapped around every backend shard:

* callers (the :class:`ShardedBuffer` bulk ops, the manager's sharded
  and concurrent engines, ``dlrm.inference``, ``prefetch.harness`` and
  the tests) keep passing **global** keys and receive **global** keys
  back — victims of ``evict_one``/``evict_batch``/``serve_segment``,
  ``keys()`` and ``residency_map()`` are decompressed on the way out;
* spillover ids (outside ``[0, key_space)``) pass through *unchanged*:
  they route by ``key mod N`` and always fall outside the compressed
  universe too (negative stays negative; ``id >= key_space >=
  shard_key_space``), so they land in each backend's existing spillover
  side path and decompression is unambiguous — a stored id in
  ``[0, shard_key_space)`` inverts the bijection, anything else *is*
  the global key.

Compression is a **storage transform, not a policy change**: backend
decisions depend on (priority, seqno, slot/hand) order, never on id
values, and both bijections are monotonic over a shard's owned ids, so
every victim sequence and hit/miss stream is byte-identical to the
uncompressed layout (pinned by the sharded goldens in
``tests/test_golden_backends.py`` and the 200-seed fuzz).  View methods
require their keys to actually route to the view's shard (spillover
included) — :meth:`ShardedBuffer.iter_shard_segments` scatters first,
so every production call site satisfies this by construction.

**Capacity and eviction.**  By default the total capacity splits as
evenly as the remainder allows: shard ``s`` gets ``capacity // N``
slots, plus one for ``s < capacity % N``.  ``shard_weights=`` (also a
:class:`~repro.core.config.RecMGConfig` knob) instead splits capacity
proportionally to per-shard weights — largest-remainder apportionment,
ties to the lowest shard id, every shard keeps at least one slot — so
a workload whose traffic (or observed occupancy) is skewed across
shards can be served with skew-matched capacity instead of a uniform
split that starves the hot shard (see the weighted hot-shard entry in
``benchmarks/test_perf_hotpaths.py``).  Eviction decisions are
**local to a shard**: a full shard evicts its own
``(effective_priority, seqno)`` (or clock-order) victim even while
another shard has free slots, and :meth:`ShardedBuffer.evict_batch` —
which levels the fullest shards down by water-filling — returns victims
grouped per shard in shard-id order, *not* in the single-buffer global
``(effective_priority, seqno)`` order.  This is the documented price of
sharding; the single-shard backends keep the exact global contract.

**Bulk protocol.**  Every op of the single-shard bulk protocol
(``contains_batch`` / ``put_batch`` / ``set_priority_batch`` /
``demote_batch`` / ``evict_batch``) is implemented as one vectorized
scatter of the keys to shards (:meth:`ShardRouter.route_batch`),
per-shard *batched* backend calls through the compressing views, and
one gather back — no per-key python loop.  Within a shard the original
key order is preserved, and ops on distinct shards commute (disjoint
key sets), so the batch forms keep the single-shard semantics per
shard.

**Rebalancing (live re-splitting).**  The split chosen at construction
is not forever: :meth:`ShardedBuffer.rebalance` re-splits the capacity
(largest-remainder over new weights) and — contiguous router only —
re-draws the owned ranges by the same apportionment over ``key_space``,
migrating resident keys between shards without a global rebuild.  The
migration contract, executed by :class:`ShardRebalancer`:

* residents are **exported** from each shard's compressed universe
  under the old partition (backend ``export_state``: exact backends
  carry ``(key, effective_priority, seqno)``, the clock backend
  ``(key, priority)`` in hand order), decompressed to global ids,
  **re-routed** under the new partition and **re-imported** into the
  rebuilt destination backends — priorities carry over exactly, so no
  key gains or loses standing by moving;
* relative eviction order *within* a source shard is preserved
  (seqnos re-rank monotonically; hand order re-packs in sweep order);
  *across* source shards merged into one destination the order is the
  deterministic (source shard asc, per-source order) concatenation —
  the **eviction-order caveat across migration**: there is no global
  recency clock to interleave two shards' histories by;
* a destination whose new capacity undercuts its assembled population
  (the donor-shrink path) evicts the overflow through a real
  ``evict_batch`` on the merged population, so the victims are exactly
  the backend's own choices, and reports them to the caller;
* a rebalance whose target split equals the current state is a
  **no-op** (bit-identical to not calling it), and spillover ids never
  migrate (``key mod N`` routing is partition-invariant);
* rebalancing is **not safe against in-flight serving** — the
  manager's online driver runs it at block boundaries only, and under
  ``concurrency="threads"`` drains and barriers the shard-pinned
  workers first (see :mod:`repro.serving.workers`).

All four migration invariants — partition disjointness, residency-union
preservation, occupancy ≤ new capacity, compressed-universe round-trip
— are fuzz-pinned across 200 random op/rebalance interleavings in
``tests/test_rebalancing.py``.

A 1-shard :class:`ShardedBuffer` is decision-for-decision identical to
the bare backend (200-seed differential in ``tests/test_sharding.py``;
both bijections degenerate to the identity at N=1);
``make_buffer(..., num_shards=1)`` therefore returns the bare backend
and only ``num_shards > 1`` pays the routing layer.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .buffer import make_buffer


class ContiguousRangeRouter:
    """Contiguous-range partition of ``[0, key_space)`` into N shards.

    ``route(key) = key * N // key_space`` for in-universe keys — shard
    ``s`` owns ``[ceil(s*K/N), ceil((s+1)*K/N))`` (:meth:`range_of`).
    Out-of-universe keys (spillover ids above the vocabulary, or
    negative probes) route by ``key mod N``.

    Compression (see module docstring) shifts a shard's owned range
    down to zero: ``compress(id) = id - range_lo`` — an order-preserving
    bijection onto ``[0, hi - lo)``.

    The partition is *mutable*: :meth:`set_bounds` re-draws the owned
    ranges (the repartition half of ``ShardedBuffer.rebalance``; see
    "Rebalancing" in the module docstring).  Construction always uses
    the default ceil split — weights never change the partition at
    build time — and in-universe routing stays a pure arithmetic
    expression while the bounds equal that default, falling back to a
    vectorized ``searchsorted`` over the boundary array only after a
    re-draw.  Out-of-universe keys route by ``key mod N`` under either
    partition, so spillover routing is rebalance-invariant.
    """

    name = "contiguous"

    #: ``set_bounds`` can re-draw this router's partition (the modulo
    #: partition is fixed by arithmetic, so its rebalance is
    #: capacity-only).
    supports_repartition = True

    def __init__(self, num_shards: int, key_space: int) -> None:
        self.num_shards = int(num_shards)
        self.key_space = int(key_space)
        self._bounds = self.default_bounds(self.num_shards, self.key_space)
        self._uniform = True
        self._range_lo = self._bounds[:-1].copy()

    @staticmethod
    def default_bounds(num_shards: int, key_space: int) -> np.ndarray:
        """Boundary array ``[b_0..b_N]`` of the construction-time ceil
        split: shard ``s`` owns ``[ceil(s*K/N), ceil((s+1)*K/N))``."""
        return np.array([-((-s * key_space) // num_shards)
                         for s in range(num_shards + 1)], dtype=np.int64)

    def set_bounds(self, bounds: Sequence[int]) -> None:
        """Re-draw the owned ranges: shard ``s`` now owns
        ``[bounds[s], bounds[s+1])``.

        Only ``ShardedBuffer.rebalance`` may call this, *after*
        exporting every shard's residents under the old partition —
        the compression bijections change with the ranges, so any
        state still stored under the old ranges becomes unreadable.
        """
        arr = np.asarray(bounds, dtype=np.int64)
        if arr.shape != (self.num_shards + 1,):
            raise ValueError(
                f"bounds must have {self.num_shards + 1} entries "
                f"(got {arr.size})")
        if int(arr[0]) != 0 or int(arr[-1]) != self.key_space:
            raise ValueError("bounds must span [0, key_space]")
        if (np.diff(arr) < 0).any():
            raise ValueError("bounds must be nondecreasing")
        self._bounds = arr.copy()
        self._uniform = bool(np.array_equal(
            self._bounds, self.default_bounds(self.num_shards,
                                              self.key_space)))
        self._range_lo = self._bounds[:-1].copy()

    def route(self, key: int) -> int:
        key = int(key)
        if 0 <= key < self.key_space:
            if self._uniform:
                return key * self.num_shards // self.key_space
            return int(np.searchsorted(self._bounds, key,
                                       side="right")) - 1
        return key % self.num_shards

    def route_batch(self, keys: Sequence[int]) -> np.ndarray:
        arr = np.asarray(keys, dtype=np.int64)
        clipped = np.clip(arr, 0, self.key_space - 1)
        if self._uniform:
            shards = clipped * self.num_shards // self.key_space
        else:
            shards = (np.searchsorted(self._bounds, clipped,
                                      side="right") - 1).astype(np.int64)
        out = (arr < 0) | (arr >= self.key_space)
        if out.any():
            shards[out] = np.mod(arr[out], self.num_shards)
        return shards

    def range_of(self, shard: int) -> Tuple[int, int]:
        """In-universe id range ``[lo, hi)`` owned by ``shard``."""
        return int(self._bounds[shard]), int(self._bounds[shard + 1])

    # -- compression (exact bijection onto the local universe) ---------
    def shard_key_space(self, shard: int) -> int:
        """Size of ``shard``'s compressed universe (>= 1 even for an
        empty owned range, so the dense backends always have a
        bitmap)."""
        lo, hi = self.range_of(shard)
        return max(1, hi - lo)

    def compress(self, shard: int, keys: Sequence[int]) -> np.ndarray:
        """Owned global ids -> local ids in ``[0, hi - lo)``; spillover
        ids (outside ``[0, key_space)``) pass through unchanged.  Keys
        must route to ``shard``."""
        arr = np.asarray(keys, dtype=np.int64)
        lo = self.range_of(shard)[0]
        if lo == 0 or arr.size == 0:  # shard 0 (and 1-shard): identity
            return arr
        if arr.min() >= 0 and arr.max() < self.key_space:
            return arr - lo  # hot path: no spillover in the segment
        in_universe = (arr >= 0) & (arr < self.key_space)
        return np.where(in_universe, arr - lo, arr)

    def compress_routed(self, keys: Sequence[int],
                        shard_ids: np.ndarray) -> np.ndarray:
        """Whole-block :meth:`compress`: ``keys[i]`` is compressed for
        its own shard ``shard_ids[i]`` (= ``route_batch(keys)``) in one
        vectorized pass, so the scatter step pays the fixed numpy cost
        once per block instead of once per shard."""
        arr = np.asarray(keys, dtype=np.int64)
        if self.num_shards == 1 or arr.size == 0:
            return arr
        lo = self._range_lo[shard_ids]
        if arr.min() >= 0 and arr.max() < self.key_space:
            return arr - lo  # hot path: no spillover in the block
        in_universe = (arr >= 0) & (arr < self.key_space)
        return np.where(in_universe, arr - lo, arr)

    def decompress(self, shard: int, keys: Sequence[int]) -> np.ndarray:
        """Inverse of :meth:`compress`: local ids in ``[0, hi - lo)``
        map back to the owned range, anything else passes through."""
        arr = np.asarray(keys, dtype=np.int64)
        lo, hi = self.range_of(shard)
        if lo == 0 or arr.size == 0:
            return arr
        if arr.min() >= 0 and arr.max() < hi - lo:
            return arr + lo  # hot path: all ids local
        local = (arr >= 0) & (arr < hi - lo)
        return np.where(local, arr + lo, arr)

    def compress_key(self, shard: int, key: int) -> int:
        key = int(key)
        if 0 <= key < self.key_space:
            return key - self.range_of(shard)[0]
        return key

    def decompress_key(self, shard: int, key: int) -> int:
        key = int(key)
        lo, hi = self.range_of(shard)
        if 0 <= key < hi - lo:
            return key + lo
        return key


class ModuloRouter:
    """Modulo striping: shard ``s`` owns every id congruent to s mod N
    (in- and out-of-universe keys alike).

    Compression divides out the stride: ``compress(id) = id // N`` — an
    order-preserving bijection from the owned in-universe ids onto
    ``[0, ceil((key_space - s) / N))`` (``decompress(local) = local * N
    + s``)."""

    name = "modulo"

    #: ``key % N`` is fixed by arithmetic — a rebalance under this
    #: router re-splits capacity only and never migrates keys.
    supports_repartition = False

    def __init__(self, num_shards: int, key_space: int) -> None:
        self.num_shards = int(num_shards)
        self.key_space = int(key_space)

    def route(self, key: int) -> int:
        return int(key) % self.num_shards

    def route_batch(self, keys: Sequence[int]) -> np.ndarray:
        return np.mod(np.asarray(keys, dtype=np.int64), self.num_shards)

    # -- compression (exact bijection onto the local universe) ---------
    def _owned_count(self, shard: int) -> int:
        """How many in-universe ids are congruent to ``shard``."""
        if shard >= self.key_space:
            return 0
        return -((-(self.key_space - shard)) // self.num_shards)

    def shard_key_space(self, shard: int) -> int:
        """Size of ``shard``'s compressed universe (>= 1, see
        :meth:`ContiguousRangeRouter.shard_key_space`)."""
        return max(1, self._owned_count(shard))

    def compress(self, shard: int, keys: Sequence[int]) -> np.ndarray:
        """Owned global ids -> ``id // N``; spillover ids pass through
        unchanged.  Keys must route to ``shard``."""
        arr = np.asarray(keys, dtype=np.int64)
        if self.num_shards == 1 or arr.size == 0:
            return arr
        if arr.min() >= 0 and arr.max() < self.key_space:
            return arr // self.num_shards  # hot path: no spillover
        in_universe = (arr >= 0) & (arr < self.key_space)
        return np.where(in_universe, arr // self.num_shards, arr)

    def compress_routed(self, keys: Sequence[int],
                        shard_ids: np.ndarray) -> np.ndarray:
        """Whole-block :meth:`compress` (see
        :meth:`ContiguousRangeRouter.compress_routed`); ``id // N``
        needs no per-shard term, so ``shard_ids`` is unused here."""
        arr = np.asarray(keys, dtype=np.int64)
        if self.num_shards == 1 or arr.size == 0:
            return arr
        if arr.min() >= 0 and arr.max() < self.key_space:
            return arr // self.num_shards  # hot path: no spillover
        in_universe = (arr >= 0) & (arr < self.key_space)
        return np.where(in_universe, arr // self.num_shards, arr)

    def decompress(self, shard: int, keys: Sequence[int]) -> np.ndarray:
        """Inverse of :meth:`compress`: local ids map back to
        ``local * N + shard``, anything else passes through."""
        arr = np.asarray(keys, dtype=np.int64)
        if self.num_shards == 1 or arr.size == 0:
            return arr
        if arr.min() >= 0 and arr.max() < self._owned_count(shard):
            return arr * self.num_shards + shard  # hot path: all local
        local = (arr >= 0) & (arr < self._owned_count(shard))
        return np.where(local, arr * self.num_shards + shard, arr)

    def compress_key(self, shard: int, key: int) -> int:
        key = int(key)
        if 0 <= key < self.key_space:
            return key // self.num_shards
        return key

    def decompress_key(self, shard: int, key: int) -> int:
        key = int(key)
        if 0 <= key < self._owned_count(shard):
            return key * self.num_shards + shard
        return key


#: Registry behind the ``shard_policy=`` knob (``make_buffer``,
#: ``RecMGConfig``, ``RecMGManager``, ``dlrm.inference``,
#: ``prefetch.harness``).
SHARD_POLICIES = {
    "contiguous": ContiguousRangeRouter,
    "modulo": ModuloRouter,
}


def make_router(shard_policy: str, num_shards: int, key_space: int):
    """Instantiate a shard router by policy name."""
    try:
        cls = SHARD_POLICIES[shard_policy]
    except KeyError:
        raise ValueError(
            f"unknown shard_policy {shard_policy!r}; choose from "
            f"{sorted(SHARD_POLICIES)}") from None
    return cls(num_shards, key_space)


def backend_for_key(buffer, key: int):
    """The single-shard backend responsible for ``key``: the routed
    shard (a :class:`CompressedShardView`, so global keys keep working)
    of a :class:`ShardedBuffer`, or ``buffer`` itself otherwise.

    Scalar serving loops (the manager's audit path, the harness and
    classifier per-access loops) use this so eviction-for-space happens
    in the shard that actually needs the slot.
    """
    route = getattr(buffer, "shard_backend_for", None)
    return buffer if route is None else route(key)


def split_capacity(capacity: int, num_shards: int,
                   shard_weights: Optional[Sequence[float]] = None
                   ) -> List[int]:
    """Per-shard capacities for a total of ``capacity`` slots.

    Uniform (``shard_weights=None``): ``capacity // N`` each, the
    remainder to the lowest shard ids — the historical split, kept
    bit-exact so weighted support cannot drift the default goldens.
    Weighted: largest-remainder apportionment of
    ``capacity * w_s / sum(w)`` (floors first, leftover slots to the
    largest fractional parts, ties to the lowest shard id), then a
    deterministic rebalance so every shard keeps at least one slot
    (possible because ``ShardedBuffer`` requires ``capacity >= N``).
    """
    capacity = int(capacity)
    num_shards = int(num_shards)
    if shard_weights is None:
        base, remainder = divmod(capacity, num_shards)
        return [base + (1 if s < remainder else 0)
                for s in range(num_shards)]
    weights = np.asarray(shard_weights, dtype=np.float64)
    if weights.shape != (num_shards,):
        raise ValueError(
            f"shard_weights must provide one weight per shard "
            f"(expected {num_shards}, got {weights.size})")
    if not (np.isfinite(weights).all() and (weights > 0).all()):
        raise ValueError("shard_weights must be positive and finite")
    raw = capacity * weights / weights.sum()
    split = np.floor(raw).astype(np.int64)
    leftover = capacity - int(split.sum())
    if leftover:
        # Largest fractional part first, ties to the lowest shard id.
        order = np.lexsort((np.arange(num_shards), split - raw))
        split[order[:leftover]] += 1
    while (split == 0).any():
        split[int(np.argmax(split))] -= 1
        split[int(np.argmin(split))] += 1
    return split.tolist()


class CompressedShardView:
    """One backend shard behind the global-key protocol.

    The single point where per-shard id compression happens (module
    docstring): ``backend`` runs over the compressed universe
    ``[0, router.shard_key_space(shard_index))`` while every method
    here speaks global ids — arguments are compressed on the way in,
    victims/keys/residency decompressed on the way out, and spillover
    ids pass through untouched in both directions.

    **Precondition**: keys handed to a view must route to its shard
    (``router.route(key) == shard_index``; spillover ids included).
    The scatter step of every bulk op
    (:meth:`ShardedBuffer.iter_shard_segments`) guarantees this; the
    compression bijections are only defined over a shard's own ids, so
    a foreign key would silently alias a local one.

    ``serve_segment`` is exposed only when the backend has one (the
    dense ``"fast"`` backend), so engine dispatch that feature-tests
    ``hasattr(shard, "serve_segment")`` keeps picking the same scheme
    it would for the bare backend.
    """

    def __init__(self, backend, router, shard_index: int) -> None:
        self.backend = backend
        self.router = router
        self.shard_index = int(shard_index)
        self.approximate = bool(getattr(backend, "approximate", False))
        self.residency = getattr(backend, "residency", None)
        self._c_memo: List[Tuple[object, np.ndarray]] = []
        if hasattr(backend, "serve_segment"):
            self.serve_segment = self._serve_segment

    @property
    def capacity(self) -> int:
        """The backend's capacity, read through — never cached.

        A snapshot taken at construction went stale the moment a
        rebalance shrank the shard, which let ``put_batch``'s
        raise-before-mutate pre-validation over-admit against the old
        (larger) capacity in the donor-shrink path (regression-tested
        in ``tests/test_rebalancing.py``).
        """
        return self.backend.capacity

    def rebind(self, backend) -> None:
        """Swap in a rebuilt backend (``ShardedBuffer.rebalance`` only).

        The view object itself is stable — engines may hold references
        across a rebalance — so everything derived from the backend is
        refreshed here: the residency handle and the compression memo
        (the bijection changes with the partition, so memoized
        compressions are invalid).  The backend *type* never changes
        across a rebalance, so the ``serve_segment`` feature surface
        is already correct.
        """
        self.backend = backend
        self.residency = getattr(backend, "residency", None)
        del self._c_memo[:]

    # -- translation helpers -------------------------------------------
    def _c(self, keys) -> np.ndarray:
        # Engines hand the *same* segment array to consecutive view
        # calls (contains_batch -> evict_batch(avoid=) -> put_batch),
        # so a two-slot identity memo removes the repeat compressions.
        # Keyed on object identity with a strong reference (no id()
        # reuse); key arrays are never mutated in place after a bulk
        # call, which the bulk protocol already requires.
        for ref, compressed in self._c_memo:
            if ref is keys:
                return compressed
        arr = self.router.compress(self.shard_index, keys)
        if isinstance(keys, np.ndarray):
            self._c_memo.insert(0, (keys, arr))
            del self._c_memo[2:]
        return arr

    def _d(self, keys) -> np.ndarray:
        return self.router.decompress(self.shard_index, keys)

    def _d_list(self, keys: List[int]) -> List[int]:
        if not keys:
            return keys
        return self._d(np.asarray(keys, dtype=np.int64)).tolist()

    @property
    def key_space(self) -> int:
        """The backend's (compressed) dense universe size."""
        return self.backend.key_space

    # -- read protocol -------------------------------------------------
    def __contains__(self, key: int) -> bool:
        return self.router.compress_key(self.shard_index,
                                        int(key)) in self.backend

    def __len__(self) -> int:
        return len(self.backend)

    def keys(self) -> Iterator[int]:
        decompress_key = self.router.decompress_key
        for local in self.backend.keys():
            yield decompress_key(self.shard_index, int(local))

    def priority_of(self, key: int) -> int:
        return self.backend.priority_of(
            self.router.compress_key(self.shard_index, int(key)))

    @property
    def is_full(self) -> bool:
        return self.backend.is_full

    def residency_map(self) -> Dict[int, object]:
        decompress_key = self.router.decompress_key
        return {decompress_key(self.shard_index, int(local)): value
                for local, value in self.backend.residency_map().items()}

    def contains_batch(self, keys: Sequence[int]) -> np.ndarray:
        return self.backend.contains_batch(self._c(keys))

    def per_id_nbytes(self) -> int:
        return self.backend.per_id_nbytes()

    # -- writes --------------------------------------------------------
    def insert(self, key: int, priority: int) -> None:
        self.backend.insert(
            self.router.compress_key(self.shard_index, int(key)), priority)

    def set_priority(self, key: int, priority: int) -> None:
        self.backend.set_priority(
            self.router.compress_key(self.shard_index, int(key)), priority)

    def demote(self, key: int) -> None:
        self.backend.demote(
            self.router.compress_key(self.shard_index, int(key)))

    def put_batch(self, keys: Sequence[int], priority: int) -> None:
        self.backend.put_batch(self._c(keys), priority)

    def set_priority_batch(self, keys: Sequence[int],
                           priority: int) -> None:
        self.backend.set_priority_batch(self._c(keys), priority)

    def demote_batch(self, keys: Sequence[int]) -> None:
        self.backend.demote_batch(self._c(keys))

    # -- eviction / serving (victims come back global) -----------------
    def evict_one(self) -> int:
        return self.router.decompress_key(self.shard_index,
                                          int(self.backend.evict_one()))

    def evict_batch(self, n: int, avoid=None) -> List[int]:
        if avoid is None:
            victims = self.backend.evict_batch(n)
        else:
            victims = self.backend.evict_batch(n, avoid=self._c(avoid))
        return self._d_list(victims)

    def _serve_segment(self, segment: np.ndarray, priority: int):
        result = self.backend.serve_segment(self._c(segment), priority)
        if result is None:  # pragma: no cover - dense backends only
            return None
        served, first_miss, victims, uniq = result
        return served, first_miss, self._d_list(victims), self._d(uniq)


def _allocate_evictions(lengths: np.ndarray, count: int) -> np.ndarray:
    """Per-shard eviction counts for a global ``evict_batch(count)``.

    Deterministic water-filling: the fullest shards are levelled down
    until ``count`` victims are allocated, so repeated global eviction
    drives shard occupancies toward equal — the natural policy for a
    shared capacity pool.  Ties in fullness break by ascending shard
    id; when the final level cannot be met exactly, the least-full
    shards among the levelled group give up one victim fewer.  Raises
    ``RuntimeError`` when fewer than ``count`` entries are resident,
    matching the single-shard backends.
    """
    total = int(lengths.sum())
    if count > total:
        raise RuntimeError("cannot evict more entries than resident")
    take = np.zeros(lengths.size, dtype=np.int64)
    if count <= 0:
        return take
    order = np.argsort(-lengths, kind="stable")  # fullest first, id ties
    sorted_len = lengths[order]
    prefix = np.cumsum(sorted_len)
    for k in range(1, lengths.size + 1):
        floor_level = int(sorted_len[k]) if k < lengths.size else 0
        if int(prefix[k - 1]) - k * floor_level >= count:
            level = (int(prefix[k - 1]) - count) // k
            base = sorted_len[:k] - level
            excess = int(base.sum()) - count
            if excess:
                base[k - excess:k] -= 1
            take[order[:k]] = base
            return take
    raise RuntimeError("eviction allocation failed")  # pragma: no cover


class ShardRebalancer:
    """Plans and executes one :meth:`ShardedBuffer.rebalance`.

    The migration runs in four steps (see "Rebalancing" in the module
    docstring for the contract):

    1. **Plan** — the target capacity split (largest-remainder over the
       new weights) and, when the router supports repartitioning, the
       target range boundaries (the same largest-remainder apportionment
       over ``key_space``; ``weights=None`` restores the construction
       defaults).  If neither differs from the current state the
       rebalance is a no-op and returns without touching any backend.
    2. **Export** — every shard's residents leave through the backend
       migration protocol (``export_state``) and are decompressed to
       global ids under the *old* partition.
    3. **Re-route** — the partition is re-drawn, every exported key is
       routed under the new bounds, and each destination's population
       is assembled: exact backends' entries ordered by (source shard
       asc, seqno asc), the clock backend's in (source shard asc, hand
       order) — relative eviction order *within* a source shard is
       preserved exactly; *across* source shards it is this
       deterministic merge (the eviction-order caveat).
    4. **Import / shrink** — each shard's backend is rebuilt over its
       new compressed universe and capacity.  A destination whose
       assembled population overflows its new capacity (the donor-shrink
       path) first imports into a population-sized scratch backend and
       runs a real ``evict_batch`` — aging included, so the overflow
       victims are exactly the ones the backend itself would choose —
       then imports the survivors.  Victims are reported in the stats
       so manager-level eviction accounting stays consistent.
    """

    def __init__(self, buffer: "ShardedBuffer") -> None:
        self.buffer = buffer

    def plan(self, shard_weights: Optional[Sequence[float]]
             ) -> Tuple[List[int], Optional[np.ndarray]]:
        """Target ``(shard_capacities, range_bounds)`` for the given
        weights; ``range_bounds`` is None when the partition cannot
        change (modulo router, or a universe smaller than the shard
        count)."""
        buf = self.buffer
        new_caps = split_capacity(buf.capacity, buf.num_shards,
                                  shard_weights)
        new_bounds: Optional[np.ndarray] = None
        if (buf.router.supports_repartition
                and buf.key_space >= buf.num_shards):
            if shard_weights is None:
                new_bounds = ContiguousRangeRouter.default_bounds(
                    buf.num_shards, buf.key_space)
            else:
                sizes = split_capacity(buf.key_space, buf.num_shards,
                                       shard_weights)
                new_bounds = np.concatenate(
                    ([0], np.cumsum(sizes))).astype(np.int64)
        return new_caps, new_bounds

    def apply(self, shard_weights: Optional[Sequence[float]]) -> Dict:
        buf = self.buffer
        router = buf.router
        new_caps, new_bounds = self.plan(shard_weights)
        bounds_unchanged = (new_bounds is None
                            or np.array_equal(new_bounds, router._bounds))
        if new_caps == buf.shard_capacities and bounds_unchanged:
            # No-op: the target state is the current state.  Returning
            # here (before any export) is what makes a same-weights
            # rebalance bit-identical to never calling it.
            return {"changed": False, "migrated_keys": 0, "evicted": [],
                    "shard_capacities": list(buf.shard_capacities)}
        exact = not buf.approximate
        # Step 2: export under the old partition (ids leave global).
        exports = []
        for view in buf.shards:
            if exact:
                local_keys, prio, seq = view.backend.export_state()
                exports.append((view._d(local_keys), prio, seq))
            else:
                local_keys, prio = view.backend.export_state()
                exports.append((view._d(local_keys), prio, None))
        # Step 3: re-draw the partition, re-route, regroup.
        if new_bounds is not None and not bounds_unchanged:
            router.set_bounds(new_bounds)
        empty = np.empty(0, dtype=np.int64)
        grouped_keys: List[List[np.ndarray]] = [[] for _ in buf.shards]
        grouped_prio: List[List[np.ndarray]] = [[] for _ in buf.shards]
        migrated = 0
        for source, (keys, prio, seq) in enumerate(exports):
            if keys.size == 0:
                continue
            dest = router.route_batch(keys)
            migrated += int(np.count_nonzero(dest != source))
            for d in np.unique(dest).tolist():
                mask = dest == d
                sub_keys, sub_prio = keys[mask], prio[mask]
                if exact:
                    order = np.argsort(seq[mask], kind="stable")
                    sub_keys, sub_prio = sub_keys[order], sub_prio[order]
                grouped_keys[d].append(sub_keys)
                grouped_prio[d].append(sub_prio)
        # Step 4: rebuild every shard over its new universe/capacity.
        evicted: List[int] = []
        for d, view in enumerate(buf.shards):
            keys = (np.concatenate(grouped_keys[d])
                    if grouped_keys[d] else empty)
            prio = (np.concatenate(grouped_prio[d])
                    if grouped_prio[d] else empty)
            local = router.compress(d, keys)
            cap = new_caps[d]
            if keys.size > cap:
                # Donor shrink: a real evict_batch on the assembled
                # population (scratch backend sized to hold it all)
                # picks the overflow victims the backend itself would.
                scratch = make_buffer(
                    buf.impl, int(keys.size),
                    key_space=router.shard_key_space(d))
                self._import(scratch, local, prio, exact)
                victims = np.asarray(
                    scratch.evict_batch(int(keys.size) - cap),
                    dtype=np.int64)
                evicted.extend(
                    router.decompress(d, victims).tolist())
                if exact:
                    local, prio, seq = scratch.export_state()
                    order = np.argsort(seq, kind="stable")
                    local, prio = local[order], prio[order]
                else:
                    local, prio = scratch.export_state()
            backend = make_buffer(buf.impl, cap,
                                  key_space=router.shard_key_space(d))
            assert backend.key_space == router.shard_key_space(d)
            self._import(backend, local, prio, exact)
            view.rebind(backend)
        buf.shard_capacities = list(new_caps)
        buf.shard_weights = (None if shard_weights is None
                             else tuple(float(w) for w in shard_weights))
        return {"changed": True, "migrated_keys": migrated,
                "evicted": evicted, "shard_capacities": list(new_caps)}

    @staticmethod
    def _import(backend, local_keys: np.ndarray, prio: np.ndarray,
                exact: bool) -> None:
        """Load an assembled population, re-ranking exact seqnos to
        ``0..n-1`` (relative order — all that eviction behavior depends
        on — is already encoded in the array order)."""
        if exact:
            backend.import_state(
                local_keys, prio,
                np.arange(local_keys.size, dtype=np.int64))
        else:
            backend.import_state(local_keys, prio)


class ShardedBuffer:
    """N independent backend shards behind the single-buffer protocol.

    See the module docstring for the routing/compression/capacity/
    eviction contract.  ``impl`` names any registered backend
    (:data:`repro.cache.buffer.BUFFER_IMPLS`); every shard is built in
    dense mode over its *compressed* universe
    (``router.shard_key_space(s)``) and wrapped in a
    :class:`CompressedShardView`, so the bulk protocol runs
    array-native end to end while every caller — including the serving
    engines that consume :meth:`iter_shard_segments` — keeps speaking
    global ids.  ``approximate`` is inherited from the shard backend —
    the serving engines pick the batched-reclaim or batched-exact
    per-shard scheme off it exactly as they do for bare backends.
    ``shard_weights`` (optional) splits the capacity proportionally
    instead of uniformly (:func:`split_capacity`).
    """

    def __init__(self, impl: str, capacity: int, key_space: int,
                 num_shards: int, shard_policy: str = "contiguous",
                 shard_weights: Optional[Sequence[float]] = None) -> None:
        num_shards = int(num_shards)
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if key_space is None:
            raise ValueError(
                "ShardedBuffer requires key_space= (the routers partition "
                "the dense id universe)")
        if capacity < num_shards:
            raise ValueError(
                f"capacity {capacity} cannot give every one of "
                f"{num_shards} shards at least one slot")
        self.impl = impl
        self.capacity = int(capacity)
        self.key_space = int(key_space)
        self.num_shards = num_shards
        self.shard_policy = shard_policy
        self.shard_weights = (None if shard_weights is None
                              else tuple(float(w) for w in shard_weights))
        self.router = make_router(shard_policy, num_shards, self.key_space)
        self.shard_capacities = split_capacity(self.capacity, num_shards,
                                               shard_weights)
        self.shards: List[CompressedShardView] = []
        for index, shard_capacity in enumerate(self.shard_capacities):
            backend = make_buffer(impl, shard_capacity,
                                  key_space=self.router.shard_key_space(
                                      index))
            # The dense backends report their universe so the
            # translation boundary is assertable (an uncompressed shard
            # here would silently cost N× the per-id memory).
            assert backend.key_space == self.router.shard_key_space(index)
            self.shards.append(CompressedShardView(backend, self.router,
                                                   index))
        #: Victim order approximates/honors the per-shard contract of
        #: the underlying backend; never the cross-shard global order.
        self.approximate = bool(getattr(self.shards[0], "approximate",
                                        False))

    # -- routing -------------------------------------------------------
    def shard_id_of(self, key: int) -> int:
        """Shard index owning ``key`` (total: any int64 routes)."""
        return self.router.route(key)

    def shard_backend_for(self, key: int):
        """The shard view owning ``key`` (global-key protocol; see
        :func:`backend_for_key`)."""
        return self.shards[self.router.route(key)]

    def route_batch(self, keys: Sequence[int]) -> np.ndarray:
        """Shard index per key — the scatter step of every bulk op."""
        return self.router.route_batch(keys)

    def iter_shard_segments(self, keys: np.ndarray):
        """Scatter ``keys`` to shards: yields ``(shard_index, view,
        positions, sub_keys)`` per non-empty shard, where ``positions``
        indexes ``keys`` (ascending, so per-shard order follows the
        access stream) and ``sub_keys = keys[positions]`` — global
        ids; ``view`` (a :class:`CompressedShardView`) translates.

        The block is compressed once here (``compress_routed``, one
        vectorized pass) and each shard's slice primed into its view's
        compression memo, so the per-shard calls the caller makes next
        (``contains_batch`` / ``evict_batch(avoid=)`` / ``put_batch``
        on the yielded ``sub_keys``) skip re-compressing it.

        **Per-shard bit-split contract** (the provider sink): a block
        of per-access caching bits may be split along this same route
        — ``bits[positions]`` rides with ``sub_keys`` — and applied
        per shard through the yielded view
        (:func:`repro.serving.priorities.apply_caching_bits`).
        Duplicates of a key always land in the same shard and
        ``positions`` is ascending, so per-shard dedup/apply is
        call-for-call identical to the global bulk calls; because the
        views share no state, the per-shard applies may also run on
        the shard-pinned workers, concurrently with *other* shards'
        serves — the split is what lets priority writes pipeline
        instead of barriering.  The compression memo is safe under
        that concurrency: entries are immutable ``(ref, compressed)``
        tuples matched by object identity, so a reader racing this
        method's priming can only miss (and recompute), never alias a
        foreign array."""
        arr = np.asarray(keys, dtype=np.int64)
        shard_ids = self.router.route_batch(arr)
        compressed = self.router.compress_routed(arr, shard_ids)
        for shard_index in range(self.num_shards):
            positions = np.flatnonzero(shard_ids == shard_index)
            if positions.size:
                view = self.shards[shard_index]
                sub = arr[positions]
                view._c_memo.insert(0, (sub, compressed[positions]))
                del view._c_memo[2:]
                yield (shard_index, view, positions, sub)

    # -- read protocol -------------------------------------------------
    def __contains__(self, key: int) -> bool:
        return int(key) in self.shard_backend_for(int(key))

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def keys(self) -> Iterator[int]:
        for shard in self.shards:
            yield from shard.keys()

    def priority_of(self, key: int) -> int:
        return self.shard_backend_for(int(key)).priority_of(int(key))

    @property
    def is_full(self) -> bool:
        """True when *every* shard is full.  A single full shard
        already refuses inserts routed to it — scalar call sites must
        gate on the routed shard (:func:`backend_for_key`), not on
        this global view."""
        return all(shard.is_full for shard in self.shards)

    def residency_map(self) -> Dict[int, object]:
        """Merged read-only view keyed by resident (global) key (a
        snapshot — bulk call sites should prefer
        :meth:`contains_batch`)."""
        merged: Dict[int, object] = {}
        for shard in self.shards:
            merged.update(shard.residency_map())
        return merged

    def contains_batch(self, keys: Sequence[int]) -> np.ndarray:
        """Residency of each key: scatter to shards, one bitmap gather
        per shard, gather back by position."""
        arr = np.asarray(keys, dtype=np.int64)
        out = np.zeros(arr.size, dtype=bool)
        for _, shard, positions, sub in self.iter_shard_segments(arr):
            out[positions] = shard.contains_batch(sub)
        return out

    def per_id_nbytes(self) -> int:
        """Total per-id dense-state bytes across shards — ≈ the
        single-shard footprint, *not* N× it (the point of compression;
        regression-tested in ``tests/test_sharding.py``)."""
        return sum(shard.per_id_nbytes() for shard in self.shards)

    # -- scalar writes (route + forward) -------------------------------
    def insert(self, key: int, priority: int) -> None:
        """Insert (or refresh) ``key`` in its shard; the caller must
        ensure space *in that shard* (``RuntimeError`` otherwise, like
        the single-shard backends)."""
        self.shard_backend_for(int(key)).insert(int(key), priority)

    def set_priority(self, key: int, priority: int) -> None:
        self.shard_backend_for(int(key)).set_priority(int(key), priority)

    def demote(self, key: int) -> None:
        self.shard_backend_for(int(key)).demote(int(key))

    # -- bulk writes (scatter / per-shard batch / no gather needed) ----
    def put_batch(self, keys: Sequence[int], priority: int) -> None:
        """Bulk insert-or-refresh, one batched call per shard.

        Capacity is per shard: the whole batch is validated against
        every shard's free space *before* any shard mutates, so a
        ``RuntimeError`` (a sub-batch overflowing its shard, even while
        other shards have room) leaves the buffer untouched — the same
        raise-before-mutate contract as the single-shard backends.
        """
        arr = np.asarray(keys, dtype=np.int64)
        if arr.size == 0:
            return
        segments = list(self.iter_shard_segments(arr))
        for _, shard, _, sub in segments:
            fresh = int(np.count_nonzero(
                ~shard.contains_batch(np.unique(sub))))
            if len(shard) + fresh > shard.capacity:
                raise RuntimeError("buffer full; evict first")
        for _, shard, _, sub in segments:
            shard.put_batch(sub, priority)

    def set_priority_batch(self, keys: Sequence[int], priority: int) -> None:
        arr = np.asarray(keys, dtype=np.int64)
        for _, shard, _, sub in self.iter_shard_segments(arr):
            shard.set_priority_batch(sub, priority)

    def demote_batch(self, keys: Sequence[int]) -> None:
        arr = np.asarray(keys, dtype=np.int64)
        for _, shard, _, sub in self.iter_shard_segments(arr):
            shard.demote_batch(sub)

    # -- eviction ------------------------------------------------------
    def evict_one(self) -> int:
        """Evict one entry from the fullest shard (ties break by
        ascending shard id) — the ``count=1`` case of the levelling
        policy.  Serving paths that need space *for a key* must instead
        evict from that key's shard (:func:`backend_for_key`)."""
        if not len(self):
            raise RuntimeError("cannot evict from an empty buffer")
        lengths = np.asarray([len(shard) for shard in self.shards])
        return self.shards[int(np.argmax(lengths))].evict_one()

    def evict_batch(self, n: int) -> List[int]:
        """Evict ``n`` entries globally, levelling the fullest shards
        down (:func:`_allocate_evictions`).  Victims come out grouped
        per shard in shard-id order; *within* a shard they follow that
        shard's own eviction order — there is no cross-shard
        ``(effective_priority, seqno)`` interleaving (see module
        docstring and the Sharding note in :mod:`repro.cache.buffer`).
        This ordering is contract, pinned by
        ``tests/test_sharding.py::test_evict_batch_victim_order_is_per_shard``."""
        count = int(n)
        if count <= 0:
            return []
        lengths = np.asarray([len(shard) for shard in self.shards],
                             dtype=np.int64)
        allocation = _allocate_evictions(lengths, count)
        victims: List[int] = []
        for shard, share in zip(self.shards, allocation.tolist()):
            if share:
                victims.extend(shard.evict_batch(share))
        return victims

    # -- rebalancing ---------------------------------------------------
    def rebalance(self, shard_weights: Optional[Sequence[float]] = None
                  ) -> Dict:
        """Re-split capacity (and, under the contiguous router, the
        partition) to ``shard_weights``, migrating residents live.

        See "Rebalancing" in the module docstring and
        :class:`ShardRebalancer` for the migration contract.  In brief:

        * ``shard_weights=None`` targets the construction defaults
          (uniform capacity split, ceil-split ranges); weights target
          the largest-remainder apportionment of both capacity and —
          contiguous router only — the key range.
        * A rebalance whose target equals the current state is a
          **no-op**: it returns before touching any backend, so calling
          it is bit-identical to not calling it.
        * A real rebalance rebuilds *every* shard into canonical
          packed state: residents keep their exact effective
          priorities, relative eviction order within each source shard
          is preserved, and populations merged from several source
          shards are ordered (source shard asc, then per-source order)
          — the **eviction-order caveat across migration**.  Serving
          decisions afterwards match a fresh ``ShardedBuffer`` built
          with the new weights (partition re-drawn) and pre-seeded
          with the same residents in that canonical order (pinned in
          ``tests/test_golden_backends.py``).
        * Shards whose new capacity undercuts their assembled
          population evict the overflow through their own backend's
          eviction order; the victims come back in ``"evicted"`` so
          callers can keep eviction accounting consistent.
        * **Not thread-safe against in-flight serving.**  Under
          ``concurrency="threads"`` the caller must drain and barrier
          the shard-pinned workers first
          (:meth:`repro.serving.workers.ShardWorkerPool.barrier`) —
          the manager's online driver does exactly that.

        Returns a stats dict: ``changed``, ``migrated_keys`` (keys
        whose shard assignment changed), ``evicted`` (donor-shrink
        victims, global ids), ``shard_capacities`` (the new split).
        """
        return ShardRebalancer(self).apply(shard_weights)
