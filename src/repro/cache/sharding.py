"""Sharded buffer: partition a dense key space across N backend shards.

Production embedding caches do not serve millions of users from one
buffer: the id space is *partitioned* across shards, each shard owns an
independent slice of the capacity, and a request batch is scattered to
its shards, served per shard, and gathered back.  This module builds
that layer on top of the single-shard backends in
:mod:`repro.cache.buffer`.

**Routing contract.**  A :class:`ShardedBuffer` is constructed over a
dense id universe ``[0, key_space)`` (the same universe the
:class:`~repro.cache.residency.ResidencyIndex` bitmaps cover) and a
*router* — one of :data:`SHARD_POLICIES`:

* ``"contiguous"`` (:class:`ContiguousRangeRouter`) — shard ``s`` owns
  the contiguous id range ``[ceil(s*K/N), ceil((s+1)*K/N))``.  Dense
  ids are assigned in sorted packed-key order
  (:func:`repro.traces.access.remap_to_dense` keeps same-table rows
  contiguous), so contiguous ranges map to contiguous (table, row)
  regions — the natural partition for range-partitioned embedding
  tables, and the one hot-shard workloads stress.
* ``"modulo"`` (:class:`ModuloRouter`) — shard ``s`` owns every id
  congruent to ``s`` mod N; a hash-free striping that spreads
  contiguous hot ranges evenly across shards.

Routing is **total and deterministic**: every int64 key — including ids
outside ``[0, key_space)``, which the manager assigns to keys unseen at
encoder-fit time — maps to exactly one shard, and the scalar and batch
forms agree key for key (out-of-range ids route by ``key mod N`` under
both policies, so spillover correctness never depends on the id fitting
the universe).  Because a key can only ever live in its router shard,
the per-shard residents are pairwise disjoint and their union *is* the
global residency — ``contains_batch`` answers by scattering the query
to shards and gathering the per-shard gathers back (property-tested
after every op in ``tests/test_sharding.py``).

**Id compression (the translation boundary).**  Each shard's dense
backend is built over the *compressed* per-shard universe
``[0, shard_key_space)``, not the full ``[0, key_space)``: both routers
admit an exact, vectorized bijection from the ids a shard owns onto a
dense local range (contiguous: ``id - range_lo``; modulo: ``id // N``),
so per-id backend state (slot vectors, expiry/seqno vectors, residency
bitmaps) costs the same total memory as a single-shard buffer instead
of N× it.  Translation happens at exactly one layer — the
:class:`CompressedShardView` wrapped around every backend shard:

* callers (the :class:`ShardedBuffer` bulk ops, the manager's sharded
  and concurrent engines, ``dlrm.inference``, ``prefetch.harness`` and
  the tests) keep passing **global** keys and receive **global** keys
  back — victims of ``evict_one``/``evict_batch``/``serve_segment``,
  ``keys()`` and ``residency_map()`` are decompressed on the way out;
* spillover ids (outside ``[0, key_space)``) pass through *unchanged*:
  they route by ``key mod N`` and always fall outside the compressed
  universe too (negative stays negative; ``id >= key_space >=
  shard_key_space``), so they land in each backend's existing spillover
  side path and decompression is unambiguous — a stored id in
  ``[0, shard_key_space)`` inverts the bijection, anything else *is*
  the global key.

Compression is a **storage transform, not a policy change**: backend
decisions depend on (priority, seqno, slot/hand) order, never on id
values, and both bijections are monotonic over a shard's owned ids, so
every victim sequence and hit/miss stream is byte-identical to the
uncompressed layout (pinned by the sharded goldens in
``tests/test_golden_backends.py`` and the 200-seed fuzz).  View methods
require their keys to actually route to the view's shard (spillover
included) — :meth:`ShardedBuffer.iter_shard_segments` scatters first,
so every production call site satisfies this by construction.

**Capacity and eviction.**  By default the total capacity splits as
evenly as the remainder allows: shard ``s`` gets ``capacity // N``
slots, plus one for ``s < capacity % N``.  ``shard_weights=`` (also a
:class:`~repro.core.config.RecMGConfig` knob) instead splits capacity
proportionally to per-shard weights — largest-remainder apportionment,
ties to the lowest shard id, every shard keeps at least one slot — so
a workload whose traffic (or observed occupancy) is skewed across
shards can be served with skew-matched capacity instead of a uniform
split that starves the hot shard (see the weighted hot-shard entry in
``benchmarks/test_perf_hotpaths.py``).  Eviction decisions are
**local to a shard**: a full shard evicts its own
``(effective_priority, seqno)`` (or clock-order) victim even while
another shard has free slots, and :meth:`ShardedBuffer.evict_batch` —
which levels the fullest shards down by water-filling — returns victims
grouped per shard in shard-id order, *not* in the single-buffer global
``(effective_priority, seqno)`` order.  This is the documented price of
sharding; the single-shard backends keep the exact global contract.

**Bulk protocol.**  Every op of the single-shard bulk protocol
(``contains_batch`` / ``put_batch`` / ``set_priority_batch`` /
``demote_batch`` / ``evict_batch``) is implemented as one vectorized
scatter of the keys to shards (:meth:`ShardRouter.route_batch`),
per-shard *batched* backend calls through the compressing views, and
one gather back — no per-key python loop.  Within a shard the original
key order is preserved, and ops on distinct shards commute (disjoint
key sets), so the batch forms keep the single-shard semantics per
shard.

A 1-shard :class:`ShardedBuffer` is decision-for-decision identical to
the bare backend (200-seed differential in ``tests/test_sharding.py``;
both bijections degenerate to the identity at N=1);
``make_buffer(..., num_shards=1)`` therefore returns the bare backend
and only ``num_shards > 1`` pays the routing layer.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .buffer import make_buffer


class ContiguousRangeRouter:
    """Contiguous-range partition of ``[0, key_space)`` into N shards.

    ``route(key) = key * N // key_space`` for in-universe keys — shard
    ``s`` owns ``[ceil(s*K/N), ceil((s+1)*K/N))`` (:meth:`range_of`).
    Out-of-universe keys (spillover ids above the vocabulary, or
    negative probes) route by ``key mod N``.

    Compression (see module docstring) shifts a shard's owned range
    down to zero: ``compress(id) = id - range_lo`` — an order-preserving
    bijection onto ``[0, hi - lo)``.
    """

    name = "contiguous"

    def __init__(self, num_shards: int, key_space: int) -> None:
        self.num_shards = int(num_shards)
        self.key_space = int(key_space)
        self._range_lo = np.array(
            [self.range_of(s)[0] for s in range(self.num_shards)],
            dtype=np.int64)

    def route(self, key: int) -> int:
        key = int(key)
        if 0 <= key < self.key_space:
            return key * self.num_shards // self.key_space
        return key % self.num_shards

    def route_batch(self, keys: Sequence[int]) -> np.ndarray:
        arr = np.asarray(keys, dtype=np.int64)
        shards = np.clip(arr, 0, self.key_space - 1) \
            * self.num_shards // self.key_space
        out = (arr < 0) | (arr >= self.key_space)
        if out.any():
            shards[out] = np.mod(arr[out], self.num_shards)
        return shards

    def range_of(self, shard: int) -> Tuple[int, int]:
        """In-universe id range ``[lo, hi)`` owned by ``shard``."""
        n, k = self.num_shards, self.key_space
        lo = -((-shard * k) // n)        # ceil(shard * k / n)
        hi = -((-(shard + 1) * k) // n)
        return lo, hi

    # -- compression (exact bijection onto the local universe) ---------
    def shard_key_space(self, shard: int) -> int:
        """Size of ``shard``'s compressed universe (>= 1 even for an
        empty owned range, so the dense backends always have a
        bitmap)."""
        lo, hi = self.range_of(shard)
        return max(1, hi - lo)

    def compress(self, shard: int, keys: Sequence[int]) -> np.ndarray:
        """Owned global ids -> local ids in ``[0, hi - lo)``; spillover
        ids (outside ``[0, key_space)``) pass through unchanged.  Keys
        must route to ``shard``."""
        arr = np.asarray(keys, dtype=np.int64)
        lo = self.range_of(shard)[0]
        if lo == 0 or arr.size == 0:  # shard 0 (and 1-shard): identity
            return arr
        if arr.min() >= 0 and arr.max() < self.key_space:
            return arr - lo  # hot path: no spillover in the segment
        in_universe = (arr >= 0) & (arr < self.key_space)
        return np.where(in_universe, arr - lo, arr)

    def compress_routed(self, keys: Sequence[int],
                        shard_ids: np.ndarray) -> np.ndarray:
        """Whole-block :meth:`compress`: ``keys[i]`` is compressed for
        its own shard ``shard_ids[i]`` (= ``route_batch(keys)``) in one
        vectorized pass, so the scatter step pays the fixed numpy cost
        once per block instead of once per shard."""
        arr = np.asarray(keys, dtype=np.int64)
        if self.num_shards == 1 or arr.size == 0:
            return arr
        lo = self._range_lo[shard_ids]
        if arr.min() >= 0 and arr.max() < self.key_space:
            return arr - lo  # hot path: no spillover in the block
        in_universe = (arr >= 0) & (arr < self.key_space)
        return np.where(in_universe, arr - lo, arr)

    def decompress(self, shard: int, keys: Sequence[int]) -> np.ndarray:
        """Inverse of :meth:`compress`: local ids in ``[0, hi - lo)``
        map back to the owned range, anything else passes through."""
        arr = np.asarray(keys, dtype=np.int64)
        lo, hi = self.range_of(shard)
        if lo == 0 or arr.size == 0:
            return arr
        if arr.min() >= 0 and arr.max() < hi - lo:
            return arr + lo  # hot path: all ids local
        local = (arr >= 0) & (arr < hi - lo)
        return np.where(local, arr + lo, arr)

    def compress_key(self, shard: int, key: int) -> int:
        key = int(key)
        if 0 <= key < self.key_space:
            return key - self.range_of(shard)[0]
        return key

    def decompress_key(self, shard: int, key: int) -> int:
        key = int(key)
        lo, hi = self.range_of(shard)
        if 0 <= key < hi - lo:
            return key + lo
        return key


class ModuloRouter:
    """Modulo striping: shard ``s`` owns every id congruent to s mod N
    (in- and out-of-universe keys alike).

    Compression divides out the stride: ``compress(id) = id // N`` — an
    order-preserving bijection from the owned in-universe ids onto
    ``[0, ceil((key_space - s) / N))`` (``decompress(local) = local * N
    + s``)."""

    name = "modulo"

    def __init__(self, num_shards: int, key_space: int) -> None:
        self.num_shards = int(num_shards)
        self.key_space = int(key_space)

    def route(self, key: int) -> int:
        return int(key) % self.num_shards

    def route_batch(self, keys: Sequence[int]) -> np.ndarray:
        return np.mod(np.asarray(keys, dtype=np.int64), self.num_shards)

    # -- compression (exact bijection onto the local universe) ---------
    def _owned_count(self, shard: int) -> int:
        """How many in-universe ids are congruent to ``shard``."""
        if shard >= self.key_space:
            return 0
        return -((-(self.key_space - shard)) // self.num_shards)

    def shard_key_space(self, shard: int) -> int:
        """Size of ``shard``'s compressed universe (>= 1, see
        :meth:`ContiguousRangeRouter.shard_key_space`)."""
        return max(1, self._owned_count(shard))

    def compress(self, shard: int, keys: Sequence[int]) -> np.ndarray:
        """Owned global ids -> ``id // N``; spillover ids pass through
        unchanged.  Keys must route to ``shard``."""
        arr = np.asarray(keys, dtype=np.int64)
        if self.num_shards == 1 or arr.size == 0:
            return arr
        if arr.min() >= 0 and arr.max() < self.key_space:
            return arr // self.num_shards  # hot path: no spillover
        in_universe = (arr >= 0) & (arr < self.key_space)
        return np.where(in_universe, arr // self.num_shards, arr)

    def compress_routed(self, keys: Sequence[int],
                        shard_ids: np.ndarray) -> np.ndarray:
        """Whole-block :meth:`compress` (see
        :meth:`ContiguousRangeRouter.compress_routed`); ``id // N``
        needs no per-shard term, so ``shard_ids`` is unused here."""
        arr = np.asarray(keys, dtype=np.int64)
        if self.num_shards == 1 or arr.size == 0:
            return arr
        if arr.min() >= 0 and arr.max() < self.key_space:
            return arr // self.num_shards  # hot path: no spillover
        in_universe = (arr >= 0) & (arr < self.key_space)
        return np.where(in_universe, arr // self.num_shards, arr)

    def decompress(self, shard: int, keys: Sequence[int]) -> np.ndarray:
        """Inverse of :meth:`compress`: local ids map back to
        ``local * N + shard``, anything else passes through."""
        arr = np.asarray(keys, dtype=np.int64)
        if self.num_shards == 1 or arr.size == 0:
            return arr
        if arr.min() >= 0 and arr.max() < self._owned_count(shard):
            return arr * self.num_shards + shard  # hot path: all local
        local = (arr >= 0) & (arr < self._owned_count(shard))
        return np.where(local, arr * self.num_shards + shard, arr)

    def compress_key(self, shard: int, key: int) -> int:
        key = int(key)
        if 0 <= key < self.key_space:
            return key // self.num_shards
        return key

    def decompress_key(self, shard: int, key: int) -> int:
        key = int(key)
        if 0 <= key < self._owned_count(shard):
            return key * self.num_shards + shard
        return key


#: Registry behind the ``shard_policy=`` knob (``make_buffer``,
#: ``RecMGConfig``, ``RecMGManager``, ``dlrm.inference``,
#: ``prefetch.harness``).
SHARD_POLICIES = {
    "contiguous": ContiguousRangeRouter,
    "modulo": ModuloRouter,
}


def make_router(shard_policy: str, num_shards: int, key_space: int):
    """Instantiate a shard router by policy name."""
    try:
        cls = SHARD_POLICIES[shard_policy]
    except KeyError:
        raise ValueError(
            f"unknown shard_policy {shard_policy!r}; choose from "
            f"{sorted(SHARD_POLICIES)}") from None
    return cls(num_shards, key_space)


def backend_for_key(buffer, key: int):
    """The single-shard backend responsible for ``key``: the routed
    shard (a :class:`CompressedShardView`, so global keys keep working)
    of a :class:`ShardedBuffer`, or ``buffer`` itself otherwise.

    Scalar serving loops (the manager's audit path, the harness and
    classifier per-access loops) use this so eviction-for-space happens
    in the shard that actually needs the slot.
    """
    route = getattr(buffer, "shard_backend_for", None)
    return buffer if route is None else route(key)


def split_capacity(capacity: int, num_shards: int,
                   shard_weights: Optional[Sequence[float]] = None
                   ) -> List[int]:
    """Per-shard capacities for a total of ``capacity`` slots.

    Uniform (``shard_weights=None``): ``capacity // N`` each, the
    remainder to the lowest shard ids — the historical split, kept
    bit-exact so weighted support cannot drift the default goldens.
    Weighted: largest-remainder apportionment of
    ``capacity * w_s / sum(w)`` (floors first, leftover slots to the
    largest fractional parts, ties to the lowest shard id), then a
    deterministic rebalance so every shard keeps at least one slot
    (possible because ``ShardedBuffer`` requires ``capacity >= N``).
    """
    capacity = int(capacity)
    num_shards = int(num_shards)
    if shard_weights is None:
        base, remainder = divmod(capacity, num_shards)
        return [base + (1 if s < remainder else 0)
                for s in range(num_shards)]
    weights = np.asarray(shard_weights, dtype=np.float64)
    if weights.shape != (num_shards,):
        raise ValueError(
            f"shard_weights must provide one weight per shard "
            f"(expected {num_shards}, got {weights.size})")
    if not (np.isfinite(weights).all() and (weights > 0).all()):
        raise ValueError("shard_weights must be positive and finite")
    raw = capacity * weights / weights.sum()
    split = np.floor(raw).astype(np.int64)
    leftover = capacity - int(split.sum())
    if leftover:
        # Largest fractional part first, ties to the lowest shard id.
        order = np.lexsort((np.arange(num_shards), split - raw))
        split[order[:leftover]] += 1
    while (split == 0).any():
        split[int(np.argmax(split))] -= 1
        split[int(np.argmin(split))] += 1
    return split.tolist()


class CompressedShardView:
    """One backend shard behind the global-key protocol.

    The single point where per-shard id compression happens (module
    docstring): ``backend`` runs over the compressed universe
    ``[0, router.shard_key_space(shard_index))`` while every method
    here speaks global ids — arguments are compressed on the way in,
    victims/keys/residency decompressed on the way out, and spillover
    ids pass through untouched in both directions.

    **Precondition**: keys handed to a view must route to its shard
    (``router.route(key) == shard_index``; spillover ids included).
    The scatter step of every bulk op
    (:meth:`ShardedBuffer.iter_shard_segments`) guarantees this; the
    compression bijections are only defined over a shard's own ids, so
    a foreign key would silently alias a local one.

    ``serve_segment`` is exposed only when the backend has one (the
    dense ``"fast"`` backend), so engine dispatch that feature-tests
    ``hasattr(shard, "serve_segment")`` keeps picking the same scheme
    it would for the bare backend.
    """

    def __init__(self, backend, router, shard_index: int) -> None:
        self.backend = backend
        self.router = router
        self.shard_index = int(shard_index)
        self.capacity = backend.capacity
        self.approximate = bool(getattr(backend, "approximate", False))
        self.residency = getattr(backend, "residency", None)
        self._c_memo: List[Tuple[object, np.ndarray]] = []
        if hasattr(backend, "serve_segment"):
            self.serve_segment = self._serve_segment

    # -- translation helpers -------------------------------------------
    def _c(self, keys) -> np.ndarray:
        # Engines hand the *same* segment array to consecutive view
        # calls (contains_batch -> evict_batch(avoid=) -> put_batch),
        # so a two-slot identity memo removes the repeat compressions.
        # Keyed on object identity with a strong reference (no id()
        # reuse); key arrays are never mutated in place after a bulk
        # call, which the bulk protocol already requires.
        for ref, compressed in self._c_memo:
            if ref is keys:
                return compressed
        arr = self.router.compress(self.shard_index, keys)
        if isinstance(keys, np.ndarray):
            self._c_memo.insert(0, (keys, arr))
            del self._c_memo[2:]
        return arr

    def _d(self, keys) -> np.ndarray:
        return self.router.decompress(self.shard_index, keys)

    def _d_list(self, keys: List[int]) -> List[int]:
        if not keys:
            return keys
        return self._d(np.asarray(keys, dtype=np.int64)).tolist()

    @property
    def key_space(self) -> int:
        """The backend's (compressed) dense universe size."""
        return self.backend.key_space

    # -- read protocol -------------------------------------------------
    def __contains__(self, key: int) -> bool:
        return self.router.compress_key(self.shard_index,
                                        int(key)) in self.backend

    def __len__(self) -> int:
        return len(self.backend)

    def keys(self) -> Iterator[int]:
        decompress_key = self.router.decompress_key
        for local in self.backend.keys():
            yield decompress_key(self.shard_index, int(local))

    def priority_of(self, key: int) -> int:
        return self.backend.priority_of(
            self.router.compress_key(self.shard_index, int(key)))

    @property
    def is_full(self) -> bool:
        return self.backend.is_full

    def residency_map(self) -> Dict[int, object]:
        decompress_key = self.router.decompress_key
        return {decompress_key(self.shard_index, int(local)): value
                for local, value in self.backend.residency_map().items()}

    def contains_batch(self, keys: Sequence[int]) -> np.ndarray:
        return self.backend.contains_batch(self._c(keys))

    def per_id_nbytes(self) -> int:
        return self.backend.per_id_nbytes()

    # -- writes --------------------------------------------------------
    def insert(self, key: int, priority: int) -> None:
        self.backend.insert(
            self.router.compress_key(self.shard_index, int(key)), priority)

    def set_priority(self, key: int, priority: int) -> None:
        self.backend.set_priority(
            self.router.compress_key(self.shard_index, int(key)), priority)

    def demote(self, key: int) -> None:
        self.backend.demote(
            self.router.compress_key(self.shard_index, int(key)))

    def put_batch(self, keys: Sequence[int], priority: int) -> None:
        self.backend.put_batch(self._c(keys), priority)

    def set_priority_batch(self, keys: Sequence[int],
                           priority: int) -> None:
        self.backend.set_priority_batch(self._c(keys), priority)

    def demote_batch(self, keys: Sequence[int]) -> None:
        self.backend.demote_batch(self._c(keys))

    # -- eviction / serving (victims come back global) -----------------
    def evict_one(self) -> int:
        return self.router.decompress_key(self.shard_index,
                                          int(self.backend.evict_one()))

    def evict_batch(self, n: int, avoid=None) -> List[int]:
        if avoid is None:
            victims = self.backend.evict_batch(n)
        else:
            victims = self.backend.evict_batch(n, avoid=self._c(avoid))
        return self._d_list(victims)

    def _serve_segment(self, segment: np.ndarray, priority: int):
        result = self.backend.serve_segment(self._c(segment), priority)
        if result is None:  # pragma: no cover - dense backends only
            return None
        served, first_miss, victims, uniq = result
        return served, first_miss, self._d_list(victims), self._d(uniq)


def _allocate_evictions(lengths: np.ndarray, count: int) -> np.ndarray:
    """Per-shard eviction counts for a global ``evict_batch(count)``.

    Deterministic water-filling: the fullest shards are levelled down
    until ``count`` victims are allocated, so repeated global eviction
    drives shard occupancies toward equal — the natural policy for a
    shared capacity pool.  Ties in fullness break by ascending shard
    id; when the final level cannot be met exactly, the least-full
    shards among the levelled group give up one victim fewer.  Raises
    ``RuntimeError`` when fewer than ``count`` entries are resident,
    matching the single-shard backends.
    """
    total = int(lengths.sum())
    if count > total:
        raise RuntimeError("cannot evict more entries than resident")
    take = np.zeros(lengths.size, dtype=np.int64)
    if count <= 0:
        return take
    order = np.argsort(-lengths, kind="stable")  # fullest first, id ties
    sorted_len = lengths[order]
    prefix = np.cumsum(sorted_len)
    for k in range(1, lengths.size + 1):
        floor_level = int(sorted_len[k]) if k < lengths.size else 0
        if int(prefix[k - 1]) - k * floor_level >= count:
            level = (int(prefix[k - 1]) - count) // k
            base = sorted_len[:k] - level
            excess = int(base.sum()) - count
            if excess:
                base[k - excess:k] -= 1
            take[order[:k]] = base
            return take
    raise RuntimeError("eviction allocation failed")  # pragma: no cover


class ShardedBuffer:
    """N independent backend shards behind the single-buffer protocol.

    See the module docstring for the routing/compression/capacity/
    eviction contract.  ``impl`` names any registered backend
    (:data:`repro.cache.buffer.BUFFER_IMPLS`); every shard is built in
    dense mode over its *compressed* universe
    (``router.shard_key_space(s)``) and wrapped in a
    :class:`CompressedShardView`, so the bulk protocol runs
    array-native end to end while every caller — including the serving
    engines that consume :meth:`iter_shard_segments` — keeps speaking
    global ids.  ``approximate`` is inherited from the shard backend —
    the serving engines pick the batched-reclaim or batched-exact
    per-shard scheme off it exactly as they do for bare backends.
    ``shard_weights`` (optional) splits the capacity proportionally
    instead of uniformly (:func:`split_capacity`).
    """

    def __init__(self, impl: str, capacity: int, key_space: int,
                 num_shards: int, shard_policy: str = "contiguous",
                 shard_weights: Optional[Sequence[float]] = None) -> None:
        num_shards = int(num_shards)
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if key_space is None:
            raise ValueError(
                "ShardedBuffer requires key_space= (the routers partition "
                "the dense id universe)")
        if capacity < num_shards:
            raise ValueError(
                f"capacity {capacity} cannot give every one of "
                f"{num_shards} shards at least one slot")
        self.impl = impl
        self.capacity = int(capacity)
        self.key_space = int(key_space)
        self.num_shards = num_shards
        self.shard_policy = shard_policy
        self.shard_weights = (None if shard_weights is None
                              else tuple(float(w) for w in shard_weights))
        self.router = make_router(shard_policy, num_shards, self.key_space)
        self.shard_capacities = split_capacity(self.capacity, num_shards,
                                               shard_weights)
        self.shards: List[CompressedShardView] = []
        for index, shard_capacity in enumerate(self.shard_capacities):
            backend = make_buffer(impl, shard_capacity,
                                  key_space=self.router.shard_key_space(
                                      index))
            # The dense backends report their universe so the
            # translation boundary is assertable (an uncompressed shard
            # here would silently cost N× the per-id memory).
            assert backend.key_space == self.router.shard_key_space(index)
            self.shards.append(CompressedShardView(backend, self.router,
                                                   index))
        #: Victim order approximates/honors the per-shard contract of
        #: the underlying backend; never the cross-shard global order.
        self.approximate = bool(getattr(self.shards[0], "approximate",
                                        False))

    # -- routing -------------------------------------------------------
    def shard_id_of(self, key: int) -> int:
        """Shard index owning ``key`` (total: any int64 routes)."""
        return self.router.route(key)

    def shard_backend_for(self, key: int):
        """The shard view owning ``key`` (global-key protocol; see
        :func:`backend_for_key`)."""
        return self.shards[self.router.route(key)]

    def route_batch(self, keys: Sequence[int]) -> np.ndarray:
        """Shard index per key — the scatter step of every bulk op."""
        return self.router.route_batch(keys)

    def iter_shard_segments(self, keys: np.ndarray):
        """Scatter ``keys`` to shards: yields ``(shard_index, view,
        positions, sub_keys)`` per non-empty shard, where ``positions``
        indexes ``keys`` (ascending, so per-shard order follows the
        access stream) and ``sub_keys = keys[positions]`` — global
        ids; ``view`` (a :class:`CompressedShardView`) translates.

        The block is compressed once here (``compress_routed``, one
        vectorized pass) and each shard's slice primed into its view's
        compression memo, so the per-shard calls the caller makes next
        (``contains_batch`` / ``evict_batch(avoid=)`` / ``put_batch``
        on the yielded ``sub_keys``) skip re-compressing it.

        **Per-shard bit-split contract** (the provider sink): a block
        of per-access caching bits may be split along this same route
        — ``bits[positions]`` rides with ``sub_keys`` — and applied
        per shard through the yielded view
        (:func:`repro.serving.priorities.apply_caching_bits`).
        Duplicates of a key always land in the same shard and
        ``positions`` is ascending, so per-shard dedup/apply is
        call-for-call identical to the global bulk calls; because the
        views share no state, the per-shard applies may also run on
        the shard-pinned workers, concurrently with *other* shards'
        serves — the split is what lets priority writes pipeline
        instead of barriering.  The compression memo is safe under
        that concurrency: entries are immutable ``(ref, compressed)``
        tuples matched by object identity, so a reader racing this
        method's priming can only miss (and recompute), never alias a
        foreign array."""
        arr = np.asarray(keys, dtype=np.int64)
        shard_ids = self.router.route_batch(arr)
        compressed = self.router.compress_routed(arr, shard_ids)
        for shard_index in range(self.num_shards):
            positions = np.flatnonzero(shard_ids == shard_index)
            if positions.size:
                view = self.shards[shard_index]
                sub = arr[positions]
                view._c_memo.insert(0, (sub, compressed[positions]))
                del view._c_memo[2:]
                yield (shard_index, view, positions, sub)

    # -- read protocol -------------------------------------------------
    def __contains__(self, key: int) -> bool:
        return int(key) in self.shard_backend_for(int(key))

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def keys(self) -> Iterator[int]:
        for shard in self.shards:
            yield from shard.keys()

    def priority_of(self, key: int) -> int:
        return self.shard_backend_for(int(key)).priority_of(int(key))

    @property
    def is_full(self) -> bool:
        """True when *every* shard is full.  A single full shard
        already refuses inserts routed to it — scalar call sites must
        gate on the routed shard (:func:`backend_for_key`), not on
        this global view."""
        return all(shard.is_full for shard in self.shards)

    def residency_map(self) -> Dict[int, object]:
        """Merged read-only view keyed by resident (global) key (a
        snapshot — bulk call sites should prefer
        :meth:`contains_batch`)."""
        merged: Dict[int, object] = {}
        for shard in self.shards:
            merged.update(shard.residency_map())
        return merged

    def contains_batch(self, keys: Sequence[int]) -> np.ndarray:
        """Residency of each key: scatter to shards, one bitmap gather
        per shard, gather back by position."""
        arr = np.asarray(keys, dtype=np.int64)
        out = np.zeros(arr.size, dtype=bool)
        for _, shard, positions, sub in self.iter_shard_segments(arr):
            out[positions] = shard.contains_batch(sub)
        return out

    def per_id_nbytes(self) -> int:
        """Total per-id dense-state bytes across shards — ≈ the
        single-shard footprint, *not* N× it (the point of compression;
        regression-tested in ``tests/test_sharding.py``)."""
        return sum(shard.per_id_nbytes() for shard in self.shards)

    # -- scalar writes (route + forward) -------------------------------
    def insert(self, key: int, priority: int) -> None:
        """Insert (or refresh) ``key`` in its shard; the caller must
        ensure space *in that shard* (``RuntimeError`` otherwise, like
        the single-shard backends)."""
        self.shard_backend_for(int(key)).insert(int(key), priority)

    def set_priority(self, key: int, priority: int) -> None:
        self.shard_backend_for(int(key)).set_priority(int(key), priority)

    def demote(self, key: int) -> None:
        self.shard_backend_for(int(key)).demote(int(key))

    # -- bulk writes (scatter / per-shard batch / no gather needed) ----
    def put_batch(self, keys: Sequence[int], priority: int) -> None:
        """Bulk insert-or-refresh, one batched call per shard.

        Capacity is per shard: the whole batch is validated against
        every shard's free space *before* any shard mutates, so a
        ``RuntimeError`` (a sub-batch overflowing its shard, even while
        other shards have room) leaves the buffer untouched — the same
        raise-before-mutate contract as the single-shard backends.
        """
        arr = np.asarray(keys, dtype=np.int64)
        if arr.size == 0:
            return
        segments = list(self.iter_shard_segments(arr))
        for _, shard, _, sub in segments:
            fresh = int(np.count_nonzero(
                ~shard.contains_batch(np.unique(sub))))
            if len(shard) + fresh > shard.capacity:
                raise RuntimeError("buffer full; evict first")
        for _, shard, _, sub in segments:
            shard.put_batch(sub, priority)

    def set_priority_batch(self, keys: Sequence[int], priority: int) -> None:
        arr = np.asarray(keys, dtype=np.int64)
        for _, shard, _, sub in self.iter_shard_segments(arr):
            shard.set_priority_batch(sub, priority)

    def demote_batch(self, keys: Sequence[int]) -> None:
        arr = np.asarray(keys, dtype=np.int64)
        for _, shard, _, sub in self.iter_shard_segments(arr):
            shard.demote_batch(sub)

    # -- eviction ------------------------------------------------------
    def evict_one(self) -> int:
        """Evict one entry from the fullest shard (ties break by
        ascending shard id) — the ``count=1`` case of the levelling
        policy.  Serving paths that need space *for a key* must instead
        evict from that key's shard (:func:`backend_for_key`)."""
        if not len(self):
            raise RuntimeError("cannot evict from an empty buffer")
        lengths = np.asarray([len(shard) for shard in self.shards])
        return self.shards[int(np.argmax(lengths))].evict_one()

    def evict_batch(self, n: int) -> List[int]:
        """Evict ``n`` entries globally, levelling the fullest shards
        down (:func:`_allocate_evictions`).  Victims come out grouped
        per shard in shard-id order; *within* a shard they follow that
        shard's own eviction order — there is no cross-shard
        ``(effective_priority, seqno)`` interleaving (see module
        docstring and the Sharding note in :mod:`repro.cache.buffer`).
        This ordering is contract, pinned by
        ``tests/test_sharding.py::test_evict_batch_victim_order_is_per_shard``."""
        count = int(n)
        if count <= 0:
            return []
        lengths = np.asarray([len(shard) for shard in self.shards],
                             dtype=np.int64)
        allocation = _allocate_evictions(lengths, count)
        victims: List[int] = []
        for shard, share in zip(self.shards, allocation.tolist()):
            if share:
                victims.extend(shard.evict_batch(share))
        return victims
