"""Sharded buffer: partition a dense key space across N backend shards.

Production embedding caches do not serve millions of users from one
buffer: the id space is *partitioned* across shards, each shard owns an
independent slice of the capacity, and a request batch is scattered to
its shards, served per shard, and gathered back.  This module builds
that layer on top of the single-shard backends in
:mod:`repro.cache.buffer`.

**Routing contract.**  A :class:`ShardedBuffer` is constructed over a
dense id universe ``[0, key_space)`` (the same universe the
:class:`~repro.cache.residency.ResidencyIndex` bitmaps cover) and a
*router* — one of :data:`SHARD_POLICIES`:

* ``"contiguous"`` (:class:`ContiguousRangeRouter`) — shard ``s`` owns
  the contiguous id range ``[ceil(s*K/N), ceil((s+1)*K/N))``.  Dense
  ids are assigned in sorted packed-key order
  (:func:`repro.traces.access.remap_to_dense` keeps same-table rows
  contiguous), so contiguous ranges map to contiguous (table, row)
  regions — the natural partition for range-partitioned embedding
  tables, and the one hot-shard workloads stress.
* ``"modulo"`` (:class:`ModuloRouter`) — shard ``s`` owns every id
  congruent to ``s`` mod N; a hash-free striping that spreads
  contiguous hot ranges evenly across shards.

Routing is **total and deterministic**: every int64 key — including ids
outside ``[0, key_space)``, which the manager assigns to keys unseen at
encoder-fit time — maps to exactly one shard, and the scalar and batch
forms agree key for key (out-of-range ids route by ``key mod N`` under
both policies, so spillover correctness never depends on the id fitting
the universe).  Because a key can only ever live in its router shard,
the per-shard residency bitmaps are pairwise disjoint and their union
*is* the global residency — ``contains_batch`` answers by scattering
the query to shards and gathering the per-shard gathers back
(property-tested after every op in ``tests/test_sharding.py``).

**Capacity and eviction.**  The total capacity splits as evenly as the
remainder allows: shard ``s`` gets ``capacity // N`` slots, plus one
for ``s < capacity % N``.  Eviction decisions are therefore **local to
a shard**: a full shard evicts its own ``(effective_priority, seqno)``
(or clock-order) victim even while another shard has free slots, and
:meth:`ShardedBuffer.evict_batch` — which levels the fullest shards
down by water-filling — returns victims grouped per shard in shard-id
order, *not* in the single-buffer global ``(effective_priority,
seqno)`` order.  This is the documented price of sharding; the
single-shard backends keep the exact global contract.

**Bulk protocol.**  Every op of the single-shard bulk protocol
(``contains_batch`` / ``put_batch`` / ``set_priority_batch`` /
``demote_batch`` / ``evict_batch``) is implemented as one vectorized
scatter of the keys to shards (:meth:`ShardRouter.route_batch`),
per-shard *batched* backend calls, and one gather back — no per-key
python loop.  Within a shard the original key order is preserved, and
ops on distinct shards commute (disjoint key sets), so the batch forms
keep the single-shard semantics per shard.

A 1-shard :class:`ShardedBuffer` is decision-for-decision identical to
the bare backend (200-seed differential in ``tests/test_sharding.py``);
``make_buffer(..., num_shards=1)`` therefore returns the bare backend
and only ``num_shards > 1`` pays the routing layer.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from .buffer import make_buffer


class ContiguousRangeRouter:
    """Contiguous-range partition of ``[0, key_space)`` into N shards.

    ``route(key) = key * N // key_space`` for in-universe keys — shard
    ``s`` owns ``[ceil(s*K/N), ceil((s+1)*K/N))`` (:meth:`range_of`).
    Out-of-universe keys (spillover ids above the vocabulary, or
    negative probes) route by ``key mod N``.
    """

    name = "contiguous"

    def __init__(self, num_shards: int, key_space: int) -> None:
        self.num_shards = int(num_shards)
        self.key_space = int(key_space)

    def route(self, key: int) -> int:
        key = int(key)
        if 0 <= key < self.key_space:
            return key * self.num_shards // self.key_space
        return key % self.num_shards

    def route_batch(self, keys: Sequence[int]) -> np.ndarray:
        arr = np.asarray(keys, dtype=np.int64)
        shards = np.clip(arr, 0, self.key_space - 1) \
            * self.num_shards // self.key_space
        out = (arr < 0) | (arr >= self.key_space)
        if out.any():
            shards[out] = np.mod(arr[out], self.num_shards)
        return shards

    def range_of(self, shard: int) -> Tuple[int, int]:
        """In-universe id range ``[lo, hi)`` owned by ``shard``."""
        n, k = self.num_shards, self.key_space
        lo = -((-shard * k) // n)        # ceil(shard * k / n)
        hi = -((-(shard + 1) * k) // n)
        return lo, hi


class ModuloRouter:
    """Modulo striping: shard ``s`` owns every id congruent to s mod N
    (in- and out-of-universe keys alike)."""

    name = "modulo"

    def __init__(self, num_shards: int, key_space: int) -> None:
        self.num_shards = int(num_shards)
        self.key_space = int(key_space)

    def route(self, key: int) -> int:
        return int(key) % self.num_shards

    def route_batch(self, keys: Sequence[int]) -> np.ndarray:
        return np.mod(np.asarray(keys, dtype=np.int64), self.num_shards)


#: Registry behind the ``shard_policy=`` knob (``make_buffer``,
#: ``RecMGConfig``, ``RecMGManager``, ``dlrm.inference``,
#: ``prefetch.harness``).
SHARD_POLICIES = {
    "contiguous": ContiguousRangeRouter,
    "modulo": ModuloRouter,
}


def make_router(shard_policy: str, num_shards: int, key_space: int):
    """Instantiate a shard router by policy name."""
    try:
        cls = SHARD_POLICIES[shard_policy]
    except KeyError:
        raise ValueError(
            f"unknown shard_policy {shard_policy!r}; choose from "
            f"{sorted(SHARD_POLICIES)}") from None
    return cls(num_shards, key_space)


def backend_for_key(buffer, key: int):
    """The single-shard backend responsible for ``key``: the routed
    shard of a :class:`ShardedBuffer`, or ``buffer`` itself otherwise.

    Scalar serving loops (the manager's audit path, the harness and
    classifier per-access loops) use this so eviction-for-space happens
    in the shard that actually needs the slot.
    """
    route = getattr(buffer, "shard_backend_for", None)
    return buffer if route is None else route(key)


def _allocate_evictions(lengths: np.ndarray, count: int) -> np.ndarray:
    """Per-shard eviction counts for a global ``evict_batch(count)``.

    Deterministic water-filling: the fullest shards are levelled down
    until ``count`` victims are allocated, so repeated global eviction
    drives shard occupancies toward equal — the natural policy for a
    shared capacity pool.  Ties in fullness break by ascending shard
    id; when the final level cannot be met exactly, the least-full
    shards among the levelled group give up one victim fewer.  Raises
    ``RuntimeError`` when fewer than ``count`` entries are resident,
    matching the single-shard backends.
    """
    total = int(lengths.sum())
    if count > total:
        raise RuntimeError("cannot evict more entries than resident")
    take = np.zeros(lengths.size, dtype=np.int64)
    if count <= 0:
        return take
    order = np.argsort(-lengths, kind="stable")  # fullest first, id ties
    sorted_len = lengths[order]
    prefix = np.cumsum(sorted_len)
    for k in range(1, lengths.size + 1):
        floor_level = int(sorted_len[k]) if k < lengths.size else 0
        if int(prefix[k - 1]) - k * floor_level >= count:
            level = (int(prefix[k - 1]) - count) // k
            base = sorted_len[:k] - level
            excess = int(base.sum()) - count
            if excess:
                base[k - excess:k] -= 1
            take[order[:k]] = base
            return take
    raise RuntimeError("eviction allocation failed")  # pragma: no cover


class ShardedBuffer:
    """N independent backend shards behind the single-buffer protocol.

    See the module docstring for the routing/capacity/eviction
    contract.  ``impl`` names any registered backend
    (:data:`repro.cache.buffer.BUFFER_IMPLS`); every shard is built in
    dense ``key_space`` mode, so the bulk protocol runs array-native
    end to end.  ``approximate`` is inherited from the shard backend —
    the serving engines pick the batched-reclaim or batched-exact
    per-shard scheme off it exactly as they do for bare backends.
    """

    def __init__(self, impl: str, capacity: int, key_space: int,
                 num_shards: int, shard_policy: str = "contiguous") -> None:
        num_shards = int(num_shards)
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if key_space is None:
            raise ValueError(
                "ShardedBuffer requires key_space= (the routers partition "
                "the dense id universe)")
        if capacity < num_shards:
            raise ValueError(
                f"capacity {capacity} cannot give every one of "
                f"{num_shards} shards at least one slot")
        self.impl = impl
        self.capacity = int(capacity)
        self.key_space = int(key_space)
        self.num_shards = num_shards
        self.shard_policy = shard_policy
        self.router = make_router(shard_policy, num_shards, self.key_space)
        base, remainder = divmod(self.capacity, num_shards)
        self.shard_capacities = [base + (1 if s < remainder else 0)
                                 for s in range(num_shards)]
        self.shards = [make_buffer(impl, shard_capacity,
                                   key_space=self.key_space)
                       for shard_capacity in self.shard_capacities]
        #: Victim order approximates/honors the per-shard contract of
        #: the underlying backend; never the cross-shard global order.
        self.approximate = bool(getattr(self.shards[0], "approximate",
                                        False))

    # -- routing -------------------------------------------------------
    def shard_id_of(self, key: int) -> int:
        """Shard index owning ``key`` (total: any int64 routes)."""
        return self.router.route(key)

    def shard_backend_for(self, key: int):
        """The backend shard owning ``key`` (see
        :func:`backend_for_key`)."""
        return self.shards[self.router.route(key)]

    def route_batch(self, keys: Sequence[int]) -> np.ndarray:
        """Shard index per key — the scatter step of every bulk op."""
        return self.router.route_batch(keys)

    def iter_shard_segments(self, keys: np.ndarray):
        """Scatter ``keys`` to shards: yields ``(shard_index, backend,
        positions, sub_keys)`` per non-empty shard, where ``positions``
        indexes ``keys`` (ascending, so per-shard order follows the
        access stream) and ``sub_keys = keys[positions]``."""
        arr = np.asarray(keys, dtype=np.int64)
        shard_ids = self.router.route_batch(arr)
        for shard_index in range(self.num_shards):
            positions = np.flatnonzero(shard_ids == shard_index)
            if positions.size:
                yield (shard_index, self.shards[shard_index], positions,
                       arr[positions])

    # -- read protocol -------------------------------------------------
    def __contains__(self, key: int) -> bool:
        return int(key) in self.shard_backend_for(int(key))

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def keys(self) -> Iterator[int]:
        for shard in self.shards:
            yield from shard.keys()

    def priority_of(self, key: int) -> int:
        return self.shard_backend_for(int(key)).priority_of(int(key))

    @property
    def is_full(self) -> bool:
        """True when *every* shard is full.  A single full shard
        already refuses inserts routed to it — scalar call sites must
        gate on the routed shard (:func:`backend_for_key`), not on
        this global view."""
        return all(shard.is_full for shard in self.shards)

    def residency_map(self) -> Dict[int, object]:
        """Merged read-only view keyed by resident key (a snapshot —
        bulk call sites should prefer :meth:`contains_batch`)."""
        merged: Dict[int, object] = {}
        for shard in self.shards:
            merged.update(shard.residency_map())
        return merged

    def contains_batch(self, keys: Sequence[int]) -> np.ndarray:
        """Residency of each key: scatter to shards, one bitmap gather
        per shard, gather back by position."""
        arr = np.asarray(keys, dtype=np.int64)
        out = np.zeros(arr.size, dtype=bool)
        for _, shard, positions, sub in self.iter_shard_segments(arr):
            out[positions] = shard.contains_batch(sub)
        return out

    # -- scalar writes (route + forward) -------------------------------
    def insert(self, key: int, priority: int) -> None:
        """Insert (or refresh) ``key`` in its shard; the caller must
        ensure space *in that shard* (``RuntimeError`` otherwise, like
        the single-shard backends)."""
        self.shard_backend_for(int(key)).insert(int(key), priority)

    def set_priority(self, key: int, priority: int) -> None:
        self.shard_backend_for(int(key)).set_priority(int(key), priority)

    def demote(self, key: int) -> None:
        self.shard_backend_for(int(key)).demote(int(key))

    # -- bulk writes (scatter / per-shard batch / no gather needed) ----
    def put_batch(self, keys: Sequence[int], priority: int) -> None:
        """Bulk insert-or-refresh, one batched call per shard.

        Capacity is per shard: the whole batch is validated against
        every shard's free space *before* any shard mutates, so a
        ``RuntimeError`` (a sub-batch overflowing its shard, even while
        other shards have room) leaves the buffer untouched — the same
        raise-before-mutate contract as the single-shard backends.
        """
        arr = np.asarray(keys, dtype=np.int64)
        if arr.size == 0:
            return
        segments = list(self.iter_shard_segments(arr))
        for _, shard, _, sub in segments:
            fresh = int(np.count_nonzero(
                ~shard.contains_batch(np.unique(sub))))
            if len(shard) + fresh > shard.capacity:
                raise RuntimeError("buffer full; evict first")
        for _, shard, _, sub in segments:
            shard.put_batch(sub, priority)

    def set_priority_batch(self, keys: Sequence[int], priority: int) -> None:
        arr = np.asarray(keys, dtype=np.int64)
        for _, shard, _, sub in self.iter_shard_segments(arr):
            shard.set_priority_batch(sub, priority)

    def demote_batch(self, keys: Sequence[int]) -> None:
        arr = np.asarray(keys, dtype=np.int64)
        for _, shard, _, sub in self.iter_shard_segments(arr):
            shard.demote_batch(sub)

    # -- eviction ------------------------------------------------------
    def evict_one(self) -> int:
        """Evict one entry from the fullest shard (ties break by
        ascending shard id) — the ``count=1`` case of the levelling
        policy.  Serving paths that need space *for a key* must instead
        evict from that key's shard (:func:`backend_for_key`)."""
        if not len(self):
            raise RuntimeError("cannot evict from an empty buffer")
        lengths = np.asarray([len(shard) for shard in self.shards])
        return self.shards[int(np.argmax(lengths))].evict_one()

    def evict_batch(self, n: int) -> List[int]:
        """Evict ``n`` entries globally, levelling the fullest shards
        down (:func:`_allocate_evictions`).  Victims come out grouped
        per shard in shard-id order; *within* a shard they follow that
        shard's own eviction order — there is no cross-shard
        ``(effective_priority, seqno)`` interleaving (see module
        docstring and the Sharding note in :mod:`repro.cache.buffer`).
        This ordering is contract, pinned by
        ``tests/test_sharding.py::test_evict_batch_victim_order_is_per_shard``."""
        count = int(n)
        if count <= 0:
            return []
        lengths = np.asarray([len(shard) for shard in self.shards],
                             dtype=np.int64)
        allocation = _allocate_evictions(lengths, count)
        victims: List[int] = []
        for shard, share in zip(self.shards, allocation.tolist()):
            if share:
                victims.extend(shard.evict_batch(share))
        return victims
