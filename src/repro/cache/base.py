"""Cache-policy interface and trace-driven simulation loop."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..traces.access import Trace


@dataclass
class CacheStats:
    """Counters shared by every cache policy."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def record(self, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1


class CachePolicy(Protocol):
    """A demand cache: ``access`` returns True on hit and handles fills."""

    stats: CacheStats

    def access(self, key: int, pc: int = 0) -> bool: ...
    def __contains__(self, key: int) -> bool: ...
    def __len__(self) -> int: ...


def simulate(policy: CachePolicy, trace: Trace,
             record_decisions: bool = False) -> np.ndarray:
    """Drive ``policy`` with every access of ``trace``.

    Uses the access's table id as the PC proxy (the paper maps embedding
    table IDs to PC/IP for PC-based policies).  Returns the per-access
    hit/miss boolean array when ``record_decisions`` else an empty array;
    aggregate counts land in ``policy.stats``.
    """
    keys = trace.keys()
    tables = trace.table_ids
    decisions = np.zeros(len(keys), dtype=bool) if record_decisions else None
    for i in range(len(keys)):
        hit = policy.access(int(keys[i]), pc=int(tables[i]))
        if decisions is not None:
            decisions[i] = hit
    return decisions if decisions is not None else np.empty(0, dtype=bool)


def capacity_from_fraction(trace: Trace, fraction: float) -> int:
    """Buffer capacity as a fraction of the trace's unique vectors.

    The paper sizes GPU buffers as "X% of the unique embedding vectors".
    Always at least 1 entry.
    """
    if fraction <= 0:
        raise ValueError("fraction must be positive")
    return max(1, int(round(trace.num_unique * fraction)))
