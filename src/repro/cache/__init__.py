"""Cache substrate: policies, optimal baselines, and the GPU buffer."""

from .base import CacheStats, CachePolicy, simulate, capacity_from_fraction
from .lru import LRUCache
from .lfu import LFUCache
from .belady import simulate_belady, belady_hit_rate, next_use_indices, NEVER
from .optgen import (
    OptgenResult,
    run_optgen,
    run_optgen_reference,
    prefetch_trace_from,
)
from .set_assoc import SetAssociativeCache, PrefetchStats, mix64
from .replacement import (
    ReplacementPolicy,
    LRUReplacement,
    SRRIPReplacement,
    BRRIPReplacement,
    DRRIPReplacement,
    HawkeyeReplacement,
    MockingjayReplacement,
    PredictorReplacement,
)
from .buffer import (
    PriorityBuffer,
    FastPriorityBuffer,
    ClockBuffer,
    BUFFER_IMPLS,
    make_buffer,
)
from .residency import ResidencyIndex
from .sharding import (
    SHARD_POLICIES,
    CompressedShardView,
    ContiguousRangeRouter,
    ModuloRouter,
    ShardedBuffer,
    backend_for_key,
    make_router,
    split_capacity,
)

__all__ = [
    "CacheStats", "CachePolicy", "simulate", "capacity_from_fraction",
    "LRUCache", "LFUCache",
    "simulate_belady", "belady_hit_rate", "next_use_indices", "NEVER",
    "OptgenResult", "run_optgen", "run_optgen_reference",
    "prefetch_trace_from",
    "SetAssociativeCache", "PrefetchStats", "mix64",
    "ReplacementPolicy", "LRUReplacement", "SRRIPReplacement",
    "BRRIPReplacement", "DRRIPReplacement", "HawkeyeReplacement",
    "MockingjayReplacement", "PredictorReplacement",
    "PriorityBuffer", "FastPriorityBuffer", "ClockBuffer",
    "BUFFER_IMPLS", "make_buffer", "ResidencyIndex",
    "SHARD_POLICIES", "CompressedShardView", "ContiguousRangeRouter",
    "ModuloRouter", "ShardedBuffer", "backend_for_key", "make_router",
    "split_capacity",
]
