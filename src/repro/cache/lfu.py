"""Fully associative LFU cache with oldest-entry tie-breaking."""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from .base import CacheStats


class LFUCache:
    """Least-frequently-used eviction; ties evict the least recently used.

    Uses a lazy heap of (frequency, recency, key) tuples: stale tuples
    (whose frequency/recency no longer match) are skipped on pop.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._freq: Dict[int, int] = {}
        self._recency: Dict[int, int] = {}
        self._heap: List[Tuple[int, int, int]] = []
        self._clock = 0
        self.stats = CacheStats()

    def access(self, key: int, pc: int = 0) -> bool:
        self._clock += 1
        hit = key in self._freq
        if hit:
            self._freq[key] += 1
        else:
            if len(self._freq) >= self.capacity:
                self._evict()
            self._freq[key] = 1
        self._recency[key] = self._clock
        heapq.heappush(self._heap, (self._freq[key], self._clock, key))
        self.stats.record(hit)
        return hit

    def _evict(self) -> None:
        while self._heap:
            freq, recency, key = heapq.heappop(self._heap)
            if self._freq.get(key) == freq and self._recency.get(key) == recency:
                del self._freq[key]
                del self._recency[key]
                return
        raise RuntimeError("LFU heap drained without finding a victim")

    def __contains__(self, key: int) -> bool:
        return key in self._freq

    def __len__(self) -> int:
        return len(self._freq)
