"""Dense-id residency index: vectorized membership over a dense key space.

The serving stack's hottest question is membership — "which of these
keys are resident right now?" — asked once per access by the scalar
loops and once per *segment* by the batched engines.  When keys live in
a dense id space (the manager serves ``encoder.dense_ids``, the
prefetch harness serves ``remap_to_dense`` keys), the answer is a
single numpy gather: :class:`ResidencyIndex` keeps a boolean bitmap
over ``[0, key_space)`` and answers :meth:`contains_batch` for a whole
segment with one fancy-indexing read instead of a per-key dict loop.

Keys outside the dense range (the manager assigns unseen keys unique
ids *above* the vocabulary, see
:meth:`repro.core.features.FeatureEncoder.dense_ids`) are tracked in a
spillover set, so correctness never depends on every key fitting the
bitmap — only throughput does.

The index is maintained *incrementally by the buffer backends*
(:mod:`repro.cache.buffer`): :class:`~repro.cache.buffer.ClockBuffer`
and :class:`~repro.cache.buffer.FastPriorityBuffer` built with
``key_space=N`` bulk-set bits on ``insert``/``put_batch``/
``serve_segment`` and bulk-clear them on ``evict_one``/``evict_batch``;
:class:`~repro.cache.buffer.PriorityBuffer` keeps a mirror of its
entry dict.  Dict-mode backends answer the same ``contains_batch``
protocol straight off their entry dicts, so call sites
(``RecMGManager._serve_demand_batched`` and
``_serve_demand_batched_exact``, ``_apply_caching_bits``,
``prefetch.harness``, ``dlrm.inference``) stay backend-agnostic.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Set

import numpy as np


class ResidencyIndex:
    """Boolean residency bitmap over dense ids ``[0, key_space)``.

    Mutations accept scalars or batches; batch forms are vectorized
    over the in-range keys and fall back to a spillover set for ids
    outside the bitmap (rare by construction — see module docstring).
    ``add``/``discard`` are idempotent, mirroring set semantics: the
    buffer backends own the capacity bookkeeping, the index only
    answers membership.
    """

    __slots__ = ("key_space", "bitmap", "_overflow")

    def __init__(self, key_space: int) -> None:
        if key_space < 1:
            raise ValueError("key_space must be >= 1")
        self.key_space = int(key_space)
        #: The raw bitmap — exposed so hot call sites can gather
        #: ``bitmap[segment]`` directly once they know the segment is
        #: in range; :meth:`contains_batch` is the safe general form.
        self.bitmap = np.zeros(self.key_space, dtype=bool)
        self._overflow: Set[int] = set()

    # -- scalar protocol ----------------------------------------------
    def __contains__(self, key: int) -> bool:
        if 0 <= key < self.key_space:
            return bool(self.bitmap[key])
        return key in self._overflow

    def add(self, key: int) -> None:
        if 0 <= key < self.key_space:
            self.bitmap[key] = True
        else:
            self._overflow.add(key)

    def discard(self, key: int) -> None:
        if 0 <= key < self.key_space:
            self.bitmap[key] = False
        else:
            self._overflow.discard(key)

    # -- batch protocol -----------------------------------------------
    def _split(self, keys) -> np.ndarray:
        return np.asarray(keys, dtype=np.int64)

    def add_batch(self, keys: Sequence[int]) -> None:
        """Bulk set: one vectorized write for in-range keys."""
        arr = self._split(keys)
        if arr.size == 0:
            return
        if arr.min() >= 0 and arr.max() < self.key_space:
            self.bitmap[arr] = True
            return
        in_range = (arr >= 0) & (arr < self.key_space)
        self.bitmap[arr[in_range]] = True
        self._overflow.update(arr[~in_range].tolist())

    def discard_batch(self, keys: Sequence[int]) -> None:
        """Bulk clear: one vectorized write for in-range keys."""
        arr = self._split(keys)
        if arr.size == 0:
            return
        if arr.min() >= 0 and arr.max() < self.key_space:
            self.bitmap[arr] = False
            return
        in_range = (arr >= 0) & (arr < self.key_space)
        self.bitmap[arr[in_range]] = False
        self._overflow.difference_update(arr[~in_range].tolist())

    def contains_batch(self, keys: Sequence[int]) -> np.ndarray:
        """Residency of each key as a boolean array (one gather when
        every key is in range)."""
        arr = self._split(keys)
        if arr.size == 0:
            return np.zeros(0, dtype=bool)
        if arr.min() >= 0 and arr.max() < self.key_space:
            return self.bitmap[arr]
        in_range = (arr >= 0) & (arr < self.key_space)
        out = np.zeros(arr.size, dtype=bool)
        out[in_range] = self.bitmap[arr[in_range]]
        if self._overflow:
            spill = np.flatnonzero(~in_range)
            overflow = self._overflow
            for pos in spill.tolist():
                out[pos] = int(arr[pos]) in overflow
        return out

    # -- bookkeeping ---------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Bytes of per-id state (the bitmap).  Memory here scales with
        ``key_space``, not occupancy — which is why sharded buffers
        build their indexes over the *compressed* per-shard universe
        (see :mod:`repro.cache.sharding`)."""
        return int(self.bitmap.nbytes)

    def count(self) -> int:
        """Number of resident keys (O(key_space) popcount — the owning
        buffer tracks its own length; this is for audits/tests)."""
        return int(np.count_nonzero(self.bitmap)) + len(self._overflow)

    def resident_keys(self) -> Iterator[int]:
        """Iterate resident keys (in-range ascending, then spillover)."""
        for key in np.flatnonzero(self.bitmap).tolist():
            yield key
        yield from self._overflow

    def clear(self) -> None:
        self.bitmap[:] = False
        self._overflow.clear()
