"""Fully associative LRU cache (the production baseline in the paper)."""

from __future__ import annotations

from collections import OrderedDict

from .base import CacheStats


class LRUCache:
    """Classic fully associative LRU over integer keys."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[int, None]" = OrderedDict()
        self.stats = CacheStats()

    def access(self, key: int, pc: int = 0) -> bool:
        hit = key in self._entries
        if hit:
            self._entries.move_to_end(key)
        else:
            if len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
            self._entries[key] = None
        self.stats.record(hit)
        return hit

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)
