"""Replacement policies for the set-associative cache (ChampSim stand-in).

Implements the baselines of paper Fig. 15: set-LRU, SRRIP, BRRIP, DRRIP
(set dueling), Hawkeye and Mockingjay.  Hawkeye/Mockingjay are faithful
simplifications: they keep the PC-based prediction structure (with
embedding-table id as the PC proxy, as the paper prescribes) but use a
compact sampler.  ``PredictorReplacement`` plugs RecMG's caching model
into the same slot ("CM" bars in Fig. 15/19).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List

import numpy as np


class ReplacementPolicy:
    """Per-set replacement state; subclasses override the three hooks."""

    name = "base"

    def __init__(self, num_sets: int, ways: int) -> None:
        self.num_sets = num_sets
        self.ways = ways

    def on_hit(self, set_idx: int, way: int, pc: int, key: int) -> None:
        raise NotImplementedError

    def on_fill(self, set_idx: int, way: int, pc: int, key: int,
                is_prefetch: bool) -> None:
        raise NotImplementedError

    def victim(self, set_idx: int, pc: int, key: int) -> int:
        """Choose a way to evict (all ways are valid/occupied)."""
        raise NotImplementedError

    def on_evict(self, set_idx: int, way: int, key: int) -> None:
        """Optional notification before a line leaves the cache."""


class LRUReplacement(ReplacementPolicy):
    """Per-set least-recently-used."""

    name = "LRU"

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._stamp = np.zeros((num_sets, ways), dtype=np.int64)
        self._clock = 0

    def _touch(self, set_idx: int, way: int) -> None:
        self._clock += 1
        self._stamp[set_idx, way] = self._clock

    def on_hit(self, set_idx: int, way: int, pc: int, key: int) -> None:
        self._touch(set_idx, way)

    def on_fill(self, set_idx: int, way: int, pc: int, key: int,
                is_prefetch: bool) -> None:
        self._touch(set_idx, way)

    def victim(self, set_idx: int, pc: int, key: int) -> int:
        return int(np.argmin(self._stamp[set_idx]))


class SRRIPReplacement(ReplacementPolicy):
    """Static RRIP (Jaleel et al.): 2-bit re-reference prediction values."""

    name = "SRRIP"
    MAX_RRPV = 3

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._rrpv = np.full((num_sets, ways), self.MAX_RRPV, dtype=np.int8)

    def on_hit(self, set_idx: int, way: int, pc: int, key: int) -> None:
        self._rrpv[set_idx, way] = 0

    def on_fill(self, set_idx: int, way: int, pc: int, key: int,
                is_prefetch: bool) -> None:
        # Long re-reference interval on insert; prefetches inserted as
        # distant so useless prefetches leave quickly.
        self._rrpv[set_idx, way] = self.MAX_RRPV if is_prefetch else self.MAX_RRPV - 1

    def victim(self, set_idx: int, pc: int, key: int) -> int:
        row = self._rrpv[set_idx]
        while True:
            candidates = np.nonzero(row == self.MAX_RRPV)[0]
            if candidates.size:
                return int(candidates[0])
            row += 1


class BRRIPReplacement(SRRIPReplacement):
    """Bimodal RRIP: mostly-distant insertion to resist thrashing."""

    name = "BRRIP"

    def __init__(self, num_sets: int, ways: int, seed: int = 0) -> None:
        super().__init__(num_sets, ways)
        self._rng = np.random.default_rng(seed)

    def on_fill(self, set_idx: int, way: int, pc: int, key: int,
                is_prefetch: bool) -> None:
        if self._rng.random() < 1.0 / 32.0:
            self._rrpv[set_idx, way] = self.MAX_RRPV - 1
        else:
            self._rrpv[set_idx, way] = self.MAX_RRPV


class DRRIPReplacement(ReplacementPolicy):
    """Dynamic RRIP via set dueling between SRRIP and BRRIP."""

    name = "DRRIP"
    PSEL_MAX = 1023

    def __init__(self, num_sets: int, ways: int, duel_sets: int = 32,
                 seed: int = 0) -> None:
        super().__init__(num_sets, ways)
        self._srrip = SRRIPReplacement(num_sets, ways)
        self._brrip = BRRIPReplacement(num_sets, ways, seed=seed)
        # RRPV state must be shared: delegate storage to one array.
        self._brrip._rrpv = self._srrip._rrpv
        duel_sets = min(duel_sets, max(1, num_sets // 2))
        stride = max(1, num_sets // (2 * duel_sets))
        self._leader_srrip = set(list(range(0, num_sets, 2 * stride))[:duel_sets])
        self._leader_brrip = set(list(range(stride, num_sets, 2 * stride))[:duel_sets])
        self._psel = self.PSEL_MAX // 2

    def _policy_for(self, set_idx: int) -> ReplacementPolicy:
        if set_idx in self._leader_srrip:
            return self._srrip
        if set_idx in self._leader_brrip:
            return self._brrip
        return self._srrip if self._psel >= self.PSEL_MAX // 2 else self._brrip

    def on_hit(self, set_idx: int, way: int, pc: int, key: int) -> None:
        self._srrip.on_hit(set_idx, way, pc, key)

    def on_fill(self, set_idx: int, way: int, pc: int, key: int,
                is_prefetch: bool) -> None:
        # Leader-set misses steer PSEL toward the other policy.
        if set_idx in self._leader_srrip:
            self._psel = max(0, self._psel - 1)
        elif set_idx in self._leader_brrip:
            self._psel = min(self.PSEL_MAX, self._psel + 1)
        self._policy_for(set_idx).on_fill(set_idx, way, pc, key, is_prefetch)

    def victim(self, set_idx: int, pc: int, key: int) -> int:
        return self._srrip.victim(set_idx, pc, key)


class HawkeyeReplacement(ReplacementPolicy):
    """Hawkeye (simplified): OPTgen-trained PC-binary predictor + RRIP.

    A compact per-set sampler replays recent reuse intervals through a
    windowed occupancy check; the resulting OPT decision trains a
    saturating counter for the *previous* PC that touched the line.
    Friendly insertions get RRPV 0, averse insertions RRPV 7.
    """

    name = "Hawkeye"
    MAX_RRPV = 7

    def __init__(self, num_sets: int, ways: int, history: int = 8) -> None:
        super().__init__(num_sets, ways)
        self._rrpv = np.full((num_sets, ways), self.MAX_RRPV, dtype=np.int8)
        self._counters: Dict[int, int] = defaultdict(lambda: 4)  # 3-bit, init mid
        self._history_window = history * ways
        # Per-set: time cursor + last access (time, pc) per key + occupancy.
        self._set_clock = np.zeros(num_sets, dtype=np.int64)
        self._last_access: List[Dict[int, tuple]] = [dict() for _ in range(num_sets)]
        self._occupancy: List[Dict[int, int]] = [defaultdict(int) for _ in range(num_sets)]

    def _train(self, set_idx: int, pc: int, key: int) -> None:
        clock = int(self._set_clock[set_idx])
        last = self._last_access[set_idx].get(key)
        if last is not None:
            prev_time, prev_pc = last
            if clock - prev_time <= self._history_window:
                occ = self._occupancy[set_idx]
                window = range(prev_time, clock)
                if all(occ[t] < self.ways for t in window):
                    for t in window:
                        occ[t] += 1
                    self._counters[prev_pc] = min(7, self._counters[prev_pc] + 1)
                else:
                    self._counters[prev_pc] = max(0, self._counters[prev_pc] - 1)
        self._last_access[set_idx][key] = (clock, pc)
        self._set_clock[set_idx] += 1
        # Bound sampler memory.
        if len(self._last_access[set_idx]) > 4 * self._history_window:
            horizon = clock - self._history_window
            self._last_access[set_idx] = {
                k: v for k, v in self._last_access[set_idx].items()
                if v[0] >= horizon
            }
            self._occupancy[set_idx] = defaultdict(
                int, {t: c for t, c in self._occupancy[set_idx].items()
                      if t >= horizon}
            )

    def _friendly(self, pc: int) -> bool:
        return self._counters[pc] >= 4

    def on_hit(self, set_idx: int, way: int, pc: int, key: int) -> None:
        self._train(set_idx, pc, key)
        self._rrpv[set_idx, way] = 0 if self._friendly(pc) else self.MAX_RRPV

    def on_fill(self, set_idx: int, way: int, pc: int, key: int,
                is_prefetch: bool) -> None:
        self._train(set_idx, pc, key)
        if self._friendly(pc) and not is_prefetch:
            # Age friendly peers so old friendly lines remain evictable.
            row = self._rrpv[set_idx]
            row[(row < self.MAX_RRPV - 1)] += 1
            self._rrpv[set_idx, way] = 0
        else:
            self._rrpv[set_idx, way] = self.MAX_RRPV

    def victim(self, set_idx: int, pc: int, key: int) -> int:
        row = self._rrpv[set_idx]
        averse = np.nonzero(row == self.MAX_RRPV)[0]
        if averse.size:
            return int(averse[0])
        return int(np.argmax(row))


class MockingjayReplacement(ReplacementPolicy):
    """Mockingjay (simplified): predicted estimated-time-to-reuse eviction.

    Learns an EWMA of reuse distances per PC from observed reuses and
    evicts the line with the largest remaining predicted time to reuse.
    """

    name = "Mockingjay"

    def __init__(self, num_sets: int, ways: int, ewma: float = 0.3) -> None:
        super().__init__(num_sets, ways)
        self._ewma = ewma
        self._pred_rd: Dict[int, float] = {}
        self._fill_time = np.zeros((num_sets, ways), dtype=np.int64)
        self._line_pred = np.full((num_sets, ways), 1e9, dtype=np.float64)
        self._last_seen: Dict[int, int] = {}
        self._clock = 0

    def _observe(self, pc: int, key: int) -> None:
        self._clock += 1
        prev = self._last_seen.get(key)
        if prev is not None:
            distance = self._clock - prev
            old = self._pred_rd.get(pc)
            self._pred_rd[pc] = (
                distance if old is None
                else (1 - self._ewma) * old + self._ewma * distance
            )
        self._last_seen[key] = self._clock
        if len(self._last_seen) > 100_000:
            horizon = self._clock - 50_000
            self._last_seen = {k: t for k, t in self._last_seen.items()
                               if t >= horizon}

    def _predict(self, pc: int) -> float:
        return self._pred_rd.get(pc, 1e9)

    def on_hit(self, set_idx: int, way: int, pc: int, key: int) -> None:
        self._observe(pc, key)
        self._fill_time[set_idx, way] = self._clock
        self._line_pred[set_idx, way] = self._predict(pc)

    def on_fill(self, set_idx: int, way: int, pc: int, key: int,
                is_prefetch: bool) -> None:
        self._observe(pc, key)
        self._fill_time[set_idx, way] = self._clock
        self._line_pred[set_idx, way] = self._predict(pc)

    def victim(self, set_idx: int, pc: int, key: int) -> int:
        age = self._clock - self._fill_time[set_idx]
        remaining = self._line_pred[set_idx] - age
        return int(np.argmax(remaining))


class PredictorReplacement(ReplacementPolicy):
    """Hawkeye-style insertion driven by an external friendliness oracle.

    ``predict(key, pc)`` returns True when the line is cache-friendly.
    This is how RecMG's caching model participates in the set-associative
    comparison (the "CM" strategy of Fig. 15 and 19).
    """

    name = "CM"
    MAX_RRPV = 7

    def __init__(self, num_sets: int, ways: int,
                 predict: Callable[[int, int], bool]) -> None:
        super().__init__(num_sets, ways)
        self._predict = predict
        self._rrpv = np.full((num_sets, ways), self.MAX_RRPV, dtype=np.int8)

    def on_hit(self, set_idx: int, way: int, pc: int, key: int) -> None:
        self._rrpv[set_idx, way] = 0 if self._predict(key, pc) else self.MAX_RRPV

    def on_fill(self, set_idx: int, way: int, pc: int, key: int,
                is_prefetch: bool) -> None:
        if self._predict(key, pc):
            row = self._rrpv[set_idx]
            row[(row < self.MAX_RRPV - 1)] += 1
            self._rrpv[set_idx, way] = 0
        else:
            self._rrpv[set_idx, way] = self.MAX_RRPV

    def victim(self, set_idx: int, pc: int, key: int) -> int:
        row = self._rrpv[set_idx]
        averse = np.nonzero(row == self.MAX_RRPV)[0]
        if averse.size:
            return int(averse[0])
        return int(np.argmax(row))
