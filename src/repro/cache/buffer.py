"""Priority-managed GPU buffer (paper Algorithms 1 and 2).

RecMG co-manages the GPU buffer with two models: the caching model
assigns each recently accessed vector a 1-bit priority (added to
``eviction_speed``), and the prefetch model inserts vectors at priority
``eviction_speed``.  Eviction (Algorithm 2) selects the entry with the
lowest priority and then *ages* every entry by decrementing its priority
(floored at zero), mimicking RRIP.

Two implementations are provided:

* :class:`PriorityBuffer` — the literal O(n)-per-eviction transcription
  of Algorithm 2; easy to audit, used as the reference in tests.
* :class:`FastPriorityBuffer` — O(log n) eviction.  Aging by a global
  decrement is represented implicitly: each entry stores the *age at
  which its priority reaches zero* (``expiry = age_now + priority``),
  so ``effective_priority = max(0, expiry - age_now)``.  A lazy min-heap
  ordered by (expiry, seqno) plus a lazy min-heap of expired entries
  ordered by seqno reproduce exactly the reference victim choice
  (lowest effective priority, oldest insertion wins ties).  Heap pushes
  are deferred: updates land in the entry table plus a dirty set and
  are flushed to the heaps only when an eviction actually needs them,
  so a key touched many times between evictions costs one push.
  :meth:`put_batch` additionally collapses a whole run of touches into
  one store per unique key with exact seqno semantics.

A property-based test asserts trace-level equivalence of the two.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np


class PriorityBuffer:
    """Reference implementation of Algorithms 1–2 (O(n) eviction)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._priority: Dict[int, int] = {}
        self._seqno: Dict[int, int] = {}
        self._next_seq = 0
        self._min_seq = 0

    def __contains__(self, key: int) -> bool:
        return key in self._priority

    def __len__(self) -> int:
        return len(self._priority)

    def keys(self) -> Iterator[int]:
        return iter(self._priority)

    def priority_of(self, key: int) -> int:
        return self._priority[key]

    @property
    def is_full(self) -> bool:
        return len(self._priority) >= self.capacity

    def insert(self, key: int, priority: int) -> None:
        """Insert (or refresh) ``key``; caller must ensure space."""
        if key not in self._priority and self.is_full:
            raise RuntimeError("buffer full; evict first")
        self._priority[key] = priority
        self._seqno[key] = self._next_seq
        self._next_seq += 1

    def set_priority(self, key: int, priority: int) -> None:
        """Update priority; also refreshes recency (LRU tie-breaking)."""
        if key not in self._priority:
            raise KeyError(key)
        self._priority[key] = priority
        self._seqno[key] = self._next_seq
        self._next_seq += 1

    def demote(self, key: int) -> None:
        """Mark ``key`` as evict-next: priority 0, older than everything.

        Used for cache-averse vectors (caching-model bit 0) — the
        fully-associative analogue of Hawkeye's distant insertion.
        """
        if key not in self._priority:
            raise KeyError(key)
        self._priority[key] = 0
        self._min_seq -= 1
        self._seqno[key] = self._min_seq

    def put_batch(self, keys: Sequence[int], priority: int) -> None:
        """Equivalent to insert-or-``set_priority`` for each key in order.

        The reference implementation simply loops; the fast buffer
        overrides this with a bulk version.  Raises ``RuntimeError``
        (like :meth:`insert`) before mutating anything if the new keys
        exceed the free space.
        """
        key_list = (keys.tolist() if isinstance(keys, np.ndarray)
                    else [int(key) for key in keys])
        new = {key for key in key_list if key not in self._priority}
        if len(self._priority) + len(new) > self.capacity:
            raise RuntimeError("buffer full; evict first")
        for key in key_list:
            if key in self._priority:
                self.set_priority(key, priority)
            else:
                self.insert(key, priority)

    def evict_one(self) -> int:
        """Algorithm 2: evict min-(priority, seqno) entry, age the rest."""
        if not self._priority:
            raise RuntimeError("cannot evict from an empty buffer")
        victim = min(self._priority,
                     key=lambda k: (self._priority[k], self._seqno[k]))
        for key in self._priority:
            self._priority[key] = max(0, self._priority[key] - 1)
        del self._priority[victim]
        del self._seqno[victim]
        return victim


class FastPriorityBuffer:
    """Heap-based buffer equivalent to :class:`PriorityBuffer`.

    ``_age`` is the count of evictions so far; an entry set to priority
    ``p`` at age ``a`` has effective priority ``max(0, (a + p) - _age)``.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        # key -> (expiry, seqno, version)
        self._entries: Dict[int, Tuple[int, int, int]] = {}
        self._live_heap: List[Tuple[int, int, int, int]] = []  # (expiry, seq, ver, key)
        self._zero_heap: List[Tuple[int, int, int, int]] = []  # (seq, ver, expiry, key)
        # Keys updated since the last eviction whose heap entries have
        # not been pushed yet: heap pushes are deferred to eviction
        # time, so a key touched many times between evictions (the hot
        # serving pattern) costs one push instead of one per touch.
        self._dirty: set = set()
        self._age = 0
        self._next_seq = 0
        self._min_seq = 0
        self._version = 0

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterator[int]:
        return iter(self._entries)

    def priority_of(self, key: int) -> int:
        expiry, _, _ = self._entries[key]
        return max(0, expiry - self._age)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def insert(self, key: int, priority: int) -> None:
        if key in self._entries:
            self.set_priority(key, priority)
            return
        if self.is_full:
            raise RuntimeError("buffer full; evict first")
        seq = self._next_seq
        self._next_seq += 1
        self._store(key, priority, seq)

    def set_priority(self, key: int, priority: int) -> None:
        """Update priority; also refreshes recency (LRU tie-breaking)."""
        if key not in self._entries:
            raise KeyError(key)
        seq = self._next_seq
        self._next_seq += 1
        self._store(key, priority, seq)

    def demote(self, key: int) -> None:
        """Mark ``key`` as evict-next: priority 0, older than everything."""
        if key not in self._entries:
            raise KeyError(key)
        self._min_seq -= 1
        self._store(key, 0, self._min_seq)

    def put_batch(self, keys: Sequence[int], priority: int) -> None:
        """Bulk insert-or-``set_priority``, exactly equivalent to calling
        the scalar operations for each key in order.

        Only each key's *last* occurrence matters for its final
        (priority, seqno) pair, so one heap push per unique key suffices
        while ``_next_seq`` still advances by the full batch length —
        subsequent evictions see the same state a scalar loop would
        produce.  This is the primitive behind the manager's bulk
        demand-serving pre-pass, so it deliberately avoids per-key numpy
        round-trips (batches are often runs of a handful of hits).
        """
        key_list = (keys.tolist() if isinstance(keys, np.ndarray)
                    else [int(key) for key in keys])
        length = len(key_list)
        if length == 0:
            return
        last_pos: Dict[int, int] = {}
        for pos, key in enumerate(key_list):
            last_pos[key] = pos
        entries = self._entries
        new = sum(1 for key in last_pos if key not in entries)
        if len(entries) + new > self.capacity:
            raise RuntimeError("buffer full; evict first")
        base = self._next_seq
        store = self._store
        for key, pos in last_pos.items():
            store(key, priority, base + pos)
        self._next_seq = base + length

    def _store(self, key: int, priority: int, seq: int) -> None:
        self._version += 1
        self._entries[key] = (self._age + priority, seq, self._version)
        self._dirty.add(key)

    def _flush_dirty(self) -> None:
        """Push the latest snapshot of every dirty key onto its heap.

        Deferred from :meth:`_store`: only the snapshot current at
        eviction time matters for victim selection, so intermediate
        updates never touch a heap.
        """
        age = self._age
        entries = self._entries
        for key in self._dirty:
            entry = entries.get(key)
            if entry is None:
                continue
            expiry, seq, ver = entry
            if expiry <= age:
                heapq.heappush(self._zero_heap, (seq, ver, expiry, key))
            else:
                heapq.heappush(self._live_heap, (expiry, seq, ver, key))
        self._dirty.clear()

    def evict_one(self) -> int:
        if not self._entries:
            raise RuntimeError("cannot evict from an empty buffer")
        if self._dirty:
            self._flush_dirty()
        # Migrate entries whose priority has decayed to zero.
        while self._live_heap and self._live_heap[0][0] <= self._age:
            expiry, seq, ver, key = heapq.heappop(self._live_heap)
            entry = self._entries.get(key)
            if entry is not None and entry == (expiry, seq, ver):
                heapq.heappush(self._zero_heap, (seq, ver, expiry, key))

        victim = self._pop_valid(self._zero_heap, zero=True)
        if victim is None:
            victim = self._pop_valid(self._live_heap, zero=False)
        if victim is None:
            raise RuntimeError("heap inconsistency: no valid victim found")
        del self._entries[victim]
        self._age += 1  # global aging: everyone's effective priority -1
        return victim

    def _pop_valid(self, heap: List[Tuple[int, int, int, int]],
                   zero: bool) -> Optional[int]:
        while heap:
            if zero:
                seq, ver, expiry, key = heap[0]
            else:
                expiry, seq, ver, key = heap[0]
            entry = self._entries.get(key)
            if entry is not None and entry == (expiry, seq, ver):
                heapq.heappop(heap)
                return key
            heapq.heappop(heap)  # stale
        return None
