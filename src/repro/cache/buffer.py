"""Priority-managed GPU buffer (paper Algorithms 1 and 2).

RecMG co-manages the GPU buffer with two models: the caching model
assigns each recently accessed vector a 1-bit priority (added to
``eviction_speed``), and the prefetch model inserts vectors at priority
``eviction_speed``.  Eviction (Algorithm 2) selects the entry with the
lowest priority and then *ages* every entry by decrementing its priority
(floored at zero), mimicking RRIP.

Two implementations are provided:

* :class:`PriorityBuffer` — the literal O(n)-per-eviction transcription
  of Algorithm 2; easy to audit, used as the reference in tests.
* :class:`FastPriorityBuffer` — O(log n) eviction.  Aging by a global
  decrement is represented implicitly: each entry stores the *age at
  which its priority reaches zero* (``expiry = age_now + priority``),
  so ``effective_priority = max(0, expiry - age_now)``.  A lazy min-heap
  ordered by (expiry, seqno) plus a lazy min-heap of expired entries
  ordered by seqno reproduce exactly the reference victim choice
  (lowest effective priority, oldest insertion wins ties).

A property-based test asserts trace-level equivalence of the two.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple


class PriorityBuffer:
    """Reference implementation of Algorithms 1–2 (O(n) eviction)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._priority: Dict[int, int] = {}
        self._seqno: Dict[int, int] = {}
        self._next_seq = 0
        self._min_seq = 0

    def __contains__(self, key: int) -> bool:
        return key in self._priority

    def __len__(self) -> int:
        return len(self._priority)

    def keys(self) -> Iterator[int]:
        return iter(self._priority)

    def priority_of(self, key: int) -> int:
        return self._priority[key]

    @property
    def is_full(self) -> bool:
        return len(self._priority) >= self.capacity

    def insert(self, key: int, priority: int) -> None:
        """Insert (or refresh) ``key``; caller must ensure space."""
        if key not in self._priority and self.is_full:
            raise RuntimeError("buffer full; evict first")
        self._priority[key] = priority
        self._seqno[key] = self._next_seq
        self._next_seq += 1

    def set_priority(self, key: int, priority: int) -> None:
        """Update priority; also refreshes recency (LRU tie-breaking)."""
        if key not in self._priority:
            raise KeyError(key)
        self._priority[key] = priority
        self._seqno[key] = self._next_seq
        self._next_seq += 1

    def demote(self, key: int) -> None:
        """Mark ``key`` as evict-next: priority 0, older than everything.

        Used for cache-averse vectors (caching-model bit 0) — the
        fully-associative analogue of Hawkeye's distant insertion.
        """
        if key not in self._priority:
            raise KeyError(key)
        self._priority[key] = 0
        self._min_seq -= 1
        self._seqno[key] = self._min_seq

    def evict_one(self) -> int:
        """Algorithm 2: evict min-(priority, seqno) entry, age the rest."""
        if not self._priority:
            raise RuntimeError("cannot evict from an empty buffer")
        victim = min(self._priority,
                     key=lambda k: (self._priority[k], self._seqno[k]))
        for key in self._priority:
            self._priority[key] = max(0, self._priority[key] - 1)
        del self._priority[victim]
        del self._seqno[victim]
        return victim


class FastPriorityBuffer:
    """Heap-based buffer equivalent to :class:`PriorityBuffer`.

    ``_age`` is the count of evictions so far; an entry set to priority
    ``p`` at age ``a`` has effective priority ``max(0, (a + p) - _age)``.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        # key -> (expiry, seqno, version)
        self._entries: Dict[int, Tuple[int, int, int]] = {}
        self._live_heap: List[Tuple[int, int, int, int]] = []  # (expiry, seq, ver, key)
        self._zero_heap: List[Tuple[int, int, int, int]] = []  # (seq, ver, expiry, key)
        self._age = 0
        self._next_seq = 0
        self._min_seq = 0
        self._version = 0

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterator[int]:
        return iter(self._entries)

    def priority_of(self, key: int) -> int:
        expiry, _, _ = self._entries[key]
        return max(0, expiry - self._age)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def insert(self, key: int, priority: int) -> None:
        if key in self._entries:
            self.set_priority(key, priority)
            return
        if self.is_full:
            raise RuntimeError("buffer full; evict first")
        seq = self._next_seq
        self._next_seq += 1
        self._store(key, priority, seq)

    def set_priority(self, key: int, priority: int) -> None:
        """Update priority; also refreshes recency (LRU tie-breaking)."""
        if key not in self._entries:
            raise KeyError(key)
        seq = self._next_seq
        self._next_seq += 1
        self._store(key, priority, seq)

    def demote(self, key: int) -> None:
        """Mark ``key`` as evict-next: priority 0, older than everything."""
        if key not in self._entries:
            raise KeyError(key)
        self._min_seq -= 1
        self._store(key, 0, self._min_seq)

    def _store(self, key: int, priority: int, seq: int) -> None:
        self._version += 1
        expiry = self._age + priority
        self._entries[key] = (expiry, seq, self._version)
        if priority <= 0:
            heapq.heappush(self._zero_heap, (seq, self._version, expiry, key))
        else:
            heapq.heappush(self._live_heap, (expiry, seq, self._version, key))

    def evict_one(self) -> int:
        if not self._entries:
            raise RuntimeError("cannot evict from an empty buffer")
        # Migrate entries whose priority has decayed to zero.
        while self._live_heap and self._live_heap[0][0] <= self._age:
            expiry, seq, ver, key = heapq.heappop(self._live_heap)
            entry = self._entries.get(key)
            if entry is not None and entry == (expiry, seq, ver):
                heapq.heappush(self._zero_heap, (seq, ver, expiry, key))

        victim = self._pop_valid(self._zero_heap, zero=True)
        if victim is None:
            victim = self._pop_valid(self._live_heap, zero=False)
        if victim is None:
            raise RuntimeError("heap inconsistency: no valid victim found")
        del self._entries[victim]
        self._age += 1  # global aging: everyone's effective priority -1
        return victim

    def _pop_valid(self, heap: List[Tuple[int, int, int, int]],
                   zero: bool) -> Optional[int]:
        while heap:
            if zero:
                seq, ver, expiry, key = heap[0]
            else:
                expiry, seq, ver, key = heap[0]
            entry = self._entries.get(key)
            if entry is not None and entry == (expiry, seq, ver):
                heapq.heappop(heap)
                return key
            heapq.heappop(heap)  # stale
        return None
