"""Priority-managed GPU buffer (paper Algorithms 1 and 2).

RecMG co-manages the GPU buffer with two models: the caching model
assigns each recently accessed vector a 1-bit priority (added to
``eviction_speed``), and the prefetch model inserts vectors at priority
``eviction_speed``.  Eviction (Algorithm 2) selects the entry with the
lowest priority and then *ages* every entry by decrementing its priority
(floored at zero), mimicking RRIP.

Three interchangeable backends implement the buffer protocol
(``insert`` / ``set_priority`` / ``demote`` / ``put_batch`` /
``evict_one`` / ``evict_batch`` / ``residency_map``); pick one with
:func:`make_buffer` or the ``buffer_impl=`` knob threaded through
:class:`repro.core.manager.RecMGManager`, ``repro.dlrm.inference`` and
``repro.prefetch.harness``:

* :class:`PriorityBuffer` (``"reference"``) — the literal
  O(n)-per-eviction transcription of Algorithm 2; easy to audit, used
  as the reference in tests.  The manager serves it through the scalar
  audit loop.
* :class:`FastPriorityBuffer` (``"fast"``, the manager's default) —
  *exact* semantics at O(log n) per eviction.  Aging by a global
  decrement is represented implicitly: each entry stores the *age at
  which its priority reaches zero* (``expiry = age_now + priority``),
  so ``effective_priority = max(0, expiry - age_now)``.  A lazy min-heap
  ordered by (expiry, seqno) plus a lazy min-heap of expired entries
  ordered by seqno reproduce exactly the reference victim choice (see
  *Eviction order* below).  Heap pushes are deferred: updates land in
  the entry table plus a dirty set and are flushed to the heaps only
  when an eviction actually needs them, so a key touched many times
  between evictions costs one push.  :meth:`put_batch` additionally
  collapses a whole run of touches into one store per unique key with
  exact seqno semantics.
* :class:`ClockBuffer` (``"clock"``) — *approximate* priorities in
  numpy slot arrays (key / priority / valid) swept by a clock hand.
  :meth:`ClockBuffer.evict_batch` reclaims many slots per sweep: it
  harvests priority-zero slots in hand order and, when a sweep runs
  dry, ages every survivor by the *minimum surviving priority* in a
  single vectorized subtraction (one aging step per sweep — the CLOCK
  approximation of Algorithm 2's aging; subtracting the minimum at
  once yields provably identical victims to repeated −1 passes, since
  intermediate passes harvest nothing).  Within one call, victims come
  out in nondecreasing pre-call priority and never outrank a survivor
  (ties broken by hand position instead of insertion order).  The
  manager picks it for throughput-bound serving: whole guaranteed-miss
  runs pre-reclaim space with one ``evict_batch`` call instead of
  per-key heap pops, trading exact victim order for array-speed
  eviction.  Constructed with ``key_space=N`` the backend goes
  *array-native*: the key→slot dict is replaced by a dense ``id →
  slot`` vector plus a :class:`repro.cache.residency.ResidencyIndex`
  bitmap, so bulk membership and ``put_batch`` run as numpy gathers
  and scatters with no per-key dict traffic (ids outside ``[0, N)``
  spill to a side dict, preserving correctness for unseen keys).

**Bulk residency / priority protocol.**  All backends answer
``contains_batch(keys) -> bool[:]`` (residency of a whole segment in
one call — a bitmap gather on the dense clock backend, a dict sweep on
the exact backends) and accept ``set_priority_batch(keys, priority)``
and ``demote_batch(keys)`` for chunk-boundary priority writes.  On the
exact backends the batch forms are defined as the scalar operations
applied in order (seqno semantics preserved); on the clock backend
they are single vectorized scatters.  The serving engines in
:mod:`repro.core.manager` classify whole segments through this
protocol instead of per-key dict loops.

**Eviction order (exact backends).**  ``evict_one`` removes the entry
minimizing the pair ``(effective_priority, seqno)``.  Seqnos are unique
by construction — ``insert``/``set_priority``/``put_batch`` draw fresh
increasing seqnos, ``demote`` draws fresh *decreasing* negative seqnos —
so the pair admits no ties and the victim is fully determined by the
operation history, never by dict/heap internals.  Consequences both
exact backends honor (regression-tested in ``tests/test_buffer.py``):
equal-priority entries evict oldest-touch-first (LRU), and demoted
entries evict before everything else in *reverse demote order* (the
most recently demoted key holds the smallest seqno).

A property-based test asserts trace-level equivalence of the exact
pair, and a differential fuzz suite
(``tests/test_buffer_differential.py``) drives all backends — including
the dense (``key_space``) clock mode against the dict mode — through
randomized op sequences, checking bitmap/dict residency agreement after
every operation.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .residency import ResidencyIndex


def _as_key_list(keys: Sequence[int]) -> List[int]:
    return (keys.tolist() if isinstance(keys, np.ndarray)
            else [int(key) for key in keys])


def _dict_contains_batch(entries: Dict, keys: Sequence[int]) -> np.ndarray:
    """Shared dict-backed ``contains_batch``: residency of each key as
    a boolean array (the exact backends' and the dict-mode clock's
    answer to the bulk protocol)."""
    seq = keys.tolist() if isinstance(keys, np.ndarray) else keys
    return np.fromiter((key in entries for key in seq),
                       dtype=bool, count=len(seq))


def reclaim_batch_space(buffer, uniq: np.ndarray, new_count: int,
                        on_victims=None) -> Tuple[int, bool]:
    """Evict until ``len(buffer) + new_count <= capacity`` (the
    batched-reclaim core shared by the manager's clock engine and
    ``dlrm.inference.BufferClassifier``).

    ``uniq`` is the *sorted* distinct key set of the segment being
    served and ``new_count`` how many of them are currently
    non-resident; the caller must guarantee ``uniq.size <= capacity``
    (else the loop could demand more victims than are resident).  A
    victim that is itself a segment key becomes one more distinct miss
    — victims are unique and were resident, so each adds at most one,
    and a sorted-``uniq`` searchsorted beats re-gathering the whole
    segment.  ``on_victims`` (if given) observes every ``evict_batch``
    result, in order, for the caller's accounting.  Returns the final
    ``new_count`` and whether any victim invalidated the caller's
    residency snapshot.
    """
    stale = False
    while True:
        needed = len(buffer) + new_count - buffer.capacity
        if needed <= 0:
            return new_count, stale
        victims = buffer.evict_batch(needed)
        if on_victims is not None:
            on_victims(victims)
        varr = np.asarray(victims, dtype=np.int64)
        pos = np.minimum(np.searchsorted(uniq, varr), uniq.size - 1)
        evicted_here = int(np.count_nonzero(uniq[pos] == varr))
        if evicted_here:
            new_count += evicted_here
            stale = True


class PriorityBuffer:
    """Reference implementation of Algorithms 1–2 (O(n) eviction)."""

    #: Exact Algorithm 2 semantics (victims follow the documented
    #: (effective_priority, seqno) total order).
    approximate = False

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._priority: Dict[int, int] = {}
        self._seqno: Dict[int, int] = {}
        self._next_seq = 0
        self._min_seq = 0

    def __contains__(self, key: int) -> bool:
        return key in self._priority

    def __len__(self) -> int:
        return len(self._priority)

    def keys(self) -> Iterator[int]:
        return iter(self._priority)

    def residency_map(self) -> Dict[int, int]:
        """Live read-only view keyed by resident key (for bulk
        membership classification; values are backend-internal)."""
        return self._priority

    def contains_batch(self, keys: Sequence[int]) -> np.ndarray:
        """Residency of each key as a boolean array (dict-backed)."""
        return _dict_contains_batch(self._priority, keys)

    def priority_of(self, key: int) -> int:
        return self._priority[key]

    @property
    def is_full(self) -> bool:
        return len(self._priority) >= self.capacity

    def insert(self, key: int, priority: int) -> None:
        """Insert (or refresh) ``key``; caller must ensure space."""
        if key not in self._priority and self.is_full:
            raise RuntimeError("buffer full; evict first")
        self._priority[key] = priority
        self._seqno[key] = self._next_seq
        self._next_seq += 1

    def set_priority(self, key: int, priority: int) -> None:
        """Update priority; also refreshes recency (LRU tie-breaking)."""
        if key not in self._priority:
            raise KeyError(key)
        self._priority[key] = priority
        self._seqno[key] = self._next_seq
        self._next_seq += 1

    def set_priority_batch(self, keys: Sequence[int], priority: int) -> None:
        """Scalar :meth:`set_priority` per key, in order (exact seqno
        semantics); every key must be resident."""
        for key in _as_key_list(keys):
            self.set_priority(key, priority)

    def demote(self, key: int) -> None:
        """Mark ``key`` as evict-next: priority 0, older than everything.

        Used for cache-averse vectors (caching-model bit 0) — the
        fully-associative analogue of Hawkeye's distant insertion.
        """
        if key not in self._priority:
            raise KeyError(key)
        self._priority[key] = 0
        self._min_seq -= 1
        self._seqno[key] = self._min_seq

    def demote_batch(self, keys: Sequence[int]) -> None:
        """Scalar :meth:`demote` per key, in order (reverse-demote
        eviction order preserved)."""
        for key in _as_key_list(keys):
            self.demote(key)

    def put_batch(self, keys: Sequence[int], priority: int) -> None:
        """Equivalent to insert-or-``set_priority`` for each key in order.

        The reference implementation simply loops; the fast buffer
        overrides this with a bulk version.  Raises ``RuntimeError``
        (like :meth:`insert`) before mutating anything if the new keys
        exceed the free space.
        """
        key_list = _as_key_list(keys)
        new = {key for key in key_list if key not in self._priority}
        if len(self._priority) + len(new) > self.capacity:
            raise RuntimeError("buffer full; evict first")
        for key in key_list:
            if key in self._priority:
                self.set_priority(key, priority)
            else:
                self.insert(key, priority)

    def evict_one(self) -> int:
        """Algorithm 2: evict min-(priority, seqno) entry, age the rest.

        Tie-breaking contract (see module docstring): seqnos are unique,
        so the minimum of the ``(priority, seqno)`` pair is unique — the
        victim never depends on dict iteration order, and
        :class:`FastPriorityBuffer` makes the identical choice.
        """
        if not self._priority:
            raise RuntimeError("cannot evict from an empty buffer")
        victim = min(self._priority,
                     key=lambda k: (self._priority[k], self._seqno[k]))
        for key in self._priority:
            self._priority[key] = max(0, self._priority[key] - 1)
        del self._priority[victim]
        del self._seqno[victim]
        return victim

    def evict_batch(self, n: int) -> List[int]:
        """Evict ``n`` entries; exactly ``n`` consecutive
        :meth:`evict_one` calls (aging applies between victims)."""
        count = int(n)
        if count <= 0:
            return []
        if count > len(self._priority):
            raise RuntimeError("cannot evict more entries than resident")
        return [self.evict_one() for _ in range(count)]


class FastPriorityBuffer:
    """Heap-based buffer equivalent to :class:`PriorityBuffer`.

    ``_age`` is the count of evictions so far; an entry set to priority
    ``p`` at age ``a`` has effective priority ``max(0, (a + p) - _age)``.

    Victim choice follows the same documented ``(effective_priority,
    seqno)`` total order as the reference: the live heap orders by
    ``(expiry, seqno)`` — equal effective priorities imply equal
    expiries, so the seqno tie-break is identical — and the zero heap
    orders the floored entries purely by seqno, which is the reference
    order among priority-zero entries.
    """

    #: Exact Algorithm 2 semantics (victims follow the documented
    #: (effective_priority, seqno) total order).
    approximate = False

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        # key -> (expiry, seqno, version)
        self._entries: Dict[int, Tuple[int, int, int]] = {}
        self._live_heap: List[Tuple[int, int, int, int]] = []  # (expiry, seq, ver, key)
        self._zero_heap: List[Tuple[int, int, int, int]] = []  # (seq, ver, expiry, key)
        # Keys updated since the last eviction whose heap entries have
        # not been pushed yet: heap pushes are deferred to eviction
        # time, so a key touched many times between evictions (the hot
        # serving pattern) costs one push instead of one per touch.
        self._dirty: set = set()
        self._age = 0
        self._next_seq = 0
        self._min_seq = 0
        self._version = 0

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterator[int]:
        return iter(self._entries)

    def residency_map(self) -> Dict[int, Tuple[int, int, int]]:
        """Live read-only view keyed by resident key (for bulk
        membership classification; values are backend-internal)."""
        return self._entries

    def contains_batch(self, keys: Sequence[int]) -> np.ndarray:
        """Residency of each key as a boolean array (dict-backed)."""
        return _dict_contains_batch(self._entries, keys)

    def priority_of(self, key: int) -> int:
        expiry, _, _ = self._entries[key]
        return max(0, expiry - self._age)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def insert(self, key: int, priority: int) -> None:
        if key in self._entries:
            self.set_priority(key, priority)
            return
        if self.is_full:
            raise RuntimeError("buffer full; evict first")
        seq = self._next_seq
        self._next_seq += 1
        self._store(key, priority, seq)

    def set_priority(self, key: int, priority: int) -> None:
        """Update priority; also refreshes recency (LRU tie-breaking)."""
        if key not in self._entries:
            raise KeyError(key)
        seq = self._next_seq
        self._next_seq += 1
        self._store(key, priority, seq)

    def set_priority_batch(self, keys: Sequence[int], priority: int) -> None:
        """Scalar :meth:`set_priority` per key, in order (exact seqno
        semantics); every key must be resident."""
        for key in _as_key_list(keys):
            self.set_priority(key, priority)

    def demote(self, key: int) -> None:
        """Mark ``key`` as evict-next: priority 0, older than everything."""
        if key not in self._entries:
            raise KeyError(key)
        self._min_seq -= 1
        self._store(key, 0, self._min_seq)

    def demote_batch(self, keys: Sequence[int]) -> None:
        """Scalar :meth:`demote` per key, in order (reverse-demote
        eviction order preserved)."""
        for key in _as_key_list(keys):
            self.demote(key)

    def put_batch(self, keys: Sequence[int], priority: int) -> None:
        """Bulk insert-or-``set_priority``, exactly equivalent to calling
        the scalar operations for each key in order.

        Only each key's *last* occurrence matters for its final
        (priority, seqno) pair, so one heap push per unique key suffices
        while ``_next_seq`` still advances by the full batch length —
        subsequent evictions see the same state a scalar loop would
        produce.  This is the primitive behind the manager's bulk
        demand-serving pre-pass, so it deliberately avoids per-key numpy
        round-trips (batches are often runs of a handful of hits).
        """
        key_list = _as_key_list(keys)
        length = len(key_list)
        if length == 0:
            return
        last_pos: Dict[int, int] = {}
        for pos, key in enumerate(key_list):
            last_pos[key] = pos
        entries = self._entries
        new = sum(1 for key in last_pos if key not in entries)
        if len(entries) + new > self.capacity:
            raise RuntimeError("buffer full; evict first")
        base = self._next_seq
        store = self._store
        for key, pos in last_pos.items():
            store(key, priority, base + pos)
        self._next_seq = base + length

    def _store(self, key: int, priority: int, seq: int) -> None:
        self._version += 1
        self._entries[key] = (self._age + priority, seq, self._version)
        self._dirty.add(key)

    def _flush_dirty(self) -> None:
        """Push the latest snapshot of every dirty key onto its heap.

        Deferred from :meth:`_store`: only the snapshot current at
        eviction time matters for victim selection, so intermediate
        updates never touch a heap.
        """
        age = self._age
        entries = self._entries
        for key in self._dirty:
            entry = entries.get(key)
            if entry is None:
                continue
            expiry, seq, ver = entry
            if expiry <= age:
                heapq.heappush(self._zero_heap, (seq, ver, expiry, key))
            else:
                heapq.heappush(self._live_heap, (expiry, seq, ver, key))
        self._dirty.clear()

    def evict_one(self) -> int:
        if not self._entries:
            raise RuntimeError("cannot evict from an empty buffer")
        if self._dirty:
            self._flush_dirty()
        # Migrate entries whose priority has decayed to zero.
        while self._live_heap and self._live_heap[0][0] <= self._age:
            expiry, seq, ver, key = heapq.heappop(self._live_heap)
            entry = self._entries.get(key)
            if entry is not None and entry == (expiry, seq, ver):
                heapq.heappush(self._zero_heap, (seq, ver, expiry, key))

        victim = self._pop_valid(self._zero_heap, zero=True)
        if victim is None:
            victim = self._pop_valid(self._live_heap, zero=False)
        if victim is None:
            raise RuntimeError("heap inconsistency: no valid victim found")
        del self._entries[victim]
        self._age += 1  # global aging: everyone's effective priority -1
        return victim

    def evict_batch(self, n: int) -> List[int]:
        """Evict ``n`` entries; exactly ``n`` consecutive
        :meth:`evict_one` calls.  No stores interleave, so the dirty
        set is flushed at most once and the remaining pops run straight
        off the heaps (aging still applies between victims via
        ``_age``)."""
        count = int(n)
        if count <= 0:
            return []
        if count > len(self._entries):
            raise RuntimeError("cannot evict more entries than resident")
        return [self.evict_one() for _ in range(count)]

    def _pop_valid(self, heap: List[Tuple[int, int, int, int]],
                   zero: bool) -> Optional[int]:
        while heap:
            if zero:
                seq, ver, expiry, key = heap[0]
            else:
                expiry, seq, ver, key = heap[0]
            entry = self._entries.get(key)
            if entry is not None and entry == (expiry, seq, ver):
                heapq.heappop(heap)
                return key
            heapq.heappop(heap)  # stale
        return None


class ClockBuffer:
    """Array-backed approximate-priority buffer (CLOCK sweep).

    Entries live in fixed numpy slot arrays (``key`` / ``priority`` /
    ``valid``) turned into a circular list by a hand position.
    ``insert`` fills a free slot, ``set_priority`` writes the slot's
    priority (the multi-bit analogue of CLOCK's reference bit),
    ``demote`` zeroes it.

    Membership bookkeeping has two modes:

    * default (``key_space=None``): a key→slot dict, as any key fits;
    * dense (``key_space=N``): a dense ``id → slot`` int vector plus a
      :class:`~repro.cache.residency.ResidencyIndex` bitmap maintained
      incrementally on every insert/eviction.  ``contains_batch`` is a
      bitmap gather, ``put_batch``/``set_priority_batch`` are pure
      numpy scatters, and ``evict_batch`` clears victims in bulk — no
      per-key dict traffic anywhere on the serving hot path.  Ids
      outside ``[0, N)`` (the manager's unseen-key ids above the
      vocabulary) spill to a side dict; the two modes are behaviorally
      identical (fuzz-checked in ``tests/test_buffer_differential.py``).

    :meth:`evict_batch` is the point of the backend: one call reclaims
    many slots by harvesting priority-zero slots in hand order and,
    whenever a sweep runs dry, aging *every* survivor by the minimum
    surviving priority in a single vectorized subtraction.  Aging
    therefore happens once per full sweep instead of once per eviction
    — the approximation that lets a whole batch of evictions cost
    O(capacity) numpy work rather than O(batch · log n) heap pops —
    and collapsing the aging passes into one subtraction yields
    provably identical victims (intermediate −1 passes harvest
    nothing).  Within one call the victims come out in nondecreasing
    pre-call priority, and no victim has a higher pre-call priority
    than any survivor; among equal priorities the hand position (not
    insertion order) breaks ties.  Those invariants are fuzz-checked in
    ``tests/test_buffer_differential.py``.
    """

    #: Victim order approximates Algorithm 2 (hand-order tie-breaking,
    #: per-sweep aging); the manager must not expect exact-backend
    #: victim equivalence.
    approximate = True

    #: ``make_buffer`` forwards ``key_space=`` to this backend only.
    supports_key_space = True

    def __init__(self, capacity: int,
                 key_space: Optional[int] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._key = np.full(capacity, -1, dtype=np.int64)
        self._prio = np.zeros(capacity, dtype=np.int64)
        self._valid = np.zeros(capacity, dtype=bool)
        # Popping the free list hands out slots 0, 1, 2, ... first.
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self._hand = 0
        if key_space is None:
            self._key_space = 0
            self._slot: Optional[Dict[int, int]] = {}
            self._slot_of: Optional[np.ndarray] = None
            self._slot_over: Optional[Dict[int, int]] = None
            self.residency: Optional[ResidencyIndex] = None
        else:
            if key_space < 1:
                raise ValueError("key_space must be >= 1")
            self._key_space = int(key_space)
            self._slot = None
            self._slot_of = np.full(self._key_space, -1, dtype=np.int64)
            self._slot_over = {}
            self.residency = ResidencyIndex(self._key_space)

    # -- membership bookkeeping (dict vs dense mode) -------------------
    def _slot_for(self, key: int) -> int:
        """Slot of ``key``, or -1 when not resident."""
        if self._slot_of is None:
            return self._slot.get(key, -1)
        if 0 <= key < self._key_space:
            return int(self._slot_of[key])
        return self._slot_over.get(key, -1)

    def _map_add(self, key: int, slot: int) -> None:
        if self._slot_of is None:
            self._slot[key] = slot
            return
        if 0 <= key < self._key_space:
            self._slot_of[key] = slot
        else:
            self._slot_over[key] = slot
        self.residency.add(key)

    def _map_discard_batch(self, victim_keys: np.ndarray) -> None:
        if self._slot_of is None:
            slot_map = self._slot
            for key in victim_keys.tolist():
                del slot_map[key]
            return
        if self._slot_over:
            in_range = ((victim_keys >= 0)
                        & (victim_keys < self._key_space))
            self._slot_of[victim_keys[in_range]] = -1
            over = self._slot_over
            for key in victim_keys[~in_range].tolist():
                del over[key]
        else:
            self._slot_of[victim_keys] = -1
        self.residency.discard_batch(victim_keys)

    # ------------------------------------------------------------------
    def __contains__(self, key: int) -> bool:
        if self._slot_of is None:
            return key in self._slot
        return self._slot_for(int(key)) >= 0

    def __len__(self) -> int:
        return self.capacity - len(self._free)

    def keys(self) -> Iterator[int]:
        return iter(self._key[self._valid].tolist())

    def residency_map(self) -> Dict[int, int]:
        """Read-only key→slot view for membership classification.

        Live in dict mode; a *snapshot* in dense (``key_space``) mode —
        bulk call sites should prefer :meth:`contains_batch`, which is
        always live and array-speed.
        """
        if self._slot_of is None:
            return self._slot
        slots = np.flatnonzero(self._valid)
        return dict(zip(self._key[slots].tolist(), slots.tolist()))

    def contains_batch(self, keys: Sequence[int]) -> np.ndarray:
        """Residency of each key as a boolean array: one bitmap gather
        in dense mode, a dict sweep otherwise."""
        if self.residency is not None:
            return self.residency.contains_batch(
                np.asarray(keys, dtype=np.int64))
        return _dict_contains_batch(self._slot, keys)

    def priority_of(self, key: int) -> int:
        slot = self._slot_for(int(key))
        if slot < 0:
            raise KeyError(key)
        return int(self._prio[slot])

    @property
    def is_full(self) -> bool:
        return not self._free

    def insert(self, key: int, priority: int) -> None:
        """Insert (or refresh) ``key``; caller must ensure space.

        Priorities clamp to >= 0: the sweep harvests exactly the
        priority-zero class, so a negative priority (meaningful to the
        exact backends' seqno order) would otherwise never ripen.
        """
        key = int(key)
        slot = self._slot_for(key)
        if slot >= 0:
            self._prio[slot] = max(0, priority)
            return
        if not self._free:
            raise RuntimeError("buffer full; evict first")
        slot = self._free.pop()
        self._map_add(key, slot)
        self._key[slot] = key
        self._prio[slot] = max(0, priority)
        self._valid[slot] = True

    def set_priority(self, key: int, priority: int) -> None:
        """Update priority, clamped to >= 0 (recency is approximated by
        the hand)."""
        slot = self._slot_for(int(key))
        if slot < 0:
            raise KeyError(key)
        self._prio[slot] = max(0, priority)

    def set_priority_batch(self, keys: Sequence[int], priority: int) -> None:
        """Bulk :meth:`set_priority`: one vectorized scatter in dense
        mode; every key must be resident."""
        arr = np.asarray(keys, dtype=np.int64)
        if arr.size == 0:
            return
        if (self._slot_of is not None
                and arr.min() >= 0 and arr.max() < self._key_space):
            slots = self._slot_of[arr]
            if (slots < 0).any():
                raise KeyError(int(arr[slots < 0][0]))
            self._prio[slots] = max(0, int(priority))
            return
        for key in arr.tolist():
            self.set_priority(key, priority)

    def demote(self, key: int) -> None:
        """Mark ``key`` as evict-soon: priority 0, reclaimed by the
        next sweep to reach its slot (hand order, not exact order)."""
        self.set_priority(key, 0)

    def demote_batch(self, keys: Sequence[int]) -> None:
        """Bulk :meth:`demote` (priority-zero scatter)."""
        self.set_priority_batch(keys, 0)

    def put_batch(self, keys: Sequence[int], priority: int) -> None:
        """Bulk insert-or-refresh at ``priority``.  Raises
        ``RuntimeError`` (like :meth:`insert`) before mutating anything
        if the new keys exceed the free space.

        This is the serving hot path.  In dense mode membership,
        first-touch ordering and the slot writes all run as numpy
        gathers/scatters; in dict mode membership resolves through one
        dict pass and the slot writes land as two vectorized
        assignments.  Either way new keys receive slots in *first-touch
        order* — slot order feeds the hand's tie-breaking, so it must
        follow the access stream, not hash order (regression-tested).
        """
        if self._slot_of is not None:
            self._put_batch_dense(keys, priority)
            return
        key_list = _as_key_list(keys)
        if not key_list:
            return
        slot_map = self._slot
        slots: List[int] = []
        new_keys: List[int] = []
        for key in key_list:
            slot = slot_map.get(key)
            if slot is None:
                new_keys.append(key)
            else:
                slots.append(slot)
        if new_keys:
            # dict.fromkeys, not set(): sets iterate in integer-hash
            # order, which used to scramble slot assignment (and thus
            # hand-order victim tie-breaking) away from first-touch
            # order.
            new_list = list(dict.fromkeys(new_keys))
            if len(self) + len(new_list) > self.capacity:
                raise RuntimeError("buffer full; evict first")
            free = self._free
            new_slots = [free.pop() for _ in new_list]
            for key, slot in zip(new_list, new_slots):
                slot_map[key] = slot
            idx = np.asarray(new_slots, dtype=np.intp)
            self._key[idx] = np.asarray(new_list, dtype=np.int64)
            slots.extend(new_slots)
        idx = np.asarray(slots, dtype=np.intp)
        self._prio[idx] = max(0, int(priority))
        self._valid[idx] = True

    def _put_batch_dense(self, keys: Sequence[int], priority: int) -> None:
        """Array-native ``put_batch``: membership via the slot vector,
        first-touch ordering via ``np.unique``, slot writes as scatters."""
        arr = np.asarray(keys, dtype=np.int64)
        if arr.size == 0:
            return
        if arr.min() < 0 or arr.max() >= self._key_space:
            # Spillover ids present: capacity check up front, then the
            # scalar sequence (rare — unseen keys above the vocabulary).
            new = [key for key in dict.fromkeys(arr.tolist())
                   if self._slot_for(key) < 0]
            if len(self) + len(new) > self.capacity:
                raise RuntimeError("buffer full; evict first")
            for key in arr.tolist():
                self.insert(key, priority)
            return
        slots = self._slot_of[arr]
        new_mask = slots < 0
        if new_mask.any():
            # First occurrence of each new key, in segment order: the
            # same first-touch slot-assignment contract as the dict
            # path's dict.fromkeys.
            uniq, first = np.unique(arr[new_mask], return_index=True)
            new_ordered = uniq[np.argsort(first, kind="stable")]
            count = int(new_ordered.size)
            free = self._free
            if len(self) + count > self.capacity:
                raise RuntimeError("buffer full; evict first")
            # free.pop() order = the tail of the free list, reversed.
            new_slots = np.asarray(free[len(free) - count:][::-1],
                                   dtype=np.int64)
            del free[len(free) - count:]
            self._slot_of[new_ordered] = new_slots
            self.residency.add_batch(new_ordered)
            self._key[new_slots] = new_ordered
            touched = np.concatenate((slots[~new_mask], new_slots))
        else:
            touched = slots
        self._prio[touched] = max(0, int(priority))
        self._valid[touched] = True

    def evict_one(self) -> int:
        if not len(self):
            raise RuntimeError("cannot evict from an empty buffer")
        return self.evict_batch(1)[0]

    def evict_batch(self, n: int) -> List[int]:
        """Reclaim ``n`` slots with a batched clock sweep; returns the
        victim keys in eviction order (see class docstring for the
        ordering guarantees)."""
        count = int(n)
        if count <= 0:
            return []
        if count > len(self):
            raise RuntimeError("cannot evict more entries than resident")
        victims: List[int] = []
        valid = self._valid
        prio = self._prio
        while count:
            zeros = np.flatnonzero(valid & (prio == 0))
            if zeros.size:
                # Circular hand order: slots at/after the hand first.
                split = int(np.searchsorted(zeros, self._hand))
                ordered = np.concatenate((zeros[split:], zeros[:split]))
                take = ordered[:count]
                victim_keys = self._key[take]
                valid[take] = False
                self._map_discard_batch(victim_keys)
                self._free.extend(take.tolist())
                victims.extend(victim_keys.tolist())
                count -= int(take.size)
                self._hand = int(take[-1] + 1) % self.capacity
            if count:
                # Sweep ran dry: every survivor holds a positive
                # priority (all zeros were consumed), and −1 passes
                # that harvest nothing only delay the inevitable — age
                # by the minimum surviving priority in one vectorized
                # subtraction.  Victims are identical to repeated −1
                # sweeps; the cost drops from O(min_prio · capacity) to
                # O(capacity).
                step = prio[valid].min()
                np.subtract(prio, step, out=prio, where=valid)
        return victims


#: Registry behind the ``buffer_impl=`` knob (manager, dlrm inference,
#: prefetch harness): exact reference, exact fast, approximate clock.
BUFFER_IMPLS = {
    "reference": PriorityBuffer,
    "fast": FastPriorityBuffer,
    "clock": ClockBuffer,
}


def make_buffer(impl: str, capacity: int,
                key_space: Optional[int] = None):
    """Instantiate a buffer backend by registry name.

    ``key_space`` (dense-id universe size) is forwarded to backends
    that support array-native membership (currently the clock backend,
    which then answers ``contains_batch`` from a residency bitmap);
    the exact backends keep their dict semantics and ignore it.
    """
    try:
        cls = BUFFER_IMPLS[impl]
    except KeyError:
        raise ValueError(
            f"unknown buffer_impl {impl!r}; choose from "
            f"{sorted(BUFFER_IMPLS)}") from None
    if key_space is not None and getattr(cls, "supports_key_space", False):
        return cls(capacity, key_space=key_space)
    return cls(capacity)
