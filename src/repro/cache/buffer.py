"""Priority-managed GPU buffer (paper Algorithms 1 and 2).

RecMG co-manages the GPU buffer with two models: the caching model
assigns each recently accessed vector a 1-bit priority (added to
``eviction_speed``), and the prefetch model inserts vectors at priority
``eviction_speed``.  Eviction (Algorithm 2) selects the entry with the
lowest priority and then *ages* every entry by decrementing its priority
(floored at zero), mimicking RRIP.

Three interchangeable backends implement the buffer protocol
(``insert`` / ``set_priority`` / ``demote`` / ``put_batch`` /
``evict_one`` / ``evict_batch`` / ``residency_map``); pick one with
:func:`make_buffer` or the ``buffer_impl=`` knob threaded through
:class:`repro.core.manager.RecMGManager`, ``repro.dlrm.inference`` and
``repro.prefetch.harness``:

* :class:`PriorityBuffer` (``"reference"``) — the literal
  O(n)-per-eviction transcription of Algorithm 2; easy to audit, used
  as the reference in tests.  The manager serves it through the scalar
  audit loop.
* :class:`FastPriorityBuffer` (``"fast"``, the manager's default) —
  *exact* semantics at O(log n) per eviction.  Aging by a global
  decrement is represented implicitly: each entry stores the *age at
  which its priority reaches zero* (``expiry = age_now + priority``),
  so ``effective_priority = max(0, expiry - age_now)``.  A lazy min-heap
  ordered by (expiry, seqno) plus a lazy min-heap of expired entries
  ordered by seqno reproduce exactly the reference victim choice (see
  *Eviction order* below).  Heap pushes are deferred: updates land in
  the entry table plus a dirty set and are flushed to the heaps only
  when an eviction actually needs them, so a key touched many times
  between evictions costs one push.  :meth:`put_batch` additionally
  collapses a whole run of touches into one store per unique key with
  exact seqno semantics.
* :class:`ClockBuffer` (``"clock"``) — *approximate* priorities in
  numpy slot arrays (key / priority / valid) swept by a clock hand.
  :meth:`ClockBuffer.evict_batch` reclaims many slots per sweep: it
  harvests priority-zero slots in hand order and, when a sweep runs
  dry, ages every survivor by one in a single vectorized decrement
  (one aging step per *sweep* rather than per eviction — the CLOCK
  approximation of Algorithm 2's aging).  Within one call, victims
  come out in nondecreasing pre-call priority and never outrank a
  survivor (ties broken by hand position instead of insertion order).
  The manager picks it for throughput-bound serving: whole guaranteed-
  miss runs pre-reclaim space with one ``evict_batch`` call instead of
  per-key heap pops, trading exact victim order for array-speed
  eviction.

**Eviction order (exact backends).**  ``evict_one`` removes the entry
minimizing the pair ``(effective_priority, seqno)``.  Seqnos are unique
by construction — ``insert``/``set_priority``/``put_batch`` draw fresh
increasing seqnos, ``demote`` draws fresh *decreasing* negative seqnos —
so the pair admits no ties and the victim is fully determined by the
operation history, never by dict/heap internals.  Consequences both
exact backends honor (regression-tested in ``tests/test_buffer.py``):
equal-priority entries evict oldest-touch-first (LRU), and demoted
entries evict before everything else in *reverse demote order* (the
most recently demoted key holds the smallest seqno).

A property-based test asserts trace-level equivalence of the exact
pair, and a differential fuzz suite
(``tests/test_buffer_differential.py``) drives all three backends
through randomized op sequences.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np


class PriorityBuffer:
    """Reference implementation of Algorithms 1–2 (O(n) eviction)."""

    #: Exact Algorithm 2 semantics (victims follow the documented
    #: (effective_priority, seqno) total order).
    approximate = False

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._priority: Dict[int, int] = {}
        self._seqno: Dict[int, int] = {}
        self._next_seq = 0
        self._min_seq = 0

    def __contains__(self, key: int) -> bool:
        return key in self._priority

    def __len__(self) -> int:
        return len(self._priority)

    def keys(self) -> Iterator[int]:
        return iter(self._priority)

    def residency_map(self) -> Dict[int, int]:
        """Live read-only view keyed by resident key (for bulk
        membership classification; values are backend-internal)."""
        return self._priority

    def priority_of(self, key: int) -> int:
        return self._priority[key]

    @property
    def is_full(self) -> bool:
        return len(self._priority) >= self.capacity

    def insert(self, key: int, priority: int) -> None:
        """Insert (or refresh) ``key``; caller must ensure space."""
        if key not in self._priority and self.is_full:
            raise RuntimeError("buffer full; evict first")
        self._priority[key] = priority
        self._seqno[key] = self._next_seq
        self._next_seq += 1

    def set_priority(self, key: int, priority: int) -> None:
        """Update priority; also refreshes recency (LRU tie-breaking)."""
        if key not in self._priority:
            raise KeyError(key)
        self._priority[key] = priority
        self._seqno[key] = self._next_seq
        self._next_seq += 1

    def demote(self, key: int) -> None:
        """Mark ``key`` as evict-next: priority 0, older than everything.

        Used for cache-averse vectors (caching-model bit 0) — the
        fully-associative analogue of Hawkeye's distant insertion.
        """
        if key not in self._priority:
            raise KeyError(key)
        self._priority[key] = 0
        self._min_seq -= 1
        self._seqno[key] = self._min_seq

    def put_batch(self, keys: Sequence[int], priority: int) -> None:
        """Equivalent to insert-or-``set_priority`` for each key in order.

        The reference implementation simply loops; the fast buffer
        overrides this with a bulk version.  Raises ``RuntimeError``
        (like :meth:`insert`) before mutating anything if the new keys
        exceed the free space.
        """
        key_list = (keys.tolist() if isinstance(keys, np.ndarray)
                    else [int(key) for key in keys])
        new = {key for key in key_list if key not in self._priority}
        if len(self._priority) + len(new) > self.capacity:
            raise RuntimeError("buffer full; evict first")
        for key in key_list:
            if key in self._priority:
                self.set_priority(key, priority)
            else:
                self.insert(key, priority)

    def evict_one(self) -> int:
        """Algorithm 2: evict min-(priority, seqno) entry, age the rest.

        Tie-breaking contract (see module docstring): seqnos are unique,
        so the minimum of the ``(priority, seqno)`` pair is unique — the
        victim never depends on dict iteration order, and
        :class:`FastPriorityBuffer` makes the identical choice.
        """
        if not self._priority:
            raise RuntimeError("cannot evict from an empty buffer")
        victim = min(self._priority,
                     key=lambda k: (self._priority[k], self._seqno[k]))
        for key in self._priority:
            self._priority[key] = max(0, self._priority[key] - 1)
        del self._priority[victim]
        del self._seqno[victim]
        return victim

    def evict_batch(self, n: int) -> List[int]:
        """Evict ``n`` entries; exactly ``n`` consecutive
        :meth:`evict_one` calls (aging applies between victims)."""
        count = int(n)
        if count <= 0:
            return []
        if count > len(self._priority):
            raise RuntimeError("cannot evict more entries than resident")
        return [self.evict_one() for _ in range(count)]


class FastPriorityBuffer:
    """Heap-based buffer equivalent to :class:`PriorityBuffer`.

    ``_age`` is the count of evictions so far; an entry set to priority
    ``p`` at age ``a`` has effective priority ``max(0, (a + p) - _age)``.

    Victim choice follows the same documented ``(effective_priority,
    seqno)`` total order as the reference: the live heap orders by
    ``(expiry, seqno)`` — equal effective priorities imply equal
    expiries, so the seqno tie-break is identical — and the zero heap
    orders the floored entries purely by seqno, which is the reference
    order among priority-zero entries.
    """

    #: Exact Algorithm 2 semantics (victims follow the documented
    #: (effective_priority, seqno) total order).
    approximate = False

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        # key -> (expiry, seqno, version)
        self._entries: Dict[int, Tuple[int, int, int]] = {}
        self._live_heap: List[Tuple[int, int, int, int]] = []  # (expiry, seq, ver, key)
        self._zero_heap: List[Tuple[int, int, int, int]] = []  # (seq, ver, expiry, key)
        # Keys updated since the last eviction whose heap entries have
        # not been pushed yet: heap pushes are deferred to eviction
        # time, so a key touched many times between evictions (the hot
        # serving pattern) costs one push instead of one per touch.
        self._dirty: set = set()
        self._age = 0
        self._next_seq = 0
        self._min_seq = 0
        self._version = 0

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterator[int]:
        return iter(self._entries)

    def residency_map(self) -> Dict[int, Tuple[int, int, int]]:
        """Live read-only view keyed by resident key (for bulk
        membership classification; values are backend-internal)."""
        return self._entries

    def priority_of(self, key: int) -> int:
        expiry, _, _ = self._entries[key]
        return max(0, expiry - self._age)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def insert(self, key: int, priority: int) -> None:
        if key in self._entries:
            self.set_priority(key, priority)
            return
        if self.is_full:
            raise RuntimeError("buffer full; evict first")
        seq = self._next_seq
        self._next_seq += 1
        self._store(key, priority, seq)

    def set_priority(self, key: int, priority: int) -> None:
        """Update priority; also refreshes recency (LRU tie-breaking)."""
        if key not in self._entries:
            raise KeyError(key)
        seq = self._next_seq
        self._next_seq += 1
        self._store(key, priority, seq)

    def demote(self, key: int) -> None:
        """Mark ``key`` as evict-next: priority 0, older than everything."""
        if key not in self._entries:
            raise KeyError(key)
        self._min_seq -= 1
        self._store(key, 0, self._min_seq)

    def put_batch(self, keys: Sequence[int], priority: int) -> None:
        """Bulk insert-or-``set_priority``, exactly equivalent to calling
        the scalar operations for each key in order.

        Only each key's *last* occurrence matters for its final
        (priority, seqno) pair, so one heap push per unique key suffices
        while ``_next_seq`` still advances by the full batch length —
        subsequent evictions see the same state a scalar loop would
        produce.  This is the primitive behind the manager's bulk
        demand-serving pre-pass, so it deliberately avoids per-key numpy
        round-trips (batches are often runs of a handful of hits).
        """
        key_list = (keys.tolist() if isinstance(keys, np.ndarray)
                    else [int(key) for key in keys])
        length = len(key_list)
        if length == 0:
            return
        last_pos: Dict[int, int] = {}
        for pos, key in enumerate(key_list):
            last_pos[key] = pos
        entries = self._entries
        new = sum(1 for key in last_pos if key not in entries)
        if len(entries) + new > self.capacity:
            raise RuntimeError("buffer full; evict first")
        base = self._next_seq
        store = self._store
        for key, pos in last_pos.items():
            store(key, priority, base + pos)
        self._next_seq = base + length

    def _store(self, key: int, priority: int, seq: int) -> None:
        self._version += 1
        self._entries[key] = (self._age + priority, seq, self._version)
        self._dirty.add(key)

    def _flush_dirty(self) -> None:
        """Push the latest snapshot of every dirty key onto its heap.

        Deferred from :meth:`_store`: only the snapshot current at
        eviction time matters for victim selection, so intermediate
        updates never touch a heap.
        """
        age = self._age
        entries = self._entries
        for key in self._dirty:
            entry = entries.get(key)
            if entry is None:
                continue
            expiry, seq, ver = entry
            if expiry <= age:
                heapq.heappush(self._zero_heap, (seq, ver, expiry, key))
            else:
                heapq.heappush(self._live_heap, (expiry, seq, ver, key))
        self._dirty.clear()

    def evict_one(self) -> int:
        if not self._entries:
            raise RuntimeError("cannot evict from an empty buffer")
        if self._dirty:
            self._flush_dirty()
        # Migrate entries whose priority has decayed to zero.
        while self._live_heap and self._live_heap[0][0] <= self._age:
            expiry, seq, ver, key = heapq.heappop(self._live_heap)
            entry = self._entries.get(key)
            if entry is not None and entry == (expiry, seq, ver):
                heapq.heappush(self._zero_heap, (seq, ver, expiry, key))

        victim = self._pop_valid(self._zero_heap, zero=True)
        if victim is None:
            victim = self._pop_valid(self._live_heap, zero=False)
        if victim is None:
            raise RuntimeError("heap inconsistency: no valid victim found")
        del self._entries[victim]
        self._age += 1  # global aging: everyone's effective priority -1
        return victim

    def evict_batch(self, n: int) -> List[int]:
        """Evict ``n`` entries; exactly ``n`` consecutive
        :meth:`evict_one` calls.  No stores interleave, so the dirty
        set is flushed at most once and the remaining pops run straight
        off the heaps (aging still applies between victims via
        ``_age``)."""
        count = int(n)
        if count <= 0:
            return []
        if count > len(self._entries):
            raise RuntimeError("cannot evict more entries than resident")
        return [self.evict_one() for _ in range(count)]

    def _pop_valid(self, heap: List[Tuple[int, int, int, int]],
                   zero: bool) -> Optional[int]:
        while heap:
            if zero:
                seq, ver, expiry, key = heap[0]
            else:
                expiry, seq, ver, key = heap[0]
            entry = self._entries.get(key)
            if entry is not None and entry == (expiry, seq, ver):
                heapq.heappop(heap)
                return key
            heapq.heappop(heap)  # stale
        return None


class ClockBuffer:
    """Array-backed approximate-priority buffer (CLOCK sweep).

    Entries live in fixed numpy slot arrays (``key`` / ``priority`` /
    ``valid``) plus a key→slot dict for membership; a hand position
    turns the arrays into a circular list.  ``insert`` fills a free
    slot, ``set_priority`` writes the slot's priority (the multi-bit
    analogue of CLOCK's reference bit), ``demote`` zeroes it.

    :meth:`evict_batch` is the point of the backend: one call reclaims
    many slots by harvesting priority-zero slots in hand order and,
    whenever a sweep runs dry, aging *every* survivor by one with a
    single vectorized decrement.  Aging therefore happens once per full
    sweep instead of once per eviction — the approximation that lets a
    whole batch of evictions cost O(capacity) numpy work rather than
    O(batch · log n) heap pops.  Within one call the victims come out
    in nondecreasing pre-call priority, and no victim has a higher
    pre-call priority than any survivor; among equal priorities the
    hand position (not insertion order) breaks ties.  Those invariants
    are fuzz-checked in ``tests/test_buffer_differential.py``.
    """

    #: Victim order approximates Algorithm 2 (hand-order tie-breaking,
    #: per-sweep aging); the manager must not expect exact-backend
    #: victim equivalence.
    approximate = True

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._key = np.full(capacity, -1, dtype=np.int64)
        self._prio = np.zeros(capacity, dtype=np.int64)
        self._valid = np.zeros(capacity, dtype=bool)
        self._slot: Dict[int, int] = {}
        # Popping the free list hands out slots 0, 1, 2, ... first.
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self._hand = 0

    def __contains__(self, key: int) -> bool:
        return key in self._slot

    def __len__(self) -> int:
        return len(self._slot)

    def keys(self) -> Iterator[int]:
        return iter(self._slot)

    def residency_map(self) -> Dict[int, int]:
        """Live read-only view keyed by resident key (for bulk
        membership classification; values are backend-internal)."""
        return self._slot

    def priority_of(self, key: int) -> int:
        return int(self._prio[self._slot[key]])

    @property
    def is_full(self) -> bool:
        return len(self._slot) >= self.capacity

    def insert(self, key: int, priority: int) -> None:
        """Insert (or refresh) ``key``; caller must ensure space.

        Priorities clamp to >= 0: the sweep harvests exactly the
        priority-zero class, so a negative priority (meaningful to the
        exact backends' seqno order) would otherwise never ripen.
        """
        slot = self._slot.get(key)
        if slot is not None:
            self._prio[slot] = max(0, priority)
            return
        if not self._free:
            raise RuntimeError("buffer full; evict first")
        slot = self._free.pop()
        self._slot[key] = slot
        self._key[slot] = key
        self._prio[slot] = max(0, priority)
        self._valid[slot] = True

    def set_priority(self, key: int, priority: int) -> None:
        """Update priority, clamped to >= 0 (recency is approximated by
        the hand)."""
        slot = self._slot.get(key)
        if slot is None:
            raise KeyError(key)
        self._prio[slot] = max(0, priority)

    def demote(self, key: int) -> None:
        """Mark ``key`` as evict-soon: priority 0, reclaimed by the
        next sweep to reach its slot (hand order, not exact order)."""
        self.set_priority(key, 0)

    def put_batch(self, keys: Sequence[int], priority: int) -> None:
        """Bulk insert-or-refresh at ``priority``.  Raises
        ``RuntimeError`` (like :meth:`insert`) before mutating anything
        if the new keys exceed the free space.

        This is the serving hot path: membership resolves through one
        dict pass and the slot writes land as two vectorized
        assignments, so a whole hit-run costs O(len) dict lookups plus
        O(unique) array work.
        """
        key_list = (keys.tolist() if isinstance(keys, np.ndarray)
                    else [int(key) for key in keys])
        if not key_list:
            return
        slot_map = self._slot
        slots: List[int] = []
        new_keys: List[int] = []
        for key in key_list:
            slot = slot_map.get(key)
            if slot is None:
                new_keys.append(key)
            else:
                slots.append(slot)
        if new_keys:
            new_set = set(new_keys)
            if len(slot_map) + len(new_set) > self.capacity:
                raise RuntimeError("buffer full; evict first")
            free = self._free
            new_list = list(new_set)
            new_slots = [free.pop() for _ in new_list]
            for key, slot in zip(new_list, new_slots):
                slot_map[key] = slot
            idx = np.asarray(new_slots, dtype=np.intp)
            self._key[idx] = np.asarray(new_list, dtype=np.int64)
            slots.extend(new_slots)
        idx = np.asarray(slots, dtype=np.intp)
        self._prio[idx] = max(0, int(priority))
        self._valid[idx] = True

    def evict_one(self) -> int:
        if not self._slot:
            raise RuntimeError("cannot evict from an empty buffer")
        return self.evict_batch(1)[0]

    def evict_batch(self, n: int) -> List[int]:
        """Reclaim ``n`` slots with a batched clock sweep; returns the
        victim keys in eviction order (see class docstring for the
        ordering guarantees)."""
        count = int(n)
        if count <= 0:
            return []
        if count > len(self._slot):
            raise RuntimeError("cannot evict more entries than resident")
        victims: List[int] = []
        valid = self._valid
        prio = self._prio
        slot_map = self._slot
        while count:
            zeros = np.flatnonzero(valid & (prio == 0))
            if zeros.size:
                # Circular hand order: slots at/after the hand first.
                split = int(np.searchsorted(zeros, self._hand))
                ordered = np.concatenate((zeros[split:], zeros[:split]))
                take = ordered[:count]
                victim_keys = self._key[take].tolist()
                valid[take] = False
                for key in victim_keys:
                    del slot_map[key]
                self._free.extend(take.tolist())
                victims.extend(victim_keys)
                count -= int(take.size)
                self._hand = int(take[-1] + 1) % self.capacity
            if count:
                # Sweep ran dry: age every survivor by one.  A further
                # pass only runs when *all* zeros were consumed, so the
                # floor never bites here.
                np.subtract(prio, 1, out=prio, where=valid & (prio > 0))
        return victims


#: Registry behind the ``buffer_impl=`` knob (manager, dlrm inference,
#: prefetch harness): exact reference, exact fast, approximate clock.
BUFFER_IMPLS = {
    "reference": PriorityBuffer,
    "fast": FastPriorityBuffer,
    "clock": ClockBuffer,
}


def make_buffer(impl: str, capacity: int):
    """Instantiate a buffer backend by registry name."""
    try:
        cls = BUFFER_IMPLS[impl]
    except KeyError:
        raise ValueError(
            f"unknown buffer_impl {impl!r}; choose from "
            f"{sorted(BUFFER_IMPLS)}") from None
    return cls(capacity)
