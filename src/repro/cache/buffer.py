"""Priority-managed GPU buffer (paper Algorithms 1 and 2).

RecMG co-manages the GPU buffer with two models: the caching model
assigns each recently accessed vector a 1-bit priority (added to
``eviction_speed``), and the prefetch model inserts vectors at priority
``eviction_speed``.  Eviction (Algorithm 2) selects the entry with the
lowest priority and then *ages* every entry by decrementing its priority
(floored at zero), mimicking RRIP.

Three interchangeable backends implement the buffer protocol
(``insert`` / ``set_priority`` / ``demote`` / ``put_batch`` /
``evict_one`` / ``evict_batch`` / ``residency_map``); pick one with
:func:`make_buffer` or the ``buffer_impl=`` knob threaded through
:class:`repro.core.manager.RecMGManager`, ``repro.dlrm.inference`` and
``repro.prefetch.harness``:

* :class:`PriorityBuffer` (``"reference"``) — the literal
  O(n)-per-eviction transcription of Algorithm 2; easy to audit, used
  as the reference in tests.  The manager serves it through the scalar
  audit loop.
* :class:`FastPriorityBuffer` (``"fast"``, the manager's default) —
  *exact* semantics at O(log n) per eviction.  Aging by a global
  decrement is represented implicitly: each entry stores the *age at
  which its priority reaches zero* (``expiry = age_now + priority``),
  so ``effective_priority = max(0, expiry - age_now)``.  A lazy min-heap
  ordered by (expiry, seqno) plus a lazy min-heap of expired entries
  ordered by seqno reproduce exactly the reference victim choice (see
  *Eviction order* below).  Heap pushes are deferred: updates land in
  the entry table plus a dirty set and are flushed to the heaps only
  when an eviction actually needs them, so a key touched many times
  between evictions costs one push.  :meth:`put_batch` additionally
  collapses a whole run of touches into one store per unique key with
  exact seqno semantics.

  Constructed with ``key_space=N`` the backend goes *array-native*
  while staying exact: the entry dict and the heaps are replaced by
  dense ``id -> (expiry, seqno)`` vectors plus a
  :class:`~repro.cache.residency.ResidencyIndex` bitmap (ids outside
  ``[0, N)`` spill to a side dict).  The bulk protocol then runs as
  numpy gathers/scatters, ``evict_batch(n)`` computes the whole victim
  sequence with one vectorized selection over the resident entries
  (identical, victim for victim, to ``n`` scalar ``evict_one`` calls
  — fuzz-checked in ``tests/test_buffer_differential.py``), and
  :meth:`FastPriorityBuffer.serve_segment` bulk-serves a whole demand
  segment bit-identically to the scalar serving loop.  Scalar
  ``evict_one`` in dense mode costs one O(capacity) selection, so the
  dense mode is meant for the batched engines; dict mode keeps the
  heaps for scalar-eviction workloads.
* :class:`ClockBuffer` (``"clock"``) — *approximate* priorities in
  numpy slot arrays (key / priority / valid) swept by a clock hand.
  :meth:`ClockBuffer.evict_batch` reclaims many slots per sweep: it
  harvests priority-zero slots in hand order and, when a sweep runs
  dry, ages every survivor by the *minimum surviving priority* in a
  single vectorized subtraction (one aging step per sweep — the CLOCK
  approximation of Algorithm 2's aging; subtracting the minimum at
  once yields provably identical victims to repeated −1 passes, since
  intermediate passes harvest nothing).  Within one call, victims come
  out in nondecreasing pre-call priority and never outrank a survivor
  (ties broken by hand position instead of insertion order).  The
  manager picks it for throughput-bound serving: whole guaranteed-miss
  runs pre-reclaim space with one ``evict_batch`` call instead of
  per-key heap pops, trading exact victim order for array-speed
  eviction.  Constructed with ``key_space=N`` the backend goes
  *array-native*: the key→slot dict is replaced by a dense ``id →
  slot`` vector plus a :class:`repro.cache.residency.ResidencyIndex`
  bitmap, so bulk membership and ``put_batch`` run as numpy gathers
  and scatters with no per-key dict traffic (ids outside ``[0, N)``
  spill to a side dict, preserving correctness for unseen keys).

**Bulk residency / priority protocol.**  All backends answer
``contains_batch(keys) -> bool[:]`` (residency of a whole segment in
one call — a bitmap gather on the dense backends, a dict sweep
otherwise) and accept ``set_priority_batch(keys, priority)`` and
``demote_batch(keys)`` for chunk-boundary priority writes.  On the
exact backends the batch forms are *defined* as the scalar operations
applied in order (seqno semantics preserved); in dense (``key_space``)
mode every bulk op is O(1) amortized per key: ``contains_batch`` is
one bitmap gather, ``put_batch`` / ``set_priority_batch`` /
``demote_batch`` are one last-occurrence ``np.unique`` plus two
scatters, and ``evict_batch`` is one candidate gather plus one
partition-and-sort for the whole victim batch (ids outside the bitmap
fall back to the scalar path, preserving semantics at dict speed).
The serving engines in :mod:`repro.core.manager` classify whole
segments through this protocol instead of per-key dict loops.

**Eviction order (exact backends).**  ``evict_one`` removes the entry
minimizing the pair ``(effective_priority, seqno)``.  Seqnos are unique
by construction — ``insert``/``set_priority``/``put_batch`` draw fresh
increasing seqnos, ``demote`` draws fresh *decreasing* negative seqnos —
so the pair admits no ties and the victim is fully determined by the
operation history, never by dict/heap internals.  Consequences both
exact backends honor (regression-tested in ``tests/test_buffer.py``):
equal-priority entries evict oldest-touch-first (LRU), and demoted
entries evict before everything else in *reverse demote order* (the
most recently demoted key holds the smallest seqno).

A property-based test asserts trace-level equivalence of the exact
pair, and a differential fuzz suite
(``tests/test_buffer_differential.py``) drives all backends — including
the dense (``key_space``) clock mode against the dict mode — through
randomized op sequences, checking bitmap/dict residency agreement after
every operation.

**Sharding.**  ``make_buffer(..., num_shards=N, shard_policy=...)``
(N > 1, ``key_space`` required) wraps N independent dense-mode shards
in a :class:`~repro.cache.sharding.ShardedBuffer`: every key routes to
exactly one shard (contiguous-range or modulo partition of
``[0, key_space)``), each bulk op runs as one scatter, per-shard
batched calls, and one gather, and capacity/eviction are **per shard**
— a full shard evicts its own victim even while another shard has free
slots, so the victim order of a sharded ``evict_batch`` is per-shard
(grouped in shard-id order), *not* the global ``(effective_priority,
seqno)`` contract above.  That caveat is a load-bearing part of the
bulk protocol, not prose: callers that fold ``evict_batch`` victims
back into per-key state (the manager's gather, the sharded serving
engines) rely on the grouping, and
``tests/test_sharding.py::test_evict_batch_victim_order_is_per_shard``
pins it — shard-id-grouped, water-filled counts, each group in that
shard's own standalone eviction order.  Two more load-bearing notes:
each shard's backend is constructed over the router's **compressed**
per-shard universe (``backend.key_space`` reports it, the sharded
constructor asserts it), with all global↔local id translation confined
to the :class:`~repro.cache.sharding.CompressedShardView` wrapper — so
per-id state (slot/expiry/seqno vectors, residency bitmaps; see
``per_id_nbytes``) costs the single-shard footprint, not N×, while
every caller keeps speaking global ids; and ``shard_weights=`` splits
the total capacity proportionally (largest-remainder, min one slot per
shard) instead of uniformly, for skew-matched hot-shard serving.  See
:mod:`repro.cache.sharding` for the full routing contract; a 1-shard
wrapper is differential-tested identical to the bare backend in
``tests/test_sharding.py``.

Each backend also speaks a two-method **state migration** protocol —
``export_state()`` / ``import_state(...)`` — used by
``ShardedBuffer.rebalance`` to move resident entries between shard
backends when the capacity split (and, under the contiguous router,
the partition itself) changes at runtime.  The exact backends carry
``(key, effective_priority, seqno)`` triples (future victim choices
depend only on the priorities and the *relative* seqno order, so
re-ranked seqnos preserve eviction order); the clock backend carries
``(key, priority)`` pairs in circular hand order (slot assignment on
import preserves the sweep sequence).  See "Rebalancing" in
:mod:`repro.cache.sharding` for the full migration contract.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .residency import ResidencyIndex


def _as_key_list(keys: Sequence[int]) -> List[int]:
    return (keys.tolist() if isinstance(keys, np.ndarray)
            else [int(key) for key in keys])


def _last_occurrence(arr: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Distinct keys of ``arr`` (sorted) and each one's last-occurrence
    position — the store that survives when scalar per-key operations
    are applied in order."""
    uniq, first_rev = np.unique(arr[::-1], return_index=True)
    return uniq, arr.size - 1 - first_rev


def _dict_contains_batch(entries: Dict, keys: Sequence[int]) -> np.ndarray:
    """Shared dict-backed ``contains_batch``: residency of each key as
    a boolean array (the exact backends' and the dict-mode clock's
    answer to the bulk protocol)."""
    seq = keys.tolist() if isinstance(keys, np.ndarray) else keys
    return np.fromiter((key in entries for key in seq),
                       dtype=bool, count=len(seq))


def reclaim_batch_space(buffer, uniq: np.ndarray, new_count: int,
                        on_victims=None, protect: bool = False
                        ) -> Tuple[int, bool]:
    """Evict until ``len(buffer) + new_count <= capacity`` (the
    batched-reclaim core shared by the manager's clock engine and
    ``dlrm.inference.BufferClassifier``).

    ``uniq`` is the *sorted* distinct key set of the segment being
    served and ``new_count`` how many of them are currently
    non-resident; the caller must guarantee ``uniq.size <= capacity``
    (else the loop could demand more victims than are resident).  A
    victim that is itself a segment key becomes one more distinct miss
    — victims are unique and were resident, so each adds at most one,
    and a sorted-``uniq`` searchsorted beats re-gathering the whole
    segment.  ``on_victims`` (if given) observes every ``evict_batch``
    result, in order, for the caller's accounting.  Returns the final
    ``new_count`` and whether any victim invalidated the caller's
    residency snapshot.

    ``protect=True`` passes ``uniq`` as the ``avoid=`` set of a
    backend whose ``evict_batch`` supports protected eviction
    (:meth:`ClockBuffer.evict_batch`): no victim is ever a segment
    key, so the reclaim resolves in one call instead of looping on
    victim/segment collisions — the sharded serving engine's scheme.
    """
    stale = False
    while True:
        needed = len(buffer) + new_count - buffer.capacity
        if needed <= 0:
            return new_count, stale
        if protect:
            victims = buffer.evict_batch(needed, avoid=uniq)
            if on_victims is not None:
                on_victims(victims)
            return new_count, stale
        victims = buffer.evict_batch(needed)
        if on_victims is not None:
            on_victims(victims)
        varr = np.asarray(victims, dtype=np.int64)
        pos = np.minimum(np.searchsorted(uniq, varr), uniq.size - 1)
        evicted_here = int(np.count_nonzero(uniq[pos] == varr))
        if evicted_here:
            new_count += evicted_here
            stale = True


def iter_serve_segments(buffer, segment: np.ndarray, priority: int,
                        scalar_span: int = 64):
    """Drive :meth:`FastPriorityBuffer.serve_segment` over a whole
    segment, yielding one chunk per served prefix — the shared loop
    under ``RecMGManager._serve_demand_batched_exact`` and
    ``dlrm.inference.BufferClassifier.access_batch``.

    Yields ``("bulk", start, served, first_miss_positions, victims,
    uniq)`` for each bulk-served prefix (positions relative to
    ``start``) and ``("scalar", start, span)`` for the stretches the
    caller must replay through its own scalar loop: a ``scalar_span``
    slice when not even one access is bulk-servable, or the whole
    remainder when the buffer has no dense mode at all.  Chunks arrive
    in segment order and exactly cover it, so a caller that applies
    them sequentially reproduces the scalar serving loop bit for bit.
    """
    position = 0
    total = int(segment.size)
    while position < total:
        result = buffer.serve_segment(segment[position:], priority)
        if result is None:  # dict mode: no bulk primitive
            yield ("scalar", position, total - position)
            return
        served, first_miss, victims, uniq = result
        if served == 0:
            span = min(scalar_span, total - position)
            yield ("scalar", position, span)
            position += span
            continue
        yield ("bulk", position, served, first_miss, victims, uniq)
        position += served


def _exact_victim_sequence(expiry: np.ndarray, seq: np.ndarray, age: int,
                           count: int) -> Tuple[np.ndarray, Optional[int]]:
    """Victim order of ``count`` consecutive exact evictions.

    Pure function over candidate entry arrays (one row per resident
    entry): eviction ``k`` happens at age ``age + k`` and removes the
    entry minimizing ``(max(0, expiry - (age + k)), seq)`` — exactly
    the process ``count`` scalar ``evict_one`` calls with no
    interleaved stores would run.  Returns ``(indices, live_step)``:
    ``indices`` selects the victims in eviction order; ``live_step`` is
    the first step whose victim still held *positive* effective
    priority (``None`` when every victim was zero at its step — the
    precondition for :meth:`FastPriorityBuffer.serve_segment`'s
    pre-reclaim proof).  The sequence is prefix-stable: the first ``k``
    victims for any larger ``count`` are the victims of ``k``
    evictions.

    The common serving case — at least ``count`` entries already at
    effective priority zero, none of the still-live entries ripening
    into a smaller seqno within the batch — resolves with one
    ``argpartition`` over the zero class, no per-victim work.  The
    general case (zero class drains, or a live entry with an *older*
    seqno ripens mid-batch and must preempt) replays the release-time
    process with a small heap over the gathered arrays.
    """
    zero = expiry <= age
    nz = int(np.count_nonzero(zero))
    if nz >= count:
        zidx = np.flatnonzero(zero)
        if nz > count:
            part = np.argpartition(seq[zidx], count - 1)[:count]
            zidx = zidx[part]
        chosen = zidx[np.argsort(seq[zidx])]
        late = (~zero) & (expiry <= age + count - 1)
        if not late.any() or int(seq[late].min()) > int(seq[chosen[-1]]):
            return chosen, None
    # General path: entries "release" into the zero class when the age
    # reaches their expiry; each step pops the smallest released seqno,
    # or the (expiry, seq)-smallest live entry when nothing is released.
    order = np.lexsort((seq, expiry))
    exp_sorted = expiry[order]
    seq_sorted = seq[order]
    out = np.empty(count, dtype=np.int64)
    released: List[Tuple[int, int]] = []
    ptr = 0
    total = int(order.size)
    live_step: Optional[int] = None
    for k in range(count):
        limit = age + k
        while ptr < total and exp_sorted[ptr] <= limit:
            heapq.heappush(released, (int(seq_sorted[ptr]), int(order[ptr])))
            ptr += 1
        if released:
            out[k] = heapq.heappop(released)[1]
        else:
            if live_step is None:
                live_step = k
            out[k] = order[ptr]
            ptr += 1
    return out, live_step


class PriorityBuffer:
    """Reference implementation of Algorithms 1–2 (O(n) eviction).

    ``key_space=N`` keeps a :class:`ResidencyIndex` mirror of the entry
    dict so ``contains_batch`` answers from the bitmap (one gather)
    instead of a per-key dict sweep; everything else — including the
    O(n) audit eviction — is unchanged, and the two modes are
    behaviorally identical (fuzz-checked in
    ``tests/test_buffer_differential.py``).
    """

    #: Exact Algorithm 2 semantics (victims follow the documented
    #: (effective_priority, seqno) total order).
    approximate = False

    #: ``make_buffer`` forwards ``key_space=`` to this backend.
    supports_key_space = True

    def __init__(self, capacity: int,
                 key_space: Optional[int] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._priority: Dict[int, int] = {}
        self._seqno: Dict[int, int] = {}
        self._next_seq = 0
        self._min_seq = 0
        self.residency: Optional[ResidencyIndex] = (
            ResidencyIndex(key_space) if key_space is not None else None)

    def __contains__(self, key: int) -> bool:
        return key in self._priority

    def __len__(self) -> int:
        return len(self._priority)

    def keys(self) -> Iterator[int]:
        return iter(self._priority)

    def residency_map(self) -> Dict[int, int]:
        """Live read-only view keyed by resident key (for bulk
        membership classification; values are backend-internal)."""
        return self._priority

    def contains_batch(self, keys: Sequence[int]) -> np.ndarray:
        """Residency of each key as a boolean array (one bitmap gather
        with ``key_space``, a dict sweep otherwise)."""
        if self.residency is not None:
            return self.residency.contains_batch(
                np.asarray(keys, dtype=np.int64))
        return _dict_contains_batch(self._priority, keys)

    def priority_of(self, key: int) -> int:
        return self._priority[key]

    @property
    def is_full(self) -> bool:
        return len(self._priority) >= self.capacity

    @property
    def key_space(self) -> int:
        """Dense-id universe this backend was built over (0 in dict
        mode).  Sharded construction asserts this against the router's
        per-shard universe — see the translation boundary in
        :mod:`repro.cache.sharding`."""
        return self.residency.key_space if self.residency is not None else 0

    def per_id_nbytes(self) -> int:
        """Bytes of state that scale with ``key_space`` (the residency
        mirror's bitmap; the entry dicts scale with occupancy)."""
        return self.residency.nbytes if self.residency is not None else 0

    def insert(self, key: int, priority: int) -> None:
        """Insert (or refresh) ``key``; caller must ensure space."""
        if key not in self._priority and self.is_full:
            raise RuntimeError("buffer full; evict first")
        self._priority[key] = priority
        self._seqno[key] = self._next_seq
        self._next_seq += 1
        if self.residency is not None:
            self.residency.add(key)

    def set_priority(self, key: int, priority: int) -> None:
        """Update priority; also refreshes recency (LRU tie-breaking)."""
        if key not in self._priority:
            raise KeyError(key)
        self._priority[key] = priority
        self._seqno[key] = self._next_seq
        self._next_seq += 1

    def set_priority_batch(self, keys: Sequence[int], priority: int) -> None:
        """Scalar :meth:`set_priority` per key, in order (exact seqno
        semantics); every key must be resident."""
        for key in _as_key_list(keys):
            self.set_priority(key, priority)

    def demote(self, key: int) -> None:
        """Mark ``key`` as evict-next: priority 0, older than everything.

        Used for cache-averse vectors (caching-model bit 0) — the
        fully-associative analogue of Hawkeye's distant insertion.
        """
        if key not in self._priority:
            raise KeyError(key)
        self._priority[key] = 0
        self._min_seq -= 1
        self._seqno[key] = self._min_seq

    def demote_batch(self, keys: Sequence[int]) -> None:
        """Scalar :meth:`demote` per key, in order (reverse-demote
        eviction order preserved)."""
        for key in _as_key_list(keys):
            self.demote(key)

    def put_batch(self, keys: Sequence[int], priority: int) -> None:
        """Equivalent to insert-or-``set_priority`` for each key in order.

        The reference implementation simply loops; the fast buffer
        overrides this with a bulk version.  Raises ``RuntimeError``
        (like :meth:`insert`) before mutating anything if the new keys
        exceed the free space.
        """
        key_list = _as_key_list(keys)
        new = {key for key in key_list if key not in self._priority}
        if len(self._priority) + len(new) > self.capacity:
            raise RuntimeError("buffer full; evict first")
        for key in key_list:
            if key in self._priority:
                self.set_priority(key, priority)
            else:
                self.insert(key, priority)

    def export_state(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All resident entries as ``(keys, priority, seqno)`` arrays
        (order unspecified) — the export half of the shard-rebalancing
        migration protocol (see "Rebalancing" in
        :mod:`repro.cache.sharding`)."""
        count = len(self._priority)
        keys = np.fromiter(self._priority, dtype=np.int64, count=count)
        prio = np.fromiter((self._priority[k] for k in keys.tolist()),
                           dtype=np.int64, count=count)
        seq = np.fromiter((self._seqno[k] for k in keys.tolist()),
                          dtype=np.int64, count=count)
        return keys, prio, seq

    def import_state(self, keys: Sequence[int], priorities: Sequence[int],
                     seqnos: Sequence[int]) -> None:
        """Load exported entries into an *empty* buffer verbatim.

        Keys must be unique and fit the capacity; seqnos must be unique
        per entry.  Future victim choices depend only on the priorities
        and the relative seqno order, so a caller may re-rank seqnos
        (e.g. to ``0..n-1``) without changing eviction behavior.
        """
        if len(self._priority):
            raise RuntimeError("import_state requires an empty buffer")
        keys_arr = np.asarray(keys, dtype=np.int64)
        prio_arr = np.asarray(priorities, dtype=np.int64)
        seq_arr = np.asarray(seqnos, dtype=np.int64)
        if keys_arr.size > self.capacity:
            raise RuntimeError("buffer full; evict first")
        for key, p, s in zip(keys_arr.tolist(), prio_arr.tolist(),
                             seq_arr.tolist()):
            self._priority[key] = p
            self._seqno[key] = s
            if self.residency is not None:
                self.residency.add(key)
        if keys_arr.size:
            self._next_seq = max(self._next_seq, int(seq_arr.max()) + 1)
            self._min_seq = min(self._min_seq, int(seq_arr.min()))

    def evict_one(self) -> int:
        """Algorithm 2: evict min-(priority, seqno) entry, age the rest.

        Tie-breaking contract (see module docstring): seqnos are unique,
        so the minimum of the ``(priority, seqno)`` pair is unique — the
        victim never depends on dict iteration order, and
        :class:`FastPriorityBuffer` makes the identical choice.
        """
        if not self._priority:
            raise RuntimeError("cannot evict from an empty buffer")
        victim = min(self._priority,
                     key=lambda k: (self._priority[k], self._seqno[k]))
        for key in self._priority:
            self._priority[key] = max(0, self._priority[key] - 1)
        del self._priority[victim]
        del self._seqno[victim]
        if self.residency is not None:
            self.residency.discard(victim)
        return victim

    def evict_batch(self, n: int) -> List[int]:
        """Evict ``n`` entries; exactly ``n`` consecutive
        :meth:`evict_one` calls (aging applies between victims)."""
        count = int(n)
        if count <= 0:
            return []
        if count > len(self._priority):
            raise RuntimeError("cannot evict more entries than resident")
        return [self.evict_one() for _ in range(count)]


class FastPriorityBuffer:
    """Heap-based buffer equivalent to :class:`PriorityBuffer`.

    ``_age`` is the count of evictions so far; an entry set to priority
    ``p`` at age ``a`` has effective priority ``max(0, (a + p) - _age)``.

    Victim choice follows the same documented ``(effective_priority,
    seqno)`` total order as the reference: the live heap orders by
    ``(expiry, seqno)`` — equal effective priorities imply equal
    expiries, so the seqno tie-break is identical — and the zero heap
    orders the floored entries purely by seqno, which is the reference
    order among priority-zero entries.

    ``key_space=N`` selects the *dense* mode: the entry dict and both
    heaps are replaced by dense ``id -> expiry`` / ``id -> seqno``
    vectors plus a :class:`~repro.cache.residency.ResidencyIndex`
    bitmap (ids outside ``[0, N)`` spill to a side dict keyed by id,
    holding the same ``(expiry, seqno)`` pair).  Victim selection then
    runs per *batch* instead of per entry: ``evict_batch(n)`` gathers
    every resident ``(expiry, seqno)`` once and computes the whole
    victim sequence with :func:`_exact_victim_sequence` — identical,
    victim for victim, to ``n`` scalar ``evict_one`` calls — and
    :meth:`serve_segment` bulk-serves a whole demand segment
    bit-identically to the scalar serving loop.  Scalar ``evict_one``
    in dense mode pays one O(capacity) selection, so dict mode (with
    its O(log n) lazy heaps) remains the right choice for
    scalar-eviction workloads; both modes honor the identical
    eviction-order contract (fuzz-checked against each other in
    ``tests/test_buffer_differential.py``).
    """

    #: Exact Algorithm 2 semantics (victims follow the documented
    #: (effective_priority, seqno) total order).
    approximate = False

    #: ``make_buffer`` forwards ``key_space=`` to this backend.
    supports_key_space = True

    def __init__(self, capacity: int,
                 key_space: Optional[int] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._age = 0
        self._next_seq = 0
        self._min_seq = 0
        if key_space is None:
            self._key_space = 0
            self.residency: Optional[ResidencyIndex] = None
            # key -> (expiry, seqno, version)
            self._entries: Dict[int, Tuple[int, int, int]] = {}
            self._live_heap: List[Tuple[int, int, int, int]] = []  # (expiry, seq, ver, key)
            self._zero_heap: List[Tuple[int, int, int, int]] = []  # (seq, ver, expiry, key)
            # Keys updated since the last eviction whose heap entries
            # have not been pushed yet: heap pushes are deferred to
            # eviction time, so a key touched many times between
            # evictions (the hot serving pattern) costs one push
            # instead of one per touch.
            self._dirty: set = set()
            self._version = 0
        else:
            if key_space < 1:
                raise ValueError("key_space must be >= 1")
            self._key_space = int(key_space)
            self.residency = ResidencyIndex(self._key_space)
            self._expiry_of = np.zeros(self._key_space, dtype=np.int64)
            self._seq_of = np.zeros(self._key_space, dtype=np.int64)
            # Spillover ids above the bitmap: id -> (expiry, seqno).
            self._over: Dict[int, Tuple[int, int]] = {}
            self._size = 0
            # Reusable id -> segment-position map for serve_segment's
            # linear first/last-occurrence scatters (never reset: only
            # freshly written slots are read back).
            self._scratch_pos = np.empty(self._key_space, dtype=np.int64)

    def __contains__(self, key: int) -> bool:
        if self.residency is not None:
            return int(key) in self.residency
        return key in self._entries

    def __len__(self) -> int:
        if self.residency is not None:
            return self._size
        return len(self._entries)

    def keys(self) -> Iterator[int]:
        if self.residency is not None:
            return self.residency.resident_keys()
        return iter(self._entries)

    def residency_map(self) -> Dict[int, Tuple[int, int]]:
        """Read-only view keyed by resident key (for bulk membership
        classification; values are backend-internal).  Live in dict
        mode; a *snapshot* in dense (``key_space``) mode — bulk call
        sites should prefer :meth:`contains_batch`."""
        if self.residency is None:
            return self._entries
        ids = np.flatnonzero(self.residency.bitmap)
        snap = dict(zip(ids.tolist(),
                        zip(self._expiry_of[ids].tolist(),
                            self._seq_of[ids].tolist())))
        snap.update(self._over)
        return snap

    def contains_batch(self, keys: Sequence[int]) -> np.ndarray:
        """Residency of each key as a boolean array: one bitmap gather
        in dense mode, a dict sweep otherwise."""
        if self.residency is not None:
            return self.residency.contains_batch(
                np.asarray(keys, dtype=np.int64))
        return _dict_contains_batch(self._entries, keys)

    def priority_of(self, key: int) -> int:
        if self.residency is not None:
            key = int(key)
            if 0 <= key < self._key_space:
                if not self.residency.bitmap[key]:
                    raise KeyError(key)
                return max(0, int(self._expiry_of[key]) - self._age)
            expiry, _ = self._over[key]
            return max(0, expiry - self._age)
        expiry, _, _ = self._entries[key]
        return max(0, expiry - self._age)

    @property
    def is_full(self) -> bool:
        return len(self) >= self.capacity

    @property
    def key_space(self) -> int:
        """Dense-id universe this backend was built over (0 in dict
        mode).  Sharded construction asserts this against the router's
        per-shard universe — see the translation boundary in
        :mod:`repro.cache.sharding`."""
        return self._key_space

    def per_id_nbytes(self) -> int:
        """Bytes of state that scale with ``key_space``: the expiry/
        seqno/scratch vectors plus the residency bitmap (0 in dict
        mode — everything there scales with occupancy)."""
        if self.residency is None:
            return 0
        return int(self._expiry_of.nbytes + self._seq_of.nbytes
                   + self._scratch_pos.nbytes) + self.residency.nbytes

    def insert(self, key: int, priority: int) -> None:
        if key in self:
            self.set_priority(key, priority)
            return
        if self.is_full:
            raise RuntimeError("buffer full; evict first")
        seq = self._next_seq
        self._next_seq += 1
        if self.residency is not None:
            key = int(key)
            self._dense_store(key, priority, seq)
            self.residency.add(key)
            self._size += 1
            return
        self._store(key, priority, seq)

    def set_priority(self, key: int, priority: int) -> None:
        """Update priority; also refreshes recency (LRU tie-breaking)."""
        if key not in self:
            raise KeyError(key)
        seq = self._next_seq
        self._next_seq += 1
        if self.residency is not None:
            self._dense_store(int(key), priority, seq)
            return
        self._store(key, priority, seq)

    def set_priority_batch(self, keys: Sequence[int], priority: int) -> None:
        """Scalar :meth:`set_priority` per key, in order (exact seqno
        semantics); every key must be resident.  Dense mode runs the
        equivalent last-occurrence scatter in one pass (and, like the
        clock backend, validates residency before mutating)."""
        if self.residency is not None:
            arr = np.asarray(keys, dtype=np.int64)
            length = int(arr.size)
            if length == 0:
                return
            if arr.min() >= 0 and arr.max() < self._key_space:
                resident = self.residency.bitmap[arr]
                if not resident.all():
                    raise KeyError(int(arr[~resident][0]))
                uniq, last_pos = _last_occurrence(arr)
                base = self._next_seq
                self._expiry_of[uniq] = self._age + int(priority)
                self._seq_of[uniq] = base + last_pos
                self._next_seq = base + length
                return
            for key in arr.tolist():
                self.set_priority(key, priority)
            return
        for key in _as_key_list(keys):
            self.set_priority(key, priority)

    def demote(self, key: int) -> None:
        """Mark ``key`` as evict-next: priority 0, older than everything."""
        if key not in self:
            raise KeyError(key)
        self._min_seq -= 1
        if self.residency is not None:
            self._dense_store(int(key), 0, self._min_seq)
            return
        self._store(key, 0, self._min_seq)

    def demote_batch(self, keys: Sequence[int]) -> None:
        """Scalar :meth:`demote` per key, in order (reverse-demote
        eviction order preserved; dense mode scatters the equivalent
        descending seqnos in one pass)."""
        if self.residency is not None:
            arr = np.asarray(keys, dtype=np.int64)
            length = int(arr.size)
            if length == 0:
                return
            if arr.min() >= 0 and arr.max() < self._key_space:
                resident = self.residency.bitmap[arr]
                if not resident.all():
                    raise KeyError(int(arr[~resident][0]))
                uniq, last_pos = _last_occurrence(arr)
                base = self._min_seq
                self._expiry_of[uniq] = self._age
                self._seq_of[uniq] = base - 1 - last_pos
                self._min_seq = base - length
                return
            for key in arr.tolist():
                self.demote(key)
            return
        for key in _as_key_list(keys):
            self.demote(key)

    def put_batch(self, keys: Sequence[int], priority: int) -> None:
        """Bulk insert-or-``set_priority``, exactly equivalent to calling
        the scalar operations for each key in order.

        Only each key's *last* occurrence matters for its final
        (priority, seqno) pair, so one heap push per unique key suffices
        while ``_next_seq`` still advances by the full batch length —
        subsequent evictions see the same state a scalar loop would
        produce.  This is the primitive behind the manager's bulk
        demand-serving pre-pass, so it deliberately avoids per-key numpy
        round-trips (batches are often runs of a handful of hits).
        Dense mode instead runs the whole batch as one last-occurrence
        scatter (O(1) amortized per key); spillover ids fall back to
        the scalar sequence.
        """
        if self.residency is not None:
            self._put_batch_dense(keys, priority)
            return
        key_list = _as_key_list(keys)
        length = len(key_list)
        if length == 0:
            return
        last_pos: Dict[int, int] = {}
        for pos, key in enumerate(key_list):
            last_pos[key] = pos
        entries = self._entries
        new = sum(1 for key in last_pos if key not in entries)
        if len(entries) + new > self.capacity:
            raise RuntimeError("buffer full; evict first")
        base = self._next_seq
        store = self._store
        for key, pos in last_pos.items():
            store(key, priority, base + pos)
        self._next_seq = base + length

    def _store(self, key: int, priority: int, seq: int) -> None:
        self._version += 1
        self._entries[key] = (self._age + priority, seq, self._version)
        self._dirty.add(key)

    # -- dense (key_space) internals -----------------------------------
    def _dense_store(self, key: int, priority: int, seq: int) -> None:
        """Write one entry's (expiry, seqno); membership bookkeeping
        (residency bit, ``_size``) is the caller's job."""
        expiry = self._age + priority
        if 0 <= key < self._key_space:
            self._expiry_of[key] = expiry
            self._seq_of[key] = seq
        else:
            self._over[key] = (expiry, seq)

    def _put_batch_dense(self, keys: Sequence[int], priority: int) -> None:
        """Array-native ``put_batch``: one residency gather, one
        last-occurrence pass, two scatters."""
        arr = np.asarray(keys, dtype=np.int64)
        length = int(arr.size)
        if length == 0:
            return
        if arr.min() < 0 or arr.max() >= self._key_space:
            # Spillover ids present: capacity check up front, then the
            # scalar sequence (rare — unseen keys above the vocabulary).
            new = sum(1 for key in dict.fromkeys(arr.tolist())
                      if key not in self.residency)
            if self._size + new > self.capacity:
                raise RuntimeError("buffer full; evict first")
            for key in arr.tolist():
                if key in self.residency:
                    self.set_priority(key, priority)
                else:
                    self.insert(key, priority)
            return
        uniq, last_pos = _last_occurrence(arr)
        fresh = uniq[~self.residency.bitmap[uniq]]
        if self._size + fresh.size > self.capacity:
            raise RuntimeError("buffer full; evict first")
        base = self._next_seq
        self._expiry_of[uniq] = self._age + int(priority)
        self._seq_of[uniq] = base + last_pos
        if fresh.size:
            self.residency.bitmap[fresh] = True
            self._size += int(fresh.size)
        self._next_seq = base + length

    def _gather_entries(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All resident entries as (keys, expiry, seqno) arrays —
        the candidate pool for dense victim selection."""
        ids = np.flatnonzero(self.residency.bitmap)
        expiry = self._expiry_of[ids]
        seq = self._seq_of[ids]
        if self._over:
            over = self._over
            okeys = np.fromiter(over, dtype=np.int64, count=len(over))
            oexp = np.fromiter((entry[0] for entry in over.values()),
                               dtype=np.int64, count=len(over))
            oseq = np.fromiter((entry[1] for entry in over.values()),
                               dtype=np.int64, count=len(over))
            ids = np.concatenate((ids, okeys))
            expiry = np.concatenate((expiry, oexp))
            seq = np.concatenate((seq, oseq))
        return ids, expiry, seq

    def export_state(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All resident entries as ``(keys, effective_priority, seqno)``
        arrays (order unspecified) — the export half of the
        shard-rebalancing migration protocol (see "Rebalancing" in
        :mod:`repro.cache.sharding`).  Priorities come out *effective*
        (aging already applied, floored at 0), so an import into a
        fresh backend reproduces the same future victim sequence."""
        if self.residency is not None:
            ids, expiry, seq = self._gather_entries()
            return ids, np.maximum(0, expiry - self._age), seq
        count = len(self._entries)
        keys = np.fromiter(self._entries, dtype=np.int64, count=count)
        expiry = np.fromiter((self._entries[k][0] for k in keys.tolist()),
                             dtype=np.int64, count=count)
        seq = np.fromiter((self._entries[k][1] for k in keys.tolist()),
                          dtype=np.int64, count=count)
        return keys, np.maximum(0, expiry - self._age), seq

    def import_state(self, keys: Sequence[int], priorities: Sequence[int],
                     seqnos: Sequence[int]) -> None:
        """Load exported entries into an *empty* buffer.

        Keys must be unique and fit the capacity; seqnos must be unique
        per entry.  Future victim choices depend only on the priorities
        and the relative seqno order, so a caller may re-rank seqnos
        (e.g. to ``0..n-1``) without changing eviction behavior.
        """
        if len(self):
            raise RuntimeError("import_state requires an empty buffer")
        keys_arr = np.asarray(keys, dtype=np.int64)
        prio_arr = np.asarray(priorities, dtype=np.int64)
        seq_arr = np.asarray(seqnos, dtype=np.int64)
        if keys_arr.size > self.capacity:
            raise RuntimeError("buffer full; evict first")
        if keys_arr.size == 0:
            return
        if self.residency is not None:
            in_range = (keys_arr >= 0) & (keys_arr < self._key_space)
            dense = keys_arr[in_range]
            self._expiry_of[dense] = self._age + prio_arr[in_range]
            self._seq_of[dense] = seq_arr[in_range]
            # The full array: the index registers spillover ids in its
            # overflow set (membership would miss them otherwise).
            self.residency.add_batch(keys_arr)
            for key, p, s in zip(keys_arr[~in_range].tolist(),
                                 prio_arr[~in_range].tolist(),
                                 seq_arr[~in_range].tolist()):
                self._over[key] = (self._age + p, s)
            self._size = int(keys_arr.size)
        else:
            for key, p, s in zip(keys_arr.tolist(), prio_arr.tolist(),
                                 seq_arr.tolist()):
                self._store(key, p, s)
        self._next_seq = max(self._next_seq, int(seq_arr.max()) + 1)
        self._min_seq = min(self._min_seq, int(seq_arr.min()))

    @staticmethod
    def _choose_zero_victims(expiry: np.ndarray, seq: np.ndarray,
                             protect: np.ndarray, age: int,
                             count: int) -> np.ndarray:
        """Greedy victim choice for :meth:`serve_segment`: up to
        ``count`` candidate indices from the effective-priority-zero
        pool in ascending seqno order, where the victim of step ``j``
        must satisfy ``protect > j`` (its first in-segment touch, if
        any, comes after eviction ``j`` fires).

        Equivalent to the scalar loop's choice at every step: the
        zero-class victim is the smallest seqno not yet refreshed by
        the segment, and a candidate skipped once is refreshed for all
        later steps too.  Runs one ``argsort`` over the pool plus a
        short walk over its *protected* members only — unprotected runs
        between them are assigned wholesale.  A result shorter than
        ``count`` means the pool ran dry at that step.
        """
        pool = np.flatnonzero(expiry <= age)
        # The greedy needs at most `count` assignments plus however
        # many protected members get skipped, so only the smallest
        # (count + protected) seqnos can matter — partition those out
        # before the (much smaller) sort.
        depth = count + int(np.count_nonzero(protect[pool] < count))
        if depth < pool.size:
            pool = pool[np.argpartition(seq[pool], depth - 1)[:depth]]
        pool = pool[np.argsort(seq[pool])]
        pool_prot = protect[pool]
        prot_positions = np.flatnonzero(pool_prot < count)
        if not prot_positions.size:
            return pool[:count]
        assigned = 0
        cursor = 0
        cut = None
        skipped: List[int] = []
        for position in prot_positions.tolist():
            gap = position - cursor
            if assigned + gap >= count:
                cut = cursor + (count - assigned)
                break
            assigned += gap
            if int(pool_prot[position]) > assigned:
                assigned += 1
                if assigned == count:
                    cut = position + 1
                    break
            else:
                skipped.append(position)
            cursor = position + 1
        if cut is None:
            tail = pool.size - cursor
            cut = (cursor + (count - assigned)
                   if assigned + tail >= count else int(pool.size))
        kept = [position for position in skipped if position < cut]
        if not kept:
            return pool[:cut]
        mask = np.ones(cut, dtype=bool)
        mask[kept] = False
        return pool[:cut][mask]

    def _remove_victims_dense(self, victims: np.ndarray, count: int) -> None:
        """Drop ``victims`` (residency + spillover entries) and apply
        the ``count`` aging steps their evictions carry."""
        self.residency.discard_batch(victims)
        if self._over:
            over = self._over
            key_space = self._key_space
            for key in victims.tolist():
                if not 0 <= key < key_space:
                    del over[key]
        self._size -= count
        self._age += count

    def _flush_dirty(self) -> None:
        """Push the latest snapshot of every dirty key onto its heap.

        Deferred from :meth:`_store`: only the snapshot current at
        eviction time matters for victim selection, so intermediate
        updates never touch a heap.
        """
        age = self._age
        entries = self._entries
        for key in self._dirty:
            entry = entries.get(key)
            if entry is None:
                continue
            expiry, seq, ver = entry
            if expiry <= age:
                heapq.heappush(self._zero_heap, (seq, ver, expiry, key))
            else:
                heapq.heappush(self._live_heap, (expiry, seq, ver, key))
        self._dirty.clear()

    def evict_one(self) -> int:
        if self.residency is not None:
            if not self._size:
                raise RuntimeError("cannot evict from an empty buffer")
            return self._evict_batch_dense(1)[0]
        if not self._entries:
            raise RuntimeError("cannot evict from an empty buffer")
        if self._dirty:
            self._flush_dirty()
        # Migrate entries whose priority has decayed to zero.
        while self._live_heap and self._live_heap[0][0] <= self._age:
            expiry, seq, ver, key = heapq.heappop(self._live_heap)
            entry = self._entries.get(key)
            if entry is not None and entry == (expiry, seq, ver):
                heapq.heappush(self._zero_heap, (seq, ver, expiry, key))

        victim = self._pop_valid(self._zero_heap, zero=True)
        if victim is None:
            victim = self._pop_valid(self._live_heap, zero=False)
        if victim is None:
            raise RuntimeError("heap inconsistency: no valid victim found")
        del self._entries[victim]
        self._age += 1  # global aging: everyone's effective priority -1
        return victim

    def evict_batch(self, n: int) -> List[int]:
        """Evict ``n`` entries; exactly ``n`` consecutive
        :meth:`evict_one` calls.  In dict mode no stores interleave, so
        the dirty set is flushed at most once and the remaining pops
        run straight off the heaps (aging still applies between victims
        via ``_age``); dense mode computes the identical victim
        sequence in one vectorized selection
        (:func:`_exact_victim_sequence`)."""
        count = int(n)
        if count <= 0:
            return []
        if count > len(self):
            raise RuntimeError("cannot evict more entries than resident")
        if self.residency is not None:
            return self._evict_batch_dense(count)
        return [self.evict_one() for _ in range(count)]

    def _evict_batch_dense(self, count: int) -> List[int]:
        keys, expiry, seq = self._gather_entries()
        order, _ = _exact_victim_sequence(expiry, seq, self._age, count)
        victims = keys[order]
        self._remove_victims_dense(victims, count)
        return victims.tolist()

    def serve_segment(self, segment: np.ndarray, priority: int
                      ) -> Optional[Tuple[int, np.ndarray, List[int],
                                          np.ndarray]]:
        """Bulk exact demand-serve of a maximal segment prefix (dense
        mode only).

        State- and decision-equivalent to the scalar serving loop::

            for key in segment[:served]:
                if key in buffer: buffer.set_priority(key, priority)
                else:
                    if buffer.is_full: buffer.evict_one()
                    buffer.insert(key, priority)

        Returns ``None`` in dict mode, else ``(served, first_miss_positions,
        victims, uniq)``: how many leading accesses were served, the
        positions (within the served prefix) of each distinct
        non-resident key's first occurrence — the prefix's only misses
        — the victims in eviction order, and the served prefix's
        distinct keys (in first-touch order when every id fits the
        bitmap, sorted on the spillover fallback — don't rely on
        either).  ``served`` can fall short of the segment when
        bulk reclaim would stop being exact mid-segment; it is 0 (and
        nothing is mutated) only when not even the first access can be
        bulk-served — callers then serve a short slice through the
        scalar loop and try again.

        Why pre-reclaiming a prefix is exact: every in-segment store
        uses the same ``priority`` and draws a seqno above every
        pre-segment seqno, and eviction ``k`` happens at age
        ``_age + k`` regardless of how hits interleave with misses.  A
        victim that (a) holds effective priority zero at its step and
        (b) has not been touched by the prefix before that step
        therefore beats every segment-touched entry (smaller seqno
        within the zero class) and every live entry (zero effective
        priority) no matter where the prefix's hits land — the victim
        sequence, and with it every hit/miss decision, matches the
        scalar loop bit for bit.  Candidates the segment touches
        *before* an eviction are handled the way the scalar loop would:
        the refresh protects them, so victim selection skips them for
        that step onward (:meth:`_choose_zero_victims`).  The prefix is
        trimmed only where bulk selection genuinely cannot stand behind
        the outcome: at the first eviction that would need a
        mid-segment priority release or a positive-priority pop, or at
        the first re-access of a key evicted earlier in the segment
        (that access must re-miss, so the snapshot dies there — the
        eviction itself stays inside the prefix, serving right up to
        the offending access).
        """
        if self.residency is None:
            return None
        arr = np.asarray(segment, dtype=np.int64)
        length = int(arr.size)
        empty = np.zeros(0, dtype=np.int64)
        if length == 0:
            return 0, empty, [], empty
        size0 = self._size
        age0 = self._age
        capacity = self.capacity
        dense_seg = bool(arr.min() >= 0 and arr.max() < self._key_space)
        if dense_seg:
            # Linear segment indexing on the reusable scratch map: the
            # reversed scatter leaves each key's *first* position (last
            # write wins — pinned by a regression test), so positions
            # agreeing with the map are the first touches.  ``uniq``
            # comes out in first-touch order, not sorted; nothing below
            # relies on sortedness.
            idx = np.arange(length, dtype=np.int64)
            pos = self._scratch_pos
            pos[arr[::-1]] = idx[::-1]
            first_mask = pos[arr] == idx
            first_idx = np.flatnonzero(first_mask)
            uniq = arr[first_idx]
            res_u = self.residency.bitmap[uniq]
        else:
            uniq, first_idx = np.unique(arr, return_index=True)
            res_u = self.residency.contains_batch(uniq)
        if int(uniq.size) > capacity:
            # Wider than the buffer: trim to the longest prefix whose
            # distinct keys fit, so bulk serving still covers everything
            # up to the overflowing first touch.
            if not dense_seg:
                first_mask = np.zeros(length, dtype=bool)
                first_mask[first_idx] = True
            length = int(np.searchsorted(np.cumsum(first_mask), capacity,
                                         side="right"))
            if length == 0:
                return 0, empty, [], empty
            arr = arr[:length]
            keep = first_idx < length
            uniq = uniq[keep]
            first_idx = first_idx[keep]
            res_u = res_u[keep]
        new_u = ~res_u
        new_count = int(np.count_nonzero(new_u))
        n_evict = max(0, size0 + new_count - capacity)
        victims = empty
        evict_positions = empty
        if n_evict:
            keys, expiry, seq = self._gather_entries()
            # Eviction j fires right before the (free + 1 + j)-th
            # first-touch insert.  (Dense-path first_idx is already in
            # ascending position order; np.unique's is in key order.)
            first_miss_all = first_idx[new_u]
            if not dense_seg:
                first_miss_all = np.sort(first_miss_all)
            evict_positions = first_miss_all[capacity - size0:]
            # Per-candidate protection: a resident candidate first
            # touched by the segment at position t is refreshed (new
            # seqno above every pre-segment one) before any eviction
            # firing after t, so it is eligible as the victim of
            # eviction j only while j < protect — the count of
            # evictions firing before its touch.  Untouched candidates
            # carry protect = n_evict (always eligible).  Matching runs
            # over the (smaller) distinct-key side: the in-range
            # candidate ids are sorted, so each resident segment key
            # finds its candidate slot with one searchsorted — unless
            # spillover candidates could match (rare), which falls back
            # to scanning the candidate side.
            touch = np.full(keys.size, length, dtype=np.int64)
            protect = np.full(keys.size, n_evict, dtype=np.int64)
            is_seg = np.zeros(keys.size, dtype=bool)
            res_sel = np.flatnonzero(~new_u)
            if res_sel.size:
                res_keys = uniq[res_sel]
                if dense_seg or not self._over:
                    # In-range candidates lead the gather in sorted id
                    # order; spillover candidates (out-of-range ids)
                    # can never equal an in-range segment key.
                    limit = keys.size - len(self._over)
                    slot = np.minimum(np.searchsorted(keys[:limit],
                                                      res_keys),
                                      keys.size - 1)
                    matched = keys[slot] == res_keys
                    cand = slot[matched]
                else:
                    sorted_order = np.argsort(keys)
                    pos = np.minimum(
                        np.searchsorted(keys[sorted_order], res_keys),
                        keys.size - 1)
                    matched = keys[sorted_order[pos]] == res_keys
                    cand = sorted_order[pos[matched]]
                is_seg[cand] = True
                touch[cand] = first_idx[res_sel[matched]]
                protect[cand] = np.searchsorted(
                    evict_positions, touch[cand], side="right")
            chosen = self._choose_zero_victims(expiry, seq, protect,
                                               age0, n_evict)
            trim = length
            if chosen.size < n_evict:
                # The priority-zero pool (with protection skips) ran
                # dry: later victims would need mid-segment priority
                # releases or positive-priority pops — stop before the
                # first eviction bulk selection cannot stand behind.
                trim = int(evict_positions[chosen.size])
            if chosen.size:
                # A still-live entry whose priority ripens mid-batch
                # can preempt with an older seqno; stop before the
                # first eviction it could reach (conservative, rare).
                late = (expiry > age0) & (expiry <= age0 + n_evict - 1)
                if late.any():
                    smax = int(seq[chosen[-1]])
                    inter = late & (seq < smax)
                    if inter.any():
                        release = int((expiry[inter] - age0).min())
                        trim = min(trim, int(evict_positions[release]))
                # A victim evicted before its only touch must re-miss
                # at that touch: serve right up to it (the eviction
                # itself stays inside the prefix).
                chosen_seg = is_seg[chosen]
                if chosen_seg.any():
                    trim = min(trim, int(touch[chosen[chosen_seg]].min()))
            if trim < length:
                # The protected-greedy selection is prefix-stable, so
                # the trimmed prefix's analysis is a slice of the full
                # one — no recomputation.
                if trim == 0:
                    return 0, empty, [], empty
                length = trim
                arr = arr[:length]
                keep = first_idx < length
                uniq = uniq[keep]
                first_idx = first_idx[keep]
                new_u = new_u[keep]
                new_count = int(np.count_nonzero(new_u))
                n_evict = max(0, size0 + new_count - capacity)
                evict_positions = evict_positions[:n_evict]
            if n_evict:
                # Advances _age to age0 + n_evict; the store expiries
                # below use the per-position interleaved ages.
                victims = keys[chosen[:n_evict]]
                self._remove_victims_dense(victims, n_evict)
            else:
                victims = empty
        base = self._next_seq
        if dense_seg:
            # Forward scatter: each key's map entry ends at its *last*
            # position; ``uniq`` keys all occur in (the possibly
            # trimmed) ``arr``, so every read is fresh.
            pos = self._scratch_pos
            pos[arr] = np.arange(length, dtype=np.int64)
            last_pos = pos[uniq]
        else:
            _, last_pos = _last_occurrence(arr)
        seq_vals = base + last_pos
        if n_evict:
            indicator = np.zeros(length, dtype=np.int64)
            indicator[evict_positions] = 1
            store_age = age0 + np.cumsum(indicator)
            expiry_vals = store_age[last_pos] + int(priority)
        else:
            expiry_vals = np.full(uniq.size, age0 + int(priority),
                                  dtype=np.int64)
        in_range = (None if dense_seg
                    else (uniq >= 0) & (uniq < self._key_space))
        if dense_seg or in_range.all():
            self._expiry_of[uniq] = expiry_vals
            self._seq_of[uniq] = seq_vals
            self.residency.bitmap[uniq] = True
        else:
            dense_keys = uniq[in_range]
            self._expiry_of[dense_keys] = expiry_vals[in_range]
            self._seq_of[dense_keys] = seq_vals[in_range]
            over = self._over
            spill = ~in_range
            for spill_key, spill_exp, spill_seq in zip(
                    uniq[spill].tolist(), expiry_vals[spill].tolist(),
                    seq_vals[spill].tolist()):
                over[spill_key] = (spill_exp, spill_seq)
            self.residency.add_batch(uniq)
        self._size += new_count
        self._next_seq = base + length
        return length, first_idx[new_u], victims.tolist(), uniq

    def _pop_valid(self, heap: List[Tuple[int, int, int, int]],
                   zero: bool) -> Optional[int]:
        while heap:
            if zero:
                seq, ver, expiry, key = heap[0]
            else:
                expiry, seq, ver, key = heap[0]
            entry = self._entries.get(key)
            if entry is not None and entry == (expiry, seq, ver):
                heapq.heappop(heap)
                return key
            heapq.heappop(heap)  # stale
        return None


class ClockBuffer:
    """Array-backed approximate-priority buffer (CLOCK sweep).

    Entries live in fixed numpy slot arrays (``key`` / ``priority`` /
    ``valid``) turned into a circular list by a hand position.
    ``insert`` fills a free slot, ``set_priority`` writes the slot's
    priority (the multi-bit analogue of CLOCK's reference bit),
    ``demote`` zeroes it.

    Membership bookkeeping has two modes:

    * default (``key_space=None``): a key→slot dict, as any key fits;
    * dense (``key_space=N``): a dense ``id → slot`` int vector plus a
      :class:`~repro.cache.residency.ResidencyIndex` bitmap maintained
      incrementally on every insert/eviction.  ``contains_batch`` is a
      bitmap gather, ``put_batch``/``set_priority_batch`` are pure
      numpy scatters, and ``evict_batch`` clears victims in bulk — no
      per-key dict traffic anywhere on the serving hot path.  Ids
      outside ``[0, N)`` (the manager's unseen-key ids above the
      vocabulary) spill to a side dict; the two modes are behaviorally
      identical (fuzz-checked in ``tests/test_buffer_differential.py``).

    :meth:`evict_batch` is the point of the backend: one call reclaims
    many slots by harvesting priority-zero slots in hand order and,
    whenever a sweep runs dry, aging *every* survivor by the minimum
    surviving priority in a single vectorized subtraction.  Aging
    therefore happens once per full sweep instead of once per eviction
    — the approximation that lets a whole batch of evictions cost
    O(capacity) numpy work rather than O(batch · log n) heap pops —
    and collapsing the aging passes into one subtraction yields
    provably identical victims (intermediate −1 passes harvest
    nothing).  Within one call the victims come out in nondecreasing
    pre-call priority, and no victim has a higher pre-call priority
    than any survivor; among equal priorities the hand position (not
    insertion order) breaks ties.  Those invariants are fuzz-checked in
    ``tests/test_buffer_differential.py``.
    """

    #: Victim order approximates Algorithm 2 (hand-order tie-breaking,
    #: per-sweep aging); the manager must not expect exact-backend
    #: victim equivalence.
    approximate = True

    #: ``make_buffer`` forwards ``key_space=`` to this backend only.
    supports_key_space = True

    def __init__(self, capacity: int,
                 key_space: Optional[int] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._key = np.full(capacity, -1, dtype=np.int64)
        self._prio = np.zeros(capacity, dtype=np.int64)
        self._valid = np.zeros(capacity, dtype=bool)
        # Popping the free list hands out slots 0, 1, 2, ... first.
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self._hand = 0
        if key_space is None:
            self._key_space = 0
            self._slot: Optional[Dict[int, int]] = {}
            self._slot_of: Optional[np.ndarray] = None
            self._slot_over: Optional[Dict[int, int]] = None
            self.residency: Optional[ResidencyIndex] = None
        else:
            if key_space < 1:
                raise ValueError("key_space must be >= 1")
            self._key_space = int(key_space)
            self._slot = None
            self._slot_of = np.full(self._key_space, -1, dtype=np.int64)
            self._slot_over = {}
            self.residency = ResidencyIndex(self._key_space)

    # -- membership bookkeeping (dict vs dense mode) -------------------
    def _slot_for(self, key: int) -> int:
        """Slot of ``key``, or -1 when not resident."""
        if self._slot_of is None:
            return self._slot.get(key, -1)
        if 0 <= key < self._key_space:
            return int(self._slot_of[key])
        return self._slot_over.get(key, -1)

    def _map_add(self, key: int, slot: int) -> None:
        if self._slot_of is None:
            self._slot[key] = slot
            return
        if 0 <= key < self._key_space:
            self._slot_of[key] = slot
        else:
            self._slot_over[key] = slot
        self.residency.add(key)

    def _map_discard_batch(self, victim_keys: np.ndarray) -> None:
        if self._slot_of is None:
            slot_map = self._slot
            for key in victim_keys.tolist():
                del slot_map[key]
            return
        if self._slot_over:
            in_range = ((victim_keys >= 0)
                        & (victim_keys < self._key_space))
            self._slot_of[victim_keys[in_range]] = -1
            over = self._slot_over
            for key in victim_keys[~in_range].tolist():
                del over[key]
        else:
            self._slot_of[victim_keys] = -1
        self.residency.discard_batch(victim_keys)

    # ------------------------------------------------------------------
    def __contains__(self, key: int) -> bool:
        if self._slot_of is None:
            return key in self._slot
        return self._slot_for(int(key)) >= 0

    def __len__(self) -> int:
        return self.capacity - len(self._free)

    def keys(self) -> Iterator[int]:
        return iter(self._key[self._valid].tolist())

    def residency_map(self) -> Dict[int, int]:
        """Read-only key→slot view for membership classification.

        Live in dict mode; a *snapshot* in dense (``key_space``) mode —
        bulk call sites should prefer :meth:`contains_batch`, which is
        always live and array-speed.
        """
        if self._slot_of is None:
            return self._slot
        slots = np.flatnonzero(self._valid)
        return dict(zip(self._key[slots].tolist(), slots.tolist()))

    def contains_batch(self, keys: Sequence[int]) -> np.ndarray:
        """Residency of each key as a boolean array: one bitmap gather
        in dense mode, a dict sweep otherwise."""
        if self.residency is not None:
            return self.residency.contains_batch(
                np.asarray(keys, dtype=np.int64))
        return _dict_contains_batch(self._slot, keys)

    def priority_of(self, key: int) -> int:
        slot = self._slot_for(int(key))
        if slot < 0:
            raise KeyError(key)
        return int(self._prio[slot])

    @property
    def is_full(self) -> bool:
        return not self._free

    @property
    def key_space(self) -> int:
        """Dense-id universe this backend was built over (0 in dict
        mode).  Sharded construction asserts this against the router's
        per-shard universe — see the translation boundary in
        :mod:`repro.cache.sharding`."""
        return self._key_space

    def per_id_nbytes(self) -> int:
        """Bytes of state that scale with ``key_space``: the id→slot
        vector plus the residency bitmap (0 in dict mode; the slot
        arrays scale with capacity, not the universe)."""
        if self._slot_of is None:
            return 0
        return int(self._slot_of.nbytes) + self.residency.nbytes

    def insert(self, key: int, priority: int) -> None:
        """Insert (or refresh) ``key``; caller must ensure space.

        Priorities clamp to >= 0: the sweep harvests exactly the
        priority-zero class, so a negative priority (meaningful to the
        exact backends' seqno order) would otherwise never ripen.
        """
        key = int(key)
        slot = self._slot_for(key)
        if slot >= 0:
            self._prio[slot] = max(0, priority)
            return
        if not self._free:
            raise RuntimeError("buffer full; evict first")
        slot = self._free.pop()
        self._map_add(key, slot)
        self._key[slot] = key
        self._prio[slot] = max(0, priority)
        self._valid[slot] = True

    def set_priority(self, key: int, priority: int) -> None:
        """Update priority, clamped to >= 0 (recency is approximated by
        the hand)."""
        slot = self._slot_for(int(key))
        if slot < 0:
            raise KeyError(key)
        self._prio[slot] = max(0, priority)

    def set_priority_batch(self, keys: Sequence[int], priority: int) -> None:
        """Bulk :meth:`set_priority`: one vectorized scatter in dense
        mode; every key must be resident."""
        arr = np.asarray(keys, dtype=np.int64)
        if arr.size == 0:
            return
        if (self._slot_of is not None
                and arr.min() >= 0 and arr.max() < self._key_space):
            slots = self._slot_of[arr]
            if (slots < 0).any():
                raise KeyError(int(arr[slots < 0][0]))
            self._prio[slots] = max(0, int(priority))
            return
        for key in arr.tolist():
            self.set_priority(key, priority)

    def demote(self, key: int) -> None:
        """Mark ``key`` as evict-soon: priority 0, reclaimed by the
        next sweep to reach its slot (hand order, not exact order)."""
        self.set_priority(key, 0)

    def demote_batch(self, keys: Sequence[int]) -> None:
        """Bulk :meth:`demote` (priority-zero scatter)."""
        self.set_priority_batch(keys, 0)

    def put_batch(self, keys: Sequence[int], priority: int) -> None:
        """Bulk insert-or-refresh at ``priority``.  Raises
        ``RuntimeError`` (like :meth:`insert`) before mutating anything
        if the new keys exceed the free space.

        This is the serving hot path.  In dense mode membership,
        first-touch ordering and the slot writes all run as numpy
        gathers/scatters; in dict mode membership resolves through one
        dict pass and the slot writes land as two vectorized
        assignments.  Either way new keys receive slots in *first-touch
        order* — slot order feeds the hand's tie-breaking, so it must
        follow the access stream, not hash order (regression-tested).
        """
        if self._slot_of is not None:
            self._put_batch_dense(keys, priority)
            return
        key_list = _as_key_list(keys)
        if not key_list:
            return
        slot_map = self._slot
        slots: List[int] = []
        new_keys: List[int] = []
        for key in key_list:
            slot = slot_map.get(key)
            if slot is None:
                new_keys.append(key)
            else:
                slots.append(slot)
        if new_keys:
            # dict.fromkeys, not set(): sets iterate in integer-hash
            # order, which used to scramble slot assignment (and thus
            # hand-order victim tie-breaking) away from first-touch
            # order.
            new_list = list(dict.fromkeys(new_keys))
            if len(self) + len(new_list) > self.capacity:
                raise RuntimeError("buffer full; evict first")
            free = self._free
            new_slots = [free.pop() for _ in new_list]
            for key, slot in zip(new_list, new_slots):
                slot_map[key] = slot
            idx = np.asarray(new_slots, dtype=np.intp)
            self._key[idx] = np.asarray(new_list, dtype=np.int64)
            slots.extend(new_slots)
        idx = np.asarray(slots, dtype=np.intp)
        self._prio[idx] = max(0, int(priority))
        self._valid[idx] = True

    def _put_batch_dense(self, keys: Sequence[int], priority: int) -> None:
        """Array-native ``put_batch``: membership via the slot vector,
        first-touch ordering via ``np.unique``, slot writes as scatters."""
        arr = np.asarray(keys, dtype=np.int64)
        if arr.size == 0:
            return
        if arr.min() < 0 or arr.max() >= self._key_space:
            # Spillover ids present: capacity check up front, then the
            # scalar sequence (rare — unseen keys above the vocabulary).
            new = [key for key in dict.fromkeys(arr.tolist())
                   if self._slot_for(key) < 0]
            if len(self) + len(new) > self.capacity:
                raise RuntimeError("buffer full; evict first")
            for key in arr.tolist():
                self.insert(key, priority)
            return
        slots = self._slot_of[arr]
        new_mask = slots < 0
        if new_mask.any():
            # First occurrence of each new key, in segment order: the
            # same first-touch slot-assignment contract as the dict
            # path's dict.fromkeys.
            uniq, first = np.unique(arr[new_mask], return_index=True)
            new_ordered = uniq[np.argsort(first, kind="stable")]
            count = int(new_ordered.size)
            free = self._free
            if len(self) + count > self.capacity:
                raise RuntimeError("buffer full; evict first")
            # free.pop() order = the tail of the free list, reversed.
            new_slots = np.asarray(free[len(free) - count:][::-1],
                                   dtype=np.int64)
            del free[len(free) - count:]
            self._slot_of[new_ordered] = new_slots
            self.residency.add_batch(new_ordered)
            self._key[new_slots] = new_ordered
            touched = np.concatenate((slots[~new_mask], new_slots))
        else:
            touched = slots
        self._prio[touched] = max(0, int(priority))
        self._valid[touched] = True

    def export_state(self) -> Tuple[np.ndarray, np.ndarray]:
        """Resident ``(keys, priority)`` arrays in circular hand order
        (starting at the slot the sweep would examine next) — the
        export half of the shard-rebalancing migration protocol (see
        "Rebalancing" in :mod:`repro.cache.sharding`).  An import in
        this order into a fresh backend reproduces the same sweep
        sequence."""
        slots = np.flatnonzero(self._valid)
        split = int(np.searchsorted(slots, self._hand))
        ordered = np.concatenate((slots[split:], slots[:split]))
        return self._key[ordered].copy(), self._prio[ordered].copy()

    def import_state(self, keys: Sequence[int],
                     priorities: Sequence[int]) -> None:
        """Load exported ``(key, priority)`` pairs into an *empty*
        buffer, preserving order: entry ``i`` takes slot ``i`` and the
        hand starts at 0, so the sweep visits the entries in the order
        given (hand-order tie-breaking is part of the migration
        contract).  Keys must be unique and fit the capacity."""
        if len(self):
            raise RuntimeError("import_state requires an empty buffer")
        keys_arr = np.asarray(keys, dtype=np.int64)
        prio_arr = np.asarray(priorities, dtype=np.int64)
        if keys_arr.size > self.capacity:
            raise RuntimeError("buffer full; evict first")
        for key, p in zip(keys_arr.tolist(), prio_arr.tolist()):
            self.insert(key, p)

    def evict_one(self) -> int:
        if not len(self):
            raise RuntimeError("cannot evict from an empty buffer")
        return self.evict_batch(1)[0]

    def _avoid_slot_mask(self, avoid: Sequence[int]) -> np.ndarray:
        """Boolean per-slot mask of the resident ``avoid`` keys (one
        gather for the in-range ids; only spillover ids loop)."""
        mask = np.zeros(self.capacity, dtype=bool)
        arr = np.asarray(avoid, dtype=np.int64)
        if arr.size == 0:
            return mask
        if self._slot_of is not None:
            in_range = (arr >= 0) & (arr < self._key_space)
            slots = self._slot_of[arr[in_range]]
            mask[slots[slots >= 0]] = True
            arr = arr[~in_range]
        for key in arr.tolist():
            slot = self._slot_for(int(key))
            if slot >= 0:
                mask[slot] = True
        return mask

    def evict_batch(self, n: int,
                    avoid: Optional[Sequence[int]] = None) -> List[int]:
        """Reclaim ``n`` slots with a batched clock sweep; returns the
        victim keys in eviction order (see class docstring for the
        ordering guarantees).

        ``avoid`` (optional) *protects* the given keys: the sweep
        harvests and ages as if their slots were not there, so none of
        them is ever a victim — the clock analogue of the exact
        engine's protection-aware victim selection
        (:meth:`FastPriorityBuffer._choose_zero_victims`).  The batched
        serving engines pass the segment being served, so a reclaim
        never evicts a key it is about to refresh (which a scalar
        pre-touch loop would re-fetch one access later).  At least
        ``n`` non-protected entries must be resident
        (``RuntimeError`` otherwise).
        """
        count = int(n)
        if count <= 0:
            return []
        valid = self._valid
        prio = self._prio
        if avoid is not None:
            eligible = valid & ~self._avoid_slot_mask(avoid)
        else:
            eligible = valid
        if count > int(np.count_nonzero(eligible)):
            raise RuntimeError("cannot evict more entries than resident")
        victims: List[int] = []
        while count:
            zeros = np.flatnonzero(eligible & (prio == 0))
            if zeros.size:
                # Circular hand order: slots at/after the hand first.
                split = int(np.searchsorted(zeros, self._hand))
                ordered = np.concatenate((zeros[split:], zeros[:split]))
                take = ordered[:count]
                victim_keys = self._key[take]
                valid[take] = False
                if eligible is not valid:
                    eligible[take] = False
                self._map_discard_batch(victim_keys)
                self._free.extend(take.tolist())
                victims.extend(victim_keys.tolist())
                count -= int(take.size)
                self._hand = int(take[-1] + 1) % self.capacity
            if count:
                # Sweep ran dry: every eligible survivor holds a
                # positive priority (all zeros were consumed), and −1
                # passes that harvest nothing only delay the inevitable
                # — age by the minimum surviving priority in a single
                # vectorized subtraction.  Victims are identical to
                # repeated −1 sweeps; the cost drops from
                # O(min_prio · capacity) to O(capacity).  Aging applies
                # to every valid slot (protected ones age too, exactly
                # as they would if the sweep passed over them).
                step = prio[eligible].min()
                np.subtract(prio, step, out=prio, where=valid)
                if avoid is not None:
                    # Protected slots can sit below the eligible
                    # minimum; priorities are floored at zero.
                    np.maximum(prio, 0, out=prio)
        return victims


#: Registry behind the ``buffer_impl=`` knob (manager, dlrm inference,
#: prefetch harness): exact reference, exact fast, approximate clock.
BUFFER_IMPLS = {
    "reference": PriorityBuffer,
    "fast": FastPriorityBuffer,
    "clock": ClockBuffer,
}


def make_buffer(impl: str, capacity: int,
                key_space: Optional[int] = None,
                num_shards: int = 1,
                shard_policy: str = "contiguous",
                shard_weights=None):
    """Instantiate a buffer backend by registry name.

    ``key_space`` (dense-id universe size) selects array-native
    membership — a :class:`~repro.cache.residency.ResidencyIndex`
    bitmap behind ``contains_batch`` on every built-in backend, plus
    fully array-native entries on the clock and fast backends.  A
    registered backend that does not declare ``supports_key_space``
    raises ``ValueError`` instead of silently ignoring the argument
    (callers passing a dense universe are owed the dense behavior).

    ``num_shards > 1`` wraps ``num_shards`` independent dense-mode
    backends in a :class:`~repro.cache.sharding.ShardedBuffer`
    partitioning ``[0, key_space)`` by ``shard_policy`` (see
    :data:`~repro.cache.sharding.SHARD_POLICIES`); it *requires*
    ``key_space`` — the routers partition the dense id universe, so a
    dict-membership sharded buffer would have nothing to route over —
    and raises ``ValueError`` without it, mirroring the
    ``supports_key_space`` rejection above.  Each shard's backend is
    built over the router's *compressed* per-shard universe (so sharded
    per-id memory matches the single-shard footprint — see the
    translation boundary in :mod:`repro.cache.sharding`), and
    ``shard_weights`` (optional, one positive weight per shard) splits
    the capacity proportionally instead of uniformly.  ``num_shards=1``
    (the default) returns the bare backend: only real sharding pays the
    routing layer (``shard_weights`` is rejected there — there is
    nothing to weight).
    """
    num_shards = 1 if num_shards is None else int(num_shards)
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if num_shards > 1:
        if key_space is None:
            raise ValueError(
                f"num_shards={num_shards} requires key_space=; the shard "
                f"routers partition the dense id universe [0, key_space)")
        if impl not in BUFFER_IMPLS:
            raise ValueError(
                f"unknown buffer_impl {impl!r}; choose from "
                f"{sorted(BUFFER_IMPLS)}")
        if not getattr(BUFFER_IMPLS[impl], "supports_key_space", False):
            raise ValueError(
                f"buffer_impl {impl!r} does not support key_space=; it "
                f"would silently fall back to dict membership")
        from .sharding import ShardedBuffer  # lazy: sharding imports us

        return ShardedBuffer(impl, capacity, key_space=key_space,
                             num_shards=num_shards,
                             shard_policy=shard_policy,
                             shard_weights=shard_weights)
    if shard_weights is not None:
        raise ValueError("shard_weights requires num_shards > 1")
    try:
        cls = BUFFER_IMPLS[impl]
    except KeyError:
        raise ValueError(
            f"unknown buffer_impl {impl!r}; choose from "
            f"{sorted(BUFFER_IMPLS)}") from None
    if key_space is not None:
        if not getattr(cls, "supports_key_space", False):
            raise ValueError(
                f"buffer_impl {impl!r} does not support key_space=; it "
                f"would silently fall back to dict membership")
        return cls(capacity, key_space=key_space)
    return cls(capacity)
