"""Exact Belady MIN simulation (clairvoyant optimal replacement).

Belady's algorithm evicts the cached key whose next use is farthest in
the future.  This implementation additionally *bypasses* on insertion:
a missing key whose next use lies beyond every cached key's next use is
not cached at all.  A software-managed GPU buffer can always bypass, so
this is the correct optimum for the paper's setting and it coincides
with OPTgen's feasibility argument (see :mod:`repro.cache.optgen`).

With the whole trace known in advance, next-use indices are precomputed,
and a lazy max-heap yields O(n log n) total time.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

import numpy as np

from ..traces.access import Trace
from .base import CacheStats

#: Sentinel meaning "never used again".
NEVER = np.iinfo(np.int64).max


def next_use_indices(keys: np.ndarray) -> np.ndarray:
    """``next_use[i]`` = next index at which ``keys[i]`` recurs (or NEVER).

    Thin wrapper over the vectorized
    :func:`repro.traces.reuse.next_occurrence_indices` (whose sentinel
    for "never" is −1), mapping the sentinel to :data:`NEVER` so the
    max-heap comparisons below stay monotone.
    """
    from ..traces.reuse import next_occurrence_indices

    next_use = next_occurrence_indices(np.asarray(keys))
    next_use[next_use < 0] = NEVER
    return next_use


def simulate_belady(trace: Trace, capacity: int,
                    record_decisions: bool = False
                    ) -> Tuple[CacheStats, np.ndarray]:
    """Run exact MIN over ``trace`` with a fully associative cache.

    Returns (stats, decisions) where decisions is the per-access hit
    array if requested (else empty).
    """
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    keys = trace.keys()
    next_use = next_use_indices(keys)
    stats = CacheStats()
    cached_next: Dict[int, int] = {}
    # Max-heap via negated next-use, lazily invalidated.
    heap: List[Tuple[int, int]] = []
    decisions = np.zeros(len(keys), dtype=bool) if record_decisions else np.empty(0, bool)

    for i in range(len(keys)):
        key = int(keys[i])
        hit = key in cached_next
        stats.record(hit)
        if record_decisions:
            decisions[i] = hit
        if not hit and len(cached_next) >= capacity:
            # Find the farthest-next-use cached key (lazy invalidation).
            while heap:
                neg_nxt, victim = heapq.heappop(heap)
                if cached_next.get(victim) == -neg_nxt:
                    if int(next_use[i]) >= -neg_nxt:
                        # Bypass: the incoming key is reused no sooner
                        # than every cached key; keep the cache as is.
                        heapq.heappush(heap, (neg_nxt, victim))
                        break
                    del cached_next[victim]
                    break
            else:
                raise RuntimeError("Belady heap drained without victim")
            if key not in cached_next and len(cached_next) >= capacity:
                continue  # bypassed
        cached_next[key] = int(next_use[i])
        heapq.heappush(heap, (-int(next_use[i]), key))
    return stats, decisions


def belady_hit_rate(trace: Trace, capacity: int) -> float:
    stats, _ = simulate_belady(trace, capacity)
    return stats.hit_rate
