"""Set-associative cache simulator with prefetch support (ChampSim stand-in).

The paper's Fig. 15 / Table IV experiments run ChampSim with a 32-way
set-associative cache, treating each embedding-vector index as an
address and the embedding-table id as the PC.  This module provides the
equivalent simulator: pluggable replacement (see
:mod:`repro.cache.replacement`), prefetch fills with per-line useful-bit
tracking, and the statistics the paper reports (hit rate, prefetch
accuracy, total prefetches).

**Prefetch accounting semantics** (unified across the repo): a prefetch
counts as *issued* only when it actually fills the cache; requests for
keys already resident are tallied separately as ``duplicate_requests``
and do not enter the ``prefetch_accuracy`` denominator.  This matches
:class:`repro.prefetch.harness.LRUBufferWithPrefetch` and
:class:`repro.core.manager.RecMGManager`, keeping accuracy comparable
across the Fig. 14 and Table IV breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .base import CacheStats
from .replacement import ReplacementPolicy


def mix64(key: int) -> int:
    """SplitMix64 finalizer — spreads packed keys across sets."""
    key = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    key = (key ^ (key >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return key ^ (key >> 31)


@dataclass
class PrefetchStats:
    """Prefetch effectiveness counters (paper Table IV).

    ``issued`` counts prefetches that actually filled a line (the
    unified repo-wide semantic; see module docstring), so it always
    equals ``filled``; requests dropped because the key was already
    cached land in ``duplicate_requests``.
    """

    issued: int = 0
    filled: int = 0
    useful: int = 0
    evicted_unused: int = 0
    duplicate_requests: int = 0

    @property
    def accuracy(self) -> float:
        """Useful prefetches over prefetches issued (real fills)."""
        return self.useful / self.issued if self.issued else 0.0


class SetAssociativeCache:
    """N-way set-associative cache over integer keys.

    ``capacity`` is in lines; ``ways`` defaults to the paper's 32.  The
    replacement policy is constructed by the caller so that its state
    dimensions match.
    """

    def __init__(self, capacity: int, ways: int = 32,
                 policy: Optional[ReplacementPolicy] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.ways = min(ways, capacity)
        self.num_sets = max(1, capacity // self.ways)
        self.capacity = self.num_sets * self.ways
        if policy is None:
            from .replacement import LRUReplacement
            policy = LRUReplacement(self.num_sets, self.ways)
        if policy.num_sets != self.num_sets or policy.ways != self.ways:
            raise ValueError("policy dimensions do not match cache geometry")
        self.policy = policy
        # tags[set][way] = key or -1; prefetch bit marks unused prefetches.
        self._tags = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
        self._prefetch_bit = np.zeros((self.num_sets, self.ways), dtype=bool)
        self._lookup: Dict[int, int] = {}  # key -> set*ways + way
        self.stats = CacheStats()
        self.prefetch_stats = PrefetchStats()

    # ------------------------------------------------------------------
    def _set_of(self, key: int) -> int:
        return mix64(key) % self.num_sets

    def __contains__(self, key: int) -> bool:
        return key in self._lookup

    def __len__(self) -> int:
        return len(self._lookup)

    # ------------------------------------------------------------------
    def access(self, key: int, pc: int = 0) -> bool:
        """Demand access; fills on miss. Returns hit."""
        slot = self._lookup.get(key)
        if slot is not None:
            set_idx, way = divmod(slot, self.ways)
            if self._prefetch_bit[set_idx, way]:
                self.prefetch_stats.useful += 1
                self._prefetch_bit[set_idx, way] = False
            self.policy.on_hit(set_idx, way, pc, key)
            self.stats.record(True)
            return True
        self.stats.record(False)
        self._fill(key, pc, is_prefetch=False)
        return False

    def prefetch(self, key: int, pc: int = 0) -> bool:
        """Prefetch fill; no-op if already cached. Returns True if filled.

        Only real fills count as issued (unified accounting semantic);
        an already-cached key bumps ``duplicate_requests`` instead.
        """
        if key in self._lookup:
            self.prefetch_stats.duplicate_requests += 1
            return False
        self.prefetch_stats.issued += 1
        self._fill(key, pc, is_prefetch=True)
        self.prefetch_stats.filled += 1
        return True

    def _fill(self, key: int, pc: int, is_prefetch: bool) -> None:
        set_idx = self._set_of(key)
        row = self._tags[set_idx]
        empty = np.nonzero(row == -1)[0]
        if empty.size:
            way = int(empty[0])
        else:
            way = self.policy.victim(set_idx, pc, key)
            old_key = int(row[way])
            if self._prefetch_bit[set_idx, way]:
                self.prefetch_stats.evicted_unused += 1
            self.policy.on_evict(set_idx, way, old_key)
            del self._lookup[old_key]
        row[way] = key
        self._prefetch_bit[set_idx, way] = is_prefetch
        self._lookup[key] = set_idx * self.ways + way
        self.policy.on_fill(set_idx, way, pc, key, is_prefetch)
