"""OPTgen: per-access optimal caching decisions and training labels.

OPTgen (Jain & Lin, "Back to the Future", ISCA'16) decides, for each
access, whether Belady's OPT *would have cached* the referenced line.
It maintains an *occupancy vector* over time: a reuse interval
``(prev_use, now)`` can be cached iff occupancy is below capacity at
every time slot in the interval; if so the line hits and the interval's
occupancy increments.

RecMG uses OPTgen offline to label its training data (paper §VI-A):

* **caching trace** — per-access binary "should this vector stay in the
  buffer" (we label an access cache-friendly when its *next* reuse would
  hit under OPT — the Hawkeye training signal);
* **prefetch trace** — the subsequence of accesses that still miss under
  OPT, which the prefetch model learns to predict.

The occupancy vector is a lazy segment tree (range max / range add), so
the whole pass is O(n log n).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..traces.access import Trace
from .base import CacheStats


class _MaxSegmentTree:
    """Iterative lazy segment tree: range add, range max."""

    def __init__(self, size: int) -> None:
        self.n = max(1, size)
        self._max = np.zeros(4 * self.n, dtype=np.int64)
        self._lazy = np.zeros(4 * self.n, dtype=np.int64)

    def _push(self, node: int) -> None:
        lazy = self._lazy[node]
        if lazy:
            for child in (2 * node, 2 * node + 1):
                self._max[child] += lazy
                self._lazy[child] += lazy
            self._lazy[node] = 0

    def add(self, lo: int, hi: int, value: int) -> None:
        """Add ``value`` over [lo, hi] inclusive."""
        self._add(1, 0, self.n - 1, lo, hi, value)

    def _add(self, node: int, nlo: int, nhi: int, lo: int, hi: int, value: int) -> None:
        if hi < nlo or nhi < lo:
            return
        if lo <= nlo and nhi <= hi:
            self._max[node] += value
            self._lazy[node] += value
            return
        self._push(node)
        mid = (nlo + nhi) // 2
        self._add(2 * node, nlo, mid, lo, hi, value)
        self._add(2 * node + 1, mid + 1, nhi, lo, hi, value)
        self._max[node] = max(self._max[2 * node], self._max[2 * node + 1])

    def range_max(self, lo: int, hi: int) -> int:
        return self._range_max(1, 0, self.n - 1, lo, hi)

    def _range_max(self, node: int, nlo: int, nhi: int, lo: int, hi: int) -> int:
        if hi < nlo or nhi < lo:
            return np.iinfo(np.int64).min
        if lo <= nlo and nhi <= hi:
            return int(self._max[node])
        self._push(node)
        mid = (nlo + nhi) // 2
        return max(
            self._range_max(2 * node, nlo, mid, lo, hi),
            self._range_max(2 * node + 1, mid + 1, nhi, lo, hi),
        )


@dataclass
class OptgenResult:
    """Output of an OPTgen pass over one trace."""

    #: Per-access: would this access hit under OPT?
    opt_hits: np.ndarray
    #: Per-access: cache-friendly label ("1" = keep in buffer) — true
    #: when the next reuse of this vector is an OPT hit.
    cache_friendly: np.ndarray
    stats: CacheStats

    @property
    def hit_rate(self) -> float:
        return self.stats.hit_rate


def run_optgen(trace: Trace, capacity: int) -> OptgenResult:
    """Run OPTgen over ``trace`` with a fully associative budget.

    The paper sets the OPTgen budget to 80% of the physical GPU buffer,
    reserving headroom for prefetched vectors; callers apply that scaling.
    """
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    keys = trace.keys()
    n = len(keys)
    tree = _MaxSegmentTree(n)
    opt_hits = np.zeros(n, dtype=bool)
    last_pos: Dict[int, int] = {}
    stats = CacheStats()

    for i in range(n):
        key = int(keys[i])
        prev = last_pos.get(key)
        if prev is None:
            stats.record(False)
        else:
            # Interval [prev, i) must have spare occupancy everywhere.
            if tree.range_max(prev, i - 1) < capacity:
                opt_hits[i] = True
                tree.add(prev, i - 1, 1)
                stats.record(True)
            else:
                stats.record(False)
        last_pos[key] = i

    # cache_friendly[i]: does the *next* access to the same key hit?
    cache_friendly = np.zeros(n, dtype=bool)
    next_hit: Dict[int, bool] = {}
    for i in range(n - 1, -1, -1):
        key = int(keys[i])
        cache_friendly[i] = next_hit.get(key, False)
        next_hit[key] = bool(opt_hits[i])
    return OptgenResult(opt_hits=opt_hits, cache_friendly=cache_friendly,
                        stats=stats)


def prefetch_trace_from(result: OptgenResult, trace: Trace) -> np.ndarray:
    """Indices (into ``trace``) of accesses that miss under OPT.

    Per the paper: "The prefetch trace, derived from the caching trace,
    consists of embedding vectors leading to cache misses".
    """
    return np.nonzero(~result.opt_hits)[0]
