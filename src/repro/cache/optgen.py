"""OPTgen: per-access optimal caching decisions and training labels.

OPTgen (Jain & Lin, "Back to the Future", ISCA'16) decides, for each
access, whether Belady's OPT *would have cached* the referenced line.
It maintains an *occupancy vector* over time: a reuse interval
``(prev_use, now)`` can be cached iff occupancy is below capacity at
every time slot in the interval; if so the line hits and the interval's
occupancy increments.

RecMG uses OPTgen offline to label its training data (paper §VI-A):

* **caching trace** — per-access binary "should this vector stay in the
  buffer" (we label an access cache-friendly when its *next* reuse would
  hit under OPT — the Hawkeye training signal);
* **prefetch trace** — the subsequence of accesses that still miss under
  OPT, which the prefetch model learns to predict.

Engines (all bit-identical; property tests enforce it):

* ``engine="fast"`` (default) — reuse intervals are precomputed in bulk
  (:func:`repro.traces.reuse.prev_occurrence_indices`, an
  ``np.argsort``-based last-seen pass), the ``cache_friendly``
  back-propagation is a vectorized gather, and the per-access
  feasibility pass is picked by a cost model over the precomputed
  interval lengths:

  - short mean intervals → ``"slices"``: the occupancy vector is a flat
    numpy array and each feasibility check is one C-level slice
    max / slice increment (O(interval) memory-bandwidth work, which on
    real traces beats any pointer structure in Python);
  - long mean intervals → ``"tree"``: a flat *iterative* lazy segment
    tree (:class:`_MaxSegmentTree`, no recursion, fused query+update),
    keeping the pass O(n log n) in the adversarial case.

* ``engine="reference"`` — the original per-access loop over a
  recursive segment tree (:class:`_RecursiveMaxSegmentTree`), kept as
  the audit reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..traces.access import Trace
from ..traces.reuse import next_occurrence_indices, prev_occurrence_indices
from .base import CacheStats


class _MaxSegmentTree:
    """Flat iterative lazy segment tree: range add, range max.

    Layout: ``t[n:2n]`` are the leaves, ``t[1:n]`` the internal nodes,
    ``d[x]`` the pending add of internal node ``x`` (not yet applied to
    its children, already applied to ``t[x]``).  All operations walk the
    two border paths with plain integer arithmetic — no recursion, no
    stack — which is what makes per-access use affordable in Python.

    Empty ranges (``lo > hi``) are explicitly legal: ``range_max``
    returns 0 (an empty interval has no occupied slot) and ``add`` is a
    no-op.  This guards the degenerate ``prev == now`` self-reuse case.
    """

    def __init__(self, size: int) -> None:
        self.n = max(1, size)
        self.h = self.n.bit_length()
        self.t: List[int] = [0] * (2 * self.n)
        self.d: List[int] = [0] * self.n

    def _push_to(self, leaf: int) -> None:
        """Apply pending adds on the path from the root down to ``leaf``."""
        t, d, n = self.t, self.d, self.n
        for s in range(self.h, 0, -1):
            x = leaf >> s
            if x >= 1 and d[x]:
                v = d[x]
                c = 2 * x
                t[c] += v
                if c < n:
                    d[c] += v
                c += 1
                t[c] += v
                if c < n:
                    d[c] += v
                d[x] = 0

    def _rebuild_from(self, leaf: int) -> None:
        """Recompute maxima on the path from ``leaf``'s parent to the root."""
        t, d = self.t, self.d
        x = leaf >> 1
        while x:
            left, right = t[2 * x], t[2 * x + 1]
            t[x] = (left if left >= right else right) + d[x]
            x >>= 1

    def add(self, lo: int, hi: int, value: int) -> None:
        """Add ``value`` over [lo, hi] inclusive (no-op when empty)."""
        if lo > hi:
            return
        t, d, n = self.t, self.d, self.n
        lf, r = lo + n, hi + n + 1
        ll, rr = lf, r - 1
        while lf < r:
            if lf & 1:
                t[lf] += value
                if lf < n:
                    d[lf] += value
                lf += 1
            if r & 1:
                r -= 1
                t[r] += value
                if r < n:
                    d[r] += value
            lf >>= 1
            r >>= 1
        self._rebuild_from(ll)
        self._rebuild_from(rr)

    def range_max(self, lo: int, hi: int) -> int:
        """Max over [lo, hi] inclusive; 0 for the empty interval."""
        if lo > hi:
            return 0
        t, n = self.t, self.n
        lf, r = lo + n, hi + n + 1
        self._push_to(lf)
        self._push_to(r - 1)
        result = -(1 << 62)
        while lf < r:
            if lf & 1:
                if t[lf] > result:
                    result = t[lf]
                lf += 1
            if r & 1:
                r -= 1
                if t[r] > result:
                    result = t[r]
            lf >>= 1
            r >>= 1
        return result

    def query_below_then_add(self, lo: int, hi: int, cap: int) -> bool:
        """Fused OPTgen step: if ``max([lo, hi]) < cap``, add +1 over the
        range and return True (hit); else leave the tree untouched.

        One border push serves both the query and the update, halving
        the traversal work of the hot loop.  An empty interval (the
        ``prev == now`` self-reuse guard) is trivially feasible and has
        nothing to occupy, so it returns True without touching the tree.
        """
        if lo > hi:
            return True
        t, d, n = self.t, self.d, self.n
        lf, r = lo + n, hi + n + 1
        self._push_to(lf)
        self._push_to(r - 1)
        best = -(1 << 62)
        ll, rr = lf, r
        while ll < rr:
            if ll & 1:
                if t[ll] > best:
                    best = t[ll]
                ll += 1
            if rr & 1:
                rr -= 1
                if t[rr] > best:
                    best = t[rr]
            ll >>= 1
            rr >>= 1
        if best >= cap:
            return False
        ll, rr = lf, r
        while ll < rr:
            if ll & 1:
                t[ll] += 1
                if ll < n:
                    d[ll] += 1
                ll += 1
            if rr & 1:
                rr -= 1
                t[rr] += 1
                if rr < n:
                    d[rr] += 1
            ll >>= 1
            rr >>= 1
        self._rebuild_from(lf)
        self._rebuild_from(r - 1)
        return True


class _RecursiveMaxSegmentTree:
    """Recursive lazy segment tree — the audit reference for
    :class:`_MaxSegmentTree` (same API, O(log n) per op, but paying a
    Python call stack per level)."""

    def __init__(self, size: int) -> None:
        self.n = max(1, size)
        self._max = np.zeros(4 * self.n, dtype=np.int64)
        self._lazy = np.zeros(4 * self.n, dtype=np.int64)

    def _push(self, node: int) -> None:
        lazy = self._lazy[node]
        if lazy:
            for child in (2 * node, 2 * node + 1):
                self._max[child] += lazy
                self._lazy[child] += lazy
            self._lazy[node] = 0

    def add(self, lo: int, hi: int, value: int) -> None:
        """Add ``value`` over [lo, hi] inclusive (no-op when empty)."""
        if lo > hi:
            return
        self._add(1, 0, self.n - 1, lo, hi, value)

    def _add(self, node: int, nlo: int, nhi: int, lo: int, hi: int, value: int) -> None:
        if hi < nlo or nhi < lo:
            return
        if lo <= nlo and nhi <= hi:
            self._max[node] += value
            self._lazy[node] += value
            return
        self._push(node)
        mid = (nlo + nhi) // 2
        self._add(2 * node, nlo, mid, lo, hi, value)
        self._add(2 * node + 1, mid + 1, nhi, lo, hi, value)
        self._max[node] = max(self._max[2 * node], self._max[2 * node + 1])

    def range_max(self, lo: int, hi: int) -> int:
        """Max over [lo, hi] inclusive; 0 for the empty interval."""
        if lo > hi:
            return 0
        return self._range_max(1, 0, self.n - 1, lo, hi)

    def _range_max(self, node: int, nlo: int, nhi: int, lo: int, hi: int) -> int:
        if hi < nlo or nhi < lo:
            return np.iinfo(np.int64).min
        if lo <= nlo and nhi <= hi:
            return int(self._max[node])
        self._push(node)
        mid = (nlo + nhi) // 2
        return max(
            self._range_max(2 * node, nlo, mid, lo, hi),
            self._range_max(2 * node + 1, mid + 1, nhi, lo, hi),
        )


@dataclass
class OptgenResult:
    """Output of an OPTgen pass over one trace."""

    #: Per-access: would this access hit under OPT?
    opt_hits: np.ndarray
    #: Per-access: cache-friendly label ("1" = keep in buffer) — true
    #: when the next reuse of this vector is an OPT hit.
    cache_friendly: np.ndarray
    stats: CacheStats

    @property
    def hit_rate(self) -> float:
        return self.stats.hit_rate


#: Mean reuse-interval length above which the fast engine switches from
#: the numpy occupancy-slice pass to the iterative segment tree (the
#: slice pass does O(interval) memory-bandwidth work per access, the
#: tree ~O(log n) interpreted steps; the break-even sits in the
#: thousands of elements on current hardware).
_SLICE_ENGINE_MAX_MEAN_INTERVAL = 8192


def _optgen_pass_slices(prev_list: List[int], n: int, capacity: int,
                        opt_list: List[bool]) -> int:
    """Feasibility pass over a flat numpy occupancy vector."""
    occupancy = np.zeros(n, dtype=np.int32)
    hits = 0
    for i, p in enumerate(prev_list):
        if p >= 0:
            # Interval [p, i) must have spare occupancy everywhere; an
            # empty slice (degenerate self-reuse) maxes to the initial 0
            # and increments nothing, i.e. it trivially hits.
            window = occupancy[p:i]
            if window.max(initial=0) < capacity:
                window += 1
                opt_list[i] = True
                hits += 1
    return hits


def _optgen_pass_tree(prev_list: List[int], n: int, capacity: int,
                      opt_list: List[bool]) -> int:
    """Feasibility pass over the flat iterative segment tree."""
    decide = _MaxSegmentTree(n).query_below_then_add
    hits = 0
    for i, p in enumerate(prev_list):
        # The empty interval (p >= i, degenerate self-reuse) is handled
        # inside the fused query.
        if p >= 0 and decide(p, i - 1, capacity):
            opt_list[i] = True
            hits += 1
    return hits


def run_optgen(trace: Trace, capacity: int,
               engine: str = "fast") -> OptgenResult:
    """Run OPTgen over ``trace`` with a fully associative budget.

    The paper sets the OPTgen budget to 80% of the physical GPU buffer,
    reserving headroom for prefetched vectors; callers apply that scaling.

    ``engine`` is ``"fast"`` (cost-model choice between the two batched
    passes), ``"slices"``, ``"tree"``, or ``"reference"`` (the
    per-access audit loop); all produce bit-identical results.
    """
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    if engine == "reference":
        return run_optgen_reference(trace, capacity)
    if engine not in ("fast", "slices", "tree"):
        raise ValueError(f"unknown optgen engine: {engine!r}")

    keys = trace.keys()
    n = len(keys)
    prev = prev_occurrence_indices(keys)
    opt_list = [False] * n
    hits = 0
    if n:
        if engine == "fast":
            warm = prev >= 0
            total_len = int((np.nonzero(warm)[0] - prev[warm]).sum())
            mean_len = total_len / max(1, int(warm.sum()))
            engine = ("slices" if mean_len <= _SLICE_ENGINE_MAX_MEAN_INTERVAL
                      else "tree")
        run_pass = (_optgen_pass_slices if engine == "slices"
                    else _optgen_pass_tree)
        hits = run_pass(prev.tolist(), n, capacity, opt_list)
    opt_hits = np.asarray(opt_list, dtype=bool)
    stats = CacheStats(hits=hits, misses=n - hits)

    # cache_friendly[i]: does the *next* access to the same key hit?
    nxt = next_occurrence_indices(keys, prev=prev)
    cache_friendly = np.zeros(n, dtype=bool)
    has_next = nxt >= 0
    cache_friendly[has_next] = opt_hits[nxt[has_next]]
    return OptgenResult(opt_hits=opt_hits, cache_friendly=cache_friendly,
                        stats=stats)


def run_optgen_reference(trace: Trace, capacity: int) -> OptgenResult:
    """Per-access audit implementation of :func:`run_optgen`."""
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    keys = trace.keys()
    n = len(keys)
    tree = _RecursiveMaxSegmentTree(n)
    opt_hits = np.zeros(n, dtype=bool)
    last_pos: Dict[int, int] = {}
    stats = CacheStats()

    for i in range(n):
        key = int(keys[i])
        prev = last_pos.get(key)
        if prev is None:
            stats.record(False)
        elif prev >= i:
            # Degenerate self-reuse: the interval is empty, so it is
            # trivially feasible and occupies nothing.
            opt_hits[i] = True
            stats.record(True)
        else:
            # Interval [prev, i) must have spare occupancy everywhere.
            if tree.range_max(prev, i - 1) < capacity:
                opt_hits[i] = True
                tree.add(prev, i - 1, 1)
                stats.record(True)
            else:
                stats.record(False)
        last_pos[key] = i

    # cache_friendly[i]: does the *next* access to the same key hit?
    cache_friendly = np.zeros(n, dtype=bool)
    next_hit: Dict[int, bool] = {}
    for i in range(n - 1, -1, -1):
        key = int(keys[i])
        cache_friendly[i] = next_hit.get(key, False)
        next_hit[key] = bool(opt_hits[i])
    return OptgenResult(opt_hits=opt_hits, cache_friendly=cache_friendly,
                        stats=stats)


def prefetch_trace_from(result: OptgenResult, trace: Trace) -> np.ndarray:
    """Indices (into ``trace``) of accesses that miss under OPT.

    Per the paper: "The prefetch trace, derived from the caching trace,
    consists of embedding vectors leading to cache misses".
    """
    return np.nonzero(~result.opt_hits)[0]
