"""RecMG reproduction: ML-guided memory optimization for DLRM inference
on tiered memory (HPCA 2025).

Packages:

* :mod:`repro.nn` -- numpy autograd + LSTM/attention substrate
* :mod:`repro.traces` -- embedding-access traces (synthetic generator,
  reuse-distance analysis, dataset presets)
* :mod:`repro.cache` -- LRU/LFU/RRIP/Belady/OPTgen/Hawkeye/Mockingjay and
  the priority GPU buffer (paper Algorithms 1-2)
* :mod:`repro.prefetch` -- Bingo/Domino/Berti/BOP/MAB/TransFetch/Voyager
  baselines and evaluation metrics
* :mod:`repro.core` -- the RecMG caching + prefetch models and manager
* :mod:`repro.dlrm` -- numpy DLRM, tiered-memory latency model, end-to-end
  inference timing, linear performance model
* :mod:`repro.serving` -- concurrent serving front-end (admission queue,
  batcher, per-shard worker pool, latency/SLO metrics)
* :mod:`repro.analysis` -- geomean and ASCII table/figure rendering
"""

from . import nn, traces, cache, prefetch, core, dlrm, serving, analysis

__version__ = "1.0.0"

__all__ = ["nn", "traces", "cache", "prefetch", "core", "dlrm", "serving",
           "analysis", "__version__"]
