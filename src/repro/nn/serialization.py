"""Save and load module parameters as ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Union

from .modules import Module

import numpy as np


def save_module(module: Module, path: Union[str, os.PathLike]) -> None:
    """Serialize all named parameters of ``module`` into an ``.npz`` file."""
    state = module.state_dict()
    np.savez(path, **state)


def load_module(module: Module, path: Union[str, os.PathLike]) -> None:
    """Restore parameters previously written by :func:`save_module`."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
