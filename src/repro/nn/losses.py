"""Loss functions, including the paper's bidirectional Chamfer measure.

The RecMG prefetch model emits a sequence ``PO`` of predicted embedding
indices and is scored against a *longer* evaluation window ``W`` of
future accesses.  Counting non-overlapping vectors is not differentiable,
so the paper builds the distance from the Chamfer Measure (Eq. 4) and
symmetrizes + normalizes it (Eq. 5):

    dist(PO, W) = alpha   * 1/|PO| * d_CM(PO, W)
                + (1-alpha) * 1/|W| * d_CM(W, PO)

The second (reverse) term prevents the degenerate solution where every
element of ``PO`` collapses onto a single popular element of ``W``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .functional import log_softmax
from .tensor import Tensor


def chamfer_directed(a: Tensor, b: Tensor) -> Tensor:
    """Directed Chamfer distance ``d_CM(a, b)`` (paper Eq. 4), batched.

    Points may be scalars — ``a``: (batch, n), ``b``: (batch, m) — or
    vectors in a shared metric space — ``a``: (batch, n, d), ``b``:
    (batch, m, d); vector distance is mean L1 over the ``d`` axis.
    Returns a scalar: sum over points of min-distance, averaged over
    batch.  Gradient flows through both arguments via the argmin match.
    """
    if a.ndim == 2:
        batch, n = a.shape
        _, m = b.shape
        diff = a.reshape(batch, n, 1) - b.reshape(batch, 1, m)
        dist = diff.abs()                   # (B, n, m)
    elif a.ndim == 3:
        batch, n, dim = a.shape
        _, m, _ = b.shape
        diff = a.reshape(batch, n, 1, dim) - b.reshape(batch, 1, m, dim)
        dist = diff.abs().mean(axis=3)      # (B, n, m)
    else:
        raise ValueError("chamfer_directed expects 2-D or 3-D point sets")
    mins = dist.min(axis=2)                 # (B, n)
    return mins.sum(axis=1).mean()


def chamfer_loss(po: Tensor, window: Tensor, alpha: float = 0.7) -> Tensor:
    """Bidirectional normalized Chamfer loss (paper Eq. 5).

    ``po``: model output (batch, |PO|); ``window``: evaluation window
    (batch, |W|) with |W| >= |PO|.  ``alpha`` weights the forward term
    (paper default 0.7).
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must lie in (0, 1)")
    p_len = po.shape[1]
    w_len = window.shape[1]
    forward = chamfer_directed(po, window) * (1.0 / p_len)
    reverse = chamfer_directed(window, po) * (1.0 / w_len)
    return forward * alpha + reverse * (1.0 - alpha)


def chamfer_forward_only(po: Tensor, window: Tensor) -> Tensor:
    """Unidirectional Chamfer (Eq. 4 alone) — exhibits the collapse
    shortcut the paper describes; kept for the ablation bench."""
    return chamfer_directed(po, window) * (1.0 / po.shape[1])


def l2_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Positionwise mean squared error; the ablation baseline (Fig. 11).

    If ``target`` has more points than ``pred`` it is truncated,
    matching the "evaluation window equal to the output length"
    baseline.  Works for scalar (batch, n) and vector (batch, n, d)
    point sets alike.
    """
    p_len = pred.shape[1]
    trimmed = target[:, :p_len] if target.shape[1] != p_len else target
    diff = pred - trimmed
    return (diff * diff).mean()


def bce_with_logits(logits: Tensor, targets: Tensor,
                    weights: Optional[Tensor] = None) -> Tensor:
    """Numerically stable binary cross entropy on raw logits.

    Uses ``max(x, 0) - x*z + log(1 + exp(-|x|))``.  Optional elementwise
    ``weights`` rescale the per-element loss (for class imbalance).
    """
    relu_part = logits.relu()
    abs_part = ((logits.abs() * -1.0).exp() + 1.0).log()
    loss = relu_part - logits * targets + abs_part
    if weights is not None:
        loss = loss * weights
    return loss.mean()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Multiclass cross entropy; ``logits`` (batch, classes), integer labels."""
    labels = np.asarray(labels, dtype=np.int64)
    logp = log_softmax(logits, axis=-1)
    batch = logits.shape[0]
    picked = logp[np.arange(batch), labels]
    return picked.mean() * -1.0


def nonoverlap_count(po: np.ndarray, window: np.ndarray) -> int:
    """The paper's *non-differentiable* objective: number of predicted
    vectors absent from the window.  Used for evaluation, never training."""
    return int(sum(1 for x in np.asarray(po).ravel()
                   if x not in set(np.asarray(window).ravel().tolist())))
