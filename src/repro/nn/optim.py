"""Optimizers (SGD with momentum, Adam) and gradient utilities."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: Iterable[Tensor], lr: float) -> None:
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, params: Iterable[Tensor], lr: float = 0.01,
                 momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, vel in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            if self.momentum > 0.0:
                vel *= self.momentum
                vel -= self.lr * param.grad
                param.data = param.data + vel
            else:
                param.data = param.data - self.lr * param.grad


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1 ** self._t
        bc2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bc1
            v_hat = v / bc2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clipping norm (useful for logging).
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total
