"""Neural-network module system: parameter containers and basic layers."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import init as initializers
from .tensor import Tensor


class Module:
    """Base class for layers; tracks parameters and sub-modules.

    Parameters are discovered by attribute inspection (any ``Tensor``
    attribute with ``requires_grad=True``, plus recursively those of
    sub-``Module`` attributes and items of list attributes).
    """

    def parameters(self) -> List[Tensor]:
        params: List[Tensor] = []
        seen = set()
        for _, value in self._traverse():
            if id(value) not in seen:
                seen.add(id(value))
                params.append(value)
        return params

    def named_parameters(self) -> Iterator[Tuple[str, Tensor]]:
        yield from self._traverse()

    def _traverse(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for key in sorted(vars(self)):
            value = getattr(self, key)
            name = f"{prefix}{key}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield name, value
            elif isinstance(value, Module):
                yield from value._traverse(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item._traverse(prefix=f"{name}.{i}.")
                    elif isinstance(item, Tensor) and item.requires_grad:
                        yield f"{name}.{i}", item

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total learnable scalar parameters (paper Table III reports this)."""
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"missing parameters in state dict: {sorted(missing)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} != {param.shape}"
                )
            param.data = value.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine layer ``y = x W + b`` with W of shape (in_features, out_features)."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None, bias: bool = True) -> None:
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            initializers.xavier_uniform((in_features, out_features), rng),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_features), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Tensor(
            initializers.normal((num_embeddings, dim), rng, std=0.1),
            requires_grad=True,
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings})"
            )
        return self.weight.take_rows(idx)


class Sequential(Module):
    """Chains modules; each must map a single tensor to a single tensor."""

    def __init__(self, *layers: Module) -> None:
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with a configurable activation."""

    def __init__(self, sizes: List[int], rng: Optional[np.random.Generator] = None,
                 activation: str = "relu", final_activation: Optional[str] = None) -> None:
        rng = rng or np.random.default_rng(0)
        self.layers = [Linear(a, b, rng=rng) for a, b in zip(sizes[:-1], sizes[1:])]
        self.activation = activation
        self.final_activation = final_activation

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            x = layer(x)
            act = self.final_activation if i == last else self.activation
            if act == "relu":
                x = x.relu()
            elif act == "tanh":
                x = x.tanh()
            elif act == "sigmoid":
                x = x.sigmoid()
            elif act is None or act == "none":
                pass
            else:
                raise ValueError(f"unknown activation {act!r}")
        return x
