"""LSTM layers and the seq2seq encoder/decoder stacks used by RecMG.

The paper's caching and prefetch models are sequence-to-sequence LSTMs
with attention ("Each LSTM stack includes a pair of an encoder and a
decoder", Fig. 5).  This module provides:

* :class:`LSTMCell` / :class:`LSTM` — standard gated recurrence,
* :class:`Seq2SeqStack` — one encoder/decoder pair with Luong attention,
* :class:`StackedSeq2Seq` — N chained stacks (Table III varies N).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from . import init as initializers
from .attention import LuongAttention
from .modules import Module
from .tensor import Tensor, stack


class LSTMCell(Module):
    """Single LSTM step with fused gate weights.

    Gate layout along the last axis: input, forget, cell, output.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_x = Tensor(
            initializers.xavier_uniform((input_size, 4 * hidden_size), rng),
            requires_grad=True,
        )
        self.w_h = Tensor(
            initializers.orthogonal((hidden_size, 4 * hidden_size), rng),
            requires_grad=True,
        )
        bias = np.zeros(4 * hidden_size)
        # Forget-gate bias of 1.0 helps gradient flow early in training.
        bias[hidden_size:2 * hidden_size] = 1.0
        self.bias = Tensor(bias, requires_grad=True)

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        gates = x @ self.w_x + h_prev @ self.w_h + self.bias
        hs = self.hidden_size
        i_gate = gates[:, 0 * hs:1 * hs].sigmoid()
        f_gate = gates[:, 1 * hs:2 * hs].sigmoid()
        g_gate = gates[:, 2 * hs:3 * hs].tanh()
        o_gate = gates[:, 3 * hs:4 * hs].sigmoid()
        c_new = f_gate * c_prev + i_gate * g_gate
        h_new = o_gate * c_new.tanh()
        return h_new, c_new

    def zero_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        return (
            Tensor(np.zeros((batch, self.hidden_size))),
            Tensor(np.zeros((batch, self.hidden_size))),
        )


class LSTM(Module):
    """Unrolls an :class:`LSTMCell` over a (batch, time, feat) input."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, x: Tensor,
                state: Optional[Tuple[Tensor, Tensor]] = None
                ) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        batch, steps, _ = x.shape
        if state is None:
            state = self.cell.zero_state(batch)
        outputs: List[Tensor] = []
        for t in range(steps):
            step_in = x[:, t, :]
            h, c = self.cell(step_in, state)
            state = (h, c)
            outputs.append(h)
        return stack(outputs, axis=1), state


class Seq2SeqStack(Module):
    """One encoder/decoder LSTM pair with Luong attention (paper Fig. 5).

    The encoder consumes the input sequence; the decoder unrolls
    ``out_steps`` times, attending over encoder states at each step, and
    emits the attended hidden state per step.
    """

    def __init__(self, input_size: int, hidden_size: int, out_steps: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        rng = rng or np.random.default_rng(0)
        self.encoder = LSTM(input_size, hidden_size, rng=rng)
        self.decoder_cell = LSTMCell(hidden_size, hidden_size, rng=rng)
        self.attention = LuongAttention(hidden_size, rng=rng)
        self.out_steps = out_steps
        self.hidden_size = hidden_size

    def forward(self, x: Tensor) -> Tensor:
        enc_states, (h, c) = self.encoder(x)
        outputs: List[Tensor] = []
        step_input = h
        for _ in range(self.out_steps):
            h, c = self.decoder_cell(step_input, (h, c))
            attended = self.attention(h, enc_states)
            outputs.append(attended)
            step_input = attended
        return stack(outputs, axis=1)


class StackedSeq2Seq(Module):
    """Chains ``num_stacks`` encoder/decoder pairs (Table III sweeps this).

    Stack ``k+1`` consumes the attended output sequence of stack ``k``.
    """

    def __init__(self, input_size: int, hidden_size: int, out_steps: int,
                 num_stacks: int = 1,
                 rng: Optional[np.random.Generator] = None) -> None:
        if num_stacks < 1:
            raise ValueError("num_stacks must be >= 1")
        rng = rng or np.random.default_rng(0)
        self.stacks = [
            Seq2SeqStack(
                input_size if i == 0 else hidden_size,
                hidden_size,
                out_steps,
                rng=rng,
            )
            for i in range(num_stacks)
        ]

    def forward(self, x: Tensor) -> Tensor:
        out = x
        for stack_module in self.stacks:
            out = stack_module(out)
        return out
