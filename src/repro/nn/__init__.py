"""Minimal numpy autograd + neural-network substrate.

The paper implements its models in PyTorch/C++; this package provides the
equivalent functionality from scratch so the reproduction has no deep
learning framework dependency: reverse-mode autograd tensors, LSTM
seq2seq stacks with attention, the Chamfer-measure loss (paper Eq. 5),
and Adam/SGD optimizers.
"""

from .tensor import Tensor, concat, stack, zeros, ones, unbroadcast
from .functional import softmax, log_softmax, sigmoid, tanh, relu, dropout, linear
from .modules import Module, Linear, Embedding, Sequential, MLP
from .rnn import LSTMCell, LSTM, Seq2SeqStack, StackedSeq2Seq
from .attention import LuongAttention, SelfAttention
from .losses import (
    chamfer_directed,
    chamfer_loss,
    chamfer_forward_only,
    l2_loss,
    bce_with_logits,
    cross_entropy,
    nonoverlap_count,
)
from .optim import Optimizer, SGD, Adam, clip_grad_norm
from .serialization import save_module, load_module

__all__ = [
    "Tensor", "concat", "stack", "zeros", "ones", "unbroadcast",
    "softmax", "log_softmax", "sigmoid", "tanh", "relu", "dropout", "linear",
    "Module", "Linear", "Embedding", "Sequential", "MLP",
    "LSTMCell", "LSTM", "Seq2SeqStack", "StackedSeq2Seq",
    "LuongAttention", "SelfAttention",
    "chamfer_directed", "chamfer_loss", "chamfer_forward_only", "l2_loss",
    "bce_with_logits", "cross_entropy", "nonoverlap_count",
    "Optimizer", "SGD", "Adam", "clip_grad_norm",
    "save_module", "load_module",
]
