"""Reverse-mode autograd over numpy arrays.

This module is the foundation of the ``repro.nn`` substrate: a small,
well-tested ``Tensor`` type supporting the operations needed by the RecMG
caching and prefetch models (seq2seq LSTMs with attention and custom
losses).  The design follows the classic tape-based approach: every
operation records a backward closure, and :meth:`Tensor.backward` walks
the graph in reverse topological order.

Broadcasting follows numpy semantics; gradients are "unbroadcast" (summed
over the broadcast axes) so shapes always round-trip.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]


def _as_array(data: ArrayLike) -> np.ndarray:
    if isinstance(data, Tensor):
        return data.data
    arr = np.asarray(data, dtype=np.float64)
    return arr


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were broadcast to reach ``grad.shape``.

    This is the adjoint of numpy broadcasting: if a tensor of ``shape``
    was broadcast to ``grad.shape`` in the forward pass, the gradient of
    the original tensor is the sum over the broadcast dimensions.
    """
    if grad.shape == shape:
        return grad
    # Sum leading extra dims.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum dims that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autograd."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: Sequence["Tensor"] = (),
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[], None]] = None
        self._prev: Tuple["Tensor", ...] = tuple(_prev)
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad})"

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def _make_child(self, data: np.ndarray, parents: Sequence["Tensor"]) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=requires, _prev=parents if requires else ())

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data + other_t.data, (self, other_t))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(out.grad, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(unbroadcast(out.grad, other_t.shape))

        out._backward = backward
        return out

    __radd__ = __add__

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data * other_t.data, (self, other_t))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(out.grad * other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(unbroadcast(out.grad * self.data, other_t.shape))

        out._backward = backward
        return out

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other_t)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) + (-self)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        return self * other_t.pow(-1.0)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) * self.pow(-1.0)

    def pow(self, exponent: float) -> "Tensor":
        out = self._make_child(np.power(self.data, exponent), (self,))

        def backward() -> None:
            if self.requires_grad:
                grad = exponent * np.power(self.data, exponent - 1.0) * out.grad
                self._accumulate(grad)

        out._backward = backward
        return out

    __pow__ = pow

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data @ other_t.data, (self, other_t))

        def backward() -> None:
            a, b = self.data, other_t.data
            g = out.grad
            if self.requires_grad:
                if a.ndim == 1:
                    # (n,) @ (n, m) -> (m,); gA = B @ g
                    ga = b @ g
                elif b.ndim == 1:
                    # (..., n, k) @ (k,) -> (..., n); gA = g[..., None] * b
                    ga = g[..., None] * b
                else:
                    ga = g @ np.swapaxes(b, -1, -2)
                if ga.shape != a.shape:
                    ga = unbroadcast(ga, a.shape)
                self._accumulate(ga)
            if other_t.requires_grad:
                if b.ndim == 1:
                    # (..., n, k) @ (k,) -> (..., n); gB = sum over batch of A^T g
                    gb = (a * g[..., None]).reshape(-1, b.shape[0]).sum(axis=0)
                elif a.ndim == 1:
                    gb = np.outer(a, g)
                else:
                    gb = np.swapaxes(a, -1, -2) @ g
                if gb.shape != b.shape:
                    gb = unbroadcast(gb, b.shape)
                other_t._accumulate(gb)

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out = self._make_child(np.exp(self.data), (self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.data * out.grad)

        out._backward = backward
        return out

    def log(self) -> "Tensor":
        out = self._make_child(np.log(self.data), (self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad / self.data)

        out._backward = backward
        return out

    def tanh(self) -> "Tensor":
        out = self._make_child(np.tanh(self.data), (self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate((1.0 - out.data ** 2) * out.grad)

        out._backward = backward
        return out

    def sigmoid(self) -> "Tensor":
        sig = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make_child(sig, (self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(sig * (1.0 - sig) * out.grad)

        out._backward = backward
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = self._make_child(self.data * mask, (self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(mask * out.grad)

        out._backward = backward
        return out

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out = self._make_child(np.abs(self.data), (self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(sign * out.grad)

        out._backward = backward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        out = self._make_child(np.clip(self.data, low, high), (self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(mask * out.grad)

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        out = self._make_child(self.data.sum(axis=axis, keepdims=keepdims), (self,))

        def backward() -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for ax in sorted(a % self.ndim for a in axes):
                    grad = np.expand_dims(grad, ax)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        out._backward = backward
        return out

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=True)
        out_data = data if keepdims else np.squeeze(data, axis=axis)
        out = self._make_child(out_data, (self,))

        def backward() -> None:
            if not self.requires_grad:
                return
            grad = out.grad if keepdims else np.expand_dims(out.grad, axis)
            mask = self.data == data
            # Split gradient among ties (matches subgradient convention).
            counts = mask.sum(axis=axis, keepdims=True)
            self._accumulate(mask * grad / counts)

        out._backward = backward
        return out

    def min(self, axis: int, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make_child(self.data.reshape(shape), (self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.reshape(self.shape))

        out._backward = backward
        return out

    def transpose(self, *axes: int) -> "Tensor":
        axes_t = tuple(axes) if axes else tuple(reversed(range(self.ndim)))
        out = self._make_child(self.data.transpose(axes_t), (self,))
        inverse = np.argsort(axes_t)

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.transpose(tuple(inverse)))

        out._backward = backward
        return out

    def __getitem__(self, idx) -> "Tensor":
        out = self._make_child(self.data[idx], (self,))

        def backward() -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, idx, out.grad)
                self._accumulate(grad)

        out._backward = backward
        return out

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Row gather used by embedding lookup: ``out[i] = self[indices[i]]``.

        Gradients accumulate back with ``np.add.at`` so repeated indices
        sum correctly.
        """
        idx = np.asarray(indices, dtype=np.int64)
        out = self._make_child(self.data[idx], (self,))

        def backward() -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, idx, out.grad)
                self._accumulate(grad)

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (scalar outputs only need ``backward()``).
        """
        if grad is None:
            if self.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar"
                )
            grad = np.ones_like(self.data)
        self.grad = np.asarray(grad, dtype=np.float64).reshape(self.shape)

        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    datas = [t.data for t in tensors]
    out_data = np.concatenate(datas, axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(out_data, requires_grad=requires, _prev=tuple(tensors) if requires else ())
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward() -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * out_data.ndim
                slicer[axis] = slice(int(start), int(stop))
                tensor._accumulate(out.grad[tuple(slicer)])

    out._backward = backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    out_data = np.stack([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(out_data, requires_grad=requires, _prev=tuple(tensors) if requires else ())

    def backward() -> None:
        for i, tensor in enumerate(tensors):
            if tensor.requires_grad:
                tensor._accumulate(np.take(out.grad, i, axis=axis))

    out._backward = backward
    return out


def zeros(shape: Union[int, Tuple[int, ...]], requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape: Union[int, Tuple[int, ...]], requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)
