"""Attention mechanisms for the RecMG sequence models.

The paper uses attention so the models can "capture long-range
dependencies" between embedding-vector accesses that are far apart in the
input sequence (Section V).  We implement Luong-style (multiplicative)
attention, which is cheap on CPU — matching the paper's constraint that
the models run on spare CPU cycles.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import init as initializers
from .functional import softmax
from .modules import Linear, Module
from .tensor import Tensor, concat


class LuongAttention(Module):
    """General Luong attention.

    Given a decoder state ``h`` (batch, hidden) and encoder states
    ``states`` (batch, time, hidden), computes scores
    ``h W states_t``, a softmax over time, a context vector, and returns
    ``tanh(W_c [h; context])``.
    """

    def __init__(self, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        rng = rng or np.random.default_rng(0)
        self.score_weight = Tensor(
            initializers.xavier_uniform((hidden_size, hidden_size), rng),
            requires_grad=True,
        )
        self.combine = Linear(2 * hidden_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size
        self.last_weights: Optional[np.ndarray] = None

    def forward(self, h: Tensor, states: Tensor) -> Tensor:
        # scores: (batch, time) = sum_k (h W)[b, k] * states[b, t, k]
        projected = h @ self.score_weight                       # (B, H)
        batch, time, hidden = states.shape
        # (B, T, H) @ (B, H, 1) -> (B, T, 1)
        scores = states @ projected.reshape(batch, hidden, 1)
        scores = scores.reshape(batch, time)
        weights = softmax(scores, axis=-1)                      # (B, T)
        self.last_weights = weights.data.copy()
        # context: (B, H) = sum_t weights[b, t] * states[b, t, :]
        context = (states * weights.reshape(batch, time, 1)).sum(axis=1)
        combined = concat([h, context], axis=1)                 # (B, 2H)
        return self.combine(combined).tanh()


class SelfAttention(Module):
    """Single-head scaled dot-product self-attention.

    Used by the TransFetch-style baseline prefetcher
    (:mod:`repro.prefetch.transfetch`).
    """

    def __init__(self, dim: int, rng: Optional[np.random.Generator] = None) -> None:
        rng = rng or np.random.default_rng(0)
        self.query = Linear(dim, dim, rng=rng, bias=False)
        self.key = Linear(dim, dim, rng=rng, bias=False)
        self.value = Linear(dim, dim, rng=rng, bias=False)
        self.dim = dim

    def forward(self, x: Tensor) -> Tensor:
        # x: (B, T, D)
        batch, time, dim = x.shape
        q = self.query(x.reshape(batch * time, dim)).reshape(batch, time, dim)
        k = self.key(x.reshape(batch * time, dim)).reshape(batch, time, dim)
        v = self.value(x.reshape(batch * time, dim)).reshape(batch, time, dim)
        scores = (q @ k.transpose(0, 2, 1)) * (1.0 / np.sqrt(dim))  # (B, T, T)
        weights = softmax(scores, axis=-1)
        return weights @ v
