"""Functional operations built on :class:`repro.nn.tensor.Tensor`."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def relu(x: Tensor) -> Tensor:
    return x.relu()


def dropout(x: Tensor, rate: float, rng: Optional[np.random.Generator] = None,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or ``rate == 0``."""
    if not training or rate <= 0.0:
        return x
    if rng is None:
        rng = np.random.default_rng()
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    return x * Tensor(mask)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``x @ weight + bias`` with weight of shape (in, out)."""
    out = x @ weight
    if bias is not None:
        out = out + bias
    return out
