"""Parameter initializers for the ``repro.nn`` substrate."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform init; suitable for tanh/sigmoid layers."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform init for ReLU layers."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def normal(shape: Tuple[int, ...], rng: np.random.Generator,
           std: float = 0.01) -> np.ndarray:
    return rng.normal(0.0, std, size=shape)


def orthogonal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Block-orthogonal init (used for LSTM recurrent weights).

    For a wide (rows < cols) matrix — e.g. the fused (H, 4H) recurrent
    weight — each (rows, rows) block is an independent orthogonal matrix,
    the standard recipe for gated RNNs.
    """
    rows, cols = shape

    def square_orthogonal(n: int) -> np.ndarray:
        q, r = np.linalg.qr(rng.normal(0.0, 1.0, size=(n, n)))
        return q * np.sign(np.diag(r))

    if rows == cols:
        return square_orthogonal(rows)
    if rows < cols:
        blocks = [square_orthogonal(rows) for _ in range(-(-cols // rows))]
        return np.hstack(blocks)[:, :cols]
    blocks = [square_orthogonal(cols) for _ in range(-(-rows // cols))]
    return np.vstack(blocks)[:rows, :]


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out
