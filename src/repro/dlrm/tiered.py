"""Tiered-memory latency model (GPU HBM + host DRAM over PCIe).

The paper's platform keeps a small GPU buffer of embedding vectors and
fetches misses from host memory, with on-demand fetches costing
O(10 us) each (paper §I).  This module charges those costs to hit/miss
streams so the inference engine can produce the paper's time breakdowns
without the hardware.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TieredMemoryConfig:
    """Latency/bandwidth parameters (defaults sized for an A100-class
    GPU and PCIe 4.0 host link, per the paper's O(10 us) fetch cost)."""

    #: Per-vector on-demand fetch latency from host memory (us).
    host_fetch_us: float = 10.0
    #: Per-vector access cost inside the GPU buffer (us).
    gpu_hit_us: float = 0.05
    #: PCIe bulk-copy bandwidth for batched embedding upload (GB/s).
    pcie_bandwidth_gbs: float = 20.0
    #: Fixed per-batch kernel/sync overhead (ms) ("Others" in Fig. 16).
    batch_overhead_ms: float = 2.0
    #: GPU throughput for the dense part (GFLOP/s effective).
    gpu_gflops: float = 2000.0
    #: Bytes per embedding vector element.
    element_bytes: int = 4

    def copy_time_ms(self, num_vectors: int, dim: int) -> float:
        """Batched embedding + metadata upload over PCIe (ms)."""
        payload = num_vectors * dim * self.element_bytes
        metadata = num_vectors / 8.0  # 1-bit priority per vector
        seconds = (payload + metadata) / (self.pcie_bandwidth_gbs * 1e9)
        return seconds * 1e3

    def on_demand_time_ms(self, num_misses: int) -> float:
        """Serialized on-demand fetches from host memory (ms)."""
        return num_misses * self.host_fetch_us * 1e-3

    def hit_time_ms(self, num_hits: int) -> float:
        return num_hits * self.gpu_hit_us * 1e-3

    def compute_time_ms(self, flops: float) -> float:
        return flops / (self.gpu_gflops * 1e9) * 1e3
