"""End-to-end DLRM inference engine with buffer management + timing.

Produces the paper's Fig. 16 breakdown per batch: embedding copy to GPU,
GPU computation, GPU buffer management (dominated by on-demand fetches),
and "others" (sync overheads).  The buffer manager is pluggable: a plain
LRU cache, RecMG with the caching model only, or full RecMG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol

import numpy as np

from ..cache.buffer import (
    iter_serve_segments,
    make_buffer,
    reclaim_batch_space,
)
from ..cache.sharding import backend_for_key
from ..serving.workers import ShardWorkerPool
from ..traces.access import Trace
from .model import DLRM
from .tiered import TieredMemoryConfig


@dataclass
class BatchTiming:
    """Per-batch time breakdown (ms), matching Fig. 16's stacking."""

    embedding_copy_ms: float = 0.0
    gpu_compute_ms: float = 0.0
    buffer_management_ms: float = 0.0
    others_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return (self.embedding_copy_ms + self.gpu_compute_ms
                + self.buffer_management_ms + self.others_ms)


@dataclass
class InferenceReport:
    """Aggregated run: per-batch timings + access statistics."""

    batches: List[BatchTiming] = field(default_factory=list)
    hits: int = 0
    misses: int = 0

    @property
    def total_accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total_accesses if self.total_accesses else 0.0

    @property
    def mean_batch_ms(self) -> float:
        if not self.batches:
            return 0.0
        return float(np.mean([b.total_ms for b in self.batches]))

    def mean_breakdown(self) -> BatchTiming:
        if not self.batches:
            return BatchTiming()
        return BatchTiming(
            embedding_copy_ms=float(np.mean([b.embedding_copy_ms for b in self.batches])),
            gpu_compute_ms=float(np.mean([b.gpu_compute_ms for b in self.batches])),
            buffer_management_ms=float(np.mean([b.buffer_management_ms for b in self.batches])),
            others_ms=float(np.mean([b.others_ms for b in self.batches])),
        )


class AccessClassifier(Protocol):
    """Anything that can classify an access stream into hits/misses.

    Classifiers may additionally expose ``access_batch(keys, pcs) ->
    bool[:]`` — :class:`InferenceEngine` then classifies each serving
    batch with one call (residency-bitmap gathers on the clock-backed
    classifiers) instead of a per-access loop.
    """

    def access(self, key: int, pc: int = 0) -> bool: ...


class InferenceEngine:
    """Simulated DLRM serving loop over a trace of embedding accesses.

    ``classifier`` decides hit/miss per access (an LRU cache, a RecMG
    manager adapter, ...); the latency model converts the counts into
    the Fig. 16 breakdown.  ``accesses_per_batch`` stands in for the
    paper's batch of 512 queries (over 600K vectors per batch at
    production scale).
    """

    def __init__(self, dlrm: Optional[DLRM] = None,
                 memory: Optional[TieredMemoryConfig] = None,
                 accesses_per_batch: int = 2048) -> None:
        self.dlrm = dlrm or DLRM()
        self.memory = memory or TieredMemoryConfig()
        self.accesses_per_batch = accesses_per_batch

    def run(self, trace: Trace, classifier: AccessClassifier,
            batch_queries: int = 512) -> InferenceReport:
        keys = trace.keys()
        tables = trace.table_ids
        report = InferenceReport()
        dim = self.dlrm.config.embedding_dim
        flops_per_batch = self.dlrm.flops_per_query * batch_queries
        access_batch = getattr(classifier, "access_batch", None)

        for lo in range(0, len(keys), self.accesses_per_batch):
            hi = min(lo + self.accesses_per_batch, len(keys))
            if access_batch is not None:
                hits = access_batch(keys[lo:hi], tables[lo:hi])
                batch_hits = int(np.count_nonzero(hits))
                batch_misses = (hi - lo) - batch_hits
            else:
                batch_hits = 0
                batch_misses = 0
                for i in range(lo, hi):
                    if classifier.access(int(keys[i]), pc=int(tables[i])):
                        batch_hits += 1
                    else:
                        batch_misses += 1
            report.hits += batch_hits
            report.misses += batch_misses
            timing = BatchTiming(
                embedding_copy_ms=self.memory.copy_time_ms(hi - lo, dim),
                gpu_compute_ms=self.memory.compute_time_ms(flops_per_batch),
                buffer_management_ms=(
                    self.memory.on_demand_time_ms(batch_misses)
                    + self.memory.hit_time_ms(batch_hits)
                ),
                others_ms=self.memory.batch_overhead_ms,
            )
            report.batches.append(timing)
        return report


class BufferClassifier:
    """Model-free :class:`AccessClassifier` over a priority-buffer
    backend selected by ``buffer_impl`` (see :mod:`repro.cache.buffer`).

    Serves every access against the raw aged-priority buffer — insert
    and re-reference at ``priority``, evict on demand — giving the
    inference engine a buffer-managed baseline between plain
    :class:`~repro.cache.lru.LRUCache` and a fully trained RecMG
    manager.  With ``buffer_impl="clock"`` this is the cheapest serving
    configuration: array-backed residency with second-chance eviction;
    pass ``key_space`` (dense key universe) and membership runs off the
    residency bitmap.

    :meth:`access_batch` serves a whole engine batch at once.  On the
    approximate clock backend it uses the manager's batched-reclaim
    scheme (pre-evict the space the batch needs, then one bulk
    ``put_batch``); the dense (``key_space``) exact ``"fast"`` backend
    serves through
    :meth:`~repro.cache.buffer.FastPriorityBuffer.serve_segment`, which
    is bit-identical to the scalar loop — decisions, victims and buffer
    state included; the remaining exact configurations replay the
    scalar loop so their per-access eviction interleaving is preserved.

    ``num_shards > 1`` (with ``key_space``, which the routers require)
    partitions the id universe across shards
    (:class:`~repro.cache.sharding.ShardedBuffer`):
    :meth:`access_batch` scatters the batch shard-wise with one
    vectorized route and classifies each shard's sub-batch through the
    matching scheme above; the scalar path evicts from the routed
    shard.  ``concurrency="threads"`` dispatches the per-shard
    classifications to a persistent
    :class:`~repro.serving.workers.ShardWorkerPool` (shard-pinned
    workers, shard-order gather — the manager's concurrent engine in
    miniature), which is bit-identical to the serial shard loop.

    ``priority_provider`` puts the caching model in the loop (same seam
    as the manager's ``priority_mode`` — see
    :mod:`repro.serving.priorities`): after each :meth:`access_batch`
    completes, the batch is sunk through the provider and any ``>= 0``
    bits land on resident keys via the shared bulk applier.  Requires
    driving the classifier with *dense* ids (the provider's feature and
    table space — the same universe ``key_space`` and the shard routers
    assume); the scalar :meth:`access` path never sinks, the provider
    operates at batch granularity only.
    """

    def __init__(self, capacity: int, buffer_impl: str = "clock",
                 priority: int = 4,
                 key_space: Optional[int] = None,
                 num_shards: int = 1,
                 shard_policy: str = "contiguous",
                 shard_weights=None,
                 concurrency: str = "serial",
                 num_workers: Optional[int] = None,
                 priority_provider=None) -> None:
        if concurrency not in ("serial", "threads"):
            raise ValueError(
                "concurrency must be one of ('serial', 'threads'), "
                f"got {concurrency!r}")
        if concurrency == "threads" and num_shards < 2:
            raise ValueError(
                "concurrency='threads' dispatches per-shard workers "
                "and requires num_shards > 1")
        self.buffer = make_buffer(buffer_impl, capacity,
                                  key_space=key_space,
                                  num_shards=num_shards,
                                  shard_policy=shard_policy,
                                  shard_weights=shard_weights)
        self.priority = priority
        self.concurrency = concurrency
        self.num_workers = num_workers
        self._pool: Optional[ShardWorkerPool] = None
        self.priority_provider = priority_provider
        self._provider_active = (
            priority_provider is not None
            and getattr(priority_provider, "mode", "none") != "none")

    def close(self) -> None:
        """Join the worker pool and close the provider, if built
        (idempotent)."""
        if self._pool is not None:
            self._pool.close()
        if self.priority_provider is not None:
            self.priority_provider.close()

    def access(self, key: int, pc: int = 0) -> bool:
        return self._serve_scalar(backend_for_key(self.buffer, int(key)),
                                  int(key))

    def _serve_scalar(self, buffer, key: int) -> bool:
        if key in buffer:
            buffer.set_priority(key, self.priority)
            return True
        if buffer.is_full:
            buffer.evict_one()
        buffer.insert(key, self.priority)
        return False

    def _access_loop(self, buffer, keys: np.ndarray) -> np.ndarray:
        return np.fromiter(
            (self._serve_scalar(buffer, int(key)) for key in keys),
            dtype=bool, count=len(keys))

    def access_batch(self, keys: np.ndarray,
                     pcs: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-access hit booleans for a whole batch (see class doc)."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        hits = self._route_batch(keys)
        if self._provider_active:
            # Sink after the batch fully resolves (all shard futures
            # gathered): the provider's bulk priority writes touch
            # every shard, so they must not race in-flight sub-batches.
            self._sink_provider(keys)
        return hits

    def _route_batch(self, keys: np.ndarray) -> np.ndarray:
        buffer = self.buffer
        segments = getattr(buffer, "iter_shard_segments", None)
        if segments is None:
            return self._classify_batch(buffer, keys)
        # Sharded: one vectorized scatter, per-shard classification,
        # one gather back into batch order.
        hits = np.empty(keys.size, dtype=bool)
        if self.concurrency == "threads":
            # Shard-pinned workers; only the gather writes ``hits``.
            if self._pool is None or self._pool.closed:
                self._pool = ShardWorkerPool(buffer.num_shards,
                                             self.num_workers)
            jobs = [
                (positions,
                 self._pool.submit(index, self._classify_batch, shard, sub))
                for index, shard, positions, sub in segments(keys)
            ]
            for positions, future in jobs:
                hits[positions] = future.result()
            return hits
        for _, shard, positions, sub in segments(keys):
            hits[positions] = self._classify_batch(shard, sub)
        return hits

    def _sink_provider(self, keys: np.ndarray) -> None:
        """Feed a completed batch to the provider and apply returned
        bits — the :meth:`RecMGManager._sink_provider` contract at the
        classifier's batch granularity."""
        from ..serving.priorities import apply_caching_bits

        provider = self.priority_provider
        provider.observe(keys)
        bits = provider.bits_for(keys)
        if bits is None:
            return
        valid = bits >= 0
        if not valid.any():
            return
        apply_caching_bits(self.buffer, keys[valid], bits[valid],
                           self.priority)

    def _classify_batch(self, buffer, keys: np.ndarray) -> np.ndarray:
        """Hit booleans for ``keys`` against one single-shard backend."""
        if not getattr(buffer, "approximate", False):
            if (not hasattr(buffer, "serve_segment")
                    or getattr(buffer, "residency", None) is None):
                return self._access_loop(buffer, keys)
            # Exact bulk path: the shared serve-prefix driver yields
            # bulk prefixes plus the scalar stretches to replay.
            hits = np.ones(keys.size, dtype=bool)
            for chunk in iter_serve_segments(buffer, keys, self.priority):
                if chunk[0] == "scalar":
                    _, start, span = chunk
                    hits[start:start + span] = self._access_loop(
                        buffer, keys[start:start + span])
                else:
                    _, start, _, first_miss, _, _ = chunk
                    hits[start + first_miss] = False
            return hits
        resident = buffer.contains_batch(keys)
        if resident.all():
            buffer.put_batch(keys, self.priority)
            return np.ones(keys.size, dtype=bool)
        uniq, first_idx = np.unique(keys, return_index=True)
        if uniq.size > buffer.capacity:
            # Batch wider than the buffer: cannot pre-reclaim.
            return self._access_loop(buffer, keys)
        _, stale = reclaim_batch_space(
            buffer, uniq, int(np.count_nonzero(~resident[first_idx])))
        if stale:  # victims inside the batch re-miss
            resident = buffer.contains_batch(keys)
        hits = np.ones(keys.size, dtype=bool)
        hits[first_idx[~resident[first_idx]]] = False
        buffer.put_batch(keys, self.priority)
        return hits


class ManagerClassifier:
    """Adapts a :class:`repro.core.manager.RecMGManager` run into the
    per-access classifier interface by replaying its recorded decisions.

    The manager operates on chunk boundaries (models fire per chunk), so
    it is run once up front and the resulting per-access hit stream is
    replayed to the engine.
    """

    def __init__(self, manager, trace: Trace) -> None:
        from ..core.manager import RecMGManager  # local import, no cycle

        if not isinstance(manager, RecMGManager):
            raise TypeError("ManagerClassifier wraps a RecMGManager")
        self._decisions = self._record(manager, trace)
        self._cursor = 0

    @staticmethod
    def _record(manager, trace: Trace) -> np.ndarray:
        manager.run(trace, record_decisions=True)
        return manager.last_decisions

    def access(self, key: int, pc: int = 0) -> bool:
        hit = bool(self._decisions[self._cursor])
        self._cursor += 1
        return hit

    def access_batch(self, keys: np.ndarray,
                     pcs: Optional[np.ndarray] = None) -> np.ndarray:
        """Replay a whole batch of recorded decisions in one slice."""
        lo = self._cursor
        hi = lo + len(keys)
        if hi > len(self._decisions):
            # Same failure the scalar path hits one access later: the
            # engine is serving more accesses than the wrapped manager
            # run recorded — fail loudly, never under-count.
            raise IndexError(
                f"decision stream exhausted: engine requested access "
                f"{hi} of {len(self._decisions)} recorded")
        self._cursor = hi
        return self._decisions[lo:hi]
