"""Embedding tables and pooled lookups (paper Fig. 2).

Each embedding table maps categorical values (row ids) to dense latent
vectors; a DLRM query activates one or more rows per sparse feature and
the gathered vectors are *pooled* (summed) per table.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np


class EmbeddingTable:
    """One embedding table: ``num_rows x dim`` float matrix."""

    def __init__(self, num_rows: int, dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        if num_rows < 1 or dim < 1:
            raise ValueError("table dimensions must be positive")
        rng = rng or np.random.default_rng(0)
        self.num_rows = num_rows
        self.dim = dim
        self.weights = rng.normal(0.0, 0.1, size=(num_rows, dim))

    def lookup(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.num_rows):
            raise IndexError("embedding row out of range")
        return self.weights[rows]

    def pooled(self, rows: np.ndarray) -> np.ndarray:
        """Sum-pool the selected rows (feature pooling, paper Fig. 2)."""
        if len(rows) == 0:
            return np.zeros(self.dim)
        return self.lookup(rows).sum(axis=0)


class EmbeddingBagCollection:
    """All sparse-feature tables of one DLRM."""

    def __init__(self, num_tables: int, rows_per_table: int, dim: int,
                 seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.dim = dim
        self.tables: List[EmbeddingTable] = [
            EmbeddingTable(rows_per_table, dim, rng=rng)
            for _ in range(num_tables)
        ]

    def __len__(self) -> int:
        return len(self.tables)

    @property
    def total_rows(self) -> int:
        return sum(t.num_rows for t in self.tables)

    @property
    def memory_bytes(self) -> int:
        return sum(t.weights.nbytes for t in self.tables)

    def pooled_lookup(self, per_table_rows: Dict[int, np.ndarray]) -> np.ndarray:
        """Pooled vector per table, shape (num_tables, dim); tables
        absent from the query pool to zero."""
        out = np.zeros((len(self.tables), self.dim))
        for table_id, rows in per_table_rows.items():
            out[table_id] = self.tables[table_id].pooled(rows)
        return out
