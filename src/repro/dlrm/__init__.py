"""DLRM substrate: model, queries, tiered memory, inference timing."""

from .embedding import EmbeddingTable, EmbeddingBagCollection
from .model import DLRM, DLRMConfig
from .query import InferenceQuery, queries_from_trace, batched
from .tiered import TieredMemoryConfig
from .inference import (
    BatchTiming,
    BufferClassifier,
    InferenceReport,
    InferenceEngine,
    ManagerClassifier,
)
from .perfmodel import (
    ControlledHitRateCache,
    LinearPerformanceModel,
    calibrate,
)

__all__ = [
    "EmbeddingTable", "EmbeddingBagCollection",
    "DLRM", "DLRMConfig",
    "InferenceQuery", "queries_from_trace", "batched",
    "TieredMemoryConfig",
    "BatchTiming", "BufferClassifier", "InferenceReport", "InferenceEngine",
    "ManagerClassifier",
    "ControlledHitRateCache", "LinearPerformanceModel", "calibrate",
]
