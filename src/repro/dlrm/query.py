"""Turn an access trace into DLRM inference queries/batches."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

import numpy as np

from ..traces.access import Trace


@dataclass
class InferenceQuery:
    """One DLRM query: dense features + per-table row indices."""

    dense: np.ndarray
    sparse: Dict[int, np.ndarray]

    @property
    def pooling_factor(self) -> int:
        return int(sum(len(rows) for rows in self.sparse.values()))


def queries_from_trace(trace: Trace, num_dense: int = 8,
                       seed: int = 0) -> List[InferenceQuery]:
    """Reconstruct queries using the trace's query boundaries."""
    if trace.query_offsets is None:
        raise ValueError("trace lacks query boundaries")
    rng = np.random.default_rng(seed)
    queries: List[InferenceQuery] = []
    offsets = trace.query_offsets
    for q in range(len(offsets) - 1):
        lo, hi = int(offsets[q]), int(offsets[q + 1])
        sparse: Dict[int, List[int]] = {}
        for i in range(lo, hi):
            sparse.setdefault(int(trace.table_ids[i]), []).append(
                int(trace.row_ids[i])
            )
        queries.append(InferenceQuery(
            dense=rng.normal(size=num_dense),
            sparse={t: np.asarray(r, dtype=np.int64)
                    for t, r in sparse.items()},
        ))
    return queries


def batched(queries: List[InferenceQuery], batch_size: int
            ) -> Iterator[List[InferenceQuery]]:
    """Yield consecutive batches (last one may be short)."""
    for lo in range(0, len(queries), batch_size):
        yield queries[lo:lo + batch_size]
