"""Linear performance model: inference time vs cache hit rate (Fig. 18).

The paper fits ``time = a - b * hit_rate`` on synthetic traces with
controlled hit rates (RMSE < 3.75 ms, < 1.7%), then uses the model to
estimate inference latency for strategies given only their measured hit
rates (Fig. 19).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..traces.access import Trace
from .inference import InferenceEngine, InferenceReport


class ControlledHitRateCache:
    """A classifier that produces a target hit rate deterministically.

    Hits are spread evenly through the stream (Bresenham-style), so a
    run over N accesses yields ``round(N * hit_rate)`` hits.
    """

    def __init__(self, hit_rate: float) -> None:
        if not 0.0 <= hit_rate <= 1.0:
            raise ValueError("hit_rate must lie in [0, 1]")
        self.hit_rate = hit_rate
        self._accumulator = 0.0

    def access(self, key: int, pc: int = 0) -> bool:
        self._accumulator += self.hit_rate
        if self._accumulator >= 1.0:
            self._accumulator -= 1.0
            return True
        return False


@dataclass
class LinearPerformanceModel:
    """``predict(hit_rate) = intercept + slope * hit_rate`` (slope < 0)."""

    slope: float
    intercept: float
    rmse_ms: float

    def predict(self, hit_rate: float) -> float:
        return self.intercept + self.slope * hit_rate

    @classmethod
    def fit(cls, hit_rates: Sequence[float], times_ms: Sequence[float]
            ) -> "LinearPerformanceModel":
        x = np.asarray(hit_rates, dtype=np.float64)
        y = np.asarray(times_ms, dtype=np.float64)
        if len(x) < 2:
            raise ValueError("need at least two calibration points")
        slope, intercept = np.polyfit(x, y, deg=1)
        residual = y - (intercept + slope * x)
        return cls(slope=float(slope), intercept=float(intercept),
                   rmse_ms=float(np.sqrt(np.mean(residual ** 2))))


def calibrate(engine: InferenceEngine, trace: Trace,
              hit_rates: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
              batch_queries: int = 512
              ) -> Tuple[LinearPerformanceModel, List[InferenceReport]]:
    """Measure inference time under controlled hit rates and fit the
    linear model (the Fig. 18 procedure)."""
    reports: List[InferenceReport] = []
    times: List[float] = []
    for rate in hit_rates:
        report = engine.run(trace, ControlledHitRateCache(rate),
                            batch_queries=batch_queries)
        reports.append(report)
        times.append(report.mean_batch_ms)
    model = LinearPerformanceModel.fit(list(hit_rates), times)
    return model, reports
