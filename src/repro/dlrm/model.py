"""Pure-numpy DLRM (Naumov et al.) for inference (paper Fig. 1).

Bottom MLP projects continuous features into the latent space; embedding
bags handle categorical features; the interaction layer takes pairwise
dot products; the top MLP produces the click-through-rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..nn import MLP, Tensor
from .embedding import EmbeddingBagCollection


@dataclass
class DLRMConfig:
    """Shape of the DLRM used by the inference experiments."""

    num_tables: int = 12
    rows_per_table: int = 4096
    embedding_dim: int = 16
    num_dense_features: int = 8
    bottom_mlp: Sequence[int] = (32, 16)
    top_mlp: Sequence[int] = (64, 32, 1)
    seed: int = 0


class DLRM:
    """Inference-only DLRM over numpy arrays."""

    def __init__(self, config: Optional[DLRMConfig] = None) -> None:
        self.config = config or DLRMConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.embeddings = EmbeddingBagCollection(
            cfg.num_tables, cfg.rows_per_table, cfg.embedding_dim,
            seed=cfg.seed,
        )
        self.bottom_mlp = MLP(
            [cfg.num_dense_features, *cfg.bottom_mlp, cfg.embedding_dim],
            rng=rng,
        )
        num_features = cfg.num_tables + 1  # pooled tables + bottom output
        num_interactions = num_features * (num_features - 1) // 2
        self.top_mlp = MLP(
            [num_interactions + cfg.embedding_dim, *cfg.top_mlp],
            rng=rng, final_activation="sigmoid",
        )

    # ------------------------------------------------------------------
    def interact(self, features: np.ndarray) -> np.ndarray:
        """Pairwise dot-product interaction; features (F, dim)."""
        gram = features @ features.T
        upper = gram[np.triu_indices(features.shape[0], k=1)]
        return upper

    def forward_one(self, dense: np.ndarray,
                    per_table_rows: Dict[int, np.ndarray]) -> float:
        """CTR for one query."""
        dense_latent = self.bottom_mlp(Tensor(dense.reshape(1, -1))).data[0]
        pooled = self.embeddings.pooled_lookup(per_table_rows)
        features = np.vstack([dense_latent, pooled])
        interactions = self.interact(features)
        top_in = np.concatenate([interactions, dense_latent])
        ctr = self.top_mlp(Tensor(top_in.reshape(1, -1))).data[0, 0]
        return float(ctr)

    def forward_batch(self, dense_batch: np.ndarray,
                      sparse_batch: List[Dict[int, np.ndarray]]
                      ) -> np.ndarray:
        """CTRs for a batch of queries."""
        if len(dense_batch) != len(sparse_batch):
            raise ValueError("dense and sparse batch sizes differ")
        return np.array([
            self.forward_one(dense_batch[i], sparse_batch[i])
            for i in range(len(sparse_batch))
        ])

    # ------------------------------------------------------------------
    @property
    def flops_per_query(self) -> int:
        """Rough MAC count (used by the GPU-compute latency model)."""
        cfg = self.config
        total = 0
        sizes = [cfg.num_dense_features, *cfg.bottom_mlp, cfg.embedding_dim]
        total += sum(a * b for a, b in zip(sizes[:-1], sizes[1:]))
        num_features = cfg.num_tables + 1
        total += num_features * num_features * cfg.embedding_dim
        inter = num_features * (num_features - 1) // 2
        sizes = [inter + cfg.embedding_dim, *cfg.top_mlp]
        total += sum(a * b for a, b in zip(sizes[:-1], sizes[1:]))
        return total
