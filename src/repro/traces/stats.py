"""Trace statistics: popularity skew, pooling factors, table breakdowns."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .access import Trace


@dataclass(frozen=True)
class TraceSummary:
    """Headline statistics reported alongside every dataset."""

    num_accesses: int
    num_unique: int
    num_tables: int
    top20_share: float
    mean_pooling: float
    max_pooling: int


def access_frequencies(trace: Trace) -> Tuple[np.ndarray, np.ndarray]:
    """Return (unique_keys, counts) sorted by descending count."""
    keys, counts = np.unique(trace.keys(), return_counts=True)
    order = np.argsort(-counts)
    return keys[order], counts[order]


def top_fraction_share(trace: Trace, fraction: float = 0.2) -> float:
    """Share of accesses taken by the most popular ``fraction`` of keys.

    The paper observes ~20% of vectors take ~80% of accesses.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must lie in (0, 1]")
    _, counts = access_frequencies(trace)
    if counts.size == 0:
        return 0.0
    k = max(1, int(np.ceil(counts.size * fraction)))
    return float(counts[:k].sum() / counts.sum())


def hot_set(trace: Trace, coverage: float = 0.8) -> np.ndarray:
    """Smallest prefix of most-popular keys covering ``coverage`` of accesses."""
    keys, counts = access_frequencies(trace)
    if counts.size == 0:
        return keys
    cum = np.cumsum(counts) / counts.sum()
    cut = int(np.searchsorted(cum, coverage)) + 1
    return keys[:cut]


def per_table_counts(trace: Trace) -> Dict[int, int]:
    tables, counts = np.unique(trace.table_ids, return_counts=True)
    return {int(t): int(c) for t, c in zip(tables, counts)}


def summarize(trace: Trace) -> TraceSummary:
    pooling = trace.pooling_factors() if trace.query_offsets is not None else np.array([0])
    return TraceSummary(
        num_accesses=len(trace),
        num_unique=trace.num_unique,
        num_tables=trace.num_tables,
        top20_share=top_fraction_share(trace, 0.2),
        mean_pooling=float(pooling.mean()) if pooling.size else 0.0,
        max_pooling=int(pooling.max()) if pooling.size else 0,
    )
