"""Reuse-distance analysis (paper §III, Fig. 3).

The reuse distance of an access is the number of *distinct* keys touched
between two consecutive references to the same key.  For a fully
associative LRU cache of capacity C, an access hits iff its reuse
distance is < C — so the reuse-distance histogram directly yields the
LRU hit-rate curve.

Two implementations are provided:

* :func:`reuse_distances` — the classic per-access Fenwick-tree
  algorithm (O(n log n) scalar operations); easy to audit, kept as the
  reference in property tests.
* :func:`reuse_distances_fast` — fully vectorized.  With ``prev[i]`` the
  previous occurrence of access ``i``'s key (−1 if none), an access
  ``j`` in the window ``(prev[i], i)`` is the *first* occurrence of its
  key inside the window iff ``prev[j] <= prev[i]``, so

  .. math:: d_i = \\#\\{j < i : prev_j \\le prev_i\\} - (prev_i + 1)

  (the subtracted term counts the positions ``j <= prev_i``, all of
  which trivially satisfy ``prev_j < j <= prev_i``).  The remaining
  "count smaller-or-equal to the left" problem is solved with a
  bottom-up mergesort sweep whose per-level block ranks are computed by
  a *single* ``np.searchsorted`` via per-block key offsets — O(log n)
  numpy passes, no per-access Python.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .access import Trace

#: Marker for first-touch accesses (no previous reference).
COLD_MISS = -1


class FenwickTree:
    """Binary indexed tree supporting point update / prefix sum."""

    def __init__(self, size: int) -> None:
        self.size = size
        self._tree = np.zeros(size + 1, dtype=np.int64)

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        while i <= self.size:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of values at positions [0, index]."""
        i = index + 1
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return int(total)

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum over [lo, hi]."""
        if hi < lo:
            return 0
        total = self.prefix_sum(hi)
        if lo > 0:
            total -= self.prefix_sum(lo - 1)
        return total


def reuse_distances(trace: Trace) -> np.ndarray:
    """Per-access reuse distance; ``COLD_MISS`` for first references.

    ``distances[i]`` is the number of distinct keys accessed strictly
    between access ``i`` and the previous access to the same key.
    """
    keys = trace.keys()
    n = len(keys)
    distances = np.full(n, COLD_MISS, dtype=np.int64)
    tree = FenwickTree(n)
    last_pos: Dict[int, int] = {}
    for i, key in enumerate(keys):
        key = int(key)
        prev = last_pos.get(key)
        if prev is not None:
            # Distinct keys in (prev, i): tree holds a 1 at the latest
            # position of every key seen so far.
            distances[i] = tree.range_sum(prev + 1, i - 1)
            tree.add(prev, -1)
        tree.add(i, 1)
        last_pos[key] = i
    return distances


def prev_occurrence_indices(keys: np.ndarray) -> np.ndarray:
    """Previous occurrence of each key, fully vectorized.

    ``prev[i]`` is the largest ``j < i`` with ``keys[j] == keys[i]``, or
    −1 for first touches.  A stable argsort groups equal keys in access
    order, so each element's predecessor within its group is its
    previous occurrence.
    """
    keys = np.asarray(keys)
    n = keys.size
    prev = np.full(n, -1, dtype=np.int64)
    if n < 2:
        return prev
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    same = sorted_keys[1:] == sorted_keys[:-1]
    prev_in_order = np.full(n, -1, dtype=np.int64)
    prev_in_order[1:][same] = order[:-1][same]
    prev[order] = prev_in_order
    return prev


def next_occurrence_indices(keys: np.ndarray,
                            prev: Optional[np.ndarray] = None) -> np.ndarray:
    """Next occurrence of each key (−1 for final touches); vectorized
    scatter-inverse of :func:`prev_occurrence_indices`.  Pass ``prev``
    to reuse an already-computed previous-occurrence array."""
    if prev is None:
        prev = prev_occurrence_indices(keys)
    nxt = np.full(prev.size, -1, dtype=np.int64)
    warm = prev >= 0
    nxt[prev[warm]] = np.nonzero(warm)[0]
    return nxt


def count_left_leq(values: np.ndarray) -> np.ndarray:
    """For each ``i``: the number of ``j < i`` with ``values[j] <=
    values[i]``, computed with O(log n) vectorized passes.

    The values are first rank-reduced to a permutation (a stable argsort
    breaks ties by index, which turns "<= to the left" into a strict
    comparison of distinct ranks).  A bottom-up mergesort then merges
    sibling blocks level by level — every level is a single batched 2-D
    ``np.argsort`` over all block pairs at once.  When a right-half
    element lands at merged position ``t`` with ``r`` right-half
    elements before it, exactly ``t - r`` left-half elements precede it,
    i.e. are smaller and to its left; each ``(j, i)`` pair meets in
    exactly one such merge, so the per-level scatter-adds accumulate the
    full count without any per-element Python.
    """
    vals = np.asarray(values, dtype=np.int64)
    n = vals.size
    if n < 2:
        return np.zeros(n, dtype=np.int64)
    # pos_by_rank[r] = original position of the r-th smallest value.
    # Padding ranks sort after everything and sit at positions >= n, so
    # they never count toward (and are discarded from) real elements.
    order = np.argsort(vals, kind="stable")
    size = 1 << (n - 1).bit_length()
    pos_by_rank = np.empty(size, dtype=np.int64)
    pos_by_rank[:n] = order
    pos_by_rank[n:] = np.arange(n, size, dtype=np.int64)
    counts = np.zeros(size, dtype=np.int64)
    width = 1
    while width < size:
        rows = pos_by_rank.reshape(-1, 2 * width)
        # Each rank-block pair: "left" holds the lower ranks, "right"
        # the higher; a right element's count of left *positions* below
        # its own position is exactly the number of smaller values to
        # its left that first differ at this block level.  Row offsets
        # make one flat searchsorted serve every pair at once.
        lower = np.sort(rows[:, :width], axis=1)
        higher = rows[:, width:]
        nrows = rows.shape[0]
        offsets = (np.arange(nrows, dtype=np.int64) * size)[:, None]
        within = np.searchsorted((lower + offsets).ravel(),
                                 (higher + offsets).ravel(), side="left")
        bases = np.repeat(np.arange(nrows, dtype=np.int64) * width, width)
        counts[higher.ravel()] += within - bases
        width *= 2
    return counts[:n]


def reuse_distances_fast(trace: Trace) -> np.ndarray:
    """Vectorized equivalent of :func:`reuse_distances` (see module
    docstring for the derivation); bit-identical output."""
    return reuse_distances_from_keys(trace.keys())


def reuse_distances_from_keys(keys: np.ndarray) -> np.ndarray:
    """Vectorized reuse distances over a raw key array."""
    keys = np.asarray(keys)
    prev = prev_occurrence_indices(keys)
    distances = count_left_leq(prev) - prev - 1
    distances[prev < 0] = COLD_MISS
    return distances


def reuse_histogram(distances: np.ndarray,
                    max_power: int = 26) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of reuse distances into power-of-2 buckets (Fig. 3).

    Returns (bucket_upper_bounds, counts); cold misses are excluded.
    Bucket ``i`` counts distances in [2^i, 2^(i+1)) with bucket 0 also
    covering distance 0.
    """
    warm = distances[distances >= 0]
    uppers = 2 ** np.arange(max_power + 1)
    counts = np.zeros(max_power + 1, dtype=np.int64)
    if warm.size:
        logs = np.zeros(warm.shape, dtype=np.int64)
        positive = warm > 0
        logs[positive] = np.floor(np.log2(warm[positive])).astype(np.int64)
        logs = np.minimum(logs, max_power)
        np.add.at(counts, logs, 1)
    return uppers, counts


def lru_hit_rate(distances: np.ndarray, capacity: int) -> float:
    """Exact fully-associative LRU hit rate from reuse distances.

    An access hits iff it is warm and its reuse distance < capacity.
    """
    if len(distances) == 0:
        return 0.0
    hits = int(((distances >= 0) & (distances < capacity)).sum())
    return hits / len(distances)


def lru_hit_rate_curve(distances: np.ndarray,
                       capacities: Sequence[int]) -> np.ndarray:
    """Vectorized LRU hit-rate curve over ``capacities``."""
    warm = distances[distances >= 0]
    n = max(len(distances), 1)
    sorted_warm = np.sort(warm)
    caps = np.asarray(list(capacities))
    hits = np.searchsorted(sorted_warm, caps, side="left")
    return hits / n


def long_reuse_fraction(distances: np.ndarray, threshold: int) -> float:
    """Fraction of *warm* accesses with reuse distance >= threshold.

    The paper reports ~20% of accesses beyond 2^20 on production traces.
    """
    warm = distances[distances >= 0]
    if warm.size == 0:
        return 0.0
    return float((warm >= threshold).sum() / warm.size)
