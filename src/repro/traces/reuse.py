"""Reuse-distance analysis (paper §III, Fig. 3).

The reuse distance of an access is the number of *distinct* keys touched
between two consecutive references to the same key.  For a fully
associative LRU cache of capacity C, an access hits iff its reuse
distance is < C — so the reuse-distance histogram directly yields the
LRU hit-rate curve.

The computation uses the classic Fenwick-tree algorithm and runs in
O(n log n).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .access import Trace

#: Marker for first-touch accesses (no previous reference).
COLD_MISS = -1


class FenwickTree:
    """Binary indexed tree supporting point update / prefix sum."""

    def __init__(self, size: int) -> None:
        self.size = size
        self._tree = np.zeros(size + 1, dtype=np.int64)

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        while i <= self.size:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of values at positions [0, index]."""
        i = index + 1
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return int(total)

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum over [lo, hi]."""
        if hi < lo:
            return 0
        total = self.prefix_sum(hi)
        if lo > 0:
            total -= self.prefix_sum(lo - 1)
        return total


def reuse_distances(trace: Trace) -> np.ndarray:
    """Per-access reuse distance; ``COLD_MISS`` for first references.

    ``distances[i]`` is the number of distinct keys accessed strictly
    between access ``i`` and the previous access to the same key.
    """
    keys = trace.keys()
    n = len(keys)
    distances = np.full(n, COLD_MISS, dtype=np.int64)
    tree = FenwickTree(n)
    last_pos: Dict[int, int] = {}
    for i, key in enumerate(keys):
        key = int(key)
        prev = last_pos.get(key)
        if prev is not None:
            # Distinct keys in (prev, i): tree holds a 1 at the latest
            # position of every key seen so far.
            distances[i] = tree.range_sum(prev + 1, i - 1)
            tree.add(prev, -1)
        tree.add(i, 1)
        last_pos[key] = i
    return distances


def reuse_histogram(distances: np.ndarray,
                    max_power: int = 26) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of reuse distances into power-of-2 buckets (Fig. 3).

    Returns (bucket_upper_bounds, counts); cold misses are excluded.
    Bucket ``i`` counts distances in [2^i, 2^(i+1)) with bucket 0 also
    covering distance 0.
    """
    warm = distances[distances >= 0]
    uppers = 2 ** np.arange(max_power + 1)
    counts = np.zeros(max_power + 1, dtype=np.int64)
    if warm.size:
        logs = np.zeros(warm.shape, dtype=np.int64)
        positive = warm > 0
        logs[positive] = np.floor(np.log2(warm[positive])).astype(np.int64)
        logs = np.minimum(logs, max_power)
        np.add.at(counts, logs, 1)
    return uppers, counts


def lru_hit_rate(distances: np.ndarray, capacity: int) -> float:
    """Exact fully-associative LRU hit rate from reuse distances.

    An access hits iff it is warm and its reuse distance < capacity.
    """
    if len(distances) == 0:
        return 0.0
    hits = int(((distances >= 0) & (distances < capacity)).sum())
    return hits / len(distances)


def lru_hit_rate_curve(distances: np.ndarray,
                       capacities: Sequence[int]) -> np.ndarray:
    """Vectorized LRU hit-rate curve over ``capacities``."""
    warm = distances[distances >= 0]
    n = max(len(distances), 1)
    sorted_warm = np.sort(warm)
    caps = np.asarray(list(capacities))
    hits = np.searchsorted(sorted_warm, caps, side="left")
    return hits / n


def long_reuse_fraction(distances: np.ndarray, threshold: int) -> float:
    """Fraction of *warm* accesses with reuse distance >= threshold.

    The paper reports ~20% of accesses beyond 2^20 on production traces.
    """
    warm = distances[distances >= 0]
    if warm.size == 0:
        return 0.0
    return float((warm >= threshold).sum() / warm.size)
