"""Core datatypes for embedding-vector access traces.

A trace is the fundamental evaluation artifact of the paper: an ordered
sequence of accesses to embedding vectors, each identified by an
``(table_id, row_id)`` pair.  For cache/prefetch simulation we also need
a single flat integer *key* per vector; we pack the pair into an int64
(``table_id << ROW_BITS | row_id``), mirroring how the paper treats
"each embedding-vector index as a memory address".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, NamedTuple, Optional, Sequence, Tuple

import numpy as np

#: Number of low-order bits reserved for the row id inside a packed key.
ROW_BITS = 40
_ROW_MASK = (1 << ROW_BITS) - 1


class Access(NamedTuple):
    """A single embedding-vector access."""

    table_id: int
    row_id: int

    @property
    def key(self) -> int:
        return pack_key(self.table_id, self.row_id)


def pack_key(table_id: int, row_id: int) -> int:
    """Pack (table, row) into one int64 key."""
    return (int(table_id) << ROW_BITS) | int(row_id)


def unpack_key(key: int) -> Tuple[int, int]:
    """Invert :func:`pack_key`."""
    return int(key) >> ROW_BITS, int(key) & _ROW_MASK


@dataclass
class Trace:
    """An ordered sequence of embedding-vector accesses.

    Stored as parallel int64 arrays for speed.  ``query_offsets`` is an
    optional array marking where each DLRM inference query starts in the
    stream (used by the pooling-factor statistics and the DLRM inference
    engine); ``query_offsets[i]`` is the index of the first access of
    query ``i`` and a final sentinel equals ``len(trace)``.
    """

    table_ids: np.ndarray
    row_ids: np.ndarray
    query_offsets: Optional[np.ndarray] = None
    name: str = ""

    def __post_init__(self) -> None:
        self.table_ids = np.asarray(self.table_ids, dtype=np.int64)
        self.row_ids = np.asarray(self.row_ids, dtype=np.int64)
        if self.table_ids.shape != self.row_ids.shape:
            raise ValueError("table_ids and row_ids must have equal length")
        if self.table_ids.ndim != 1:
            raise ValueError("trace arrays must be one-dimensional")
        if self.query_offsets is not None:
            self.query_offsets = np.asarray(self.query_offsets, dtype=np.int64)
            if len(self.query_offsets) and self.query_offsets[-1] != len(self.table_ids):
                raise ValueError("query_offsets must end with len(trace)")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.table_ids.shape[0])

    def __iter__(self) -> Iterator[Access]:
        for t, r in zip(self.table_ids, self.row_ids):
            yield Access(int(t), int(r))

    def __getitem__(self, idx) -> "Trace":
        if isinstance(idx, slice):
            return Trace(self.table_ids[idx], self.row_ids[idx], name=self.name)
        raise TypeError("Trace indexing supports slices only; iterate for items")

    # ------------------------------------------------------------------
    def keys(self) -> np.ndarray:
        """Packed int64 key per access."""
        return (self.table_ids << ROW_BITS) | self.row_ids

    def unique_keys(self) -> np.ndarray:
        return np.unique(self.keys())

    @property
    def num_unique(self) -> int:
        return int(self.unique_keys().shape[0])

    @property
    def num_tables(self) -> int:
        return int(np.unique(self.table_ids).shape[0])

    @property
    def num_queries(self) -> int:
        if self.query_offsets is None:
            return 0
        return int(len(self.query_offsets) - 1)

    def pooling_factors(self) -> np.ndarray:
        """Accesses per query (the paper's pooling factor distribution)."""
        if self.query_offsets is None:
            raise ValueError("trace has no query boundaries")
        return np.diff(self.query_offsets)

    def head(self, n: int) -> "Trace":
        """First ``n`` accesses (query boundaries dropped)."""
        return Trace(self.table_ids[:n], self.row_ids[:n], name=self.name)

    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Sequence[Tuple[int, int]], name: str = "") -> "Trace":
        if not len(pairs):
            return cls(np.empty(0, np.int64), np.empty(0, np.int64), name=name)
        arr = np.asarray(pairs, dtype=np.int64)
        return cls(arr[:, 0], arr[:, 1], name=name)

    @classmethod
    def from_keys(cls, keys: np.ndarray, name: str = "") -> "Trace":
        keys = np.asarray(keys, dtype=np.int64)
        return cls(keys >> ROW_BITS, keys & _ROW_MASK, name=name)

    @classmethod
    def concatenate(cls, traces: Sequence["Trace"], name: str = "") -> "Trace":
        return cls(
            np.concatenate([t.table_ids for t in traces]),
            np.concatenate([t.row_ids for t in traces]),
            name=name,
        )

    def split(self, fraction: float) -> Tuple["Trace", "Trace"]:
        """Split into (train, test) at ``fraction`` of the length."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must lie in (0, 1)")
        cut = int(len(self) * fraction)
        return self.head(cut), Trace(
            self.table_ids[cut:], self.row_ids[cut:], name=self.name
        )


def remap_to_dense(trace: Trace) -> Tuple[np.ndarray, Dict[int, int]]:
    """Map packed keys to a dense [0, num_unique) vocabulary.

    Returns the remapped int64 array and the key->dense-id mapping.
    Dense ids are assigned in sorted-key order, which keeps rows of the
    same table (and within a table, nearby rows) adjacent — the property
    the prefetch model's index regression relies on.
    """
    keys = trace.keys()
    unique = np.unique(keys)
    dense = np.searchsorted(unique, keys)
    mapping = {int(k): int(i) for i, k in enumerate(unique)}
    return dense.astype(np.int64), mapping
