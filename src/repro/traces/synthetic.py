"""Synthetic DLRM embedding-access trace generator.

The paper evaluates on Meta production traces
(``facebookresearch/dlrm_datasets``); those are not redistributable, so
this generator synthesizes traces with the three properties the paper's
results depend on (see DESIGN.md):

1. **Power-law popularity** — a Zipf-distributed hot set so that roughly
   20% of vectors take roughly 80% of accesses (paper §I).
2. **Long reuse distances** — a small set of *periodic* vectors that
   recur with gaps far larger than any realistic GPU buffer (paper §III:
   20% of accesses reuse beyond 2^20).
3. **Learnable inter-access correlation** — user sessions walk a skewed
   Markov chain over latent *interest clusters*; each cluster maps to a
   contiguous block of rows per table, so consecutive queries touch
   correlated (and numerically nearby) indices.  This is the "implicit
   correlation in user access behaviors" RecMG's models learn.

Cluster blocks are contiguous index ranges on purpose: RecMG's prefetch
model regresses embedding indices (the paper's projection layer emits
index values scored by the Chamfer measure), which presumes nearby
indices are semantically related.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np

from .access import Trace


@dataclass
class SyntheticTraceConfig:
    """Knobs for the synthetic trace generator.

    Defaults produce a small trace suitable for tests; the dataset
    presets in :mod:`repro.traces.datasets` scale them up.
    """

    num_tables: int = 8
    rows_per_table: int = 2048
    num_accesses: int = 50_000
    #: Zipf exponent for cluster popularity (higher = more skew).
    zipf_s: float = 1.1
    #: Number of latent interest clusters.
    num_clusters: int = 64
    #: Rows per cluster block inside each table.
    cluster_block: int = 16
    #: Queries per user session (consecutive correlated queries).
    session_length: int = 8
    #: Dirichlet concentration of the cluster transition matrix;
    #: smaller = more deterministic transitions = more learnable.
    transition_concentration: float = 0.05
    #: Number of candidate successor clusters per cluster.
    transition_fanout: int = 4
    #: Mean pooling factor (accesses per query); actual factor is
    #: lognormal-ish in [1, pooling_max].
    pooling_mean: float = 6.0
    pooling_max: int = 64
    #: Fraction of accesses replaced by uniform cold accesses (few-reuse).
    cold_fraction: float = 0.08
    #: Long-reuse population: a pool of ``periodic_items`` vectors cycled
    #: one injection every ``periodic_spacing`` accesses.  Each item then
    #: recurs every ``periodic_items * periodic_spacing`` accesses — far
    #: beyond typical buffer capacities, reproducing the paper's "20% of
    #: accesses have reuse distance larger than 2^20".  The cyclic order
    #: makes these accesses *predictable* (the prefetch model's target).
    periodic_items: int = 1000
    periodic_spacing: int = 6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_tables < 1 or self.rows_per_table < 1:
            raise ValueError("need at least one table and one row")
        if self.cluster_block * 1 > self.rows_per_table:
            raise ValueError("cluster_block larger than table")
        if not 0.0 <= self.cold_fraction < 1.0:
            raise ValueError("cold_fraction must lie in [0, 1)")
        if self.pooling_max < 1:
            raise ValueError("pooling_max must be >= 1")


class _ClusterSpace:
    """Maps clusters to contiguous row blocks inside every table."""

    def __init__(self, config: SyntheticTraceConfig, rng: np.random.Generator) -> None:
        self.config = config
        blocks_per_table = config.rows_per_table // config.cluster_block
        # Each cluster owns one block per table, chosen without
        # replacement where possible so clusters do not fully overlap.
        self.block_of = np.empty((config.num_clusters, config.num_tables), np.int64)
        for table in range(config.num_tables):
            if config.num_clusters <= blocks_per_table:
                choice = rng.choice(blocks_per_table, size=config.num_clusters,
                                    replace=False)
            else:
                choice = rng.integers(0, blocks_per_table, size=config.num_clusters)
            self.block_of[:, table] = choice

    def rows(self, cluster: int, table: int, count: int,
             rng: np.random.Generator) -> np.ndarray:
        base = self.block_of[cluster, table] * self.config.cluster_block
        # Zipf-ish skew inside the block: low offsets more popular.
        offsets = rng.zipf(1.8, size=count) - 1
        offsets = np.minimum(offsets, self.config.cluster_block - 1)
        return base + offsets


def _make_transition_matrix(config: SyntheticTraceConfig,
                            rng: np.random.Generator) -> np.ndarray:
    """Sparse, skewed Markov transition matrix over clusters."""
    n = config.num_clusters
    matrix = np.zeros((n, n))
    for c in range(n):
        successors = rng.choice(n, size=min(config.transition_fanout, n),
                                replace=False)
        weights = rng.dirichlet(
            np.full(len(successors), config.transition_concentration)
        )
        matrix[c, successors] = weights
    return matrix


def _zipf_popularity(n: int, s: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-s)
    return weights / weights.sum()


def generate_trace(config: SyntheticTraceConfig) -> Trace:
    """Generate a synthetic embedding-access trace per ``config``."""
    rng = np.random.default_rng(config.seed)
    space = _ClusterSpace(config, rng)
    transition = _make_transition_matrix(config, rng)
    popularity = _zipf_popularity(config.num_clusters, config.zipf_s)

    table_chunks: List[np.ndarray] = []
    row_chunks: List[np.ndarray] = []
    query_lengths: List[int] = []

    periodic_rows = rng.integers(0, config.rows_per_table,
                                 size=max(1, config.periodic_items))
    periodic_tables = rng.integers(0, config.num_tables,
                                   size=max(1, config.periodic_items))

    total = 0
    cluster = int(rng.choice(config.num_clusters, p=popularity))
    session_left = config.session_length
    next_periodic = config.periodic_spacing
    periodic_cursor = 0

    while total < config.num_accesses:
        if session_left == 0:
            cluster = int(rng.choice(config.num_clusters, p=popularity))
            session_left = config.session_length
        else:
            row_probs = transition[cluster]
            if row_probs.sum() > 0:
                cluster = int(rng.choice(config.num_clusters, p=row_probs))
        session_left -= 1

        pooling = int(np.clip(rng.poisson(config.pooling_mean) + 1,
                              1, config.pooling_max))
        tables = rng.integers(0, config.num_tables, size=pooling)
        rows = np.empty(pooling, np.int64)
        for i, table in enumerate(tables):
            rows[i] = space.rows(cluster, int(table), 1, rng)[0]

        # Replace a fraction with cold (few-reuse) uniform accesses.
        cold_mask = rng.random(pooling) < config.cold_fraction
        cold_count = int(cold_mask.sum())
        if cold_count:
            rows[cold_mask] = rng.integers(0, config.rows_per_table,
                                           size=cold_count)
            tables[cold_mask] = rng.integers(0, config.num_tables,
                                             size=cold_count)

        # Inject long-reuse-distance items, cycling the pool in order.
        while config.periodic_items and total + len(rows) >= next_periodic:
            idx = periodic_cursor % config.periodic_items
            tables = np.append(tables, periodic_tables[idx])
            rows = np.append(rows, periodic_rows[idx])
            periodic_cursor += 1
            next_periodic += config.periodic_spacing

        table_chunks.append(tables.astype(np.int64))
        row_chunks.append(rows)
        query_lengths.append(len(rows))
        total += len(rows)

    table_ids = np.concatenate(table_chunks)[: config.num_accesses]
    row_ids = np.concatenate(row_chunks)[: config.num_accesses]
    offsets = np.concatenate([[0], np.cumsum(query_lengths)])
    offsets = offsets[offsets <= config.num_accesses]
    if offsets[-1] != config.num_accesses:
        offsets = np.append(offsets, config.num_accesses)
    return Trace(table_ids, row_ids, query_offsets=offsets,
                 name=f"synthetic-seed{config.seed}")


# ---------------------------------------------------------------------------
# Scenario-diverse generators (sharded-serving workloads).
#
# The sharded serving stack (repro.cache.sharding) is only interesting
# under the traffic shapes real multi-tenant embedding caches see:
# varying popularity skew, one shard drawing most of the traffic, and
# tenants time-sharing the buffer from disjoint id regions.  The three
# generators below synthesize exactly those.  They draw (table, row)
# pairs from the *table-major flat grid* g = table * rows_per_table +
# row: packed keys sort in that same order, remap_to_dense assigns
# dense ids in sorted-key order, and the contiguous shard router
# partitions dense ids by ranges — so a contiguous band of the flat
# grid lands (up to ids that never appear) in a contiguous band of
# dense ids, i.e. on one contiguous-router shard.


def _grid_to_trace(flat: np.ndarray, rows_per_table: int,
                   name: str) -> Trace:
    """Flat table-major grid ids -> a Trace (one query per access)."""
    offsets = np.arange(flat.size + 1, dtype=np.int64)
    return Trace(flat // rows_per_table, flat % rows_per_table,
                 query_offsets=offsets, name=name)


def _band_draw(rng: np.random.Generator, lo: int, hi: int, count: int,
               zipf_s: float) -> np.ndarray:
    """``count`` Zipf-skewed draws from the flat-grid band [lo, hi)."""
    weights = _zipf_popularity(hi - lo, zipf_s)
    return lo + rng.choice(hi - lo, size=count, p=weights)


def skew_sweep_configs(base: SyntheticTraceConfig,
                       exponents: Sequence[float]
                       ) -> List[SyntheticTraceConfig]:
    """One config per Zipf exponent, all else (seed included) shared —
    the knob sweep behind the sharded-serving skew benchmarks."""
    return [replace(base, zipf_s=float(s)) for s in exponents]


def generate_skew_sweep(base: SyntheticTraceConfig,
                        exponents: Sequence[float]) -> List[Trace]:
    """Generate one trace per Zipf exponent (see
    :func:`skew_sweep_configs`): a popularity-skew sweep over otherwise
    identical workloads, from near-uniform (small ``s``) to hammering a
    few clusters (large ``s``)."""
    return [generate_trace(config)
            for config in skew_sweep_configs(base, exponents)]


def generate_hot_shard_trace(config: SyntheticTraceConfig,
                             num_shards: int = 4,
                             hot_shard: int = 0,
                             hot_fraction: float = 0.8) -> Trace:
    """Hot-shard imbalance: ``hot_fraction`` of accesses concentrate on
    one contiguous band of the id space.

    The table-major flat grid ``[0, num_tables * rows_per_table)``
    splits into ``num_shards`` equal contiguous bands; a
    ``hot_fraction`` share of accesses draws (Zipf ``config.zipf_s``)
    from band ``hot_shard``, the rest Zipf-spread over the whole grid.
    Under the contiguous shard router one shard therefore absorbs
    ~``hot_fraction`` of the traffic (the worst case a static range
    partition can see), while the modulo router stripes the same hot
    band across every shard — the pair the sharded benchmarks compare.
    """
    if not 1 <= num_shards:
        raise ValueError("num_shards must be >= 1")
    if not 0 <= hot_shard < num_shards:
        raise ValueError("hot_shard must lie in [0, num_shards)")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must lie in [0, 1]")
    rng = np.random.default_rng(config.seed)
    universe = config.num_tables * config.rows_per_table
    if universe < num_shards:
        raise ValueError("id universe smaller than num_shards")
    lo = hot_shard * universe // num_shards
    hi = (hot_shard + 1) * universe // num_shards
    n = config.num_accesses
    hot_mask = rng.random(n) < hot_fraction
    flat = np.empty(n, dtype=np.int64)
    hot_count = int(hot_mask.sum())
    if hot_count:
        flat[hot_mask] = _band_draw(rng, lo, hi, hot_count, config.zipf_s)
    if n - hot_count:
        flat[~hot_mask] = _band_draw(rng, 0, universe, n - hot_count,
                                     config.zipf_s)
    return _grid_to_trace(
        flat, config.rows_per_table,
        name=(f"hot-shard{hot_shard}of{num_shards}"
              f"-f{hot_fraction:g}-seed{config.seed}"))


def generate_drifting_hot_band_trace(config: SyntheticTraceConfig,
                                     num_shards: int = 4,
                                     hot_fraction: float = 0.8,
                                     num_phases: int = 4) -> Trace:
    """Diurnal skew drift: the hot band *moves* across the id space.

    The trace is ``num_phases`` equal phases; phase ``p`` concentrates
    ``hot_fraction`` of its accesses (Zipf ``config.zipf_s``) on
    contiguous band ``p % num_shards`` of the flat grid, the rest
    Zipf-spread over the whole grid — each phase is one
    :func:`generate_hot_shard_trace` regime, with the hot band walking
    one shard to the right per phase.  This is the scenario static
    weighted splits cannot win: any fixed ``shard_weights`` choice
    matches at most one phase, so capacity is stranded on cold shards
    for the rest of the trace, while the online rebalancer
    (``rebalance_interval``) tracks the drift — the lift-gated
    drifting-hot-band bench compares exactly those three operating
    points (static / adaptive / per-phase oracle).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if num_phases < 1:
        raise ValueError("num_phases must be >= 1")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must lie in [0, 1]")
    rng = np.random.default_rng(config.seed)
    universe = config.num_tables * config.rows_per_table
    if universe < num_shards:
        raise ValueError("id universe smaller than num_shards")
    n = config.num_accesses
    phase_length = -(-n // num_phases)
    flat = np.empty(num_phases * phase_length, dtype=np.int64)
    for phase in range(num_phases):
        band = phase % num_shards
        lo = band * universe // num_shards
        hi = (band + 1) * universe // num_shards
        hot_mask = rng.random(phase_length) < hot_fraction
        hot_count = int(hot_mask.sum())
        segment = np.empty(phase_length, dtype=np.int64)
        if hot_count:
            segment[hot_mask] = _band_draw(rng, lo, hi, hot_count,
                                           config.zipf_s)
        if phase_length - hot_count:
            segment[~hot_mask] = _band_draw(rng, 0, universe,
                                            phase_length - hot_count,
                                            config.zipf_s)
        flat[phase * phase_length:(phase + 1) * phase_length] = segment
    return _grid_to_trace(
        flat[:n], config.rows_per_table,
        name=(f"drifting-hot{num_shards}-f{hot_fraction:g}"
              f"-p{num_phases}-seed{config.seed}"))


def generate_multi_tenant_trace(config: SyntheticTraceConfig,
                                num_tenants: int = 4,
                                tenant_shares: Optional[Sequence[float]]
                                = None,
                                phase_length: int = 256) -> Trace:
    """Multi-tenant interleave: tenants with disjoint contiguous id
    bands time-share the buffer in phases.

    The flat grid splits into ``num_tenants`` equal contiguous bands
    (one per tenant).  The trace is a sequence of ``phase_length``
    -access phases; each phase belongs to one tenant drawn with
    probability ``tenant_shares`` (uniform when omitted), and its
    accesses are Zipf-skewed *within that tenant's band* — tenant-local
    hot sets with no cross-tenant reuse.  Under contiguous routing each
    tenant maps to a stable shard subset (per-tenant isolation); under
    modulo routing every tenant touches every shard.
    """
    if num_tenants < 1:
        raise ValueError("num_tenants must be >= 1")
    if phase_length < 1:
        raise ValueError("phase_length must be >= 1")
    if tenant_shares is None:
        shares = np.full(num_tenants, 1.0 / num_tenants)
    else:
        shares = np.asarray(tenant_shares, dtype=np.float64)
        if shares.size != num_tenants or (shares < 0).any():
            raise ValueError("tenant_shares must be num_tenants "
                             "non-negative weights")
        if shares.sum() <= 0:
            raise ValueError("tenant_shares must not sum to zero")
        shares = shares / shares.sum()
    rng = np.random.default_rng(config.seed)
    universe = config.num_tables * config.rows_per_table
    if universe < num_tenants:
        raise ValueError("id universe smaller than num_tenants")
    n = config.num_accesses
    num_phases = -(-n // phase_length)
    tenant_of_phase = rng.choice(num_tenants, size=num_phases, p=shares)
    flat = np.empty(num_phases * phase_length, dtype=np.int64)
    for tenant in range(num_tenants):
        phases = np.flatnonzero(tenant_of_phase == tenant)
        if not phases.size:
            continue
        lo = tenant * universe // num_tenants
        hi = (tenant + 1) * universe // num_tenants
        draws = _band_draw(rng, lo, hi, phases.size * phase_length,
                           config.zipf_s)
        positions = (phases[:, None] * phase_length
                     + np.arange(phase_length)[None, :]).ravel()
        flat[positions] = draws
    return _grid_to_trace(
        flat[:n], config.rows_per_table,
        name=f"multi-tenant{num_tenants}-seed{config.seed}")


def model_guided_scenarios(config: SyntheticTraceConfig,
                           num_shards: int = 4
                           ) -> List[tuple[str, Trace]]:
    """Named ``(scenario, trace)`` pairs the model-guided serving bench
    sweeps: the base correlated-Zipf trace, its hot-shard variant (85%
    of traffic on one contiguous band) and the multi-tenant phase
    interleave.  One shared config (seed included) so the hit-rate
    lifts in ``BENCH_hotpaths.json`` compare like against like across
    PRs; the three access shapes stress the caching model differently
    (global popularity skew, band-local skew, phase-local reuse)."""
    return [
        ("zipf", generate_trace(config)),
        ("hot_shard", generate_hot_shard_trace(
            config, num_shards=num_shards, hot_shard=0, hot_fraction=0.85)),
        ("multi_tenant", generate_multi_tenant_trace(
            config, num_tenants=num_shards)),
    ]
