"""Synthetic DLRM embedding-access trace generator.

The paper evaluates on Meta production traces
(``facebookresearch/dlrm_datasets``); those are not redistributable, so
this generator synthesizes traces with the three properties the paper's
results depend on (see DESIGN.md):

1. **Power-law popularity** — a Zipf-distributed hot set so that roughly
   20% of vectors take roughly 80% of accesses (paper §I).
2. **Long reuse distances** — a small set of *periodic* vectors that
   recur with gaps far larger than any realistic GPU buffer (paper §III:
   20% of accesses reuse beyond 2^20).
3. **Learnable inter-access correlation** — user sessions walk a skewed
   Markov chain over latent *interest clusters*; each cluster maps to a
   contiguous block of rows per table, so consecutive queries touch
   correlated (and numerically nearby) indices.  This is the "implicit
   correlation in user access behaviors" RecMG's models learn.

Cluster blocks are contiguous index ranges on purpose: RecMG's prefetch
model regresses embedding indices (the paper's projection layer emits
index values scored by the Chamfer measure), which presumes nearby
indices are semantically related.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .access import Trace


@dataclass
class SyntheticTraceConfig:
    """Knobs for the synthetic trace generator.

    Defaults produce a small trace suitable for tests; the dataset
    presets in :mod:`repro.traces.datasets` scale them up.
    """

    num_tables: int = 8
    rows_per_table: int = 2048
    num_accesses: int = 50_000
    #: Zipf exponent for cluster popularity (higher = more skew).
    zipf_s: float = 1.1
    #: Number of latent interest clusters.
    num_clusters: int = 64
    #: Rows per cluster block inside each table.
    cluster_block: int = 16
    #: Queries per user session (consecutive correlated queries).
    session_length: int = 8
    #: Dirichlet concentration of the cluster transition matrix;
    #: smaller = more deterministic transitions = more learnable.
    transition_concentration: float = 0.05
    #: Number of candidate successor clusters per cluster.
    transition_fanout: int = 4
    #: Mean pooling factor (accesses per query); actual factor is
    #: lognormal-ish in [1, pooling_max].
    pooling_mean: float = 6.0
    pooling_max: int = 64
    #: Fraction of accesses replaced by uniform cold accesses (few-reuse).
    cold_fraction: float = 0.08
    #: Long-reuse population: a pool of ``periodic_items`` vectors cycled
    #: one injection every ``periodic_spacing`` accesses.  Each item then
    #: recurs every ``periodic_items * periodic_spacing`` accesses — far
    #: beyond typical buffer capacities, reproducing the paper's "20% of
    #: accesses have reuse distance larger than 2^20".  The cyclic order
    #: makes these accesses *predictable* (the prefetch model's target).
    periodic_items: int = 1000
    periodic_spacing: int = 6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_tables < 1 or self.rows_per_table < 1:
            raise ValueError("need at least one table and one row")
        if self.cluster_block * 1 > self.rows_per_table:
            raise ValueError("cluster_block larger than table")
        if not 0.0 <= self.cold_fraction < 1.0:
            raise ValueError("cold_fraction must lie in [0, 1)")
        if self.pooling_max < 1:
            raise ValueError("pooling_max must be >= 1")


class _ClusterSpace:
    """Maps clusters to contiguous row blocks inside every table."""

    def __init__(self, config: SyntheticTraceConfig, rng: np.random.Generator) -> None:
        self.config = config
        blocks_per_table = config.rows_per_table // config.cluster_block
        # Each cluster owns one block per table, chosen without
        # replacement where possible so clusters do not fully overlap.
        self.block_of = np.empty((config.num_clusters, config.num_tables), np.int64)
        for table in range(config.num_tables):
            if config.num_clusters <= blocks_per_table:
                choice = rng.choice(blocks_per_table, size=config.num_clusters,
                                    replace=False)
            else:
                choice = rng.integers(0, blocks_per_table, size=config.num_clusters)
            self.block_of[:, table] = choice

    def rows(self, cluster: int, table: int, count: int,
             rng: np.random.Generator) -> np.ndarray:
        base = self.block_of[cluster, table] * self.config.cluster_block
        # Zipf-ish skew inside the block: low offsets more popular.
        offsets = rng.zipf(1.8, size=count) - 1
        offsets = np.minimum(offsets, self.config.cluster_block - 1)
        return base + offsets


def _make_transition_matrix(config: SyntheticTraceConfig,
                            rng: np.random.Generator) -> np.ndarray:
    """Sparse, skewed Markov transition matrix over clusters."""
    n = config.num_clusters
    matrix = np.zeros((n, n))
    for c in range(n):
        successors = rng.choice(n, size=min(config.transition_fanout, n),
                                replace=False)
        weights = rng.dirichlet(
            np.full(len(successors), config.transition_concentration)
        )
        matrix[c, successors] = weights
    return matrix


def _zipf_popularity(n: int, s: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-s)
    return weights / weights.sum()


def generate_trace(config: SyntheticTraceConfig) -> Trace:
    """Generate a synthetic embedding-access trace per ``config``."""
    rng = np.random.default_rng(config.seed)
    space = _ClusterSpace(config, rng)
    transition = _make_transition_matrix(config, rng)
    popularity = _zipf_popularity(config.num_clusters, config.zipf_s)

    table_chunks: List[np.ndarray] = []
    row_chunks: List[np.ndarray] = []
    query_lengths: List[int] = []

    periodic_rows = rng.integers(0, config.rows_per_table,
                                 size=max(1, config.periodic_items))
    periodic_tables = rng.integers(0, config.num_tables,
                                   size=max(1, config.periodic_items))

    total = 0
    cluster = int(rng.choice(config.num_clusters, p=popularity))
    session_left = config.session_length
    next_periodic = config.periodic_spacing
    periodic_cursor = 0

    while total < config.num_accesses:
        if session_left == 0:
            cluster = int(rng.choice(config.num_clusters, p=popularity))
            session_left = config.session_length
        else:
            row_probs = transition[cluster]
            if row_probs.sum() > 0:
                cluster = int(rng.choice(config.num_clusters, p=row_probs))
        session_left -= 1

        pooling = int(np.clip(rng.poisson(config.pooling_mean) + 1,
                              1, config.pooling_max))
        tables = rng.integers(0, config.num_tables, size=pooling)
        rows = np.empty(pooling, np.int64)
        for i, table in enumerate(tables):
            rows[i] = space.rows(cluster, int(table), 1, rng)[0]

        # Replace a fraction with cold (few-reuse) uniform accesses.
        cold_mask = rng.random(pooling) < config.cold_fraction
        cold_count = int(cold_mask.sum())
        if cold_count:
            rows[cold_mask] = rng.integers(0, config.rows_per_table,
                                           size=cold_count)
            tables[cold_mask] = rng.integers(0, config.num_tables,
                                             size=cold_count)

        # Inject long-reuse-distance items, cycling the pool in order.
        while config.periodic_items and total + len(rows) >= next_periodic:
            idx = periodic_cursor % config.periodic_items
            tables = np.append(tables, periodic_tables[idx])
            rows = np.append(rows, periodic_rows[idx])
            periodic_cursor += 1
            next_periodic += config.periodic_spacing

        table_chunks.append(tables.astype(np.int64))
        row_chunks.append(rows)
        query_lengths.append(len(rows))
        total += len(rows)

    table_ids = np.concatenate(table_chunks)[: config.num_accesses]
    row_ids = np.concatenate(row_chunks)[: config.num_accesses]
    offsets = np.concatenate([[0], np.cumsum(query_lengths)])
    offsets = offsets[offsets <= config.num_accesses]
    if offsets[-1] != config.num_accesses:
        offsets = np.append(offsets, config.num_accesses)
    return Trace(table_ids, row_ids, query_offsets=offsets,
                 name=f"synthetic-seed{config.seed}")
