"""Dataset presets standing in for the paper's production traces.

The paper evaluates on five Meta datasets (``dataset0..dataset4``, §VII)
that "differ in terms of embedding table IDs and row IDs which are most
frequently accessed", plus four configurations DS1–DS4 for the
Table I overhead study.  These presets configure the synthetic generator
(:mod:`repro.traces.synthetic`) with different seeds, skews and
correlation structures so datasets differ the same way: popularity and
transition structure vary, scale stays comparable.

Scale note: the paper's traces have 400M+ accesses over 62M unique
vectors; we default to tens of thousands of accesses over thousands of
vectors so that pure-Python experiments finish in seconds.  All
evaluation logic is scale-free (ratios of hits/misses).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from .access import Trace
from .synthetic import SyntheticTraceConfig, generate_trace

#: Names of the five main evaluation datasets (paper Fig. 8-10, 14, 16).
DATASET_NAMES = [f"dataset{i}" for i in range(5)]

_BASE = SyntheticTraceConfig(
    num_tables=12,
    rows_per_table=4096,
    num_accesses=60_000,
    num_clusters=96,
    cluster_block=16,
    session_length=10,
    pooling_mean=6.0,
    # Long-reuse pool deliberately larger than a 20%-of-unique buffer so
    # these accesses *recur as capacity misses* (the paper's "20% of
    # accesses have reuse distance larger than 2^20").
    periodic_items=3000,
    periodic_spacing=5,
)

#: Per-dataset variations: different hot tables/rows via seed, plus
#: different skew and correlation strength.
_DATASET_OVERRIDES: Dict[str, dict] = {
    "dataset0": dict(seed=10, zipf_s=1.10, transition_concentration=0.05),
    "dataset1": dict(seed=11, zipf_s=1.25, transition_concentration=0.08),
    "dataset2": dict(seed=12, zipf_s=0.95, transition_concentration=0.04),
    "dataset3": dict(seed=13, zipf_s=1.10, transition_concentration=0.12,
                     session_length=6),
    "dataset4": dict(seed=14, zipf_s=1.40, transition_concentration=0.06,
                     pooling_mean=9.0),
}

#: Table I configurations (scaled-down shape: DS3/DS4 have 8x the tables
#: and accesses of DS1/DS2; DS4 triples the batch size).
TABLE1_CONFIGS: Dict[str, dict] = {
    "DS1": dict(num_tables=6, num_accesses=20_000, caching_ratio=1.00,
                batch_size=64),
    "DS2": dict(num_tables=6, num_accesses=20_000, caching_ratio=0.20,
                batch_size=64),
    "DS3": dict(num_tables=48, num_accesses=60_000, caching_ratio=0.07,
                batch_size=64),
    "DS4": dict(num_tables=48, num_accesses=60_000, caching_ratio=0.07,
                batch_size=192),
}


def dataset_config(name: str, scale: float = 1.0) -> SyntheticTraceConfig:
    """Config for one of the five named datasets; ``scale`` multiplies
    the access count (tests use scale < 1 for speed)."""
    if name not in _DATASET_OVERRIDES:
        raise KeyError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    config = replace(_BASE, **_DATASET_OVERRIDES[name])
    if scale != 1.0:
        config = replace(config, num_accesses=max(1000, int(config.num_accesses * scale)))
    return config


def load_dataset(name: str, scale: float = 1.0) -> Trace:
    """Generate (deterministically) one of the five evaluation datasets."""
    trace = generate_trace(dataset_config(name, scale=scale))
    trace.name = name
    return trace


def load_all_datasets(scale: float = 1.0) -> Dict[str, Trace]:
    return {name: load_dataset(name, scale=scale) for name in DATASET_NAMES}


def table1_trace(name: str, scale: float = 1.0) -> Trace:
    """Trace for one of the Table I configurations DS1-DS4."""
    if name not in TABLE1_CONFIGS:
        raise KeyError(f"unknown Table I config {name!r}")
    spec = TABLE1_CONFIGS[name]
    config = replace(
        _BASE,
        num_tables=spec["num_tables"],
        num_accesses=max(1000, int(spec["num_accesses"] * scale)),
        seed=100 + list(TABLE1_CONFIGS).index(name),
    )
    trace = generate_trace(config)
    trace.name = name
    return trace
