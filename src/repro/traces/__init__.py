"""Embedding-access trace substrate: datatypes, synthesis, analysis."""

from .access import Access, Trace, pack_key, unpack_key, remap_to_dense, ROW_BITS
from .synthetic import (
    SyntheticTraceConfig,
    generate_trace,
    skew_sweep_configs,
    generate_skew_sweep,
    generate_hot_shard_trace,
    generate_drifting_hot_band_trace,
    generate_multi_tenant_trace,
    model_guided_scenarios,
)
from .datasets import (
    DATASET_NAMES,
    TABLE1_CONFIGS,
    dataset_config,
    load_dataset,
    load_all_datasets,
    table1_trace,
)
from .reuse import (
    COLD_MISS,
    FenwickTree,
    count_left_leq,
    next_occurrence_indices,
    prev_occurrence_indices,
    reuse_distances,
    reuse_distances_fast,
    reuse_distances_from_keys,
    reuse_histogram,
    lru_hit_rate,
    lru_hit_rate_curve,
    long_reuse_fraction,
)
from .stats import (
    TraceSummary,
    access_frequencies,
    top_fraction_share,
    hot_set,
    per_table_counts,
    summarize,
)
from .io import save_trace, load_trace

__all__ = [
    "Access", "Trace", "pack_key", "unpack_key", "remap_to_dense", "ROW_BITS",
    "SyntheticTraceConfig", "generate_trace",
    "skew_sweep_configs", "generate_skew_sweep",
    "generate_hot_shard_trace", "generate_drifting_hot_band_trace",
    "generate_multi_tenant_trace",
    "model_guided_scenarios",
    "DATASET_NAMES", "TABLE1_CONFIGS", "dataset_config", "load_dataset",
    "load_all_datasets", "table1_trace",
    "COLD_MISS", "FenwickTree", "count_left_leq",
    "prev_occurrence_indices", "next_occurrence_indices",
    "reuse_distances", "reuse_distances_fast", "reuse_distances_from_keys",
    "reuse_histogram",
    "lru_hit_rate", "lru_hit_rate_curve", "long_reuse_fraction",
    "TraceSummary", "access_frequencies", "top_fraction_share", "hot_set",
    "per_table_counts", "summarize",
    "save_trace", "load_trace",
]
