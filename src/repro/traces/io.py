"""Trace persistence as compressed ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from .access import Trace


def save_trace(trace: Trace, path: Union[str, os.PathLike]) -> None:
    payload = {
        "table_ids": trace.table_ids,
        "row_ids": trace.row_ids,
        "name": np.array(trace.name),
    }
    if trace.query_offsets is not None:
        payload["query_offsets"] = trace.query_offsets
    np.savez_compressed(path, **payload)


def load_trace(path: Union[str, os.PathLike]) -> Trace:
    with np.load(path, allow_pickle=False) as archive:
        offsets = archive["query_offsets"] if "query_offsets" in archive.files else None
        return Trace(
            archive["table_ids"],
            archive["row_ids"],
            query_offsets=offsets,
            name=str(archive["name"]) if "name" in archive.files else "",
        )
