"""Concurrent serving front-end: admission, batching, shard workers,
and latency/SLO metrics.

The layer that turns the sharded serving library into a traffic-bearing
engine (see ROADMAP "Serving architecture"):

    producers -> RequestQueue -> Batcher -> RecMGManager.serve_batch
                                              |  route (scatter)
                                              v
                                   ShardWorkerPool (per-shard FIFO)
                                     ^        |  gather (shard order)
        per-shard apply jobs (bits   |        v
        split along the shard route) |
                              PriorityProvider sink -> ServingMetrics
                                  ^ bits        | observe
                                  |             v
                          CachingModel <- refresh worker (async)
                                  ^             | window (every block)
                                  +-- OnlineCachingTrainer (OPTgen)

The sink's priority writes are split per shard and queued on the same
pinned workers behind each block's serve jobs (``RecMGManager
._submit_sink``), so the pipelined stream keeps its depth under an
active provider; an optional :class:`LiftGuard` withholds the bits
while the measured trailing hit-rate lift is negative.

:mod:`repro.core.manager` consumes :class:`ShardWorkerPool` and
:class:`ServingMetrics` when ``concurrency="threads"`` and sinks every
served block through its :class:`PriorityProvider`
(:mod:`repro.serving.priorities`) when ``priority_mode`` is ``"sync"``
or ``"async"``; ``examples/serving_daemon.py`` drives the whole stack.
"""

from .admission import Batch, Batcher, QueueClosed, Request, RequestQueue
from .metrics import LatencyWindow, ServingMetrics
from .priorities import (
    PRIORITY_MODES,
    AsyncModelProvider,
    LiftGuard,
    NullProvider,
    PriorityProvider,
    SyncModelProvider,
    apply_caching_bits,
    make_provider,
)
from .workers import ShardWorkerPool

__all__ = [
    "AsyncModelProvider",
    "Batch",
    "Batcher",
    "LatencyWindow",
    "LiftGuard",
    "NullProvider",
    "PRIORITY_MODES",
    "PriorityProvider",
    "QueueClosed",
    "Request",
    "RequestQueue",
    "ServingMetrics",
    "ShardWorkerPool",
    "SyncModelProvider",
    "apply_caching_bits",
    "make_provider",
]
