"""Concurrent serving front-end: admission, batching, shard workers,
and latency/SLO metrics.

The layer that turns the sharded serving library into a traffic-bearing
engine (see ROADMAP "Serving architecture"):

    producers -> RequestQueue -> Batcher -> RecMGManager.serve_batch
                                              |  route (scatter)
                                              v
                                   ShardWorkerPool (per-shard FIFO)
                                              |  gather (shard order)
                                              v
                                       ServingMetrics

:mod:`repro.core.manager` consumes :class:`ShardWorkerPool` and
:class:`ServingMetrics` when ``concurrency="threads"``;
``examples/serving_daemon.py`` drives the whole stack.
"""

from .admission import Batch, Batcher, QueueClosed, Request, RequestQueue
from .metrics import LatencyWindow, ServingMetrics
from .workers import ShardWorkerPool

__all__ = [
    "Batch",
    "Batcher",
    "LatencyWindow",
    "QueueClosed",
    "Request",
    "RequestQueue",
    "ServingMetrics",
    "ShardWorkerPool",
]
