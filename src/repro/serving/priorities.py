"""Model-in-the-loop priority providers for the serving engines.

The paper's system is ML-*guided* caching, but the fast serving engines
(batched clock, dense exact, sharded, concurrent) grew up model-free:
the :class:`~repro.core.caching_model.CachingModel` only ran in the
offline chunk pass of :meth:`RecMGManager.run`.  This module is the
seam that puts the model back in the loop without touching the engines
themselves: a **priority provider** maps a just-served key block to
per-access caching bits, and the manager sinks those bits through the
same bulk priority writes (:func:`apply_caching_bits`) the offline
pass used — Algorithm 1's ``priority[T[i]] = C[i] + eviction_speed``,
driven from the live stream.

On a sharded buffer the sink is **per shard**: the block's bits are
split along ``ShardedBuffer.iter_shard_segments``' route and applied
through each shard's ``CompressedShardView`` — under
``concurrency="threads"`` as one ``apply_caching_bits`` job per shard
on that shard's pinned worker, so a priority write is never a
cross-shard barrier and the concurrent engine keeps pipelining blocks
straight through an active provider (see
:meth:`RecMGManager._submit_sink` and the split-identity argument on
:func:`apply_caching_bits`).

:class:`LiftGuard` is the safety valve on top of any provider: an
online A/B of guided vs model-free phases over trailing hit-rate
windows; while measured lift is negative the manager withholds the
provider's bits (the block serves as if every bit were ``-1``), so
model guidance can degrade to model-free but never below it.

Three implementations, selected by ``priority_mode``:

* :class:`NullProvider` (``"none"``) — no model anywhere near the
  serving path.  The manager's behavior is bit-identical to the
  provider-free code: the sink is never invoked.
* :class:`SyncModelProvider` (``"sync"``) — batched feature encoding +
  ``CachingModel.predict`` per served block, on the serving thread.
  Amortized like every other bulk op, but inference cost lands on the
  serving critical path (~10-25x throughput on CPU); decisions are
  deterministic, which makes this the differential-testable mode
  (threads == serial stays bit-identical via the shard-pinning
  argument — the sink runs on the calling thread after the gather).
* :class:`AsyncModelProvider` (``"async"``) — a background worker
  refreshes a dense per-key bit table; serving reads possibly-stale
  bits with one vectorized gather and never blocks on inference.
  Observed blocks queue on a bounded deque (drop-oldest — overload
  sheds refresh work, not serving throughput); **staleness** (blocks
  submitted but not yet refreshed) is bounded by the queue and
  reported through :meth:`PriorityProvider.staleness_blocks` into
  :class:`~repro.serving.metrics.ServingMetrics`.

Bits are *tri-state* ``int8``: ``1`` cache-friendly, ``0`` cache-
averse, ``-1`` no prediction (async table slot not yet refreshed, or a
spillover key outside the dense universe).  The sink applies only
``>= 0`` positions; everything else keeps its recency priority — so an
async provider that has not caught up degrades to model-free behavior,
never to garbage.

Both model providers accept an optional *retrainer*
(:class:`~repro.core.training.OnlineCachingTrainer`): the observed
stream feeds a sliding window which is periodically relabeled with the
vectorized OPTgen and fine-tuned on a **clone** of the model; the
tuned clone replaces ``self.model`` by plain reference assignment —
atomic under the GIL, and the only synchronization the swap needs
(in-flight predictions keep the old weights).  In async mode the
window is fed on the serving thread for **every** observed block
(cheap list work; the refresh interval thins inference, not the
training stream) while the expensive label/fine-tune/swap cycle runs
on the refresh worker, off the serving critical path.

Imports from :mod:`repro.core` are function-local on purpose:
:mod:`repro.core.manager` imports this module at its top level, so a
module-level import back into ``repro.core`` would cycle.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, Optional, Tuple

import numpy as np

#: Provider selection accepted by ``priority_mode=`` (RecMGConfig field
#: and RecMGManager constructor argument).
PRIORITY_MODES = ("none", "sync", "async")


def apply_caching_bits(buffer, keys: np.ndarray, bits: np.ndarray,
                       speed: int) -> None:
    """Algorithm 1 lines 4-7, with a widened differential.

    The paper sets ``priority[T[i]] = C[i] + eviction_speed`` inside
    TorchRec's set-associative buffer, where the one-step gap rides
    on top of per-set RRIP dynamics.  In a fully associative buffer
    every miss ages *all* entries, so a ±1 gap is erased within one
    eviction; we keep the same two-level scheme but spread it across
    the aging scale (friendly = ``speed + 1``, averse = demote), which
    is the Hawkeye-style insertion the paper's labels encode.

    Vectorized through the bulk protocol: one ``contains_batch``
    residency gather classifies the whole block, then the friendly
    and averse classes land via ``set_priority_batch`` /
    ``demote_batch``.  Equivalent to the scalar per-key loop: when
    a key repeats in the block its *last* occurrence's bit wins
    (last write), positional order is preserved within each class
    (exact-backend seqno order), and friendly/averse seqnos live in
    disjoint positive/negative ranges, so cross-class interleaving
    never affects eviction order.

    Tri-state safe: ``-1`` ("no prediction") positions are masked out
    *here*, not just by the manager's pre-filter — a ``-1`` bit must
    keep its key's recency priority, and before this mask a caller
    that skipped the pre-filter (a direct
    :class:`repro.dlrm.inference.BufferClassifier` sink, a hand-rolled
    offline pass) would have silently promoted every unpredicted key
    as cache-friendly (``-1 != 0``).

    Per-shard contract: ``buffer`` may equally be one
    :class:`repro.cache.sharding.CompressedShardView` with ``keys``
    restricted to that shard (the manager's per-shard sink splits a
    block along ``iter_shard_segments``' route).  Duplicates of a key
    always land in the same shard and the split preserves positional
    order, so per-shard dedup + apply is call-for-call identical to
    the global form — shards share no state, and within a shard the
    friendly/averse subsequences are exactly the global ones.

    Shared by the manager's offline chunk pass, the provider sink and
    :class:`repro.dlrm.inference.BufferClassifier` — one bulk applier,
    every caller.
    """
    keys = np.asarray(keys, dtype=np.int64)
    bits = np.asarray(bits)
    predicted = bits >= 0
    if not predicted.all():
        if not predicted.any():
            return
        keys = keys[predicted]
        bits = bits[predicted]
    bits = bits != 0
    resident = buffer.contains_batch(keys)
    if not resident.any():
        return
    res_keys = keys[resident]
    res_bits = bits[resident]
    if res_keys.size > 1:
        _, first_rev = np.unique(res_keys[::-1], return_index=True)
        if first_rev.size != res_keys.size:  # duplicates: last wins
            sel = np.sort(res_keys.size - 1 - first_rev)
            res_keys = res_keys[sel]
            res_bits = res_bits[sel]
    buffer.set_priority_batch(res_keys[res_bits], speed + 1)
    buffer.demote_batch(res_keys[~res_bits])


class LiftGuard:
    """Trailing-window hit-rate lift guard: model guidance may degrade
    to model-free, never below it.

    A model trained for one occupancy regime can be actively *harmful*
    in another (the low-capacity lift inversion: 20%-capacity OPTgen
    labels overcommit a 5% buffer).  The guard measures the lift
    online and withholds the provider's bits while it is negative —
    the served block then behaves exactly like an all ``-1``
    ("no prediction") block, i.e. model-free.

    Mechanics — an online A/B over *phases* of ``phase_blocks``
    consecutive served blocks (guidance affects the blocks *after*
    the bits land, so single-block interleaving would attribute one
    arm's effect to the other; phase runs keep the attribution error
    to the phase boundary):

    * **healthy** (not tripped): one phase in ``probe_every`` serves
      *control* (bits withheld), the rest are guided;
    * **tripped**: roles invert — one guided probe phase in
      ``probe_every``, everything else model-free.

    Completed runs append ``(hits, accesses)`` to the arm's trailing
    window (last ``window_phases`` runs); when both windows are full
    and the guided rate falls below control minus ``margin`` the guard
    trips, and it untrips on the symmetric recovery.  Both flips clear
    the windows — samples measured under the previous regime would
    bias the next comparison.

    Driven by the manager at block granularity: :meth:`begin_block`
    decides the block's arm *at dispatch*, :meth:`record_block` feeds
    its measured hits back *at gather* — two calls because the
    pipelined stream keeps up to 8 blocks in flight between the two
    (the FIFO of decided arms pairs them back up).  That same lag
    means trip decisions see slightly older measurements under the
    pipelined engine than under the barrier form, so an *enabled*
    guard is excluded from the pipelined==barrier bit-identity
    contract (the guard-off default keeps it).
    """

    def __init__(self, phase_blocks: int = 8, window_phases: int = 4,
                 probe_every: int = 8, margin: float = 0.0) -> None:
        if phase_blocks < 1:
            raise ValueError("phase_blocks must be >= 1")
        if window_phases < 1:
            raise ValueError("window_phases must be >= 1")
        if probe_every < 2:
            raise ValueError("probe_every must be >= 2 (one arm would "
                             "never be measured)")
        if margin < 0:
            raise ValueError("margin must be >= 0")
        self.phase_blocks = int(phase_blocks)
        self.window_phases = int(window_phases)
        self.probe_every = int(probe_every)
        self.margin = float(margin)
        self.tripped = False
        self.trips = 0
        self.untrips = 0
        self._begun = 0                      # blocks whose arm is decided
        self._decided: Deque[bool] = deque()  # arms awaiting measurement
        self._run_arm: Optional[bool] = None  # arm of the open run
        self._run_hits = 0
        self._run_size = 0
        self._run_blocks = 0
        self._windows: Dict[bool, Deque[Tuple[int, int]]] = {
            True: deque(maxlen=self.window_phases),
            False: deque(maxlen=self.window_phases),
        }

    def begin_block(self) -> bool:
        """Decide the next served block's arm; True = guided (apply
        the provider's bits), False = control (withhold them)."""
        phase = self._begun // self.phase_blocks
        minority = (phase % self.probe_every) == self.probe_every - 1
        arm = minority if self.tripped else not minority
        self._begun += 1
        self._decided.append(arm)
        return arm

    def record_block(self, hits: int, accesses: int) -> None:
        """Feed one block's measured hits, in dispatch order; pairs
        with the oldest unmeasured :meth:`begin_block` decision."""
        if not self._decided:
            raise RuntimeError("record_block without a matching "
                               "begin_block")
        arm = self._decided.popleft()
        if self._run_arm is None:
            self._run_arm = arm
        elif arm != self._run_arm:
            self._flush_run()
            self._run_arm = arm
        self._run_hits += int(hits)
        self._run_size += int(accesses)
        self._run_blocks += 1
        if self._run_blocks >= self.phase_blocks:
            self._flush_run()

    def rate(self, guided: bool) -> Optional[float]:
        """Trailing hit rate of one arm (None before any sample)."""
        window = self._windows[guided]
        total = sum(size for _, size in window)
        if not total:
            return None
        return sum(hits for hits, _ in window) / total

    def _flush_run(self) -> None:
        if self._run_size:
            self._windows[self._run_arm].append(
                (self._run_hits, self._run_size))
            self._update_state()
        self._run_arm = None
        self._run_hits = self._run_size = self._run_blocks = 0

    def _update_state(self) -> None:
        guided_win = self._windows[True]
        control_win = self._windows[False]
        if (len(guided_win) < guided_win.maxlen
                or len(control_win) < control_win.maxlen):
            return  # not enough evidence on both arms yet
        guided_rate = self.rate(True)
        control_rate = self.rate(False)
        if not self.tripped and guided_rate < control_rate - self.margin:
            self.tripped = True
            self.trips += 1
        elif self.tripped and guided_rate > control_rate + self.margin:
            self.tripped = False
            self.untrips += 1
        else:
            return
        guided_win.clear()
        control_win.clear()

    def stats(self) -> Dict[str, float]:
        """Flat guard counters/gauges (JSON-ready)."""
        return {
            "tripped": float(self.tripped),
            "trips": self.trips,
            "untrips": self.untrips,
            "guided_rate": self.rate(True),
            "control_rate": self.rate(False),
            "blocks_decided": self._begun,
        }


class PriorityProvider:
    """Maps served key blocks to per-access caching bits (base class =
    the ``"none"`` behavior: no observation, no bits, no thread).

    Contract with the sink (:meth:`RecMGManager._sink_provider`): after
    a block is served, the sink calls :meth:`observe` (feed the stream)
    then :meth:`bits_for` (collect predictions).  ``bits_for`` returns
    an ``int8`` array of the block's length — ``1`` friendly, ``0``
    averse, ``-1`` no prediction — or ``None`` when the provider has
    nothing to say about the whole block.
    """

    mode = "none"

    def observe(self, keys: np.ndarray) -> None:
        """Feed one served block of dense ids to the provider."""

    def bits_for(self, keys: np.ndarray) -> Optional[np.ndarray]:
        """Tri-state caching bits for ``keys`` (see class docstring)."""
        return None

    def staleness_blocks(self) -> Optional[int]:
        """Blocks observed but not yet reflected in predictions
        (``None`` for providers whose predictions are never stale)."""
        return None

    def close(self) -> None:
        """Release worker resources (idempotent; base class no-ops)."""

    def stats(self) -> Dict[str, float]:
        """Flat inference/staleness counters (JSON-ready)."""
        return {}


class NullProvider(PriorityProvider):
    """``priority_mode="none"``: today's model-free serving, bit-
    identical — the manager skips the sink entirely when this provider
    is installed, so not even a per-block residency gather is added."""


class _ModelProviderBase(PriorityProvider):
    """Shared encode/predict/retrain plumbing of the model providers."""

    def __init__(self, model, encoder, config, metrics=None,
                 retrainer=None) -> None:
        if model is None:
            raise ValueError(f"priority_mode={self.mode!r} requires a "
                             f"caching model")
        if not getattr(encoder, "fitted", False):
            raise ValueError(f"priority_mode={self.mode!r} requires a "
                             f"fitted encoder (the dense-id universe "
                             f"defines the feature space)")
        self.model = model
        self.encoder = encoder
        self.config = config
        self.metrics = metrics
        self.retrainer = retrainer
        self.inference_batches = 0
        self.inference_keys = 0
        self.inference_seconds = 0.0

    def _predict(self, keys: np.ndarray) -> np.ndarray:
        """Encode ``keys`` (tail-padded to whole chunks), run the
        model, slice back to the true length; records timing."""
        begin = time.perf_counter()
        chunks = self.encoder.encode_dense_chunks(keys)
        bits = self.model.predict(chunks).reshape(-1)[:keys.size]
        elapsed = time.perf_counter() - begin
        self.inference_batches += 1
        self.inference_keys += int(keys.size)
        self.inference_seconds += elapsed
        if self.metrics is not None:
            self.metrics.record_inference(elapsed, int(keys.size))
        return bits.astype(np.int8)

    def _maybe_retrain(self, keys: np.ndarray) -> None:
        """Feed the retraining window; fine-tune + swap when due.  The
        swap is a reference assignment — atomic under the GIL."""
        if self.retrainer is not None and self.retrainer.observe(keys):
            self.model = self.retrainer.retrain(self.model)

    def stats(self) -> Dict[str, float]:
        return {
            "inference_batches": self.inference_batches,
            "inference_keys": self.inference_keys,
            "inference_seconds": self.inference_seconds,
            "retrains": (self.retrainer.retrains
                         if self.retrainer is not None else 0),
        }


class SyncModelProvider(_ModelProviderBase):
    """``priority_mode="sync"``: batched inference on the serving
    thread, one predict per served block.  Deterministic — the
    differential-testable mode — but inference cost lands on the
    serving critical path."""

    mode = "sync"

    def observe(self, keys: np.ndarray) -> None:
        self._maybe_retrain(np.asarray(keys, dtype=np.int64))

    def bits_for(self, keys: np.ndarray) -> Optional[np.ndarray]:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return None
        return self._predict(keys)


class AsyncModelProvider(_ModelProviderBase):
    """``priority_mode="async"``: a background worker refreshes a dense
    per-key bit table; serving gathers possibly-stale bits and never
    blocks on inference (module docstring has the full story).

    Concurrency notes:

    * The serving thread only *reads* ``self._table`` (one fancy
      gather) and touches the pending deque under the lock; the worker
      is the only writer of table slots and inference counters.  A
      gather racing a scatter may see a mix of old and new bits within
      one block — by design: stale-but-valid predictions are the whole
      point, and each ``int8`` slot is written atomically.
    * ``observe`` never blocks: when the pending queue is full the
      *oldest* block is dropped (its keys will be observed again if
      they stay hot), which bounds both memory and staleness.
    * ``close()`` drains the queued refreshes (bounded by
      ``pending_max`` blocks) and joins the worker; after close the
      table is frozen — serving continues on the last refreshed bits.
    """

    mode = "async"

    def __init__(self, model, encoder, config, key_space: int,
                 metrics=None, retrainer=None,
                 refresh_blocks: Optional[int] = None,
                 pending_max: Optional[int] = None) -> None:
        super().__init__(model, encoder, config, metrics=metrics,
                         retrainer=retrainer)
        if key_space < 1:
            raise ValueError("async provider needs a dense key_space "
                             ">= 1 for its bit table")
        self.refresh_blocks = int(
            refresh_blocks if refresh_blocks is not None
            else getattr(config, "priority_refresh_blocks", 1))
        self.pending_max = int(
            pending_max if pending_max is not None
            else getattr(config, "priority_pending_max", 8))
        if self.refresh_blocks < 1:
            raise ValueError("refresh_blocks must be >= 1")
        if self.pending_max < 1:
            raise ValueError("pending_max must be >= 1")
        #: -1 = no prediction yet; the worker scatters 0/1 bits in.
        self._table = np.full(int(key_space), -1, dtype=np.int8)
        self._pending: Deque[np.ndarray] = deque()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._closed = False
        self._retrain_due = False   # a retrain cycle is owed the worker
        self._retraining = False    # the worker is inside one right now
        self.observed_blocks = 0    #: blocks seen by observe()
        self.submitted_blocks = 0   #: blocks enqueued for refresh
        self.refreshed_blocks = 0   #: blocks the worker completed
        self.dropped_blocks = 0     #: blocks shed by the bounded queue
        self.worker_errors = 0      #: refresh cycles that raised
        self._thread = threading.Thread(target=self._worker_loop,
                                        name="priority-refresh",
                                        daemon=True)
        self._thread.start()

    # -- serving side ---------------------------------------------------
    def observe(self, keys: np.ndarray) -> None:
        """Feed one served block: the retraining window sees **every**
        block, the refresh queue only every ``refresh_blocks``-th.

        These cadences are independent on purpose — the refresh
        interval thins *inference* cost, but thinning the retraining
        window with it would starve the trainer (with
        ``refresh_blocks=k`` it would label a window holding only
        every k-th block, a k-times-sparser stream than the one being
        served).  The window append is O(1) list work, cheap enough
        for the serving thread; the expensive label/fine-tune cycle it
        occasionally arms still runs on the refresh worker, flagged
        through ``_retrain_due`` rather than run inline here.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return
        self.observed_blocks += 1
        retrain_due = (self.retrainer is not None
                       and self.retrainer.observe(keys))
        submit = not (self.observed_blocks - 1) % self.refresh_blocks
        if not (submit or retrain_due):
            return
        with self._wake:
            if self._closed:
                return
            if submit:
                if len(self._pending) >= self.pending_max:
                    self._pending.popleft()  # drop-oldest; never block
                    self.dropped_blocks += 1
                self._pending.append(keys.copy())
                self.submitted_blocks += 1
            if retrain_due:
                self._retrain_due = True
            self._wake.notify()

    def bits_for(self, keys: np.ndarray) -> Optional[np.ndarray]:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return None
        table = self._table
        # Spillover keys (>= key_space) have no table slot: clip the
        # gather index and force their bits to "no prediction".
        got = table[np.clip(keys, 0, table.size - 1)]
        return np.where(keys < table.size, got, np.int8(-1))

    def _staleness_locked(self) -> int:
        """Counter arithmetic for :meth:`staleness_blocks`; the caller
        must hold ``self._lock``."""
        return (self.submitted_blocks - self.refreshed_blocks
                - self.dropped_blocks)

    def staleness_blocks(self) -> int:
        """Blocks enqueued but not yet refreshed (in queue or in
        flight); bounded by ``pending_max + 1`` by construction, and
        never negative: the three counters are read under the provider
        lock as one consistent snapshot.  (An unlocked read racing the
        worker could see ``refreshed_blocks`` advance before the
        matching ``submitted_blocks`` and report a transient negative
        lag into :meth:`ServingMetrics.record_staleness`, which
        rejects it.)"""
        with self._lock:
            return self._staleness_locked()

    # -- worker side ----------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._wake:
                while (not self._pending and not self._retrain_due
                       and not self._closed):
                    self._wake.wait()
                if self._closed and not self._pending:
                    # Drained.  A pending retrain is *dropped*, not
                    # drained: post-close the table is frozen, so a
                    # freshly tuned model would never predict again.
                    return
                keys = None
                retrain = False
                if self._pending:
                    keys = self._pending.popleft()
                else:  # no refresh backlog: run the owed retrain cycle
                    self._retrain_due = False
                    self._retraining = True
                    retrain = True
            if keys is not None:
                try:
                    self._refresh(keys)
                except Exception:
                    # A dying worker must not freeze serving: count it,
                    # keep draining — unrefreshed slots stay at -1,
                    # which the sink treats as "no prediction".
                    self.worker_errors += 1
                with self._idle:
                    self.refreshed_blocks += 1
                    self._idle.notify_all()
            elif retrain:
                try:
                    # Reference-assignment swap: atomic under the GIL,
                    # in-flight predictions keep the old weights.
                    self.model = self.retrainer.retrain(self.model)
                except Exception:
                    self.worker_errors += 1
                with self._idle:
                    self._retraining = False
                    self._idle.notify_all()

    def _refresh(self, keys: np.ndarray) -> None:
        bits = self._predict(keys)
        in_range = keys < self._table.size
        self._table[keys[in_range]] = bits[in_range]
        # Staleness is sampled by the *sink* (serving thread) per served
        # block, keeping each metrics field family single-writer: this
        # worker owns the inference counters, the serving thread owns
        # batch latency and staleness.  Retraining is NOT fed here —
        # the serving thread feeds the window for every observed block
        # (see observe); refresh blocks are a thinned subset of it.

    # -- lifecycle ------------------------------------------------------
    def flush(self, timeout: float = 10.0) -> bool:
        """Block until every submitted block is refreshed and any owed
        retrain cycle has completed (test/bench hook — serving code
        never calls this).  Returns False on timeout."""
        deadline = time.perf_counter() + timeout
        with self._idle:
            while (self._staleness_locked() > 0 or self._retrain_due
                   or self._retraining):
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def close(self) -> None:
        with self._wake:
            if self._closed:
                return
            self._closed = True
            self._wake.notify_all()
        self._thread.join()

    def stats(self) -> Dict[str, float]:
        out = super().stats()
        # One consistent counter snapshot (same lock as the worker's
        # updates) — stats() racing a refresh must not report e.g.
        # refreshed > submitted or a negative staleness.
        with self._lock:
            out.update(
                observed_blocks=self.observed_blocks,
                submitted_blocks=self.submitted_blocks,
                refreshed_blocks=self.refreshed_blocks,
                dropped_blocks=self.dropped_blocks,
                staleness_blocks=self._staleness_locked(),
                worker_errors=self.worker_errors,
            )
        # The table read stays outside the lock: racing a scatter is
        # by-design (each int8 slot is atomic) and coverage is a gauge.
        out.update(table_coverage=float(
            np.count_nonzero(self._table >= 0) / self._table.size))
        return out


def make_provider(mode: str, model, encoder, config, metrics=None,
                  capacity: Optional[int] = None) -> PriorityProvider:
    """Build the provider for ``priority_mode`` (validating the mode).

    ``capacity`` is the buffer capacity — required only when
    ``config.online_retrain_interval`` enables the retrainer, whose
    OPTgen labeling budget is ``capacity * optgen_fraction`` (the
    paper's 80% headroom rule, same as offline labeling).
    """
    if mode not in PRIORITY_MODES:
        raise ValueError(f"priority_mode must be one of {PRIORITY_MODES}, "
                         f"got {mode!r}")
    if mode == "none":
        return NullProvider()
    retrainer = None
    if getattr(config, "online_retrain_interval", 0):
        if capacity is None:
            raise ValueError("online retraining needs the buffer capacity "
                             "(it sets the OPTgen labeling budget)")
        from ..core.training import OnlineCachingTrainer  # no cycle: lazy
        retrainer = OnlineCachingTrainer(encoder, config, capacity)
    if mode == "sync":
        return SyncModelProvider(model, encoder, config, metrics=metrics,
                                 retrainer=retrainer)
    return AsyncModelProvider(model, encoder, config,
                              key_space=encoder.vocab_size,
                              metrics=metrics, retrainer=retrainer)
