"""Model-in-the-loop priority providers for the serving engines.

The paper's system is ML-*guided* caching, but the fast serving engines
(batched clock, dense exact, sharded, concurrent) grew up model-free:
the :class:`~repro.core.caching_model.CachingModel` only ran in the
offline chunk pass of :meth:`RecMGManager.run`.  This module is the
seam that puts the model back in the loop without touching the engines
themselves: a **priority provider** maps a just-served key block to
per-access caching bits, and the manager sinks those bits through the
same bulk priority writes (:func:`apply_caching_bits`) the offline
pass used — Algorithm 1's ``priority[T[i]] = C[i] + eviction_speed``,
driven from the live stream.

Three implementations, selected by ``priority_mode``:

* :class:`NullProvider` (``"none"``) — no model anywhere near the
  serving path.  The manager's behavior is bit-identical to the
  provider-free code: the sink is never invoked.
* :class:`SyncModelProvider` (``"sync"``) — batched feature encoding +
  ``CachingModel.predict`` per served block, on the serving thread.
  Amortized like every other bulk op, but inference cost lands on the
  serving critical path (~10-25x throughput on CPU); decisions are
  deterministic, which makes this the differential-testable mode
  (threads == serial stays bit-identical via the shard-pinning
  argument — the sink runs on the calling thread after the gather).
* :class:`AsyncModelProvider` (``"async"``) — a background worker
  refreshes a dense per-key bit table; serving reads possibly-stale
  bits with one vectorized gather and never blocks on inference.
  Observed blocks queue on a bounded deque (drop-oldest — overload
  sheds refresh work, not serving throughput); **staleness** (blocks
  submitted but not yet refreshed) is bounded by the queue and
  reported through :meth:`PriorityProvider.staleness_blocks` into
  :class:`~repro.serving.metrics.ServingMetrics`.

Bits are *tri-state* ``int8``: ``1`` cache-friendly, ``0`` cache-
averse, ``-1`` no prediction (async table slot not yet refreshed, or a
spillover key outside the dense universe).  The sink applies only
``>= 0`` positions; everything else keeps its recency priority — so an
async provider that has not caught up degrades to model-free behavior,
never to garbage.

Both model providers accept an optional *retrainer*
(:class:`~repro.core.training.OnlineCachingTrainer`): the observed
stream feeds a sliding window which is periodically relabeled with the
vectorized OPTgen and fine-tuned on a **clone** of the model; the
tuned clone replaces ``self.model`` by plain reference assignment —
atomic under the GIL, and the only synchronization the swap needs
(in-flight predictions keep the old weights).  In async mode the whole
label/fine-tune/swap cycle runs on the refresh worker, off the serving
critical path.

Imports from :mod:`repro.core` are function-local on purpose:
:mod:`repro.core.manager` imports this module at its top level, so a
module-level import back into ``repro.core`` would cycle.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, Optional

import numpy as np

#: Provider selection accepted by ``priority_mode=`` (RecMGConfig field
#: and RecMGManager constructor argument).
PRIORITY_MODES = ("none", "sync", "async")


def apply_caching_bits(buffer, keys: np.ndarray, bits: np.ndarray,
                       speed: int) -> None:
    """Algorithm 1 lines 4-7, with a widened differential.

    The paper sets ``priority[T[i]] = C[i] + eviction_speed`` inside
    TorchRec's set-associative buffer, where the one-step gap rides
    on top of per-set RRIP dynamics.  In a fully associative buffer
    every miss ages *all* entries, so a ±1 gap is erased within one
    eviction; we keep the same two-level scheme but spread it across
    the aging scale (friendly = ``speed + 1``, averse = demote), which
    is the Hawkeye-style insertion the paper's labels encode.

    Vectorized through the bulk protocol: one ``contains_batch``
    residency gather classifies the whole block, then the friendly
    and averse classes land via ``set_priority_batch`` /
    ``demote_batch``.  Equivalent to the scalar per-key loop: when
    a key repeats in the block its *last* occurrence's bit wins
    (last write), positional order is preserved within each class
    (exact-backend seqno order), and friendly/averse seqnos live in
    disjoint positive/negative ranges, so cross-class interleaving
    never affects eviction order.

    Shared by the manager's offline chunk pass, the provider sink and
    :class:`repro.dlrm.inference.BufferClassifier` — one bulk applier,
    every caller.
    """
    keys = np.asarray(keys, dtype=np.int64)
    bits = np.asarray(bits) != 0
    resident = buffer.contains_batch(keys)
    if not resident.any():
        return
    res_keys = keys[resident]
    res_bits = bits[resident]
    if res_keys.size > 1:
        _, first_rev = np.unique(res_keys[::-1], return_index=True)
        if first_rev.size != res_keys.size:  # duplicates: last wins
            sel = np.sort(res_keys.size - 1 - first_rev)
            res_keys = res_keys[sel]
            res_bits = res_bits[sel]
    buffer.set_priority_batch(res_keys[res_bits], speed + 1)
    buffer.demote_batch(res_keys[~res_bits])


class PriorityProvider:
    """Maps served key blocks to per-access caching bits (base class =
    the ``"none"`` behavior: no observation, no bits, no thread).

    Contract with the sink (:meth:`RecMGManager._sink_provider`): after
    a block is served, the sink calls :meth:`observe` (feed the stream)
    then :meth:`bits_for` (collect predictions).  ``bits_for`` returns
    an ``int8`` array of the block's length — ``1`` friendly, ``0``
    averse, ``-1`` no prediction — or ``None`` when the provider has
    nothing to say about the whole block.
    """

    mode = "none"

    def observe(self, keys: np.ndarray) -> None:
        """Feed one served block of dense ids to the provider."""

    def bits_for(self, keys: np.ndarray) -> Optional[np.ndarray]:
        """Tri-state caching bits for ``keys`` (see class docstring)."""
        return None

    def staleness_blocks(self) -> Optional[int]:
        """Blocks observed but not yet reflected in predictions
        (``None`` for providers whose predictions are never stale)."""
        return None

    def close(self) -> None:
        """Release worker resources (idempotent; base class no-ops)."""

    def stats(self) -> Dict[str, float]:
        """Flat inference/staleness counters (JSON-ready)."""
        return {}


class NullProvider(PriorityProvider):
    """``priority_mode="none"``: today's model-free serving, bit-
    identical — the manager skips the sink entirely when this provider
    is installed, so not even a per-block residency gather is added."""


class _ModelProviderBase(PriorityProvider):
    """Shared encode/predict/retrain plumbing of the model providers."""

    def __init__(self, model, encoder, config, metrics=None,
                 retrainer=None) -> None:
        if model is None:
            raise ValueError(f"priority_mode={self.mode!r} requires a "
                             f"caching model")
        if not getattr(encoder, "fitted", False):
            raise ValueError(f"priority_mode={self.mode!r} requires a "
                             f"fitted encoder (the dense-id universe "
                             f"defines the feature space)")
        self.model = model
        self.encoder = encoder
        self.config = config
        self.metrics = metrics
        self.retrainer = retrainer
        self.inference_batches = 0
        self.inference_keys = 0
        self.inference_seconds = 0.0

    def _predict(self, keys: np.ndarray) -> np.ndarray:
        """Encode ``keys`` (tail-padded to whole chunks), run the
        model, slice back to the true length; records timing."""
        begin = time.perf_counter()
        chunks = self.encoder.encode_dense_chunks(keys)
        bits = self.model.predict(chunks).reshape(-1)[:keys.size]
        elapsed = time.perf_counter() - begin
        self.inference_batches += 1
        self.inference_keys += int(keys.size)
        self.inference_seconds += elapsed
        if self.metrics is not None:
            self.metrics.record_inference(elapsed, int(keys.size))
        return bits.astype(np.int8)

    def _maybe_retrain(self, keys: np.ndarray) -> None:
        """Feed the retraining window; fine-tune + swap when due.  The
        swap is a reference assignment — atomic under the GIL."""
        if self.retrainer is not None and self.retrainer.observe(keys):
            self.model = self.retrainer.retrain(self.model)

    def stats(self) -> Dict[str, float]:
        return {
            "inference_batches": self.inference_batches,
            "inference_keys": self.inference_keys,
            "inference_seconds": self.inference_seconds,
            "retrains": (self.retrainer.retrains
                         if self.retrainer is not None else 0),
        }


class SyncModelProvider(_ModelProviderBase):
    """``priority_mode="sync"``: batched inference on the serving
    thread, one predict per served block.  Deterministic — the
    differential-testable mode — but inference cost lands on the
    serving critical path."""

    mode = "sync"

    def observe(self, keys: np.ndarray) -> None:
        self._maybe_retrain(np.asarray(keys, dtype=np.int64))

    def bits_for(self, keys: np.ndarray) -> Optional[np.ndarray]:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return None
        return self._predict(keys)


class AsyncModelProvider(_ModelProviderBase):
    """``priority_mode="async"``: a background worker refreshes a dense
    per-key bit table; serving gathers possibly-stale bits and never
    blocks on inference (module docstring has the full story).

    Concurrency notes:

    * The serving thread only *reads* ``self._table`` (one fancy
      gather) and touches the pending deque under the lock; the worker
      is the only writer of table slots and inference counters.  A
      gather racing a scatter may see a mix of old and new bits within
      one block — by design: stale-but-valid predictions are the whole
      point, and each ``int8`` slot is written atomically.
    * ``observe`` never blocks: when the pending queue is full the
      *oldest* block is dropped (its keys will be observed again if
      they stay hot), which bounds both memory and staleness.
    * ``close()`` drains the queued refreshes (bounded by
      ``pending_max`` blocks) and joins the worker; after close the
      table is frozen — serving continues on the last refreshed bits.
    """

    mode = "async"

    def __init__(self, model, encoder, config, key_space: int,
                 metrics=None, retrainer=None,
                 refresh_blocks: Optional[int] = None,
                 pending_max: Optional[int] = None) -> None:
        super().__init__(model, encoder, config, metrics=metrics,
                         retrainer=retrainer)
        if key_space < 1:
            raise ValueError("async provider needs a dense key_space "
                             ">= 1 for its bit table")
        self.refresh_blocks = int(
            refresh_blocks if refresh_blocks is not None
            else getattr(config, "priority_refresh_blocks", 1))
        self.pending_max = int(
            pending_max if pending_max is not None
            else getattr(config, "priority_pending_max", 8))
        if self.refresh_blocks < 1:
            raise ValueError("refresh_blocks must be >= 1")
        if self.pending_max < 1:
            raise ValueError("pending_max must be >= 1")
        #: -1 = no prediction yet; the worker scatters 0/1 bits in.
        self._table = np.full(int(key_space), -1, dtype=np.int8)
        self._pending: Deque[np.ndarray] = deque()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._closed = False
        self.observed_blocks = 0    #: blocks seen by observe()
        self.submitted_blocks = 0   #: blocks enqueued for refresh
        self.refreshed_blocks = 0   #: blocks the worker completed
        self.dropped_blocks = 0     #: blocks shed by the bounded queue
        self.worker_errors = 0      #: refresh cycles that raised
        self._thread = threading.Thread(target=self._worker_loop,
                                        name="priority-refresh",
                                        daemon=True)
        self._thread.start()

    # -- serving side ---------------------------------------------------
    def observe(self, keys: np.ndarray) -> None:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return
        self.observed_blocks += 1
        if (self.observed_blocks - 1) % self.refresh_blocks:
            return  # refresh interval: only every k-th block refreshes
        with self._wake:
            if self._closed:
                return
            if len(self._pending) >= self.pending_max:
                self._pending.popleft()  # drop-oldest; never block
                self.dropped_blocks += 1
            self._pending.append(keys.copy())
            self.submitted_blocks += 1
            self._wake.notify()

    def bits_for(self, keys: np.ndarray) -> Optional[np.ndarray]:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return None
        table = self._table
        # Spillover keys (>= key_space) have no table slot: clip the
        # gather index and force their bits to "no prediction".
        got = table[np.clip(keys, 0, table.size - 1)]
        return np.where(keys < table.size, got, np.int8(-1))

    def staleness_blocks(self) -> int:
        """Blocks enqueued but not yet refreshed (in queue or in
        flight); bounded by ``pending_max + 1`` by construction."""
        return (self.submitted_blocks - self.refreshed_blocks
                - self.dropped_blocks)

    # -- worker side ----------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._wake:
                while not self._pending and not self._closed:
                    self._wake.wait()
                if not self._pending:  # closed and drained
                    return
                keys = self._pending.popleft()
            try:
                self._refresh(keys)
            except Exception:
                # A dying worker must not freeze serving: count it,
                # keep draining — unrefreshed slots stay at -1, which
                # the sink treats as "no prediction".
                self.worker_errors += 1
            with self._idle:
                self.refreshed_blocks += 1
                self._idle.notify_all()

    def _refresh(self, keys: np.ndarray) -> None:
        bits = self._predict(keys)
        in_range = keys < self._table.size
        self._table[keys[in_range]] = bits[in_range]
        # Staleness is sampled by the *sink* (serving thread) per served
        # block, keeping each metrics field family single-writer: this
        # worker owns the inference counters, the serving thread owns
        # batch latency and staleness.
        self._maybe_retrain(keys)

    # -- lifecycle ------------------------------------------------------
    def flush(self, timeout: float = 10.0) -> bool:
        """Block until every submitted block is refreshed (test/bench
        hook — serving code never calls this).  Returns False on
        timeout."""
        deadline = time.perf_counter() + timeout
        with self._idle:
            while self.staleness_blocks() > 0:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def close(self) -> None:
        with self._wake:
            if self._closed:
                return
            self._closed = True
            self._wake.notify_all()
        self._thread.join()

    def stats(self) -> Dict[str, float]:
        out = super().stats()
        out.update(
            observed_blocks=self.observed_blocks,
            submitted_blocks=self.submitted_blocks,
            refreshed_blocks=self.refreshed_blocks,
            dropped_blocks=self.dropped_blocks,
            staleness_blocks=self.staleness_blocks(),
            worker_errors=self.worker_errors,
            table_coverage=float(
                np.count_nonzero(self._table >= 0) / self._table.size),
        )
        return out


def make_provider(mode: str, model, encoder, config, metrics=None,
                  capacity: Optional[int] = None) -> PriorityProvider:
    """Build the provider for ``priority_mode`` (validating the mode).

    ``capacity`` is the buffer capacity — required only when
    ``config.online_retrain_interval`` enables the retrainer, whose
    OPTgen labeling budget is ``capacity * optgen_fraction`` (the
    paper's 80% headroom rule, same as offline labeling).
    """
    if mode not in PRIORITY_MODES:
        raise ValueError(f"priority_mode must be one of {PRIORITY_MODES}, "
                         f"got {mode!r}")
    if mode == "none":
        return NullProvider()
    retrainer = None
    if getattr(config, "online_retrain_interval", 0):
        if capacity is None:
            raise ValueError("online retraining needs the buffer capacity "
                             "(it sets the OPTgen labeling budget)")
        from ..core.training import OnlineCachingTrainer  # no cycle: lazy
        retrainer = OnlineCachingTrainer(encoder, config, capacity)
    if mode == "sync":
        return SyncModelProvider(model, encoder, config, metrics=metrics,
                                 retrainer=retrainer)
    return AsyncModelProvider(model, encoder, config,
                              key_space=encoder.vocab_size,
                              metrics=metrics, retrainer=retrainer)
