"""Latency/SLO observability for the concurrent serving front-end.

The serving path so far reported one number per run — accesses/sec.  A
traffic-bearing front end needs the latency *distribution* (tail
latency is the SLO currency: a p99 of 20 ms matters even when the mean
is 2 ms), the admission queue's depth (the leading indicator of
overload), the batch-size mix the batcher actually produced, and how
busy each shard worker was.  :class:`ServingMetrics` records all four
with O(1) per-batch cost and summarizes them on demand:

* **per-batch wall latency** — a fixed-size ring buffer
  (:class:`LatencyWindow`) of the most recent ``window`` batch
  latencies; p50/p95/p99 are computed on demand from the window, so
  recording stays allocation-free on the serving path and the
  percentiles track the *current* regime rather than the whole
  history;
* **queue depth** — mean/max over the recorded samples of the
  *admission* queue's depth at each flush (requests waiting to be
  batched — the backpressure signal);
* **in-flight depth** — mean/max over the concurrent engine's
  pipeline depth samples (blocks dispatched ahead of the gather).
  Deliberately a *separate* stat from queue depth: the two measure
  different stages in different units (waiting requests vs dispatched
  serving blocks), and folding pipeline depth into the queue-depth
  stream would corrupt the overload signal;
* **batch-size histogram** — power-of-two buckets (a batch of 1500
  keys lands in the ``1024-2047`` bucket), enough to see whether the
  batcher is flushing on size or on deadline;
* **per-shard busy time** — accumulated by
  :class:`repro.serving.workers.ShardWorkerPool` and merged into the
  summary as utilization (busy seconds / wall seconds).

With a model-guided priority provider installed
(:mod:`repro.serving.priorities`) two more stat families appear:

* **inference latency** — per-inference-batch wall time and key count
  (:meth:`ServingMetrics.record_inference`).  In sync mode this time
  is *inside* the batch latencies above (inference rides the serving
  thread); in async mode it is disjoint from them — the whole point of
  the async provider is that the p99 above stays at model-free levels
  while inference happens elsewhere;
* **staleness** — the async provider's refresh lag in blocks
  (:meth:`ServingMetrics.record_staleness`), sampled by the sink at
  each served block; bounded by the provider's pending queue.

With online elastic rebalancing enabled (``rebalance_interval``) one
more family appears:

* **rebalances** — count, total migrated keys, and the serving pause
  each rebalance cost (:meth:`ServingMetrics.record_rebalance`): the
  wall time from deciding to rebalance to serving again, including the
  worker drain/barrier under ``concurrency="threads"``.  Pause time is
  the honesty metric of elastic rebalancing — the hit-rate win is
  gated in the benches, the pause is recorded ungated next to it.

Recording is **single-writer per field family**: one thread (the
gather/drive loop) calls :meth:`ServingMetrics.record_batch` and
:meth:`record_staleness`; inference counters are written by whichever
thread runs inference — the serving thread in sync mode, the async
provider's refresh worker otherwise — and by that thread only.  Shard
busy times are written by the worker threads but each shard's
accumulator is only ever touched by the worker that owns the shard.
So no lock is needed anywhere on the hot path; cross-thread
:meth:`summary` reads are telemetry (individually atomic fields, no
torn floats under the GIL, but no cross-field snapshot guarantee).

The summary feeds two places: the serving daemon's live printout
(``examples/serving_daemon.py``) and the committed perf baseline —
``benchmarks/test_perf_hotpaths.py`` exports ``latency_p50_ms`` /
``latency_p95_ms`` / ``latency_p99_ms`` and queue-depth stats next to
accesses/sec in ``BENCH_hotpaths.json``, so tail latency is tracked
across PRs alongside throughput.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

import numpy as np


class LatencyWindow:
    """Ring buffer over the most recent ``window`` latency samples.

    ``record`` is O(1) (one scalar store, no growth); ``percentile``
    sorts the live window on demand — cheap at summary time, free on
    the serving path.  ``count`` / ``total_seconds`` cover the *whole*
    history, so throughput math never loses evicted samples.
    """

    def __init__(self, window: int = 4096) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self._ring = np.zeros(self.window, dtype=np.float64)
        self._next = 0
        self.count = 0
        self.total_seconds = 0.0

    def record(self, seconds: float) -> None:
        self._ring[self._next] = seconds
        self._next = (self._next + 1) % self.window
        self.count += 1
        self.total_seconds += seconds

    def _live(self) -> np.ndarray:
        return self._ring[: min(self.count, self.window)]

    def percentile(self, q: float) -> float:
        """q-th percentile (seconds) over the live window; 0.0 when
        nothing has been recorded yet."""
        live = self._live()
        if live.size == 0:
            return 0.0
        return float(np.percentile(live, q))

    def percentiles(self, qs: Sequence[float]) -> Dict[float, float]:
        live = self._live()
        if live.size == 0:
            return {float(q): 0.0 for q in qs}
        values = np.percentile(live, list(qs))
        return {float(q): float(v) for q, v in zip(qs, values)}

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


def _size_bucket(size: int) -> str:
    """Power-of-two bucket label for a batch size (``"1024-2047"``)."""
    if size <= 0:
        return "0"
    lo = 1 << (int(size).bit_length() - 1)
    return f"{lo}-{2 * lo - 1}" if lo > 1 else "1"


class ServingMetrics:
    """Per-batch serving telemetry (see module docstring).

    One instance rides on each :class:`repro.core.manager.RecMGManager`;
    the concurrent engine and :meth:`RecMGManager.serve_batch` record
    into it, the serving daemon and the perf benches read
    :meth:`summary`.
    """

    PERCENTILES = (50.0, 95.0, 99.0)

    def __init__(self, window: int = 4096) -> None:
        self.latency = LatencyWindow(window)
        self.batches = 0
        self.keys_served = 0
        self.batch_size_histogram: Dict[str, int] = {}
        self.queue_depth_samples = 0
        self.queue_depth_sum = 0
        self.queue_depth_max = 0
        self.inflight_depth_samples = 0
        self.inflight_depth_sum = 0
        self.inflight_depth_max = 0
        self.inference_batches = 0
        self.inference_keys = 0
        self.inference_seconds_total = 0.0
        self.inference_seconds_max = 0.0
        self.staleness_samples = 0
        self.staleness_sum = 0
        self.staleness_max = 0
        self.rebalances = 0
        self.rebalance_migrated_keys = 0
        self.rebalance_pause_seconds_total = 0.0
        self.rebalance_pause_seconds_max = 0.0
        self._started = time.perf_counter()

    # -- recording (single consumer) -----------------------------------
    def record_batch(self, size: int, latency_seconds: float,
                     queue_depth: Optional[int] = None,
                     inflight_depth: Optional[int] = None) -> None:
        """Record one served batch: its key count, wall latency, and —
        when the caller knows them — the admission-queue depth at the
        moment the batch was formed (``queue_depth``) and/or the
        concurrent engine's pipeline depth when the batch gathered
        (``inflight_depth``).  The two are distinct stats (see module
        docstring); callers record whichever stage they instrument."""
        size = int(size)
        self.batches += 1
        self.keys_served += size
        self.latency.record(latency_seconds)
        bucket = _size_bucket(size)
        self.batch_size_histogram[bucket] = \
            self.batch_size_histogram.get(bucket, 0) + 1
        if queue_depth is not None:
            depth = int(queue_depth)
            self.queue_depth_samples += 1
            self.queue_depth_sum += depth
            if depth > self.queue_depth_max:
                self.queue_depth_max = depth
        if inflight_depth is not None:
            depth = int(inflight_depth)
            self.inflight_depth_samples += 1
            self.inflight_depth_sum += depth
            if depth > self.inflight_depth_max:
                self.inflight_depth_max = depth

    def record_inference(self, seconds: float, keys: int = 0) -> None:
        """Record one model-inference batch (wall time + keys).  Called
        by whichever thread runs inference — the serving thread in sync
        mode, the async provider's refresh worker otherwise — and only
        by that thread (see module docstring)."""
        self.inference_batches += 1
        self.inference_keys += int(keys)
        self.inference_seconds_total += seconds
        if seconds > self.inference_seconds_max:
            self.inference_seconds_max = seconds

    def record_staleness(self, blocks: int) -> None:
        """Record the async provider's refresh lag (in blocks) observed
        at one served block.  Serving-thread only.

        Rejects negative lag: the provider computes staleness as a
        locked three-counter snapshot, so a negative value here means
        a torn read leaked through — fail loudly instead of skewing
        the mean."""
        blocks = int(blocks)
        if blocks < 0:
            raise ValueError(f"staleness cannot be negative (got "
                             f"{blocks}); torn counter snapshot?")
        self.staleness_samples += 1
        self.staleness_sum += blocks
        if blocks > self.staleness_max:
            self.staleness_max = blocks

    def record_rebalance(self, migrated_keys: int,
                         pause_seconds: float) -> None:
        """Record one executed shard rebalance: how many resident keys
        changed shards and how long serving paused for the migration
        (drain/barrier + export/re-route/import).  Serving-thread only
        — the rebalance itself runs with the workers quiesced, so the
        recording thread is the only writer by construction."""
        self.rebalances += 1
        self.rebalance_migrated_keys += int(migrated_keys)
        self.rebalance_pause_seconds_total += pause_seconds
        if pause_seconds > self.rebalance_pause_seconds_max:
            self.rebalance_pause_seconds_max = pause_seconds

    # -- reading -------------------------------------------------------
    @property
    def inference_mean_ms(self) -> float:
        if not self.inference_batches:
            return 0.0
        return self.inference_seconds_total / self.inference_batches * 1e3

    @property
    def staleness_mean(self) -> float:
        if not self.staleness_samples:
            return 0.0
        return self.staleness_sum / self.staleness_samples

    @property
    def queue_depth_mean(self) -> float:
        if not self.queue_depth_samples:
            return 0.0
        return self.queue_depth_sum / self.queue_depth_samples

    @property
    def inflight_depth_mean(self) -> float:
        if not self.inflight_depth_samples:
            return 0.0
        return self.inflight_depth_sum / self.inflight_depth_samples

    def summary(self, shard_busy_seconds: Optional[Sequence[float]] = None,
                wall_seconds: Optional[float] = None) -> Dict[str, object]:
        """Flat summary dict (floats/ints only, JSON-ready).

        ``shard_busy_seconds`` (e.g.
        :meth:`~repro.serving.workers.ShardWorkerPool.busy_seconds`)
        adds per-shard utilization against ``wall_seconds`` (defaults
        to the metrics object's own lifetime).
        """
        wall = (wall_seconds if wall_seconds is not None
                else time.perf_counter() - self._started)
        pct = self.latency.percentiles(self.PERCENTILES)
        out: Dict[str, object] = {
            "batches": self.batches,
            "keys_served": self.keys_served,
            "latency_p50_ms": pct[50.0] * 1e3,
            "latency_p95_ms": pct[95.0] * 1e3,
            "latency_p99_ms": pct[99.0] * 1e3,
            "latency_mean_ms": self.latency.mean_seconds * 1e3,
            "queue_depth_mean": self.queue_depth_mean,
            "queue_depth_max": self.queue_depth_max,
            "inflight_depth_mean": self.inflight_depth_mean,
            "inflight_depth_max": self.inflight_depth_max,
            "inference_batches": self.inference_batches,
            "inference_mean_ms": self.inference_mean_ms,
            "inference_max_ms": self.inference_seconds_max * 1e3,
            "staleness_mean": self.staleness_mean,
            "staleness_max": self.staleness_max,
            "rebalance_count": self.rebalances,
            "rebalance_migrated_keys": self.rebalance_migrated_keys,
            "rebalance_pause_ms_total":
                self.rebalance_pause_seconds_total * 1e3,
            "rebalance_pause_ms_max":
                self.rebalance_pause_seconds_max * 1e3,
            "batch_size_histogram": dict(sorted(
                self.batch_size_histogram.items(),
                key=lambda item: int(item[0].split("-")[0]))),
        }
        if self.latency.total_seconds > 0:
            out["keys_per_sec_busy"] = \
                self.keys_served / self.latency.total_seconds
        if shard_busy_seconds is not None and wall > 0:
            out["shard_utilization"] = [
                busy / wall for busy in shard_busy_seconds]
        return out
