"""Admission control: bounded request queue + coalescing batcher.

The front door of the concurrent serving stack.  Producers (per-tenant
query streams, the daemon's trace replayer, an RPC handler) enqueue
small :class:`Request` objects into a bounded :class:`RequestQueue`;
one :class:`Batcher` drains the queue and coalesces requests into
bounded demand segments under a **max-size / max-wait** flush policy:

* a batch flushes as soon as it holds ``max_batch_keys`` keys (the
  size bound keeps per-shard sub-segments inside the regime the
  batched engines are tuned for), or
* ``max_wait_s`` after its first request was popped (the deadline
  bounds the queueing latency a lone request can suffer at low load).

The queue is **bounded** (``maxsize``): when producers outrun the
serving engine, ``put`` blocks — backpressure, not unbounded memory —
and the queue depth observed at each flush is the overload signal
:class:`repro.serving.metrics.ServingMetrics` tracks.

Threading contract: any number of producer threads may ``put``; one
consumer (the batcher/serving loop) calls ``get``.  ``close()`` wakes
everyone: producers get ``RuntimeError`` (the engine is gone), the
consumer drains what is left and stops.  The batcher itself is plain
iteration — ``for batch in Batcher(queue, ...).batches(): serve(...)``
— so the serving loop stays a loop the caller owns, not a callback.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterator, List, Optional

import numpy as np


@dataclass
class Request:
    """One tenant's demand access run (a few keys, one enqueue)."""

    keys: np.ndarray
    tenant: int = 0
    enqueued_at: float = field(default_factory=time.perf_counter)

    def __post_init__(self) -> None:
        self.keys = np.asarray(self.keys, dtype=np.int64)


@dataclass
class Batch:
    """A coalesced demand segment plus its admission telemetry."""

    keys: np.ndarray              #: concatenated request keys, arrival order
    num_requests: int             #: requests coalesced into this batch
    queue_depth: int              #: queue depth right after the batch formed
    first_enqueued_at: float      #: oldest member's enqueue timestamp
    formed_at: float              #: when the batcher sealed the batch

    @property
    def queue_wait_seconds(self) -> float:
        """Admission latency of the oldest member (enqueue -> sealed)."""
        return self.formed_at - self.first_enqueued_at


class QueueClosed(RuntimeError):
    """Raised by ``put`` after ``close()`` — the serving engine is gone."""


class RequestQueue:
    """Bounded MPSC request queue with blocking put and timed get."""

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = int(maxsize)
        self._items: Deque[Request] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    def put(self, request: Request, timeout: Optional[float] = None) -> None:
        """Enqueue; blocks while the queue is full (backpressure).
        Raises :class:`QueueClosed` once the queue is closed, and
        ``TimeoutError`` when ``timeout`` elapses while full.

        The timeout is one deadline for the whole call, not per wait:
        every wakeup (another producer's slot race, a spurious wakeup)
        re-waits only on the *remaining* time, so a producer racing
        other producers cannot block past its deadline.
        """
        deadline = (None if timeout is None
                    else time.perf_counter() + timeout)
        with self._not_full:
            while len(self._items) >= self.maxsize and not self._closed:
                remaining = (None if deadline is None
                             else deadline - time.perf_counter())
                if remaining is not None and remaining <= 0:
                    raise TimeoutError("queue full")
                if not self._not_full.wait(remaining):
                    raise TimeoutError("queue full")
            if self._closed:
                raise QueueClosed("request queue is closed")
            self._items.append(request)
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[Request]:
        """Pop the oldest request; ``None`` on timeout or when the
        queue is closed *and* drained (the consumer's stop signal).

        With ``timeout=None`` the call blocks until an item arrives or
        the queue closes — never returning ``None`` while the queue is
        open, whatever wakeups occur.  ``Batcher.batches()`` treats a
        ``None`` from its blocking get as closed-and-drained, so a
        spurious wakeup (or a notify won by a racing close/put
        interleaving) leaking through as ``None`` would permanently
        terminate the serving loop; the wait therefore re-checks state
        in a loop.
        """
        deadline = (None if timeout is None
                    else time.perf_counter() + timeout)
        with self._not_empty:
            while not self._items:
                if self._closed:
                    return None
                if deadline is None:
                    self._not_empty.wait()
                    continue
                remaining = deadline - time.perf_counter()
                if remaining <= 0 or not self._not_empty.wait(remaining):
                    return None
            request = self._items.popleft()
            self._not_full.notify()
            return request

    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop admissions; pending requests stay drainable."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()


class Batcher:
    """Coalesce queued requests into bounded segments (module doc)."""

    def __init__(self, queue: RequestQueue, max_batch_keys: int = 2048,
                 max_wait_s: float = 0.002) -> None:
        if max_batch_keys < 1:
            raise ValueError("max_batch_keys must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.queue = queue
        self.max_batch_keys = int(max_batch_keys)
        self.max_wait_s = float(max_wait_s)

    def _seal(self, parts: List[Request]) -> Batch:
        keys = (parts[0].keys if len(parts) == 1
                else np.concatenate([r.keys for r in parts]))
        return Batch(
            keys=keys,
            num_requests=len(parts),
            queue_depth=self.queue.depth(),
            first_enqueued_at=min(r.enqueued_at for r in parts),
            formed_at=time.perf_counter(),
        )

    def batches(self) -> Iterator[Batch]:
        """Drain the queue until it is closed and empty, yielding one
        :class:`Batch` per flush.  Blocks while the queue is open but
        idle (a serving loop parks here at zero load)."""
        while True:
            first = self.queue.get(timeout=None)
            if first is None:  # closed and drained
                return
            parts = [first]
            total = int(first.keys.size)
            deadline = time.perf_counter() + self.max_wait_s
            while total < self.max_batch_keys:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                request = self.queue.get(timeout=remaining)
                if request is None:  # deadline hit, or queue closed
                    break
                parts.append(request)
                total += int(request.keys.size)
            yield self._seal(parts)
