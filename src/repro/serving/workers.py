"""Persistent per-shard worker pool for the concurrent serving engine.

A :class:`ShardWorkerPool` owns ``num_workers`` single-thread
executors and pins every shard to exactly one of them (shard ``s`` →
worker ``s % num_workers``).  Two properties follow, and both are what
make the concurrent engine *decision-identical* to the serial
shard-wise loop:

* **shard exclusivity** — a shard's tasks only ever run on its one
  worker thread, so no two tasks touch the same shard concurrently
  and the shard backends need no locks;
* **per-shard FIFO** — tasks are submitted from a single dispatcher
  thread and each worker is a single-thread executor, so a shard's
  sub-segments execute in exactly the order they were submitted —
  the order the serial loop would serve them.

The priority-provider sink rides the same two properties: the
pipelined stream submits each block's per-shard
``apply_caching_bits`` job (:meth:`RecMGManager._submit_sink`) right
after that block's serve jobs, so every shard executes «serve block k
→ apply block k's bits → serve block k+1» — the serial order — and a
priority write never needs a cross-shard barrier.

Workers are **persistent**: the pool is created once per manager and
reused across every segment, so steady-state serving pays no thread
start/stop cost.  ``num_workers`` may be smaller than the shard count
(shards then time-share workers, still per-shard FIFO) — the knob the
multi-worker determinism stress test sweeps (1/2/4/8 workers must all
reproduce the serial decision stream).

Each task execution is timed into a per-shard busy accumulator; a
shard's accumulator is only written by the worker that owns the shard,
so the counters are race-free by construction and feed the per-shard
utilization row of :class:`repro.serving.metrics.ServingMetrics`.

**The rebalance barrier.**  Shard exclusivity is a *steady-state*
property: it protects one shard's state from concurrent access, but an
elastic rebalance (:meth:`repro.cache.sharding.ShardedBuffer.rebalance`)
touches *every* shard at once — it exports, re-routes and rebuilds all
backends, so it must never overlap any in-flight per-shard job.  The
manager therefore executes rebalances as a **barrier job**: it first
drains its own pipeline (gathers every dispatched block), then calls
:meth:`ShardWorkerPool.barrier` — which joins a sentinel task on every
worker, so every previously submitted job on every worker has finished
— and only then runs the migration on the dispatcher thread.  New work
is submitted only after the migration returns, so shard exclusivity is
never violated mid-flight.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, List, Optional


class ShardWorkerPool:
    """N single-thread executors with a static shard → worker pinning."""

    def __init__(self, num_shards: int, num_workers: Optional[int] = None,
                 thread_name_prefix: str = "shard-worker") -> None:
        num_shards = int(num_shards)
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if num_workers is None:
            num_workers = num_shards
        num_workers = int(num_workers)
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        # More workers than shards would leave the extras permanently
        # idle (a shard never migrates off its pinned worker).
        self.num_shards = num_shards
        self.num_workers = min(num_workers, num_shards)
        self._executors = [
            ThreadPoolExecutor(
                max_workers=1,
                thread_name_prefix=f"{thread_name_prefix}-{w}")
            for w in range(self.num_workers)
        ]
        self._busy_seconds = [0.0] * num_shards
        self._started_at = time.perf_counter()
        self._closed = False

    # ------------------------------------------------------------------
    def worker_of(self, shard_index: int) -> int:
        """Worker owning ``shard_index`` (static pinning)."""
        return shard_index % self.num_workers

    def submit(self, shard_index: int, fn: Callable, *args) -> Future:
        """Run ``fn(*args)`` on ``shard_index``'s worker; FIFO per
        shard when called from a single dispatcher thread."""
        if self._closed:
            raise RuntimeError("worker pool is closed")
        shard_index = int(shard_index)
        if not 0 <= shard_index < self.num_shards:
            raise IndexError(f"shard_index {shard_index} out of range "
                             f"[0, {self.num_shards})")
        executor = self._executors[self.worker_of(shard_index)]
        return executor.submit(self._timed, shard_index, fn, args)

    def _timed(self, shard_index: int, fn: Callable, args) -> object:
        start = time.perf_counter()
        try:
            return fn(*args)
        finally:
            # Only this shard's pinned worker writes this cell.
            self._busy_seconds[shard_index] += time.perf_counter() - start

    def barrier(self) -> None:
        """Block until every job submitted so far, on every worker, has
        completed.

        Submits one sentinel task per worker *first*, then joins them:
        each worker is a single-thread FIFO executor, so its sentinel
        cannot run before everything submitted ahead of it.  Submitting
        all sentinels before joining any lets the workers drain
        concurrently instead of serially.  This is the quiesce step of
        the rebalance protocol (module docstring) — after ``barrier()``
        returns, no task is running or queued anywhere in the pool
        (assuming the single-dispatcher contract: nothing else submits
        concurrently).
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        sentinels = [executor.submit(lambda: None)
                     for executor in self._executors]
        for future in sentinels:
            future.result()

    # ------------------------------------------------------------------
    def busy_seconds(self) -> List[float]:
        """Per-shard accumulated task seconds (utilization numerator)."""
        return list(self._busy_seconds)

    @property
    def wall_seconds(self) -> float:
        return time.perf_counter() - self._started_at

    def utilization(self) -> List[float]:
        """Per-shard busy fraction of the pool's lifetime."""
        wall = self.wall_seconds
        if wall <= 0:
            return [0.0] * self.num_shards
        return [busy / wall for busy in self._busy_seconds]

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Drain and join every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for executor in self._executors:
            executor.shutdown(wait=True)

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
