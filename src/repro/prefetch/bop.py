"""Best-Offset Prefetcher (Michaud, HPCA'16), adapted to index space.

BOP learns a single global offset by scoring rounds: each candidate
offset ``d`` earns a point when the current access ``x`` satisfies
"``x - d`` was recently accessed" (meaning a prefetch at offset ``d``
would have been issued in time).  The round ends when an offset reaches
``SCORE_MAX`` or after ``ROUND_MAX`` updates; the winner becomes the
active prefetch offset.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from .base import Prefetcher

_DEFAULT_OFFSETS = [1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24,
                    25, 27, 30, 32, 36, 40, 45, 48, 50, 54, 60, 64]


class BestOffsetPrefetcher(Prefetcher):
    name = "BOP"

    SCORE_MAX = 31
    ROUND_MAX = 100
    BAD_SCORE = 1

    def __init__(self, offsets: Optional[List[int]] = None,
                 recent_size: int = 256, degree: int = 1) -> None:
        self.offsets = list(offsets) if offsets else list(_DEFAULT_OFFSETS)
        self.recent_size = recent_size
        self.degree = degree
        self._recent: "OrderedDict[int, None]" = OrderedDict()
        self._scores = {d: 0 for d in self.offsets}
        self._round = 0
        self._test_idx = 0
        self._best: Optional[int] = self.offsets[0]

    def reset(self) -> None:
        self._recent.clear()
        self._scores = {d: 0 for d in self.offsets}
        self._round = 0
        self._test_idx = 0
        self._best = self.offsets[0]

    def _record_recent(self, key: int) -> None:
        self._recent[key] = None
        self._recent.move_to_end(key)
        while len(self._recent) > self.recent_size:
            self._recent.popitem(last=False)

    def _end_round(self) -> None:
        best = max(self._scores, key=self._scores.get)
        self._best = best if self._scores[best] > self.BAD_SCORE else None
        self._scores = {d: 0 for d in self.offsets}
        self._round = 0
        self._test_idx = 0

    def observe(self, key: int, pc: int = 0, hit: bool = True) -> List[int]:
        # Score one candidate offset per access (round-robin).
        candidate = self.offsets[self._test_idx]
        self._test_idx = (self._test_idx + 1) % len(self.offsets)
        if key - candidate in self._recent:
            self._scores[candidate] += 1
            if self._scores[candidate] >= self.SCORE_MAX:
                self._end_round()
        self._round += 1
        if self._round >= self.ROUND_MAX * len(self.offsets):
            self._end_round()

        self._record_recent(key)
        if self._best is None:
            return []
        return [key + self._best * i for i in range(1, self.degree + 1)]
