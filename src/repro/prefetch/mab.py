"""Micro-Armed Bandit prefetch coordinator (Gerogiannis & Torrellas,
MICRO'23), adapted.

MAB treats a set of simple prefetchers as bandit arms and picks the arm
per epoch with an epsilon-greedy rule; the reward is the number of the
arm's predictions that were subsequently accessed, minus a penalty for
useless prefetches (cache pollution proxy).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from .base import NullPrefetcher, Prefetcher
from .bop import BestOffsetPrefetcher
from .domino import DominoPrefetcher


class MicroArmedBanditPrefetcher(Prefetcher):
    name = "MAB"

    def __init__(self, arms: Optional[Sequence[Prefetcher]] = None,
                 epoch: int = 256, epsilon: float = 0.1,
                 pollution_penalty: float = 0.5, reward_window: int = 32,
                 seed: int = 0) -> None:
        self.arms: List[Prefetcher] = (
            list(arms) if arms is not None
            else [NullPrefetcher(), BestOffsetPrefetcher(),
                  DominoPrefetcher(history_size=8192, degree=2)]
        )
        self.epoch = epoch
        self.epsilon = epsilon
        self.pollution_penalty = pollution_penalty
        self.reward_window = reward_window
        self._rng = np.random.default_rng(seed)
        self._values = np.zeros(len(self.arms))
        self._counts = np.zeros(len(self.arms), dtype=np.int64)
        self._current = 0
        self._step = 0
        # Outstanding predictions of the current arm: (deadline, key).
        self._outstanding: Deque[Tuple[int, int]] = deque()
        self._reward = 0.0

    def reset(self) -> None:
        for arm in self.arms:
            arm.reset()
        self._values[:] = 0
        self._counts[:] = 0
        self._current = 0
        self._step = 0
        self._outstanding.clear()
        self._reward = 0.0

    def _select_arm(self) -> int:
        if self._rng.random() < self.epsilon:
            return int(self._rng.integers(0, len(self.arms)))
        return int(np.argmax(self._values))

    def observe(self, key: int, pc: int = 0, hit: bool = True) -> List[int]:
        self._step += 1

        # Settle outstanding predictions: a hit before the deadline is a
        # reward; an expired prediction is pollution.
        matched = False
        still_waiting: Deque[Tuple[int, int]] = deque()
        for deadline, predicted in self._outstanding:
            if predicted == key and not matched:
                self._reward += 1.0
                matched = True
            elif deadline >= self._step:
                still_waiting.append((deadline, predicted))
            else:
                self._reward -= self.pollution_penalty
        self._outstanding = still_waiting

        # Every arm observes (so inactive arms stay trained); only the
        # active arm's predictions are issued.
        issued: List[int] = []
        for i, arm in enumerate(self.arms):
            suggestions = arm.observe(key, pc=pc, hit=hit)
            if i == self._current:
                issued = suggestions
        for predicted in issued:
            self._outstanding.append((self._step + self.reward_window, predicted))

        if self._step % self.epoch == 0:
            i = self._current
            self._counts[i] += 1
            step_size = 1.0 / self._counts[i]
            self._values[i] += step_size * (self._reward - self._values[i])
            self._reward = 0.0
            self._outstanding.clear()
            self._current = self._select_arm()
        return issued
