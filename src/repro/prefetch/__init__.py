"""Prefetcher substrate: baselines and evaluation harnesses."""

from .base import (
    Prefetcher,
    NullPrefetcher,
    PrefetchEvaluation,
    evaluate_prefetcher,
)
from .bingo import BingoPrefetcher
from .domino import DominoPrefetcher
from .bop import BestOffsetPrefetcher
from .berti import BertiPrefetcher
from .mab import MicroArmedBanditPrefetcher
from .stream import StridePrefetcher
from .transfetch import TransFetchPrefetcher
from .voyager import VoyagerPrefetcher, VoyagerScaleError, estimate_memory_bytes
from .harness import (
    AccessBreakdown,
    LRUBufferWithPrefetch,
    run_breakdown,
    run_breakdown_sweep,
)

__all__ = [
    "Prefetcher", "NullPrefetcher", "PrefetchEvaluation", "evaluate_prefetcher",
    "BingoPrefetcher", "DominoPrefetcher", "BestOffsetPrefetcher",
    "BertiPrefetcher", "MicroArmedBanditPrefetcher", "StridePrefetcher",
    "TransFetchPrefetcher", "VoyagerPrefetcher", "VoyagerScaleError",
    "estimate_memory_bytes",
    "AccessBreakdown", "LRUBufferWithPrefetch", "run_breakdown",
    "run_breakdown_sweep",
]
