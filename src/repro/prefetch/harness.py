"""Buffer + prefetcher co-simulation and access breakdowns (Fig. 14).

The paper breaks GPU-buffer accesses into three classes: hits produced
by the caching policy, hits produced by the prefetcher (first demand
touch of a prefetched line), and on-demand fetches from CPU memory.
This harness runs a fully associative LRU buffer with an optional
prefetcher feeding insertions and produces that breakdown for baseline
configurations (Domino/Bingo/TransFetch/LRU+PF); the RecMG breakdown
comes from :mod:`repro.core.manager`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..traces.access import Trace
from .base import Prefetcher


@dataclass
class AccessBreakdown:
    """Per-class access counts over a simulation run."""

    cache_hits: int = 0
    prefetch_hits: int = 0
    on_demand: int = 0

    @property
    def total(self) -> int:
        return self.cache_hits + self.prefetch_hits + self.on_demand

    @property
    def hit_rate(self) -> float:
        return (self.cache_hits + self.prefetch_hits) / self.total if self.total else 0.0

    def fractions(self) -> Dict[str, float]:
        total = max(1, self.total)
        return {
            "cache_hit": self.cache_hits / total,
            "prefetch_hit": self.prefetch_hits / total,
            "on_demand": self.on_demand / total,
        }


class LRUBufferWithPrefetch:
    """Fully associative LRU buffer accepting prefetch insertions.

    A line inserted by the prefetcher is tagged; its first demand hit is
    counted as a *prefetch hit* (and the tag clears).  Demand misses
    fetch on demand.  ``metadata_fraction`` reserves part of the buffer
    capacity for prefetcher metadata (the paper notes Domino "consumes
    excessive GPU buffer capacity for metadata recording").
    """

    def __init__(self, capacity: int, prefetcher: Optional[Prefetcher] = None,
                 max_prefetches_per_access: int = 4,
                 metadata_fraction: float = 0.0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        effective = max(1, int(capacity * (1.0 - metadata_fraction)))
        self.capacity = effective
        self.prefetcher = prefetcher
        self.max_prefetches_per_access = max_prefetches_per_access
        self._entries: "OrderedDict[int, bool]" = OrderedDict()  # key -> prefetched?
        self.breakdown = AccessBreakdown()
        self.prefetches_issued = 0
        self.prefetches_useful = 0

    def _insert(self, key: int, prefetched: bool) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[key] = prefetched

    def access(self, key: int, pc: int = 0) -> str:
        """Process one demand access; returns its class name."""
        if key in self._entries:
            was_prefetched = self._entries[key]
            self._entries[key] = False
            self._entries.move_to_end(key)
            if was_prefetched:
                self.breakdown.prefetch_hits += 1
                self.prefetches_useful += 1
                kind = "prefetch_hit"
            else:
                self.breakdown.cache_hits += 1
                kind = "cache_hit"
            hit = True
        else:
            self.breakdown.on_demand += 1
            self._insert(key, prefetched=False)
            kind = "on_demand"
            hit = False

        if self.prefetcher is not None:
            suggestions = self.prefetcher.observe(key, pc=pc, hit=hit)
            for suggestion in suggestions[: self.max_prefetches_per_access]:
                if suggestion not in self._entries:
                    self.prefetches_issued += 1
                    self._insert(suggestion, prefetched=True)
        return kind


def run_breakdown(trace: Trace, capacity: int,
                  prefetcher: Optional[Prefetcher] = None,
                  metadata_fraction: float = 0.0,
                  use_dense_keys: bool = True) -> AccessBreakdown:
    """Simulate ``trace`` through an LRU buffer (+ optional prefetcher).

    ``use_dense_keys`` remaps packed keys into a dense index space so
    delta/offset prefetchers see meaningful arithmetic (this mirrors the
    paper "treating each embedding-vector index as a memory address").
    """
    if use_dense_keys:
        from ..traces.access import remap_to_dense

        keys, _ = remap_to_dense(trace)
    else:
        keys = trace.keys()
    tables = trace.table_ids
    buffer = LRUBufferWithPrefetch(capacity, prefetcher=prefetcher,
                                   metadata_fraction=metadata_fraction)
    for i in range(len(keys)):
        buffer.access(int(keys[i]), pc=int(tables[i]))
    return buffer.breakdown
