"""Buffer + prefetcher co-simulation and access breakdowns (Fig. 14).

The paper breaks GPU-buffer accesses into three classes: hits produced
by the caching policy, hits produced by the prefetcher (first demand
touch of a prefetched line), and on-demand fetches from CPU memory.
This harness runs a fully associative LRU buffer with an optional
prefetcher feeding insertions and produces that breakdown for baseline
configurations (Domino/Bingo/TransFetch/LRU+PF); the RecMG breakdown
comes from :mod:`repro.core.manager`.

**Prefetch accounting semantics** (unified across the repo): a prefetch
counts as *issued* only when it actually fills the buffer — suggestions
for keys already resident are dropped without touching any counter.
:class:`LRUBufferWithPrefetch` here,
:class:`repro.cache.set_assoc.SetAssociativeCache`, and
:class:`repro.core.manager.RecMGManager` all follow this rule, so
``prefetch_accuracy = useful / issued`` has the same denominator in the
Fig. 14 and Table IV comparisons.

The no-prefetcher configuration is served by a closed-form vectorized
path: fully associative LRU is a stack algorithm, so an access hits iff
its reuse distance (number of distinct keys since the previous touch)
is below capacity — :func:`repro.traces.reuse.reuse_distances_from_keys`
computes all distances in O(log n) numpy passes, replacing the
per-access simulation loop.  The loop (``engine="reference"``) is kept
as the audit path and for prefetcher co-simulation, which is stateful
per access.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..cache.buffer import make_buffer
from ..cache.sharding import backend_for_key
from ..traces.access import Trace
from ..traces.reuse import reuse_distances_from_keys
from .base import Prefetcher


@dataclass
class AccessBreakdown:
    """Per-class access counts over a simulation run."""

    cache_hits: int = 0
    prefetch_hits: int = 0
    on_demand: int = 0

    @property
    def total(self) -> int:
        return self.cache_hits + self.prefetch_hits + self.on_demand

    @property
    def hit_rate(self) -> float:
        return (self.cache_hits + self.prefetch_hits) / self.total if self.total else 0.0

    def fractions(self) -> Dict[str, float]:
        total = max(1, self.total)
        return {
            "cache_hit": self.cache_hits / total,
            "prefetch_hit": self.prefetch_hits / total,
            "on_demand": self.on_demand / total,
        }


class LRUBufferWithPrefetch:
    """Fully associative LRU buffer accepting prefetch insertions.

    A line inserted by the prefetcher is tagged; its first demand hit is
    counted as a *prefetch hit* (and the tag clears).  Demand misses
    fetch on demand.  ``metadata_fraction`` reserves part of the buffer
    capacity for prefetcher metadata (the paper notes Domino "consumes
    excessive GPU buffer capacity for metadata recording").

    ``buffer_impl`` selects the residency backend: ``"ordered"`` (the
    default) keeps the OrderedDict LRU; ``"reference"``/``"fast"`` run
    the same *exact* LRU on a priority-buffer backend (constant
    priority 0, so the victim is always the oldest-touched entry —
    breakdowns are identical to ``"ordered"``); ``"clock"`` runs the
    second-chance CLOCK approximation of LRU (insert and re-reference
    at priority 1) on the array-backed buffer.  ``key_space`` (when the
    keys are dense, e.g. after ``remap_to_dense``) selects array-native
    clock membership — residency then answers from a
    :class:`~repro.cache.residency.ResidencyIndex` bitmap instead of a
    per-key dict sweep, with identical behavior.  The *exact* backends
    deliberately stay in dict mode here: this harness is a per-access
    co-simulation loop, and the dense exact mode trades O(log n) scalar
    heap evictions for O(capacity) batch selections — the right deal
    only for the batched ``serve_segment`` engines in the manager and
    ``dlrm.inference``, not for this loop.

    ``num_shards > 1`` (with ``key_space``, required by the routers;
    unsupported on the OrderedDict backend) partitions the id universe
    across shards (:class:`~repro.cache.sharding.ShardedBuffer`):
    residency and refresh route through the buffer, while
    eviction-for-space targets the routed shard — per-shard LRU/CLOCK
    recency, not the global order.
    """

    def __init__(self, capacity: int, prefetcher: Optional[Prefetcher] = None,
                 max_prefetches_per_access: int = 4,
                 metadata_fraction: float = 0.0,
                 buffer_impl: str = "ordered",
                 key_space: Optional[int] = None,
                 num_shards: int = 1,
                 shard_policy: str = "contiguous",
                 shard_weights=None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        effective = max(1, int(capacity * (1.0 - metadata_fraction)))
        self.capacity = effective
        self.prefetcher = prefetcher
        self.max_prefetches_per_access = max_prefetches_per_access
        self.buffer_impl = buffer_impl
        # Exactly one residency state exists: the OrderedDict (key ->
        # prefetched?) for the classic path, or a priority-buffer
        # backend plus a prefetch-tag set.
        if buffer_impl == "ordered":
            if num_shards != 1:
                raise ValueError(
                    "the OrderedDict LRU backend cannot shard; pick a "
                    "registered buffer_impl for num_shards > 1")
            self._buffer = None
            self._pf_tags: Optional[set] = None
            self._refresh_priority = 0
            self._entries: Optional["OrderedDict[int, bool]"] = OrderedDict()
        else:
            # Dense membership only for the approximate backend (or
            # when sharding, whose routers require the dense universe):
            # the exact pair's dense mode pays O(capacity) per *scalar*
            # eviction, and this harness only ever serves scalar
            # accesses (see class docstring).
            dense = buffer_impl == "clock" or num_shards > 1
            self._buffer = make_buffer(
                buffer_impl, effective,
                key_space=key_space if dense else None,
                num_shards=num_shards, shard_policy=shard_policy,
                shard_weights=shard_weights)
            self._pf_tags = set()
            # Exact backends at constant priority 0 reduce to LRU
            # (victim = oldest seqno); clock needs priority 1 so a
            # referenced entry survives one sweep (second chance).
            self._refresh_priority = (
                1 if getattr(self._buffer, "approximate", False) else 0)
            self._entries = None
        self.breakdown = AccessBreakdown()
        self.prefetches_issued = 0
        self.prefetches_useful = 0

    def __contains__(self, key: int) -> bool:
        if self._buffer is not None:
            return key in self._buffer
        return key in self._entries

    def _insert(self, key: int, prefetched: bool) -> None:
        buffer = self._buffer
        if buffer is not None:
            if key in buffer:
                buffer.set_priority(key, self._refresh_priority)
                return
            # Space must come from the shard that will hold the key
            # (the routed shard of a ShardedBuffer, the buffer itself
            # otherwise).
            target = backend_for_key(buffer, key)
            if target.is_full:
                victim = target.evict_one()
                self._pf_tags.discard(victim)
            buffer.insert(key, self._refresh_priority)
            if prefetched:
                self._pf_tags.add(key)
            return
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[key] = prefetched

    def access(self, key: int, pc: int = 0) -> str:
        """Process one demand access; returns its class name."""
        buffer = self._buffer
        if buffer is not None:
            if key in buffer:
                was_prefetched = key in self._pf_tags
                self._pf_tags.discard(key)
                buffer.set_priority(key, self._refresh_priority)
                hit = True
            else:
                was_prefetched = False
                self._insert(key, prefetched=False)
                hit = False
        elif key in self._entries:
            was_prefetched = self._entries[key]
            self._entries[key] = False
            self._entries.move_to_end(key)
            hit = True
        else:
            was_prefetched = False
            self._insert(key, prefetched=False)
            hit = False

        if hit:
            if was_prefetched:
                self.breakdown.prefetch_hits += 1
                self.prefetches_useful += 1
                kind = "prefetch_hit"
            else:
                self.breakdown.cache_hits += 1
                kind = "cache_hit"
        else:
            self.breakdown.on_demand += 1
            kind = "on_demand"

        if self.prefetcher is not None:
            suggestions = self.prefetcher.observe(key, pc=pc, hit=hit)
            for suggestion in suggestions[: self.max_prefetches_per_access]:
                if suggestion not in self:
                    self.prefetches_issued += 1
                    self._insert(suggestion, prefetched=True)
        return kind


def run_breakdown(trace: Trace, capacity: int,
                  prefetcher: Optional[Prefetcher] = None,
                  metadata_fraction: float = 0.0,
                  use_dense_keys: bool = True,
                  engine: str = "fast",
                  buffer_impl: str = "ordered",
                  num_shards: int = 1,
                  shard_policy: str = "contiguous",
                  shard_weights=None) -> AccessBreakdown:
    """Simulate ``trace`` through an LRU buffer (+ optional prefetcher).

    ``use_dense_keys`` remaps packed keys into a dense index space so
    delta/offset prefetchers see meaningful arithmetic (this mirrors the
    paper "treating each embedding-vector index as a memory address").

    Without a prefetcher the default ``engine="fast"`` computes the
    breakdown in closed form from vectorized reuse distances (see module
    docstring) — bit-identical to the simulation loop, which
    ``engine="reference"`` forces.  ``buffer_impl`` selects the
    residency backend (see :class:`LRUBufferWithPrefetch`); the
    closed-form path only models the exact-LRU backends (``"ordered"``,
    ``"reference"``, ``"fast"``), so the approximate ``"clock"`` backend
    always simulates.  ``num_shards > 1`` partitions the dense key
    space across independent shards (requires ``use_dense_keys`` for
    the routers' universe); per-shard LRU differs from global LRU, so
    sharded runs always simulate too.
    """
    if engine not in ("fast", "reference"):
        raise ValueError(f"unknown breakdown engine: {engine!r}")
    if use_dense_keys:
        from ..traces.access import remap_to_dense

        keys, _ = remap_to_dense(trace)
    else:
        keys = trace.keys()
    exact_lru = buffer_impl in ("ordered", "reference", "fast")
    if (prefetcher is None and engine == "fast" and exact_lru
            and num_shards == 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        effective = max(1, int(capacity * (1.0 - metadata_fraction)))
        distances = reuse_distances_from_keys(keys)
        hits = int(((distances >= 0) & (distances < effective)).sum())
        return AccessBreakdown(cache_hits=hits, prefetch_hits=0,
                               on_demand=len(keys) - hits)
    tables = trace.table_ids
    # Dense-remapped keys span exactly [0, num_unique): hand the dense
    # universe to the backend so the clock path runs its residency
    # bitmap instead of the key→slot dict.
    key_space = (int(keys.max()) + 1
                 if use_dense_keys and len(keys) else None)
    buffer = LRUBufferWithPrefetch(capacity, prefetcher=prefetcher,
                                   metadata_fraction=metadata_fraction,
                                   buffer_impl=buffer_impl,
                                   key_space=key_space,
                                   num_shards=num_shards,
                                   shard_policy=shard_policy,
                                   shard_weights=shard_weights)
    for i in range(len(keys)):
        buffer.access(int(keys[i]), pc=int(tables[i]))
    return buffer.breakdown


def run_breakdown_sweep(trace: Trace, capacities,
                        metadata_fraction: float = 0.0,
                        use_dense_keys: bool = True) -> List[AccessBreakdown]:
    """No-prefetcher LRU breakdowns for many capacities at once.

    This is where the closed-form path pays off hardest: the reuse
    distances are computed once per trace and each capacity then costs a
    single binary search over the sorted warm distances, whereas a
    per-access simulation must re-run the full trace per capacity.
    Results are identical to ``run_breakdown(trace, c)`` for each ``c``.
    """
    if use_dense_keys:
        from ..traces.access import remap_to_dense

        keys, _ = remap_to_dense(trace)
    else:
        keys = trace.keys()
    distances = reuse_distances_from_keys(keys)
    sorted_warm = np.sort(distances[distances >= 0])
    breakdowns = []
    for capacity in capacities:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        effective = max(1, int(capacity * (1.0 - metadata_fraction)))
        hits = int(np.searchsorted(sorted_warm, effective, side="left"))
        breakdowns.append(AccessBreakdown(cache_hits=hits, prefetch_hits=0,
                                          on_demand=len(keys) - hits))
    return breakdowns
