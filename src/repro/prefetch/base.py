"""Prefetcher interface and the paper's evaluation metrics.

A prefetcher consumes the access stream one key at a time via
:meth:`Prefetcher.observe` and returns the keys it wants prefetched.
Metrics implemented here (paper §IV and §VII-B):

* **sequence prediction correctness** — fraction of prefetched keys that
  are accessed within the next ``window`` accesses (Fig. 9);
* **coverage** (Eq. 2) — |unique predicted ∩ unique future| / |unique
  future| (Fig. 10);
* **prediction cost** — wall-clock time per prediction (Table II).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..traces.access import Trace


class Prefetcher:
    """Base prefetcher; subclasses override :meth:`observe`."""

    name = "base"

    def observe(self, key: int, pc: int = 0, hit: bool = True) -> List[int]:
        """Feed one demand access; return keys to prefetch (may be [])."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear online state between evaluation runs (optional)."""


@dataclass
class PrefetchEvaluation:
    """Aggregate prefetch-quality metrics over one trace."""

    correctness: float
    coverage: float
    total_prefetches: int
    cost_per_prediction_us: float
    useful_prefetches: int

    @property
    def accuracy(self) -> float:
        """Useful / issued (paper Table IV definition)."""
        if self.total_prefetches == 0:
            return 0.0
        return self.useful_prefetches / self.total_prefetches


def evaluate_prefetcher(prefetcher: Prefetcher, trace: Trace,
                        window: int = 15,
                        warmup_fraction: float = 0.1) -> PrefetchEvaluation:
    """Drive ``prefetcher`` over ``trace`` and score its predictions.

    A prediction made at position ``i`` is *correct* if the key appears
    in accesses ``(i, i + window]``.  Predictions during the warmup
    prefix train the prefetcher but are not scored.
    """
    keys = trace.keys()
    tables = trace.table_ids
    n = len(keys)
    warmup = int(n * warmup_fraction)

    # Precompute, for every position, a rolling membership structure:
    # future_positions[key] = sorted positions of each key.
    positions: Dict[int, np.ndarray] = {}
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.nonzero(np.diff(sorted_keys))[0] + 1
    for chunk in np.split(order, boundaries):
        positions[int(keys[chunk[0]])] = np.sort(chunk)

    def hits_within(key: int, pos: int) -> bool:
        arr = positions.get(key)
        if arr is None:
            return False
        j = np.searchsorted(arr, pos + 1)
        return j < len(arr) and arr[j] <= pos + window

    scored = 0
    correct = 0
    total_prefetches = 0
    useful = 0
    coverage_sum = 0.0
    coverage_steps = 0
    elapsed = 0.0

    for i in range(n):
        t0 = time.perf_counter()
        suggestions = prefetcher.observe(int(keys[i]), pc=int(tables[i]))
        elapsed += time.perf_counter() - t0
        if i < warmup:
            continue
        # Windowed coverage (Eq. 2): unique overlap between this step's
        # output and the upcoming window of ground-truth accesses.
        window_gt = set(int(k) for k in keys[i + 1: i + 1 + window])
        if window_gt:
            coverage_steps += 1
            if suggestions:
                coverage_sum += (
                    len(set(suggestions) & window_gt) / len(window_gt)
                )
        for key in suggestions:
            total_prefetches += 1
            scored += 1
            if hits_within(key, i):
                correct += 1
                useful += 1

    coverage = coverage_sum / coverage_steps if coverage_steps else 0.0
    return PrefetchEvaluation(
        correctness=correct / scored if scored else 0.0,
        coverage=coverage,
        total_prefetches=total_prefetches,
        cost_per_prediction_us=(elapsed / n * 1e6) if n else 0.0,
        useful_prefetches=useful,
    )


class NullPrefetcher(Prefetcher):
    """Never prefetches; the 'none' arm for the bandit coordinator."""

    name = "none"

    def observe(self, key: int, pc: int = 0, hit: bool = True) -> List[int]:
        return []
