"""Berti local-delta prefetcher (Navarro-Torres et al., MICRO'22), adapted.

Berti learns the best *timely* deltas per PC: for each access it checks
which deltas from the recent per-PC history would have predicted the
current key early enough (a fixed "fetch latency" in accesses), keeps a
coverage counter per (pc, delta), and issues the highest-confidence
deltas.  The PC proxy is the embedding-table id, which — as the paper
argues — carries little information for DLRM traces, so Berti's accuracy
collapses here; reproducing that is the point.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, List, Tuple

from .base import Prefetcher


class BertiPrefetcher(Prefetcher):
    name = "Berti"

    def __init__(self, history_per_pc: int = 16, latency: int = 4,
                 max_deltas: int = 16, confidence_threshold: float = 0.35,
                 degree: int = 2) -> None:
        self.history_per_pc = history_per_pc
        self.latency = latency
        self.max_deltas = max_deltas
        self.confidence_threshold = confidence_threshold
        self.degree = degree
        # Per PC: deque of (position, key).
        self._history: Dict[int, Deque[Tuple[int, int]]] = defaultdict(
            lambda: deque(maxlen=self.history_per_pc)
        )
        # Per PC: delta -> (covered, opportunities).
        self._delta_stats: Dict[int, Dict[int, List[int]]] = defaultdict(dict)
        self._clock = 0

    def reset(self) -> None:
        self._history.clear()
        self._delta_stats.clear()
        self._clock = 0

    def observe(self, key: int, pc: int = 0, hit: bool = True) -> List[int]:
        self._clock += 1
        history = self._history[pc]
        stats = self._delta_stats[pc]

        # Train: deltas from sufficiently old history entries are timely.
        for position, old_key in history:
            delta = key - old_key
            if delta == 0:
                continue
            timely = (self._clock - position) >= self.latency
            entry = stats.get(delta)
            if entry is None:
                if len(stats) >= self.max_deltas:
                    # Evict the lowest-coverage delta.
                    worst = min(stats, key=lambda d: stats[d][0] / max(1, stats[d][1]))
                    del stats[worst]
                entry = stats.setdefault(delta, [0, 0])
            entry[1] += 1
            if timely:
                entry[0] += 1

        history.append((self._clock, key))

        # Issue the highest-confidence deltas.
        ranked = sorted(
            ((covered / max(1, total), delta) for delta, (covered, total)
             in stats.items() if total >= 4),
            reverse=True,
        )
        prefetches: List[int] = []
        for confidence, delta in ranked[: self.degree]:
            if confidence >= self.confidence_threshold:
                prefetches.append(key + delta)
        return prefetches
