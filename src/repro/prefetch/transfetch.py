"""TransFetch-style attention prefetcher (Zhang et al., CF'22), adapted.

TransFetch segments each address into bit fields, embeds the segments,
runs self-attention over the last ``k`` accesses, and predicts future
*deltas* as multi-label classification over a bounded delta bitmap.

The bounded delta range is exactly why the paper finds TransFetch caps
out near 10% correctness on DLRM traces: it "cannot handle a large
amount of embedding vectors within one embedding table" — any future
access whose delta falls outside the bitmap is unpredictable.  The
default range here is deliberately comparable (± ``delta_range``).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

import numpy as np

from ..nn import Adam, Linear, Module, SelfAttention, Tensor, bce_with_logits
from ..traces.access import Trace
from .base import Prefetcher


class _TransFetchModel(Module):
    """Segment embeddings -> self-attention -> multi-label delta logits."""

    def __init__(self, num_segments: int, segment_bits: int, dim: int,
                 num_deltas: int, rng: np.random.Generator) -> None:
        from ..nn import Embedding

        self.num_segments = num_segments
        self.segment_bits = segment_bits
        self.segments = [
            Embedding(1 << segment_bits, dim, rng=rng)
            for _ in range(num_segments)
        ]
        self.attention = SelfAttention(dim, rng=rng)
        self.head = Linear(dim, num_deltas, rng=rng)

    def segment_ids(self, indices: np.ndarray) -> np.ndarray:
        """Split each index into ``num_segments`` bit fields."""
        mask = (1 << self.segment_bits) - 1
        out = np.empty(indices.shape + (self.num_segments,), dtype=np.int64)
        for s in range(self.num_segments):
            out[..., s] = (indices >> (s * self.segment_bits)) & mask
        return out

    def forward(self, indices: np.ndarray) -> Tensor:
        # indices: (batch, k) int; returns (batch, num_deltas) logits.
        batch, k = indices.shape
        seg = self.segment_ids(indices)  # (batch, k, S)
        token = None
        for s in range(self.num_segments):
            emb = self.segments[s](seg[..., s].reshape(-1))
            token = emb if token is None else token + emb
        dim = token.shape[-1]
        tokens = token.reshape(batch, k, dim)
        attended = self.attention(tokens)          # (batch, k, dim)
        pooled = attended.mean(axis=1)             # (batch, dim)
        return self.head(pooled)


class TransFetchPrefetcher(Prefetcher):
    name = "TransFetch"

    def __init__(self, context: int = 8, delta_range: int = 64,
                 dim: int = 16, num_segments: int = 3, segment_bits: int = 8,
                 top_k: int = 2, threshold: float = 0.5,
                 predict_every: int = 1, seed: int = 0) -> None:
        self.context = context
        self.delta_range = delta_range
        self.num_deltas = 2 * delta_range + 1
        self.top_k = top_k
        self.threshold = threshold
        self.predict_every = predict_every
        rng = np.random.default_rng(seed)
        self.model = _TransFetchModel(num_segments, segment_bits, dim,
                                      self.num_deltas, rng)
        self._window: Deque[int] = deque(maxlen=context)
        self._step = 0
        self.trained = False

    def reset(self) -> None:
        self._window.clear()
        self._step = 0

    # ------------------------------------------------------------------
    def _labels_for(self, keys: np.ndarray, pos: int, horizon: int) -> np.ndarray:
        """Multi-hot vector of in-range deltas among the next accesses."""
        label = np.zeros(self.num_deltas)
        base = keys[pos]
        for future in keys[pos + 1: pos + 1 + horizon]:
            delta = int(future - base)
            if -self.delta_range <= delta <= self.delta_range:
                label[delta + self.delta_range] = 1.0
        return label

    def train(self, trace: Trace, epochs: int = 2, batch_size: int = 32,
              horizon: int = 8, lr: float = 3e-3, max_samples: int = 2000,
              seed: int = 0) -> List[float]:
        """Offline training on (context -> future-delta bitmap) pairs."""
        from ..traces.access import remap_to_dense

        keys, _ = remap_to_dense(trace)
        n = len(keys)
        rng = np.random.default_rng(seed)
        valid = np.arange(self.context, n - horizon - 1)
        if len(valid) > max_samples:
            valid = rng.choice(valid, size=max_samples, replace=False)
        optimizer = Adam(self.model.parameters(), lr=lr)
        losses: List[float] = []
        for _ in range(epochs):
            rng.shuffle(valid)
            for start in range(0, len(valid), batch_size):
                batch_pos = valid[start:start + batch_size]
                inputs = np.stack([keys[p - self.context:p] for p in batch_pos])
                labels = np.stack([self._labels_for(keys, p, horizon)
                                   for p in batch_pos])
                logits = self.model(inputs)
                loss = bce_with_logits(logits, Tensor(labels))
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
        self.trained = True
        return losses

    # ------------------------------------------------------------------
    def observe(self, key: int, pc: int = 0, hit: bool = True) -> List[int]:
        self._window.append(key)
        self._step += 1
        if (not self.trained or len(self._window) < self.context
                or self._step % self.predict_every != 0):
            return []
        inputs = np.asarray(self._window, dtype=np.int64).reshape(1, -1)
        logits = self.model(inputs).data[0]
        probs = 1.0 / (1.0 + np.exp(-logits))
        order = np.argsort(-probs)[: self.top_k]
        prefetches = []
        for cls in order:
            if probs[cls] < self.threshold:
                continue
            delta = int(cls) - self.delta_range
            if delta != 0:
                prefetches.append(key + delta)
        return prefetches
