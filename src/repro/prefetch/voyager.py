"""Voyager-style hierarchical neural prefetcher (Shi et al., ASPLOS'21).

Voyager decomposes an address into (page, offset) and predicts them with
two output heads over an LSTM, labelling the page head with a one-hot
vector over all unique pages.  Mapped to DLRM, the "page" is the
embedding table and the "offset" is the row — and the paper's key
finding is that the row vocabulary is so large (tens of millions) that
training is infeasible: "training Voyager using this vector as output
leads to out-of-memory (even on CPU with 512GB DDR)".

:func:`estimate_memory_bytes` quantifies that blow-up, and
:class:`VoyagerPrefetcher.train` refuses vocabularies whose estimated
footprint exceeds ``memory_budget_bytes`` — reproducing the negative
result as an explicit, testable behaviour.  At toy scale the model
trains and prefetches normally.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..nn import Adam, Embedding, Linear, LSTM, Module, Tensor, cross_entropy
from ..traces.access import Trace
from .base import Prefetcher


class VoyagerScaleError(RuntimeError):
    """Raised when the output vocabulary would not fit in memory."""


def estimate_memory_bytes(num_pages: int, num_offsets: int,
                          hidden: int = 128, batch: int = 256) -> int:
    """Rough training footprint: output layers + one-hot label batches.

    Dominated by the offset head ``hidden x num_offsets`` (weights,
    gradients, Adam moments: 4 copies) and a batch of one-hot labels.
    """
    head_params = hidden * (num_pages + num_offsets)
    optimizer_copies = 4
    label_batch = batch * (num_pages + num_offsets)
    return 8 * (head_params * optimizer_copies + label_batch)


class _VoyagerModel(Module):
    def __init__(self, num_pages: int, num_offsets: int, dim: int,
                 hidden: int, rng: np.random.Generator) -> None:
        self.page_embedding = Embedding(num_pages, dim, rng=rng)
        self.offset_embedding = Embedding(num_offsets, dim, rng=rng)
        self.lstm = LSTM(2 * dim, hidden, rng=rng)
        self.page_head = Linear(hidden, num_pages, rng=rng)
        self.offset_head = Linear(hidden, num_offsets, rng=rng)

    def forward(self, pages: np.ndarray, offsets: np.ndarray
                ) -> Tuple[Tensor, Tensor]:
        from ..nn import concat

        batch, steps = pages.shape
        page_emb = self.page_embedding(pages.reshape(-1)).reshape(batch, steps, -1)
        offset_emb = self.offset_embedding(offsets.reshape(-1)).reshape(batch, steps, -1)
        inputs = concat([page_emb, offset_emb], axis=2)
        _, (h, _) = self.lstm(inputs)
        return self.page_head(h), self.offset_head(h)


class VoyagerPrefetcher(Prefetcher):
    name = "Voyager"

    def __init__(self, context: int = 8, dim: int = 16, hidden: int = 32,
                 memory_budget_bytes: int = 512 * 2 ** 30,
                 predict_every: int = 1, seed: int = 0) -> None:
        self.context = context
        self.dim = dim
        self.hidden = hidden
        self.memory_budget_bytes = memory_budget_bytes
        self.predict_every = predict_every
        self.seed = seed
        self.model: Optional[_VoyagerModel] = None
        self._window: Deque[Tuple[int, int]] = deque(maxlen=context)
        self._page_of: Dict[int, int] = {}
        self._offset_of: Dict[int, int] = {}
        self._num_pages = 0
        self._num_offsets = 0
        self._step = 0

    def reset(self) -> None:
        self._window.clear()
        self._step = 0

    def train(self, trace: Trace, epochs: int = 2, batch_size: int = 32,
              lr: float = 3e-3, max_samples: int = 2000,
              seed: int = 0) -> List[float]:
        """Offline training; raises :class:`VoyagerScaleError` when the
        unique-row vocabulary would blow the memory budget."""
        pages = trace.table_ids
        offsets = trace.row_ids
        unique_pages = np.unique(pages)
        unique_offsets = np.unique(offsets)
        self._num_pages = len(unique_pages)
        self._num_offsets = len(unique_offsets)
        estimated = estimate_memory_bytes(self._num_pages, self._num_offsets,
                                          hidden=self.hidden, batch=batch_size)
        if estimated > self.memory_budget_bytes:
            raise VoyagerScaleError(
                f"one-hot offset vocabulary of {self._num_offsets} rows needs "
                f"~{estimated / 2**30:.1f} GiB (> budget "
                f"{self.memory_budget_bytes / 2**30:.1f} GiB)"
            )
        self._page_of = {int(p): i for i, p in enumerate(unique_pages)}
        self._offset_of = {int(o): i for i, o in enumerate(unique_offsets)}
        rng = np.random.default_rng(seed)
        self.model = _VoyagerModel(self._num_pages, self._num_offsets,
                                   self.dim, self.hidden, rng)
        page_ids = np.array([self._page_of[int(p)] for p in pages])
        offset_ids = np.array([self._offset_of[int(o)] for o in offsets])
        n = len(page_ids)
        valid = np.arange(self.context, n - 1)
        if len(valid) > max_samples:
            valid = rng.choice(valid, size=max_samples, replace=False)
        optimizer = Adam(self.model.parameters(), lr=lr)
        losses: List[float] = []
        for _ in range(epochs):
            rng.shuffle(valid)
            for start in range(0, len(valid), batch_size):
                batch_pos = valid[start:start + batch_size]
                in_pages = np.stack([page_ids[p - self.context:p] for p in batch_pos])
                in_offsets = np.stack([offset_ids[p - self.context:p]
                                       for p in batch_pos])
                page_logits, offset_logits = self.model(in_pages, in_offsets)
                loss = (cross_entropy(page_logits, page_ids[batch_pos])
                        + cross_entropy(offset_logits, offset_ids[batch_pos]))
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
        return losses

    def observe(self, key: int, pc: int = 0, hit: bool = True) -> List[int]:
        from ..traces.access import unpack_key, pack_key

        table, row = unpack_key(key)
        page = self._page_of.get(table)
        offset = self._offset_of.get(row)
        self._step += 1
        if page is None or offset is None or self.model is None:
            return []
        self._window.append((page, offset))
        if (len(self._window) < self.context
                or self._step % self.predict_every != 0):
            return []
        pages = np.array([[p for p, _ in self._window]])
        offsets = np.array([[o for _, o in self._window]])
        page_logits, offset_logits = self.model(pages, offsets)
        page_idx = int(np.argmax(page_logits.data[0]))
        offset_idx = int(np.argmax(offset_logits.data[0]))
        inv_page = list(self._page_of)[page_idx] if self._page_of else 0
        inv_offset = list(self._offset_of)[offset_idx] if self._offset_of else 0
        return [pack_key(inv_page, inv_offset)]
