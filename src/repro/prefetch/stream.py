"""Simple per-PC stride prefetcher (a classic baseline and a MAB arm)."""

from __future__ import annotations

from typing import Dict, List, Tuple

from .base import Prefetcher


class StridePrefetcher(Prefetcher):
    """Detects a repeated constant stride per PC and extrapolates it."""

    name = "Stride"

    def __init__(self, degree: int = 2, confirm: int = 2) -> None:
        self.degree = degree
        self.confirm = confirm
        # pc -> (last_key, stride, confidence)
        self._state: Dict[int, Tuple[int, int, int]] = {}

    def reset(self) -> None:
        self._state.clear()

    def observe(self, key: int, pc: int = 0, hit: bool = True) -> List[int]:
        last = self._state.get(pc)
        prefetches: List[int] = []
        if last is None:
            self._state[pc] = (key, 0, 0)
            return prefetches
        last_key, stride, confidence = last
        new_stride = key - last_key
        if new_stride == stride and stride != 0:
            confidence = min(confidence + 1, 8)
        else:
            confidence = 0
        self._state[pc] = (key, new_stride, confidence)
        if confidence >= self.confirm and new_stride != 0:
            prefetches = [key + new_stride * i for i in range(1, self.degree + 1)]
        return prefetches
