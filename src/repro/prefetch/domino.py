"""Domino temporal prefetcher (Bakhshalipour et al., HPCA'18), adapted.

Domino replays previously recorded miss streams: an index table maps the
last one or two accessed keys to positions in a circular history buffer,
and on a match the following ``degree`` keys are prefetched.  The
metadata budget is expressed as a fraction of the unique keys observed,
matching the paper's "10% of the unique indices accessed" setting.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from .base import Prefetcher


class DominoPrefetcher(Prefetcher):
    name = "Domino"

    def __init__(self, history_size: int = 65536, degree: int = 4,
                 metadata_fraction: Optional[float] = None) -> None:
        self.history_size = history_size
        self.degree = degree
        self.metadata_fraction = metadata_fraction
        self._history: List[int] = []
        # Index tables: last key and (prev, last) pair -> history position.
        self._index1: "OrderedDict[int, int]" = OrderedDict()
        self._index2: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        self._prev: Optional[int] = None
        self._unique: set = set()

    def reset(self) -> None:
        self._history.clear()
        self._index1.clear()
        self._index2.clear()
        self._prev = None
        self._unique.clear()

    def _budget(self) -> int:
        if self.metadata_fraction is None:
            return self.history_size
        return max(16, int(len(self._unique) * self.metadata_fraction))

    def observe(self, key: int, pc: int = 0, hit: bool = True) -> List[int]:
        self._unique.add(key)
        prefetches: List[int] = []

        # Pair match is more precise; fall back to single-key match.
        pos = None
        if self._prev is not None:
            pos = self._index2.get((self._prev, key))
        if pos is None:
            pos = self._index1.get(key)
        if pos is not None:
            stop = min(pos + 1 + self.degree, len(self._history))
            prefetches = [k for k in self._history[pos + 1:stop] if k != key]

        # Record.
        position = len(self._history)
        self._history.append(key)
        self._index1[key] = position
        self._index1.move_to_end(key)
        if self._prev is not None:
            self._index2[(self._prev, key)] = position
            self._index2.move_to_end((self._prev, key))
        self._prev = key

        budget = self._budget()
        while len(self._index1) > budget:
            self._index1.popitem(last=False)
        while len(self._index2) > budget:
            self._index2.popitem(last=False)
        if len(self._history) > 4 * self.history_size:
            # Compact the history buffer, dropping stale index entries.
            cut = len(self._history) - 2 * self.history_size
            self._history = self._history[cut:]
            self._index1 = OrderedDict(
                (k, p - cut) for k, p in self._index1.items() if p >= cut
            )
            self._index2 = OrderedDict(
                (k, p - cut) for k, p in self._index2.items() if p >= cut
            )
        return prefetches
