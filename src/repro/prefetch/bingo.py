"""Bingo spatial prefetcher (Bakhshalipour et al., HPCA'19), adapted.

Bingo records the *footprint* of accesses inside a spatial region and
replays it when the region is re-triggered, matching history with long
(PC+address) and short (PC+offset) events.  Here a region is a run of
``region_size`` consecutive indices in the flat embedding-index space;
the PC proxy is the embedding-table id.

The paper finds Bingo's correctness is < 0.1% on DLRM traces because
embedding accesses have essentially no spatial locality — this
implementation exists to reproduce that negative result faithfully.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Tuple

from .base import Prefetcher


class BingoPrefetcher(Prefetcher):
    name = "Bingo"

    def __init__(self, region_size: int = 32, history_size: int = 4096,
                 active_window: int = 64) -> None:
        self.region_size = region_size
        self.history_size = history_size
        self.active_window = active_window
        # History: long event (pc, trigger_offset, region) and short
        # event (pc, trigger_offset) -> footprint bitmask.
        self._long: "OrderedDict[Tuple[int, int, int], int]" = OrderedDict()
        self._short: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        # Active generations: region -> (trigger_offset, pc, footprint, age)
        self._active: Dict[int, List[int]] = {}
        self._clock = 0

    def reset(self) -> None:
        self._long.clear()
        self._short.clear()
        self._active.clear()
        self._clock = 0

    def _remember(self, table: "OrderedDict", event, footprint: int) -> None:
        table[event] = table.get(event, 0) | footprint
        table.move_to_end(event)
        while len(table) > self.history_size:
            table.popitem(last=False)

    def _close_generation(self, region: int) -> None:
        trigger_offset, pc, footprint, _ = self._active.pop(region)
        self._remember(self._long, (pc, trigger_offset, region), footprint)
        self._remember(self._short, (pc, trigger_offset), footprint)

    def observe(self, key: int, pc: int = 0, hit: bool = True) -> List[int]:
        self._clock += 1
        region, offset = divmod(key, self.region_size)

        # Age out stale generations.
        stale = [r for r, rec in self._active.items()
                 if self._clock - rec[3] > self.active_window]
        for r in stale:
            self._close_generation(r)

        prefetches: List[int] = []
        if region in self._active:
            rec = self._active[region]
            rec[2] |= 1 << offset
            rec[3] = self._clock
        else:
            # Trigger access: look up footprint history (long match
            # preferred over short).
            footprint = self._long.get((pc, offset, region))
            if footprint is None:
                footprint = self._short.get((pc, offset))
            if footprint:
                base = region * self.region_size
                for bit in range(self.region_size):
                    if footprint & (1 << bit) and bit != offset:
                        prefetches.append(base + bit)
            self._active[region] = [offset, pc, 1 << offset, self._clock]
        return prefetches
