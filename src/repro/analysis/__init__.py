"""Analysis helpers: aggregate metrics and ASCII table/figure rendering."""

from .metrics import geomean, speedup, reduction, normalize_to
from .report import ascii_table, ascii_bars, stacked_fractions

__all__ = [
    "geomean", "speedup", "reduction", "normalize_to",
    "ascii_table", "ascii_bars", "stacked_fractions",
]
