"""Aggregate metrics used by the benchmark harness."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def geomean(values: Sequence[float], floor: float = 1e-9) -> float:
    """Geometric mean with a floor guarding zero entries (the paper
    reports geomeans of hit rates across datasets/buffer sizes)."""
    arr = np.maximum(np.asarray(list(values), dtype=np.float64), floor)
    if arr.size == 0:
        return 0.0
    return float(np.exp(np.mean(np.log(arr))))


def speedup(baseline: float, improved: float) -> float:
    """baseline/improved; > 1 means faster."""
    if improved <= 0:
        raise ValueError("improved time must be positive")
    return baseline / improved


def reduction(baseline: float, improved: float) -> float:
    """Fractional reduction (paper's 'reduces X by 31%')."""
    if baseline <= 0:
        return 0.0
    return (baseline - improved) / baseline


def normalize_to(values: Sequence[float], reference: float) -> np.ndarray:
    if reference == 0:
        raise ValueError("reference must be nonzero")
    return np.asarray(list(values), dtype=np.float64) / reference
