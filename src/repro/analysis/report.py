"""ASCII renderers so each bench prints the paper's rows/series."""

from __future__ import annotations

from typing import Dict, List, Sequence


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence],
                title: str = "") -> str:
    """Render a fixed-width table; floats shown with 4 significant digits."""
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_bars(labels: Sequence[str], values: Sequence[float],
               width: int = 40, title: str = "") -> str:
    """Horizontal bar chart for figure-style series."""
    values = list(values)
    peak = max(values) if len(values) else 1.0
    peak = peak if peak > 0 else 1.0
    label_w = max((len(label) for label in labels), default=0)
    lines: List[str] = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(value / peak * width)))
        lines.append(f"{label.ljust(label_w)} |{bar} {value:.4g}")
    return "\n".join(lines)


def stacked_fractions(labels: Sequence[str],
                      parts: Sequence[Dict[str, float]],
                      title: str = "") -> str:
    """Render per-label stacked fractions (Fig. 14-style breakdowns)."""
    keys = list(parts[0].keys()) if parts else []
    rows = [[label] + [part[k] for k in keys]
            for label, part in zip(labels, parts)]
    return ascii_table(["strategy"] + keys, rows, title=title)
