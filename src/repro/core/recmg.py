"""High-level RecMG system: fit on a trace, deploy on a buffer.

This is the public entry point tying together the encoder, the OPTgen
labeling pipeline, both models and the online manager:

>>> from repro.core import RecMG, RecMGConfig
>>> from repro.traces import load_dataset
>>> trace = load_dataset("dataset0", scale=0.2)
>>> train, test = trace.split(0.6)
>>> system = RecMG(RecMGConfig())
>>> system.fit(train, buffer_capacity=1000)   # doctest: +SKIP
>>> stats = system.evaluate(test, capacity=1000)   # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..traces.access import Trace
from .caching_model import CachingModel
from .config import RecMGConfig
from .features import FeatureEncoder
from .labeling import TrainingLabels, build_labels, caching_targets, prefetch_targets
from .manager import ManagerStats, RecMGManager
from .prefetch_model import BucketDecoder, PrefetchModel
from .training import (
    TrainResult,
    train_caching_model,
    train_prefetch_model,
)


@dataclass
class FitReport:
    """Training summary for both models."""

    caching: TrainResult
    prefetch: TrainResult
    opt_hit_rate: float

    @property
    def caching_accuracy(self) -> float:
        return self.caching.final_metric

    @property
    def prefetch_correctness(self) -> float:
        return self.prefetch.final_metric


class RecMG:
    """The complete ML-guided buffer management system."""

    def __init__(self, config: Optional[RecMGConfig] = None) -> None:
        self.config = config or RecMGConfig()
        self.encoder = FeatureEncoder(self.config)
        self.caching_model: Optional[CachingModel] = None
        self.prefetch_model: Optional[PrefetchModel] = None
        self.labels: Optional[TrainingLabels] = None
        self.report: Optional[FitReport] = None

    @property
    def fitted(self) -> bool:
        return self.caching_model is not None and self.prefetch_model is not None

    # ------------------------------------------------------------------
    def fit(self, trace: Trace, buffer_capacity: int,
            loss_kind: str = "chamfer") -> FitReport:
        """Offline training (paper §VI-A): label with OPTgen, then train
        the caching and prefetch models on the same chunks."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        self.encoder.fit(trace)
        self.labels = build_labels(trace, buffer_capacity, config, self.encoder)
        chunks = self.encoder.encode_chunks(trace)

        self.caching_model = CachingModel(config, self.encoder.num_tables,
                                          rng=rng)
        caching_result = train_caching_model(
            self.caching_model, chunks, caching_targets(chunks, self.labels),
            config,
        )

        self.prefetch_model = PrefetchModel(config, self.encoder.num_tables,
                                            rng=rng)
        miss_dense = self.labels.dense_ids[self.labels.miss_positions]
        self.prefetch_model.set_decoder(
            BucketDecoder.from_miss_ids(miss_dense, config.hash_buckets)
        )
        sel, windows_norm, windows_dense = prefetch_targets(
            chunks, self.labels, config, self.encoder
        )
        prefetch_result = train_prefetch_model(
            self.prefetch_model, chunks, sel, windows_norm, windows_dense,
            self.encoder, config, loss_kind=loss_kind,
        )
        self.report = FitReport(
            caching=caching_result,
            prefetch=prefetch_result,
            opt_hit_rate=self.labels.opt_hit_rate,
        )
        return self.report

    # ------------------------------------------------------------------
    def deploy(self, capacity: int, use_caching_model: bool = True,
               use_prefetch_model: bool = True,
               buffer_impl: Optional[str] = None) -> RecMGManager:
        """Build an online manager; model flags give the paper's
        ablations (CM-only, prefetch-only).  ``buffer_impl`` overrides
        the configured buffer backend (see :mod:`repro.cache.buffer`).
        """
        if not self.fitted:
            raise RuntimeError("call fit() before deploy()")
        return RecMGManager(
            capacity,
            self.encoder,
            self.config,
            caching_model=self.caching_model if use_caching_model else None,
            prefetch_model=self.prefetch_model if use_prefetch_model else None,
            buffer_impl=buffer_impl,
        )

    def evaluate(self, trace: Trace, capacity: int,
                 use_caching_model: bool = True,
                 use_prefetch_model: bool = True,
                 buffer_impl: Optional[str] = None) -> ManagerStats:
        """Deploy and serve ``trace``; returns the access breakdown."""
        manager = self.deploy(capacity, use_caching_model=use_caching_model,
                              use_prefetch_model=use_prefetch_model,
                              buffer_impl=buffer_impl)
        return manager.run(trace)
